// Regenerates Table 1 (the eight-function GA test bed) and verifies that the
// sequential GA drives each function toward its published minimum: per
// function we report the limits, the published min f(x), the best fitness
// our GA reaches, the average population fitness, how many repetitions found
// the global optimum (the paper's solution-quality metric), and the fitness
// cache hit rate of the serial program [19].
#include <cstdio>
#include <iostream>

#include "ga/functions.hpp"
#include "ga/sequential.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("generations", 400, "generations per run (paper: 1000)")
      .add_int("reps", 5, "repetitions with different seeds (paper: 25)")
      .add_int("pop", 50, "population size N")
      .add_int("seed", 1, "base seed")
      .add_bool("paper-scale", false, "use the paper's 1000 gens x 25 reps")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  int generations = static_cast<int>(flags.get_int("generations"));
  int reps = static_cast<int>(flags.get_int("reps"));
  if (flags.get_bool("paper-scale")) {
    generations = 1000;
    reps = 25;
  }

  nscc::util::Table table("Table 1 - eight-function GA test bed");
  table.columns({"fn", "name", "vars", "limits", "paper min f(x)",
                 "best found", "avg fitness", "optimum found", "cache hits"});

  for (const auto& fn : nscc::ga::dejong_testbed()) {
    double best = 1e300;
    double avg = 0.0;
    double hit_rate = 0.0;
    int found = 0;
    const double tol = nscc::ga::optimum_tolerance(fn);
    for (int rep = 0; rep < reps; ++rep) {
      nscc::ga::SequentialGaConfig cfg;
      cfg.function_id = fn.id;
      cfg.pop_size = static_cast<int>(flags.get_int("pop"));
      cfg.generations = generations;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed")) +
                 1000ULL * static_cast<std::uint64_t>(rep);
      const auto result = nscc::ga::run_sequential_ga(cfg);
      best = std::min(best, result.best_fitness);
      avg += result.final_average;
      hit_rate += result.cache_hit_rate();
      if (result.best_fitness <= fn.global_min + tol) ++found;
    }
    char limits[64];
    std::snprintf(limits, sizeof limits, "[%g, %g]", fn.lo, fn.hi);
    char found_str[32];
    std::snprintf(found_str, sizeof found_str, "%d/%d", found, reps);
    table.row()
        .cell(static_cast<std::int64_t>(fn.id))
        .cell(fn.name)
        .cell(static_cast<std::int64_t>(fn.nvars))
        .cell(limits)
        .cell(fn.global_min, 5)
        .cell(best, 5)
        .cell(avg / reps, 4)
        .cell(found_str)
        .cell(hit_rate / reps, 3);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
