// Extension experiment (paper Section 4.1): the SP2's high-performance
// switch instead of the Ethernet.  The paper reported Ethernet numbers
// because its applications' communication demands made that the
// illustrative platform, and expected that "applications with higher
// communication requirements will see similar benefits from non-strict
// coherence even on faster interconnects".  This harness runs the island GA
// on both interconnects and shows (a) everything scales much further on the
// switch, and (b) the Global_Read programs retain an edge that grows with
// the communication load (processor count).
#include <iostream>

#include "exp/ga_experiments.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("function", 1, "GA test function")
      .add_int("generations", 150, "generation budget")
      .add_int("seed", 1, "base seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  nscc::util::Table table("Extension - Ethernet vs SP2 switch (island GA f" +
                          std::to_string(flags.get_int("function")) + ")");
  table.columns({"network", "P", "sync", "async", "age10", "age30",
                 "best partial/sync", "net util (sync)"});

  for (auto [label, network] :
       {std::pair{"10Mb Ethernet", nscc::rt::Network::kEthernet},
        {"SP2 switch", nscc::rt::Network::kSp2Switch}}) {
    for (int P : {4, 16}) {
      nscc::exp::GaCellConfig cfg;
      cfg.function_id = static_cast<int>(flags.get_int("function"));
      cfg.processors = P;
      cfg.generations = static_cast<int>(flags.get_int("generations"));
      cfg.reps = 1;
      cfg.ages = {10, 30};
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cfg.machine.network = network;
      const auto cell = nscc::exp::run_ga_cell(cfg);
      const double best_partial = std::max(cell.variant("age10").speedup,
                                           cell.variant("age30").speedup);
      table.row()
          .cell(label)
          .cell(static_cast<std::int64_t>(P))
          .cell(cell.variant("sync").speedup, 2)
          .cell(cell.variant("async").speedup, 2)
          .cell(cell.variant("age10").speedup, 2)
          .cell(cell.variant("age30").speedup, 2)
          .cell(best_partial / cell.variant("sync").speedup, 2)
          .cell(cell.variant("sync").bus_utilization, 2);
    }
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
