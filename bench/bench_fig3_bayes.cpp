// Regenerates Figure 3: speedups of the parallel probabilistic-inference
// implementations (sync, async, Global_Read ages) over the sequential logic
// sampler, on a 2-node configuration with an unloaded network, for the four
// belief networks of Table 2, plus the cross-network average and the
// "best partial over best competitor" bar.
#include <iostream>

#include "exp/bayes_experiments.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("reps", 3, "repetitions (paper: 10)")
      .add_int("queries", 3, "query nodes per network")
      .add_int("seed", 21, "base seed")
      .add_bool("paper-scale", false, "paper protocol: 10 reps")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  nscc::exp::BayesCellConfig cfg;
  cfg.reps = flags.get_bool("paper-scale")
                 ? 10
                 : static_cast<int>(flags.get_int("reps"));
  cfg.queries_per_net = static_cast<int>(flags.get_int("queries"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<nscc::exp::BayesCellResult> cells;
  for (const auto& net : nscc::exp::table2_networks()) {
    cells.push_back(nscc::exp::run_bayes_cell(net, cfg));
  }
  const auto avg = nscc::exp::average_bayes_cells(cells);

  nscc::util::Table table(
      "Figure 3 - Bayesian network speedups, 2 processors, unloaded network");
  std::vector<std::string> cols = {"network"};
  for (const auto& v : cells.front().variants) {
    if (v.name != "serial") cols.push_back(v.name);
  }
  cols.push_back("best/bestcomp");
  table.columns(cols);

  for (const auto& cell : cells) {
    table.row().cell(cell.network);
    for (const auto& v : cell.variants) {
      if (v.name != "serial") table.cell(v.speedup, 2);
    }
    table.cell(cell.best_partial_over_best_competitor(), 2);
  }
  table.row().cell("average");
  double best_partial = 0.0;
  double best_other = 1.0;  // Serial is always a competitor at 1.0.
  for (const auto& v : avg) {
    if (v.name == "serial") continue;
    table.cell(v.speedup, 2);
    if (v.name.rfind("age", 0) == 0) {
      best_partial = std::max(best_partial, v.speedup);
    } else {
      best_other = std::max(best_other, v.speedup);
    }
  }
  table.cell(best_partial / best_other, 2);
  table.print(std::cout);

  nscc::util::Table diag("Rollback diagnostics (mean per run)");
  diag.columns({"network", "async rollbacks", "async resampled",
                "age5 rollbacks", "age5 resampled", "age30 rollbacks",
                "age30 resampled"});
  for (const auto& cell : cells) {
    diag.row()
        .cell(cell.network)
        .cell(cell.variant("async").rollbacks, 0)
        .cell(cell.variant("async").nodes_resampled, 0)
        .cell(cell.variant("age5").rollbacks, 0)
        .cell(cell.variant("age5").nodes_resampled, 0)
        .cell(cell.variant("age30").rollbacks, 0)
        .cell(cell.variant("age30").nodes_resampled, 0);
  }
  std::cout << '\n';
  diag.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
