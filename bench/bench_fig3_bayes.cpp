// Regenerates Figure 3: speedups of the parallel probabilistic-inference
// implementations (sync, async, Global_Read ages) over the sequential logic
// sampler, on a 2-node configuration with an unloaded network, for the four
// belief networks of Table 2, plus the cross-network average and the
// "best partial over best competitor" bar.
#include <iostream>
#include <string>
#include <utility>

#include "exp/bayes_experiments.hpp"
#include "harness/sweep.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

std::pair<std::string, long> split_variant(const std::string& name) {
  if (name.rfind("age", 0) == 0) return {"partial", std::stol(name.substr(3))};
  return {name, 0};
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("reps", 3, "repetitions (paper: 10)")
      .add_int("queries", 3, "query nodes per network")
      .add_int("seed", 21, "base seed")
      .add_bool("paper-scale", false, "paper protocol: 10 reps")
      .add_bool("csv", false, "also emit CSV");
  nscc::harness::Sweep sweep("fig3_bayes");
  nscc::harness::Sweep::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  sweep.configure(flags);

  nscc::exp::BayesCellConfig cfg;
  cfg.reps = flags.get_bool("paper-scale")
                 ? 10
                 : static_cast<int>(flags.get_int("reps"));
  cfg.queries_per_net = static_cast<int>(flags.get_int("queries"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::vector<nscc::exp::BayesCellResult> cells;
  for (const auto& net : nscc::exp::table2_networks()) {
    cells.push_back(nscc::exp::run_bayes_cell(net, cfg));
    // Aggregated per-variant records (means over reps -> repeat = -1); the
    // belief-network instance rides on the workload name after ':'.
    const std::size_t net_index = cells.size() - 1;
    for (const auto& v : cells.back().variants) {
      const auto [variant, age] = split_variant(v.name);
      nscc::harness::SweepRecord rec;
      rec.workload = "bayes.sampling:" + cells.back().network;
      rec.variant = variant;
      rec.age = age;
      rec.seed = cfg.seed;
      rec.repeat = -1;
      rec.params = {{"processors", static_cast<double>(cfg.processors)},
                    {"network_index", static_cast<double>(net_index)},
                    {"queries", static_cast<double>(cfg.queries_per_net)},
                    {"reps", static_cast<double>(cfg.reps)}};
      rec.stats = {{"speedup", v.speedup},
                   {"mean_time_s", v.mean_time_s},
                   {"converged_fraction", v.converged_fraction},
                   {"rollbacks", v.rollbacks},
                   {"nodes_resampled", v.nodes_resampled},
                   {"mean_warp", v.mean_warp}};
      sweep.add(std::move(rec));
    }
  }
  const auto avg = nscc::exp::average_bayes_cells(cells);

  nscc::util::Table table(
      "Figure 3 - Bayesian network speedups, 2 processors, unloaded network");
  std::vector<std::string> cols = {"network"};
  for (const auto& v : cells.front().variants) {
    if (v.name != "serial") cols.push_back(v.name);
  }
  cols.push_back("best/bestcomp");
  table.columns(cols);

  for (const auto& cell : cells) {
    table.row().cell(cell.network);
    for (const auto& v : cell.variants) {
      if (v.name != "serial") table.cell(v.speedup, 2);
    }
    table.cell(cell.best_partial_over_best_competitor(), 2);
  }
  table.row().cell("average");
  double best_partial = 0.0;
  double best_other = 1.0;  // Serial is always a competitor at 1.0.
  for (const auto& v : avg) {
    if (v.name == "serial") continue;
    table.cell(v.speedup, 2);
    if (v.name.rfind("age", 0) == 0) {
      best_partial = std::max(best_partial, v.speedup);
    } else {
      best_other = std::max(best_other, v.speedup);
    }
  }
  table.cell(best_partial / best_other, 2);
  table.print(std::cout);

  nscc::util::Table diag("Rollback diagnostics (mean per run)");
  diag.columns({"network", "async rollbacks", "async resampled",
                "age5 rollbacks", "age5 resampled", "age30 rollbacks",
                "age30 resampled"});
  for (const auto& cell : cells) {
    diag.row()
        .cell(cell.network)
        .cell(cell.variant("async").rollbacks, 0)
        .cell(cell.variant("async").nodes_resampled, 0)
        .cell(cell.variant("age5").rollbacks, 0)
        .cell(cell.variant("age5").nodes_resampled, 0)
        .cell(cell.variant("age30").rollbacks, 0)
        .cell(cell.variant("age30").nodes_resampled, 0);
  }
  std::cout << '\n';
  diag.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return sweep.write() ? 0 : 1;
}
