// Extension E: completion time under frame loss (loss-rate x age sweep).
//
// The paper's robustness argument is about load; this harness makes the
// stronger one about loss.  The island GA runs over an Ethernet whose
// frames are dropped with per-frame probability `loss`, for the lockstep
// variant (age 0: barrier + fresh Global_Read each generation, updates
// forced reliable) and two bounded-staleness variants (age 10 and 30,
// best-effort updates + starvation watchdog).  Each cell reports the
// completion time and its ratio to the same variant's fault-free run,
// plus the recovery work performed: frames lost on the wire, transport
// retransmissions, and Global_Read watchdog escalations.
//
// The expected shape: the synchronous column degrades with the loss rate
// (every lost reliable frame is a retransmission round-trip on the
// critical path), while the age>=10 columns stay within a few percent of
// their fault-free time — loss is absorbed by the staleness budget.
//
// A second sweep makes the crash-recovery argument: at 1% loss, one node
// is torn down mid-run (stateful crash semantics) under each recovery
// policy.  `none` deadlocks, `degraded` completes on stale reads, and
// `rejoin` restores the last checkpoint and catches up — the table and
// JSON report the recovery work (checkpoints, restores, rejoins,
// degraded reads, iterations rolled back).
//
// A third sweep replaces clean losses with payload corruption
// (corruption-rate x age): frame CRCs must turn every damaged frame into
// an ordinary loss, so each cell should match the loss table's shape and
// the DSM quarantine counter should stay at zero.
//
// A fourth sweep makes the partition-tolerance argument: the cluster is
// split into two halves for a scheduled window (partition-duration x age)
// with quorum-gated membership and anti-entropy heal.  Neither half holds
// the quorum, so both sides serve divergence-bounded degraded reads
// instead of split-braining; at window end writers republish over the
// reliable channel and every diverged location must reconcile.
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "ga/island.hpp"
#include "harness/sweep.hpp"
#include "obs/obs.hpp"
#include "recovery/recovery.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct Cell {
  double completion_s = 0.0;
  std::uint64_t frames_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t escalations = 0;
  bool deadlocked = false;
  nscc::recovery::Stats recovery;
  std::uint64_t degraded_reads = 0;
  std::uint64_t integrity_dropped = 0;
  std::uint64_t sanitize_violations = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t partition_stale_served = 0;
  std::uint64_t heal_frames = 0;
  std::uint64_t diverged_locations = 0;
  std::uint64_t reconciled_locations = 0;
};

Cell run(double loss, long age, int demes, int generations,
         std::uint64_t seed, std::uint64_t fault_seed,
         nscc::sim::Time read_timeout,
         nscc::recovery::Policy policy = nscc::recovery::Policy::kNone,
         const nscc::fault::Window* crash = nullptr, double corrupt = 0.0,
         const nscc::fault::PartitionWindow* partition = nullptr,
         double quorum = 0.0, bool heal = false) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = age == 0 ? nscc::dsm::Mode::kSynchronous
                      : nscc::dsm::Mode::kPartialAsync;
  cfg.age = age;
  cfg.ndemes = demes;
  cfg.generations = generations;
  cfg.seed = seed;
  cfg.propagation.coalesce = age > 0;
  if (age > 0) cfg.propagation.read_timeout = read_timeout;
  cfg.recovery.policy = policy;
  cfg.recovery.checkpoint_interval = 100 * nscc::sim::kMillisecond;
  cfg.recovery.quorum_fraction = quorum;
  cfg.propagation.partition_heal = heal;
  // Corrupted sweeps exercise the whole integrity layer: transport frame
  // CRCs drop damaged frames as loss, and the DSM update checksum
  // quarantines anything that slips past.
  cfg.propagation.integrity = corrupt > 0.0;

  nscc::fault::FaultPlan plan;
  plan.seed = fault_seed;
  plan.link.loss_prob = loss;
  plan.link.corrupt_prob = corrupt;
  if (crash != nullptr) {
    plan.nodes[1].crashes.push_back(*crash);
    plan.crash_semantics = nscc::fault::CrashSemantics::kStateful;
  }
  if (partition != nullptr) plan.partitions.push_back(*partition);
  nscc::rt::MachineConfig machine;
  machine.fault = plan;
  machine.transport.enabled = !plan.empty() || cfg.recovery.enabled();

  const auto r = nscc::ga::run_island_ga(cfg, machine);
  Cell cell;
  cell.completion_s = nscc::sim::to_seconds(r.completion_time);
  cell.frames_lost = r.frames_lost;
  cell.retransmissions = r.retransmissions;
  cell.escalations = r.read_escalations;
  cell.deadlocked = r.deadlocked;
  cell.recovery = r.recovery;
  cell.degraded_reads = r.degraded_reads;
  cell.integrity_dropped = r.integrity_dropped;
  cell.sanitize_violations = r.sanitize_violations;
  cell.partition_drops = r.partition_drops;
  cell.partition_stale_served = r.partition_stale_served;
  cell.heal_frames = r.heal_frames;
  cell.diverged_locations = r.diverged_locations;
  cell.reconciled_locations = r.reconciled_locations;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("demes", 8, "GA nodes")
      .add_int("generations", 120, "generations per deme")
      .add_int("seed", 1, "base seed")
      .add_bool("csv", false, "also emit CSV");
  nscc::obs::add_flags(flags);
  nscc::fault::add_flags(flags);
  nscc::harness::Sweep sweep("ext_faults");
  nscc::harness::Sweep::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  sweep.configure(flags);
  const int demes = static_cast<int>(flags.get_int("demes"));
  const int generations = static_cast<int>(flags.get_int("generations"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  nscc::sim::Time read_timeout = nscc::fault::read_timeout_from_flags(flags);
  if (read_timeout == 0) read_timeout = 50 * nscc::sim::kMillisecond;

  const std::vector<double> losses = {0.0, 0.001, 0.01, 0.05};
  const std::vector<long> ages = {0, 10, 30};

  // Fault-free baselines, one per variant.
  std::vector<Cell> base;
  for (long age : ages) {
    base.push_back(
        run(0.0, age, demes, generations, seed, fault_seed, read_timeout));
  }

  nscc::util::Table table("Extension E - completion time vs frame loss");
  table.columns({"loss", "variant", "completion s", "vs fault-free",
                 "frames lost", "retx", "escalations"});
  for (double loss : losses) {
    for (std::size_t i = 0; i < ages.size(); ++i) {
      const long age = ages[i];
      const Cell cell =
          loss == 0.0
              ? base[i]
              : run(loss, age, demes, generations, seed, fault_seed,
                    read_timeout);
      const std::string label =
          age == 0 ? "sync" : "age" + std::to_string(age);
      table.row()
          .cell(nscc::util::format_double(loss * 100.0, 1) + " %")
          .cell(label + (cell.deadlocked ? " (DEADLOCK)" : ""))
          .cell(cell.completion_s, 2)
          .cell(cell.completion_s / base[i].completion_s, 3)
          .cell(cell.frames_lost)
          .cell(cell.retransmissions)
          .cell(cell.escalations);
      nscc::harness::SweepRecord rec;
      rec.workload = "ga.island";
      rec.variant = age == 0 ? "sync" : "partial";
      rec.age = age;
      rec.seed = seed;
      rec.repeat = 0;
      rec.params = {{"loss", loss},
                    {"demes", static_cast<double>(demes)},
                    {"generations", static_cast<double>(generations)}};
      rec.stats = {{"completion_s", cell.completion_s},
                   {"vs_fault_free", cell.completion_s / base[i].completion_s},
                   {"frames_lost", static_cast<double>(cell.frames_lost)},
                   {"retransmissions",
                    static_cast<double>(cell.retransmissions)},
                   {"read_escalations", static_cast<double>(cell.escalations)},
                   {"deadlocked", cell.deadlocked ? 1.0 : 0.0}};
      sweep.add(std::move(rec));
    }
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();

  // Crash-recovery sweep: one node torn down mid-run at 1% loss, per
  // policy.  The crash lands at 40% of the crash-free age-10 completion so
  // it scales with --demes/--generations.
  const double kCrashLoss = 0.01;
  const double crash_at_s = 0.4 * base[1].completion_s;
  nscc::fault::Window crash;
  crash.start = static_cast<nscc::sim::Time>(
      crash_at_s * static_cast<double>(nscc::sim::kSecond));
  crash.end = crash.start + static_cast<nscc::sim::Time>(
                                0.08 * static_cast<double>(nscc::sim::kSecond));

  nscc::util::Table rtable(
      "Extension E2 - crash-restart recovery (1% loss, node 1 down)");
  rtable.columns({"policy", "variant", "completion s", "vs crash-free",
                  "crashes", "ckpts", "restores", "rejoins", "degraded",
                  "lost iters"});
  const std::vector<std::pair<std::string, nscc::recovery::Policy>> policies =
      {{"none", nscc::recovery::Policy::kNone},
       {"degraded", nscc::recovery::Policy::kDegraded},
       {"rejoin", nscc::recovery::Policy::kRejoin}};
  for (const auto& [pname, policy] : policies) {
    for (std::size_t i = 1; i < ages.size(); ++i) {
      const long age = ages[i];
      const Cell cell = run(kCrashLoss, age, demes, generations, seed,
                            fault_seed, read_timeout, policy, &crash);
      const std::string label = "age" + std::to_string(age);
      rtable.row()
          .cell(pname)
          .cell(label + (cell.deadlocked ? " (DEADLOCK)" : ""))
          .cell(cell.completion_s, 2)
          .cell(cell.completion_s / base[i].completion_s, 3)
          .cell(cell.recovery.crashes)
          .cell(cell.recovery.checkpoints_taken)
          .cell(cell.recovery.restores)
          .cell(cell.recovery.rejoins)
          .cell(cell.degraded_reads)
          .cell(static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, cell.recovery.lost_iterations)));
      nscc::harness::SweepRecord rec;
      rec.workload = "ga.island";
      rec.variant = "partial";
      rec.age = age;
      rec.seed = seed;
      rec.repeat = 0;
      rec.params = {{"loss", kCrashLoss},
                    {"demes", static_cast<double>(demes)},
                    {"generations", static_cast<double>(generations)},
                    {"crash_at_s", crash_at_s},
                    {"policy", static_cast<double>(policy)}};
      rec.stats = {
          {"completion_s", cell.completion_s},
          {"vs_crash_free", cell.completion_s / base[i].completion_s},
          {"deadlocked", cell.deadlocked ? 1.0 : 0.0},
          {"crashes", static_cast<double>(cell.recovery.crashes)},
          {"checkpoints_taken",
           static_cast<double>(cell.recovery.checkpoints_taken)},
          {"restores", static_cast<double>(cell.recovery.restores)},
          {"rejoins", static_cast<double>(cell.recovery.rejoins)},
          {"degraded_reads", static_cast<double>(cell.degraded_reads)},
          {"detection_latency_s",
           nscc::sim::to_seconds(cell.recovery.detection_latency)},
          {"recovery_latency_s",
           nscc::sim::to_seconds(cell.recovery.recovery_latency)},
          {"lost_iterations",
           static_cast<double>(cell.recovery.lost_iterations)}};
      sweep.add(std::move(rec));
    }
  }
  std::cout << '\n';
  rtable.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << rtable.to_csv();

  // Corruption sweep: damaged payloads instead of clean losses.  Frame
  // CRCs turn corruption into loss, so the expected shape matches the loss
  // table — the sync column pays retransmission round-trips while the
  // bounded-staleness columns absorb the drops — and the quarantine
  // counter stays at zero (nothing damaged reaches the DSM).
  const std::vector<double> corrupts = {0.001, 0.01, 0.05};
  nscc::util::Table ctable(
      "Extension E3 - completion time vs payload corruption");
  ctable.columns({"corrupt", "variant", "completion s", "vs fault-free",
                  "retx", "escalations", "quarantined"});
  for (double corrupt : corrupts) {
    for (std::size_t i = 0; i < ages.size(); ++i) {
      const long age = ages[i];
      const Cell cell = run(0.0, age, demes, generations, seed, fault_seed,
                            read_timeout, nscc::recovery::Policy::kNone,
                            nullptr, corrupt);
      const std::string label =
          age == 0 ? "sync" : "age" + std::to_string(age);
      ctable.row()
          .cell(nscc::util::format_double(corrupt * 100.0, 1) + " %")
          .cell(label + (cell.deadlocked ? " (DEADLOCK)" : ""))
          .cell(cell.completion_s, 2)
          .cell(cell.completion_s / base[i].completion_s, 3)
          .cell(cell.retransmissions)
          .cell(cell.escalations)
          .cell(cell.integrity_dropped);
      nscc::harness::SweepRecord rec;
      rec.workload = "ga.island";
      rec.variant = age == 0 ? "sync" : "partial";
      rec.age = age;
      rec.seed = seed;
      rec.repeat = 0;
      rec.params = {{"corrupt", corrupt},
                    {"demes", static_cast<double>(demes)},
                    {"generations", static_cast<double>(generations)}};
      rec.stats = {{"completion_s", cell.completion_s},
                   {"vs_fault_free", cell.completion_s / base[i].completion_s},
                   {"retransmissions",
                    static_cast<double>(cell.retransmissions)},
                   {"read_escalations", static_cast<double>(cell.escalations)},
                   {"integrity_dropped",
                    static_cast<double>(cell.integrity_dropped)},
                   {"sanitize_violations",
                    static_cast<double>(cell.sanitize_violations)},
                   {"deadlocked", cell.deadlocked ? 1.0 : 0.0}};
      sweep.add(std::move(rec));
    }
  }
  std::cout << '\n';
  ctable.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << ctable.to_csv();

  // Partition sweep: the cluster splits into two halves for a scheduled
  // window (duration x age), with quorum-gated membership and anti-entropy
  // heal on.  Neither half holds a 5/8 quorum, so both sides serve
  // divergence-bounded degraded reads instead of declaring each other dead;
  // at window end the writers republish and every diverged location
  // reconciles — `diverged` must equal `reconciled` in every cell.
  const double part_start_s = 0.2 * base[1].completion_s;
  const std::vector<double> part_durs_s = {0.1 * base[1].completion_s,
                                           0.3 * base[1].completion_s};
  const double kQuorum = 0.625;
  nscc::fault::PartitionWindow split;
  for (int node = 0; node < demes; ++node) {
    if (node == 0) split.groups.assign(2, {});
    split.groups[static_cast<std::size_t>(node < demes / 2 ? 0 : 1)]
        .push_back(node);
  }
  nscc::util::Table ptable(
      "Extension E4 - partition-and-heal (half split, quorum 5/8)");
  ptable.columns({"split s", "variant", "completion s", "vs fault-free",
                  "part drops", "stale served", "heal frames", "diverged",
                  "reconciled"});
  for (double dur_s : part_durs_s) {
    split.window.start = static_cast<nscc::sim::Time>(
        part_start_s * static_cast<double>(nscc::sim::kSecond));
    split.window.end =
        split.window.start +
        static_cast<nscc::sim::Time>(dur_s *
                                     static_cast<double>(nscc::sim::kSecond));
    for (std::size_t i = 1; i < ages.size(); ++i) {
      const long age = ages[i];
      const Cell cell =
          run(0.0, age, demes, generations, seed, fault_seed, read_timeout,
              nscc::recovery::Policy::kDegraded, nullptr, 0.0, &split,
              kQuorum, true);
      const std::string label = "age" + std::to_string(age);
      ptable.row()
          .cell(nscc::util::format_double(dur_s, 2))
          .cell(label + (cell.deadlocked ? " (DEADLOCK)" : ""))
          .cell(cell.completion_s, 2)
          .cell(cell.completion_s / base[i].completion_s, 3)
          .cell(cell.partition_drops)
          .cell(cell.partition_stale_served)
          .cell(cell.heal_frames)
          .cell(cell.diverged_locations)
          .cell(cell.reconciled_locations);
      nscc::harness::SweepRecord rec;
      rec.workload = "ga.island";
      rec.variant = "partial";
      rec.age = age;
      rec.seed = seed;
      rec.repeat = 0;
      rec.params = {{"part_start_s", part_start_s},
                    {"part_dur_s", dur_s},
                    {"quorum", kQuorum},
                    {"heal", 1.0},
                    {"demes", static_cast<double>(demes)},
                    {"generations", static_cast<double>(generations)}};
      rec.stats = {
          {"completion_s", cell.completion_s},
          {"vs_fault_free", cell.completion_s / base[i].completion_s},
          {"partition_drops", static_cast<double>(cell.partition_drops)},
          {"partition_stale_served",
           static_cast<double>(cell.partition_stale_served)},
          {"heal_frames", static_cast<double>(cell.heal_frames)},
          {"diverged_locations",
           static_cast<double>(cell.diverged_locations)},
          {"reconciled_locations",
           static_cast<double>(cell.reconciled_locations)},
          {"quorum_parks", static_cast<double>(cell.recovery.quorum_parks)},
          {"split_brain_declarations",
           static_cast<double>(cell.recovery.split_brain_declarations)},
          {"deadlocked", cell.deadlocked ? 1.0 : 0.0}};
      sweep.add(std::move(rec));
    }
  }
  std::cout << '\n';
  ptable.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << ptable.to_csv();
  return sweep.write() ? 0 : 1;
}
