// Regenerates Table 2 (the four Bayesian belief networks): nodes, edges per
// node, values per node, the 2-way edge-cut produced by our METIS-substitute
// partitioner, and the uniprocessor inference time of the logic-sampling
// engine (90% CI to +/-0.01).  Paper reference values are printed alongside.
#include <iostream>
#include <map>
#include <string>

#include "exp/bayes_experiments.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("queries", 3, "query nodes per network")
      .add_int("seed", 21, "base seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  // Paper's Table 2 values, for side-by-side comparison.
  struct PaperRow {
    double edges_per_node;
    double values;
    int cut;
    double time_s;
  };
  const std::map<std::string, PaperRow> paper = {
      {"A", {2.2, 2, 24, 11.12}},
      {"AA", {2.4, 2, 30, 11.19}},
      {"C", {2.0, 2, 24, 11.81}},
      {"Hailfinder", {1.2, 4, 4, 3.15}},
  };

  const auto rows = nscc::exp::measure_table2(
      static_cast<int>(flags.get_int("queries")),
      static_cast<std::uint64_t>(flags.get_int("seed")));

  nscc::util::Table table("Table 2 - four Bayesian belief networks");
  table.columns({"network", "nodes", "edges/node (paper)", "values/node (paper)",
                 "edge-cut 2p (paper)", "uniproc time s (paper)", "samples"});
  for (const auto& row : rows) {
    const auto& p = paper.at(row.name);
    auto fmt = [](double ours, double theirs, int prec) {
      return nscc::util::format_double(ours, prec) + " (" +
             nscc::util::format_double(theirs, prec) + ")";
    };
    table.row()
        .cell(row.name)
        .cell(static_cast<std::int64_t>(row.nodes))
        .cell(fmt(row.edges_per_node, p.edges_per_node, 1))
        .cell(fmt(row.values_per_node, p.values, 0))
        .cell(std::to_string(row.edge_cut_2way) + " (" + std::to_string(p.cut) +
              ")")
        .cell(fmt(row.uniprocessor_time_s, p.time_s, 2))
        .cell(row.samples);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
