// Warp measurements (paper Section 4.3): warp at a node with respect to a
// peer is the ratio of consecutive message inter-arrival to inter-send
// times, measured above the runtime for all messages.  On a stable network
// warp ~= 1; values much greater than 1 indicate rising load.  This harness
// drives a fixed-rate probe pair while a loader ramps the shared 10 Mbps
// Ethernet through increasing offered loads (including overload), and also
// reports the warp seen by the GA benchmarks under Figure 4's load levels.
#include <iostream>
#include <memory>

#include "exp/ga_experiments.hpp"
#include "fault/fault.hpp"
#include "net/load_generator.hpp"
#include "obs/obs.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

/// Mean warp of a probe stream (one sender, one receiver, fixed period)
/// under `offered_mbps` of background load ramping up during the run.
double probe_warp(double offered_mbps, bool ramp,
                  const nscc::obs::Options& obs_options,
                  const nscc::fault::FaultPlan& fault_plan) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.obs = obs_options;
  cfg.fault = fault_plan;
  cfg.transport.enabled = !fault_plan.empty();
  nscc::rt::VirtualMachine vm(cfg);
  constexpr int kMessages = 400;
  vm.add_task("probe-recv", [](nscc::rt::Task& t) {
    for (int i = 0; i < kMessages; ++i) (void)t.recv(1);
  });
  vm.add_task("probe-send", [](nscc::rt::Task& t) {
    for (int i = 0; i < kMessages; ++i) {
      t.compute(10 * nscc::sim::kMillisecond);
      nscc::rt::Packet p;
      p.pack_double_vec(std::vector<double>(32, 0.0));
      t.send(0, 1, std::move(p));
    }
  });
  nscc::net::LoadGeneratorConfig lg;
  lg.offered_bps = offered_mbps * 1e6;
  lg.seed = 7;
  nscc::net::LoadGenerator base_load(vm.engine(), vm.bus(), lg);
  // Optional second loader that switches on mid-run: warp spikes while the
  // load *changes* (warp measures the rate of change of network load).
  nscc::net::LoadGeneratorConfig lg2;
  lg2.offered_bps = 9e6;  // Total exceeds the 10 Mbps capacity: load is *rising*.
  lg2.seed = 8;
  std::unique_ptr<nscc::net::LoadGenerator> ramp_load;
  if (ramp) {
    vm.engine().schedule(2 * nscc::sim::kSecond, [&vm, lg2, &ramp_load] {
      ramp_load =
          std::make_unique<nscc::net::LoadGenerator>(vm.engine(), vm.bus(), lg2);
    });
  }
  vm.run();
  base_load.stop();
  if (ramp_load) ramp_load->stop();
  return vm.warp_meter().overall().mean();
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("generations", 120, "GA generations for the workload rows")
      .add_int("seed", 1, "base seed")
      .add_bool("csv", false, "also emit CSV");
  nscc::obs::add_flags(flags);
  nscc::fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  // Each probe run overwrites the outputs; the ramp run (the one where warp
  // actually spikes) is traced last and wins.
  const nscc::obs::Options obs_options = nscc::obs::options_from_flags(flags);
  const nscc::fault::FaultPlan fault_plan = nscc::fault::plan_from_flags(flags);

  nscc::util::Table probe("Warp of a fixed-rate probe stream vs offered load");
  probe.columns({"background load", "mean warp", "interpretation"});
  for (double mbps : {0.0, 2.0, 5.0, 8.0}) {
    const double w = probe_warp(mbps, false, obs_options, fault_plan);
    probe.row()
        .cell(nscc::util::format_double(mbps, 1) + " Mbps steady")
        .cell(w, 3)
        .cell(w < 1.1 ? "stable" : "loaded");
  }
  {
    const double w = probe_warp(2.0, true, obs_options, fault_plan);
    probe.row()
        .cell("2 -> 11 Mbps ramp")
        .cell(w, 3)
        .cell(w > 1.05 ? "rising load (warp >> 1)" : "stable");
  }
  probe.print(std::cout);

  nscc::util::Table ga("Warp observed by the island GA (P=16)");
  ga.columns({"load", "sync warp", "async warp", "age10 warp"});
  for (double load : {0.0, 1.0, 2.0}) {
    nscc::exp::GaCellConfig cfg;
    cfg.function_id = 1;
    cfg.processors = 16;
    cfg.generations = static_cast<int>(flags.get_int("generations"));
    cfg.reps = 1;
    cfg.ages = {10};
    cfg.loader_mbps = load;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const auto cell = nscc::exp::run_ga_cell(cfg);
    ga.row()
        .cell(nscc::util::format_double(load, 1) + " Mbps")
        .cell(cell.variant("sync").mean_warp, 3)
        .cell(cell.variant("async").mean_warp, 3)
        .cell(cell.variant("age10").mean_warp, 3);
  }
  std::cout << '\n';
  ga.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << probe.to_csv();
  return 0;
}
