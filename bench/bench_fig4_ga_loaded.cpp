// Regenerates Figure 4: GA speedups on the loaded network.  Four processors
// run the benchmarks while a network loader injects 0.5 / 1 / 2 Mbps of
// background traffic into the shared 10 Mbps Ethernet (the paper used two
// dedicated loader nodes).  Prints function 1 (best case) and the
// eight-function average per load level, plus the best-partial-over-best-
// competitor bar, which the paper shows growing with load.
#include <iostream>
#include <vector>

#include "exp/ga_experiments.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("generations", 200, "sync/serial generation budget (paper: 1000)")
      .add_int("reps", 2, "repetitions (paper: 25)")
      .add_int("functions", 8, "use test functions 1..N")
      .add_int("processors", 4, "GA processors (paper: 4 + 2 loader nodes)")
      .add_int("seed", 1, "base seed")
      .add_bool("paper-scale", false, "paper protocol: 1000 gens, 25 reps")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  int generations = static_cast<int>(flags.get_int("generations"));
  int reps = static_cast<int>(flags.get_int("reps"));
  if (flags.get_bool("paper-scale")) {
    generations = 1000;
    reps = 25;
  }
  const int nfuncs = static_cast<int>(flags.get_int("functions"));

  const std::vector<double> loads_mbps = {0.0, 0.5, 1.0, 2.0};
  const std::vector<std::string> variant_names = {
      "sync", "async", "age0", "age5", "age10", "age20", "age30"};

  nscc::util::Table table("Figure 4 - GA speedups on the loaded network (P=" +
                          std::to_string(flags.get_int("processors")) + ")");
  std::vector<std::string> cols = {"load", "series"};
  for (const auto& n : variant_names) cols.push_back(n);
  cols.push_back("best/bestcomp");
  table.columns(cols);

  for (double load : loads_mbps) {
    std::vector<nscc::exp::GaCellResult> cells;
    for (int f = 1; f <= nfuncs; ++f) {
      nscc::exp::GaCellConfig cfg;
      cfg.function_id = f;
      cfg.processors = static_cast<int>(flags.get_int("processors"));
      cfg.generations = generations;
      cfg.reps = reps;
      cfg.loader_mbps = load;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cells.push_back(nscc::exp::run_ga_cell(cfg));
    }
    const auto avg = nscc::exp::average_cells(cells);

    auto emit = [&](const std::string& label,
                    const std::vector<nscc::exp::GaVariantResult>& variants,
                    double white_bar) {
      table.row().cell(nscc::util::format_double(load, 1) + " Mbps").cell(label);
      for (const auto& name : variant_names) {
        for (const auto& v : variants) {
          if (v.name == name) {
            table.cell(v.speedup, 2);
            break;
          }
        }
      }
      table.cell(white_bar, 2);
    };
    emit("f1", cells.front().variants,
         cells.front().best_partial_over_best_competitor());
    double best_partial = 0.0;
    double best_other = 1.0;
    for (const auto& v : avg) {
      if (v.name.rfind("age", 0) == 0) {
        best_partial = std::max(best_partial, v.speedup);
      } else if (v.name != "serial") {
        best_other = std::max(best_other, v.speedup);
      }
    }
    emit("average", avg, best_partial / best_other);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
