// Ablation A3: rollback control in the parallel logic sampler.  Sweeps the
// Global_Read age and reports rollback counts, the invalidated work
// (nodes resampled), Global_Read blocking, and completion time, on both a
// mismatch-heavy random network and the speculation-friendly
// Hailfinder-like network (paper Section 3.2: the benefit of Global_Read is
// to restrict the number of costly rollbacks).
#include <iostream>

#include "exp/bayes_experiments.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("iterations", 4000, "sampling iterations per run")
      .add_int("seed", 21, "base seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  nscc::util::Table table("Ablation A3 - rollback vs Global_Read age");
  table.columns({"network", "variant", "rollbacks", "nodes resampled",
                 "gr blocks", "block time s", "completion s"});

  for (const auto& named : nscc::exp::table2_networks()) {
    if (named.name != "A" && named.name != "Hailfinder") continue;
    const auto queries = nscc::bayes::default_queries(named.net, 3, 11);
    auto run_one = [&](const std::string& label, nscc::dsm::Mode mode,
                       long age) {
      nscc::bayes::ParallelInferenceConfig cfg;
      cfg.mode = mode;
      cfg.age = age;
      cfg.iterations =
          static_cast<std::uint64_t>(flags.get_int("iterations"));
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      const auto r = nscc::bayes::run_parallel_logic_sampling(
          named.net, {}, queries, cfg, {});
      table.row()
          .cell(named.name)
          .cell(label)
          .cell(r.rollbacks)
          .cell(r.nodes_resampled)
          .cell(r.global_read_blocks)
          .cell(nscc::sim::to_seconds(r.global_read_block_time), 2)
          .cell(nscc::sim::to_seconds(r.full_run_time), 2);
    };
    run_one("sync", nscc::dsm::Mode::kSynchronous, 0);
    for (long age : {0L, 2L, 5L, 10L, 20L, 30L}) {
      run_one("age" + std::to_string(age), nscc::dsm::Mode::kPartialAsync, age);
    }
    run_one("async", nscc::dsm::Mode::kAsynchronous, 0);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
