// Ablation A1: sender-side update coalescing (the buffering freedom the
// paper attributes to asynchronous DSMs, Section 1/2).  A bursty writer
// updates one shared location faster than the congested bus can carry it;
// with coalescing, at most one update per reader is in flight and bursts
// merge into the newest value.  We report messages sent, updates merged,
// the staleness the reader observes, and the writer-side completion time,
// across bus loads.
#include <iostream>

#include "dsm/shared_space.hpp"
#include "fault/fault.hpp"
#include "net/load_generator.hpp"
#include "obs/obs.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct Outcome {
  std::uint64_t updates_sent = 0;
  std::uint64_t coalesced = 0;
  double reader_final_staleness = 0.0;
  double completion_s = 0.0;
};

Outcome run(bool coalesce, double load_mbps, int writes,
            const nscc::obs::Options& obs_options,
            const nscc::fault::FaultPlan& fault_plan,
            nscc::sim::Time read_timeout) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.obs = obs_options;
  cfg.fault = fault_plan;
  cfg.transport.enabled = !fault_plan.empty();
  nscc::rt::VirtualMachine vm(cfg);
  Outcome out;
  vm.add_task("writer", [&](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t, {.coalesce = coalesce});
    space.declare_written(1, {1});
    for (int i = 0; i < writes; ++i) {
      nscc::rt::Packet p;
      p.pack_double_vec(std::vector<double>(64, static_cast<double>(i)));
      space.write(1, i, std::move(p));
      t.compute(nscc::sim::kMillisecond / 2);  // Burstier than the wire.
    }
    t.compute(nscc::sim::kSecond);  // Let the bus drain.
    out.updates_sent = space.stats().updates_sent;
    out.coalesced = space.stats().updates_coalesced;
  });
  vm.add_task("reader", [&](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t, {.read_timeout = read_timeout});
    space.declare_read(1, 0);
    // Wait until the final value (or a fresher one) arrives.
    (void)space.global_read(1, writes - 1, 0);
    out.reader_final_staleness =
        static_cast<double>(writes - 1 - space.local_iteration(1));
  });
  nscc::net::LoadGenerator loader(vm.engine(), vm.bus(),
                                  {.offered_bps = load_mbps * 1e6,
                                   .frame_payload_bytes = 1024,
                                   .poisson = true,
                                   .seed = 5});
  out.completion_s = nscc::sim::to_seconds(vm.run());
  loader.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("writes", 400, "updates the writer produces")
      .add_bool("csv", false, "also emit CSV");
  nscc::obs::add_flags(flags);
  nscc::fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const int writes = static_cast<int>(flags.get_int("writes"));
  const nscc::fault::FaultPlan fault_plan = nscc::fault::plan_from_flags(flags);
  const nscc::sim::Time read_timeout =
      nscc::fault::read_timeout_from_flags(flags);
  // Each traced run overwrites the outputs; the surviving files describe
  // the last configuration (coalescing under the heaviest load).
  const nscc::obs::Options obs_options = nscc::obs::options_from_flags(flags);

  nscc::util::Table table("Ablation A1 - sender-side update coalescing");
  table.columns({"bus load", "policy", "updates sent", "merged",
                 "completion s"});
  for (double load : {0.0, 4.0, 8.0}) {
    for (bool coalesce : {false, true}) {
      const auto out =
          run(coalesce, load, writes, obs_options, fault_plan, read_timeout);
      table.row()
          .cell(nscc::util::format_double(load, 0) + " Mbps")
          .cell(coalesce ? "coalesce" : "immediate")
          .cell(out.updates_sent)
          .cell(out.coalesced)
          .cell(out.completion_s, 3);
    }
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
