// Extension experiment: the asynchronous iterative solver (the application
// class the paper's Section 1 opens with).  Sweeps the Global_Read age and
// the background load for a distributed Jacobi solve, exposing the paper's
// central tradeoff in its cleanest setting: larger ages admit staler
// operands (more sweeps to contract) but wait less and coalesce more.
#include <iostream>

#include "solver/jacobi.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("grid", 20, "Poisson grid side")
      .add_int("processors", 8, "simulated nodes")
      .add_double("tolerance", 1e-7, "residual tolerance")
      .add_int("seed", 5, "random seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  const auto sys = nscc::solver::make_poisson_2d(
      static_cast<int>(flags.get_int("grid")),
      static_cast<std::uint64_t>(flags.get_int("seed")));

  nscc::solver::JacobiConfig seq;
  seq.tolerance = flags.get_double("tolerance");
  const auto serial = nscc::solver::run_sequential_jacobi(sys, seq);

  nscc::util::Table table("Extension - parallel Jacobi, age x load sweep (P=" +
                          std::to_string(flags.get_int("processors")) + ")");
  table.columns({"load", "variant", "sweeps", "time s", "speedup",
                 "block time s", "converged"});

  for (double load_mbps : {0.0, 4.0}) {
    auto run = [&](const std::string& label, nscc::dsm::Mode mode, long age) {
      nscc::solver::ParallelJacobiConfig cfg;
      cfg.mode = mode;
      cfg.age = age;
      cfg.processors = static_cast<int>(flags.get_int("processors"));
      cfg.tolerance = flags.get_double("tolerance");
      cfg.check_interval = 25;
      cfg.propagation.coalesce = mode == nscc::dsm::Mode::kPartialAsync;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      const auto r =
          nscc::solver::run_parallel_jacobi(sys, cfg, {}, load_mbps * 1e6);
      table.row()
          .cell(nscc::util::format_double(load_mbps, 0) + " Mbps")
          .cell(label)
          .cell(static_cast<std::int64_t>(r.sweeps))
          .cell(nscc::sim::to_seconds(r.completion_time), 2)
          .cell(static_cast<double>(serial.completion_time) /
                    static_cast<double>(r.completion_time),
                2)
          .cell(nscc::sim::to_seconds(r.global_read_block_time), 2)
          .cell(r.converged ? "yes" : "NO");
    };
    run("sync", nscc::dsm::Mode::kSynchronous, 0);
    for (long age : {0L, 2L, 5L, 10L, 20L, 40L}) {
      run("age" + std::to_string(age), nscc::dsm::Mode::kPartialAsync, age);
    }
    run("async", nscc::dsm::Mode::kAsynchronous, 0);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
