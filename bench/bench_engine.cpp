// Engine microbench: raw discrete-event throughput of sim::Engine under a
// mixed event storm (fiber resumes, plain callbacks, watchdog arm/cancel),
// self-measured by obs::Profiler.  This is the number the bench regression
// gate watches for "the simulator itself got slower": events/sec of the run
// loop, peak queue depth, and per-run heap allocations, reported per
// repetition in nscc-bench-v3 JSON (--json-out).
//
// Wall-clock metrics are inherently noisy; compare them with a tolerance
// (nscc-bench-compare --tol=events_per_sec=R), never exactly.
#include <cstdint>
#include <iostream>
#include <string>

#include "harness/sweep.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct StormResult {
  nscc::obs::Profiler profiler;
  std::uint64_t events = 0;
};

/// One storm: P fiber processes spinning on delay(), a generic
/// self-rescheduling callback chain, and a watchdog armed+cancelled per
/// chain step — every EventKind the engine tags, in deterministic ratio.
StormResult run_storm(int procs, std::uint64_t target_events) {
  StormResult result;
  nscc::sim::Engine engine;
  engine.set_profiler(&result.profiler);

  // Fibers get ~2/3 of the budget, the callback chain the rest.
  const std::uint64_t per_proc =
      target_events * 2 / 3 / static_cast<std::uint64_t>(procs);
  for (int p = 0; p < procs; ++p) {
    engine.spawn("storm" + std::to_string(p),
                 [per_proc](nscc::sim::Process& self) {
                   for (std::uint64_t i = 0; i < per_proc; ++i) {
                     self.delay(1 * nscc::sim::kMicrosecond);
                   }
                 });
  }
  const std::uint64_t chain_steps = target_events / 3;
  // Chain step: one generic event that also arms and immediately cancels a
  // watchdog (the cancelled timer still occupies the queue — realistic
  // retransmit-timer churn).
  struct Chain {
    nscc::sim::Engine* engine;
    std::uint64_t remaining;
    void step() {
      if (remaining == 0) return;
      --remaining;
      const auto wd = engine->set_watchdog(
          engine->now() + 10 * nscc::sim::kMicrosecond, [] {});
      engine->cancel_watchdog(wd);
      engine->schedule(engine->now() + 1 * nscc::sim::kMicrosecond,
                       [this] { step(); });
    }
  };
  Chain chain{&engine, chain_steps};
  engine.schedule(0, [&chain] { chain.step(); });

  result.profiler.start_run(engine.events_executed());
  engine.run();
  result.profiler.finish_run(engine.events_executed());
  result.events = engine.events_executed();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("events", 200000, "approximate event budget per repetition")
      .add_int("procs", 8, "fiber processes in the storm")
      .add_int("reps", 3, "repetitions (wall-clock noise averaging)")
      .add_int("seed", 1, "recorded in the sweep key (the storm itself is "
                          "deterministic)");
  nscc::harness::Sweep sweep("engine_microbench");
  nscc::harness::Sweep::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  sweep.configure(flags);

  const int procs = static_cast<int>(flags.get_int("procs"));
  const auto target = static_cast<std::uint64_t>(flags.get_int("events"));
  const int reps = static_cast<int>(flags.get_int("reps"));

  nscc::util::Table table("Engine microbench: mixed event storm, procs=" +
                          std::to_string(procs));
  table.columns({"rep", "events", "events/sec", "wall ms", "peak queue",
                 "allocs", "alloc KiB"});

  for (int rep = 0; rep < reps; ++rep) {
    StormResult r = run_storm(procs, target);
    const nscc::obs::Profiler& prof = r.profiler;
    table.row()
        .cell(static_cast<std::uint64_t>(rep))
        .cell(prof.events())
        .cell(prof.events_per_sec(), 0)
        .cell(prof.wall_seconds() * 1e3, 2)
        .cell(prof.peak_queue_depth())
        .cell(prof.allocations())
        .cell(static_cast<double>(prof.alloc_bytes()) / 1024.0, 1);

    nscc::harness::SweepRecord rec;
    rec.workload = "engine.storm";
    rec.variant = "mixed";
    rec.age = 0;
    rec.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    rec.repeat = rep;
    rec.params = {{"procs", static_cast<double>(procs)},
                  {"events_target", static_cast<double>(target)}};
    rec.stats = {
        {"events_per_sec", prof.events_per_sec()},
        {"events", static_cast<double>(prof.events())},
        {"wall_s", prof.wall_seconds()},
        {"peak_queue_depth", static_cast<double>(prof.peak_queue_depth())},
        {"allocations", static_cast<double>(prof.allocations())},
        {"alloc_bytes", static_cast<double>(prof.alloc_bytes())},
        {"mean_dispatch_ns",
         prof.dispatch(nscc::obs::EventKind::kProcess).mean()},
    };
    sweep.add(std::move(rec));
  }
  table.print(std::cout);
  if (!sweep.write()) return 1;
  return 0;
}
