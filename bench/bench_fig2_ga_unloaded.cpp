// Regenerates Figure 2: speedups of the synchronous, fully asynchronous, and
// Global_Read (age 0/5/10/20/30) island-GA implementations over the cached
// serial GA, on the unloaded 10 Mbps shared Ethernet, for 2..16 processors.
// Prints the paper's three panels: the best case (function 1), the
// eight-function average (ratio of summed serial to summed parallel times),
// and the "best partially asynchronous over best competitor" bar.
//
// Defaults are reduced for a quick run; --paper-scale restores the paper's
// 1000-generation, 25-repetition protocol (expect a long run).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/ga_experiments.hpp"
#include "harness/sweep.hpp"
#include "sim/time.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

/// Map an exp:: variant name onto the harness (variant, age) pair:
/// "age10" -> ("partial", 10); "serial"/"sync"/"async" keep their names.
std::pair<std::string, long> split_variant(const std::string& name) {
  if (name.rfind("age", 0) == 0) return {"partial", std::stol(name.substr(3))};
  return {name, 0};
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("generations", 200, "sync/serial generation budget (paper: 1000)")
      .add_int("reps", 2, "repetitions (paper: 25)")
      .add_int("functions", 8, "use test functions 1..N")
      .add_string("procs", "2,4,8,16", "comma-separated processor counts")
      .add_int("seed", 1, "base seed")
      .add_bool("paper-scale", false, "paper protocol: 1000 gens, 25 reps")
      .add_bool("csv", false, "also emit CSV");
  nscc::harness::Sweep sweep("fig2_ga_unloaded");
  nscc::harness::Sweep::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  sweep.configure(flags);

  int generations = static_cast<int>(flags.get_int("generations"));
  int reps = static_cast<int>(flags.get_int("reps"));
  if (flags.get_bool("paper-scale")) {
    generations = 1000;
    reps = 25;
  }
  const int nfuncs = static_cast<int>(flags.get_int("functions"));

  std::vector<int> procs;
  {
    const std::string& s = flags.get_string("procs");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const auto comma = s.find(',', pos);
      procs.push_back(std::stoi(s.substr(pos, comma - pos)));
      pos = comma == std::string::npos ? s.size() : comma + 1;
    }
  }

  const std::vector<std::string> variant_names = {
      "sync", "async", "age0", "age5", "age10", "age20", "age30"};

  for (int P : procs) {
    std::vector<nscc::exp::GaCellResult> cells;
    for (int f = 1; f <= nfuncs; ++f) {
      nscc::exp::GaCellConfig cfg;
      cfg.function_id = f;
      cfg.processors = P;
      cfg.generations = generations;
      cfg.reps = reps;
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cells.push_back(nscc::exp::run_ga_cell(cfg));
      // Each variant's aggregated cell (means over reps -> repeat = -1).
      for (const auto& v : cells.back().variants) {
        const auto [variant, age] = split_variant(v.name);
        nscc::harness::SweepRecord rec;
        rec.workload = "ga.island";
        rec.variant = variant;
        rec.age = age;
        rec.seed = cfg.seed;
        rec.repeat = -1;
        rec.params = {{"processors", static_cast<double>(P)},
                      {"function", static_cast<double>(f)},
                      {"generations", static_cast<double>(generations)},
                      {"reps", static_cast<double>(reps)}};
        rec.stats = {{"speedup", v.speedup},
                     {"mean_time_s", v.mean_time_s},
                     {"final_best", v.final_best},
                     {"mean_generations", v.mean_generations},
                     {"quality_ok_fraction", v.quality_ok_fraction},
                     {"bus_utilization", v.bus_utilization},
                     {"mean_warp", v.mean_warp}};
        sweep.add(std::move(rec));
      }
    }
    const auto avg = nscc::exp::average_cells(cells);

    nscc::util::Table table("Figure 2 - GA speedups, unloaded network, P=" +
                            std::to_string(P));
    std::vector<std::string> cols = {"series"};
    for (const auto& n : variant_names) cols.push_back(n);
    cols.push_back("best/bestcomp");
    table.columns(cols);

    auto emit = [&](const std::string& label,
                    const std::vector<nscc::exp::GaVariantResult>& variants,
                    double white_bar) {
      table.row().cell(label);
      for (const auto& name : variant_names) {
        for (const auto& v : variants) {
          if (v.name == name) {
            table.cell(v.speedup, 2);
            break;
          }
        }
      }
      table.cell(white_bar, 2);
    };
    emit("f1 (best case)", cells.front().variants,
         cells.front().best_partial_over_best_competitor());
    // The paper's white bar for the average panel: best partial vs best
    // competitor computed on the averaged speedups.
    double best_partial = 0.0;
    double best_other = 0.0;
    for (const auto& v : avg) {
      if (v.name.rfind("age", 0) == 0) {
        best_partial = std::max(best_partial, v.speedup);
      } else if (v.name != "serial") {
        best_other = std::max(best_other, v.speedup);
      }
    }
    // Serial itself is a competitor with speedup 1 by definition.
    best_other = std::max(best_other, 1.0);
    emit("average (8 fns)", avg, best_partial / best_other);
    table.print(std::cout);

    nscc::util::Table diag("diagnostics (f1): generations to match sync "
                           "quality, bus utilization, warp");
    diag.columns({"variant", "gens", "quality ok", "bus util", "warp"});
    for (const auto& v : cells.front().variants) {
      if (v.name == "serial") continue;
      diag.row()
          .cell(v.name)
          .cell(v.mean_generations, 0)
          .cell(v.quality_ok_fraction, 2)
          .cell(v.bus_utilization, 2)
          .cell(v.mean_warp, 2);
    }
    diag.print(std::cout);
    std::cout << '\n';
    if (flags.get_bool("csv")) std::cout << table.to_csv() << '\n';
  }
  return sweep.write() ? 0 : 1;
}
