// Micro-benchmarks (google-benchmark) for the substrate primitives: event
// engine throughput, fiber context switches, packet serialisation, shared
// bus arbitration, DSM write/global_read fast paths, GA generation step,
// and belief-network sampling.  These quantify the *host* cost of the
// simulator (virtual time is free), i.e. how fast experiments run.
#include <benchmark/benchmark.h>

#include "bayes/generators.hpp"
#include "dsm/shared_space.hpp"
#include "ga/deme.hpp"
#include "net/shared_bus.hpp"
#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sim/engine.hpp"
#include "util/bitvec.hpp"

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    nscc::sim::Engine eng;
    long count = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule(i, [&count] { ++count; });
    }
    eng.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_FiberSwitch(benchmark::State& state) {
  nscc::sim::Engine eng;
  // One process ping-ponging with the engine via zero-delays.
  auto& proc = eng.spawn("spin", [](nscc::sim::Process& p) {
    for (;;) p.delay(1);
  });
  (void)proc;
  std::int64_t t = 0;
  for (auto _ : state) {
    eng.run(++t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitch);

void BM_PacketPackUnpack(benchmark::State& state) {
  std::vector<double> payload(64, 1.5);
  for (auto _ : state) {
    nscc::rt::Packet p;
    p.pack_i32(7);
    p.pack_i64(42);
    p.pack_double_vec(payload);
    benchmark::DoNotOptimize(p.unpack_i32());
    benchmark::DoNotOptimize(p.unpack_i64());
    benchmark::DoNotOptimize(p.unpack_double_vec());
  }
}
BENCHMARK(BM_PacketPackUnpack);

void BM_SharedBusTransmit(benchmark::State& state) {
  for (auto _ : state) {
    nscc::sim::Engine eng;
    nscc::net::SharedBus bus(eng, {});
    for (int i = 0; i < 256; ++i) {
      bus.transmit(512, [](nscc::sim::Time) {});
    }
    eng.run();
    benchmark::DoNotOptimize(bus.stats().frames_sent);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SharedBusTransmit);

void BM_DsmWriteGlobalRead(benchmark::State& state) {
  for (auto _ : state) {
    nscc::rt::MachineConfig cfg;
    cfg.ntasks = 2;
    cfg.send_sw_overhead = 0;
    cfg.recv_sw_overhead = 0;
    nscc::rt::VirtualMachine vm(cfg);
    vm.add_task("w", [](nscc::rt::Task& t) {
      nscc::dsm::SharedSpace space(t);
      space.declare_written(1, {1});
      for (int i = 0; i < 128; ++i) {
        nscc::rt::Packet p;
        p.pack_double(i);
        space.write(1, i, std::move(p));
        t.compute(nscc::sim::kMillisecond);
      }
    });
    vm.add_task("r", [](nscc::rt::Task& t) {
      nscc::dsm::SharedSpace space(t);
      space.declare_read(1, 0);
      for (int i = 0; i < 128; ++i) {
        benchmark::DoNotOptimize(space.global_read(1, i, 2).iteration);
      }
    });
    vm.run();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DsmWriteGlobalRead);

void BM_BitVecCrossoverMutate(benchmark::State& state) {
  nscc::util::Xoshiro256 rng(1);
  nscc::util::BitVec a(240);
  nscc::util::BitVec b(240);
  a.randomize(rng);
  b.randomize(rng);
  nscc::util::BitVec ca;
  nscc::util::BitVec cb;
  for (auto _ : state) {
    nscc::util::BitVec::crossover(a, b, 1 + rng.below(239), ca, cb);
    ca.flip(rng.below(240));
    benchmark::DoNotOptimize(ca.hash());
  }
}
BENCHMARK(BM_BitVecCrossoverMutate);

void BM_GaGenerationStep(benchmark::State& state) {
  const auto& fn = nscc::ga::test_function(static_cast<int>(state.range(0)));
  nscc::ga::Deme deme(fn, {}, nscc::util::Xoshiro256(3));
  deme.initialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(deme.step().evaluations);
  }
}
BENCHMARK(BM_GaGenerationStep)->Arg(1)->Arg(6);

void BM_BeliefNetworkSample(benchmark::State& state) {
  const auto net = nscc::bayes::make_network_a();
  const auto order = net.topological_order();
  nscc::util::Xoshiro256 rng(5);
  std::vector<int> assignment(static_cast<std::size_t>(net.size()), 0);
  for (auto _ : state) {
    for (auto id : order) {
      assignment[static_cast<std::size_t>(id)] =
          net.sample_node(id, assignment, rng);
    }
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.size()));
}
BENCHMARK(BM_BeliefNetworkSample);

}  // namespace

BENCHMARK_MAIN();
