// Extension experiment (paper Section 6 future work): neural-network
// training as a data-race tolerant application.  Bounded-staleness SGD over
// the shared space: workers pull parameters with Global_Read and push
// mini-batch gradients.  Run on the SP2 switch (the app's communication-to-
// computation ratio is exactly the "higher communication requirements" case
// Section 4.1 sends to the faster interconnect), with the Ethernet shown
// for contrast.  Compares time-to-quality and final quality per mode: the
// age sweep exposes a much sharper quality cliff than the GA's — SGD
// tolerates only small staleness.
#include <iostream>

#include "nn/train.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("steps", 600, "mini-batch steps per worker")
      .add_int("workers", 4, "worker nodes (plus one parameter server)")
      .add_int("per-class", 60, "spiral points per class")
      .add_int("seed", 7, "random seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  const auto data = nscc::nn::make_two_spirals(
      static_cast<int>(flags.get_int("per-class")), 0.02,
      static_cast<std::uint64_t>(flags.get_int("seed")));

  nscc::nn::TrainConfig cfg;
  cfg.steps = static_cast<int>(flags.get_int("steps"));
  cfg.workers = static_cast<int>(flags.get_int("workers"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto serial = nscc::nn::train_sequential(data, cfg);
  const double target = serial.final_loss * 1.15;
  std::cout << "serial baseline: loss "
            << nscc::util::format_double(serial.final_loss, 4) << ", accuracy "
            << nscc::util::format_double(serial.final_accuracy, 2) << ", "
            << nscc::util::format_double(
                   nscc::sim::to_seconds(serial.completion_time), 2)
            << " s virtual\n\n";

  for (auto [net_label, network] :
       {std::pair{"SP2 switch", nscc::rt::Network::kSp2Switch},
        {"10Mb Ethernet", nscc::rt::Network::kEthernet}}) {
    nscc::util::Table table(std::string("Bounded-staleness SGD on the ") +
                            net_label);
    table.columns({"variant", "final loss", "accuracy", "time s",
                   "time-to-quality s", "speedup", "staleness", "net util"});
    auto run = [&](const std::string& label, nscc::dsm::Mode mode, long age) {
      cfg.mode = mode;
      cfg.age = age;
      nscc::rt::MachineConfig machine;
      machine.network = network;
      const auto r = nscc::nn::train_parallel(data, cfg, machine);
      const auto ttq = r.time_to_loss(target);
      table.row()
          .cell(label)
          .cell(r.final_loss, 4)
          .cell(r.final_accuracy, 2)
          .cell(nscc::sim::to_seconds(r.completion_time), 2)
          .cell(ttq >= 0 ? nscc::util::format_double(
                               nscc::sim::to_seconds(ttq), 2)
                         : "never")
          .cell(ttq > 0 ? nscc::util::format_double(
                              static_cast<double>(serial.completion_time) /
                                  static_cast<double>(ttq),
                              2)
                        : "-")
          .cell(r.mean_staleness, 1)
          .cell(r.bus_utilization, 2);
    };
    run("sync", nscc::dsm::Mode::kSynchronous, 0);
    for (long age : {1L, 2L, 4L, 8L, 16L}) {
      run("age" + std::to_string(age), nscc::dsm::Mode::kPartialAsync, age);
    }
    run("async", nscc::dsm::Mode::kAsynchronous, 0);
    table.print(std::cout);
    std::cout << '\n';
    if (flags.get_bool("csv")) std::cout << table.to_csv() << '\n';
  }
  return 0;
}
