// Extension experiment (paper Section 6 future work): dynamic runtime
// setting of the tolerable staleness.  Fixed ages are each best at one
// operating point; the adaptive controller should track the best fixed age
// as the network load changes, without retuning.
#include <iostream>

#include "ga/island.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("function", 1, "GA test function")
      .add_int("processors", 8, "demes")
      .add_int("generations", 150, "generations per deme")
      .add_int("seed", 9, "base seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  nscc::util::Table table(
      "Extension - dynamic age setting vs fixed ages (island GA f" +
      std::to_string(flags.get_int("function")) + ", P=" +
      std::to_string(flags.get_int("processors")) + ")");
  table.columns({"load", "variant", "completion s", "block time s",
                 "final age", "adjustments", "final avg"});

  for (double load_mbps : {0.0, 2.0, 6.0}) {
    auto run = [&](const std::string& label, long age, bool adaptive) {
      nscc::ga::IslandConfig cfg;
      cfg.function_id = static_cast<int>(flags.get_int("function"));
      cfg.mode = nscc::dsm::Mode::kPartialAsync;
      cfg.age = age;
      cfg.adaptive_age = adaptive;
      cfg.ndemes = static_cast<int>(flags.get_int("processors"));
      cfg.generations = static_cast<int>(flags.get_int("generations"));
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cfg.propagation.coalesce = true;
      const auto r = nscc::ga::run_island_ga(cfg, {}, load_mbps * 1e6);
      table.row()
          .cell(nscc::util::format_double(load_mbps, 0) + " Mbps")
          .cell(label)
          .cell(nscc::sim::to_seconds(r.completion_time), 2)
          .cell(nscc::sim::to_seconds(r.global_read_block_time), 2)
          .cell(adaptive ? r.mean_final_age : static_cast<double>(age), 1)
          .cell(r.age_adjustments)
          .cell(r.final_average, 4);
    };
    for (long age : {0L, 5L, 10L, 20L, 30L}) {
      run("fixed age " + std::to_string(age), age, false);
    }
    run("adaptive", 0, true);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
