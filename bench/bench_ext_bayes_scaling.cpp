// Extension experiment (paper Section 6 future work): larger Bayesian
// networks.  The paper's 54-node networks "did not exhibit enough
// parallelism to be run on larger configurations"; here we scale the same
// random-network recipe to a few hundred nodes and run 2- and 4-way
// partitions, showing (a) parallel inference finally beating the
// uniprocessor, and (b) the Global_Read variants extending their lead as
// the per-iteration computation grows relative to communication.
#include <iostream>

#include "bayes/generators.hpp"
#include "bayes/logic_sampling.hpp"
#include "bayes/parallel_sampling.hpp"
#include "bayes/partitioner.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("seed", 21, "random seed")
      .add_int("queries", 3, "query nodes per network")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  nscc::util::Table table(
      "Extension - larger belief networks (paper future work)");
  table.columns({"network", "nodes", "P", "edge-cut", "serial s", "sync",
                 "async", "age10", "age30", "best partial/best comp"});

  for (auto [label, nodes, epn] :
       {std::tuple{"L200", 200, 2.0}, {"L400", 400, 1.8}}) {
    nscc::bayes::RandomNetworkConfig nc;
    nc.nodes = nodes;
    nc.edges = static_cast<int>(nodes * epn);
    nc.skew = 0.55;
    nc.seed = seed ^ static_cast<std::uint64_t>(nodes);
    const auto net = nscc::bayes::make_random_network(nc);
    const auto queries = nscc::bayes::default_queries(
        net, static_cast<int>(flags.get_int("queries")), seed);

    nscc::bayes::InferenceConfig serial_cfg;
    serial_cfg.seed = seed;
    const auto serial =
        nscc::bayes::run_logic_sampling(net, {}, queries, serial_cfg);

    for (int P : {2, 4}) {
      nscc::bayes::ParallelInferenceConfig pc;
      pc.parts = P;
      pc.seed = seed;
      pc.iterations = serial.samples_drawn * 13 / 10;

      double speedups[4] = {0, 0, 0, 0};
      int cut = 0;
      int i = 0;
      for (auto [mode, age] :
           {std::pair{nscc::dsm::Mode::kSynchronous, 0L},
            {nscc::dsm::Mode::kAsynchronous, 0L},
            {nscc::dsm::Mode::kPartialAsync, 10L},
            {nscc::dsm::Mode::kPartialAsync, 30L}}) {
        pc.mode = mode;
        pc.age = age;
        const auto r = nscc::bayes::run_parallel_logic_sampling(net, {},
                                                                queries, pc, {});
        speedups[i++] = static_cast<double>(serial.completion_time) /
                        static_cast<double>(r.completion_time);
        cut = r.edge_cut;
      }
      const double best_partial = std::max(speedups[2], speedups[3]);
      const double best_comp = std::max({1.0, speedups[0], speedups[1]});
      table.row()
          .cell(label)
          .cell(static_cast<std::int64_t>(nodes))
          .cell(static_cast<std::int64_t>(P))
          .cell(static_cast<std::int64_t>(cut))
          .cell(nscc::sim::to_seconds(serial.completion_time), 1)
          .cell(speedups[0], 2)
          .cell(speedups[1], 2)
          .cell(speedups[2], 2)
          .cell(speedups[3], 2)
          .cell(best_partial / best_comp, 2);
    }
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
