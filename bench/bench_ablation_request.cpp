// Ablation A4 (paper Section 2): the two Global_Read implementations.
// The requesting implementation actively demands a fresh-enough copy when a
// read blocks (also a "reader is starved" scheduling hint); the simple
// implementation just waits for the writer's next propagation.  The paper
// chose waiting because it "will generate fewer messages, and is more
// efficiently implemented" — this harness quantifies that on a
// producer/consumer pair and on the island GA.
#include <iostream>

#include "dsm/shared_space.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct Outcome {
  std::uint64_t messages = 0;
  std::uint64_t requests = 0;
  std::uint64_t hints = 0;
  std::uint64_t replies = 0;
  double block_s = 0.0;
  double completion_s = 0.0;
};

/// Fast consumer reading a slow producer with age 2 (chronically starved).
Outcome run_pair(nscc::dsm::GlobalReadImpl impl, int iterations,
                 const nscc::obs::Options& obs_options,
                 const nscc::fault::FaultPlan& fault_plan,
                 nscc::sim::Time read_timeout) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.obs = obs_options;
  cfg.fault = fault_plan;
  cfg.transport.enabled = !fault_plan.empty();
  nscc::rt::VirtualMachine vm(cfg);
  Outcome out;
  vm.add_task("producer", [&](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_written(1, {1});
    for (int i = 0; i < iterations; ++i) {
      t.compute(8 * nscc::sim::kMillisecond);
      nscc::rt::Packet p;
      p.pack_double(i);
      space.write(1, i, std::move(p));
    }
    out.hints = space.stats().hints_received;
    out.replies = space.stats().request_replies;
  });
  vm.add_task("consumer", [&](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t, {.coalesce = false,
                                     .read_impl = impl,
                                     .read_timeout = read_timeout});
    space.declare_read(1, 0);
    for (int i = 0; i < iterations; ++i) {
      (void)space.global_read(1, i, 2);
      t.compute(nscc::sim::kMillisecond);
    }
    out.requests = space.stats().requests_sent;
    out.block_s = nscc::sim::to_seconds(space.stats().global_read_block_time);
  });
  out.completion_s = nscc::sim::to_seconds(vm.run());
  out.messages = vm.task(0).stats().messages_sent +
                 vm.task(1).stats().messages_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("iterations", 400, "producer iterations")
      .add_bool("csv", false, "also emit CSV");
  nscc::obs::add_flags(flags);
  nscc::fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const int iters = static_cast<int>(flags.get_int("iterations"));
  // The requesting run is traced last and wins the output files.
  const nscc::obs::Options obs_options = nscc::obs::options_from_flags(flags);
  const nscc::fault::FaultPlan fault_plan = nscc::fault::plan_from_flags(flags);
  const nscc::sim::Time read_timeout =
      nscc::fault::read_timeout_from_flags(flags);

  nscc::util::Table table(
      "Ablation A4 - waiting vs requesting Global_Read implementations");
  table.columns({"impl", "messages", "requests", "hints seen", "demand replies",
                 "block s", "completion s"});
  for (auto [label, impl] :
       {std::pair{"wait", nscc::dsm::GlobalReadImpl::kWait},
        {"request", nscc::dsm::GlobalReadImpl::kRequest}}) {
    const auto out =
        run_pair(impl, iters, obs_options, fault_plan, read_timeout);
    table.row()
        .cell(label)
        .cell(out.messages)
        .cell(out.requests)
        .cell(out.hints)
        .cell(out.replies)
        .cell(out.block_s, 2)
        .cell(out.completion_s, 2);
  }
  table.print(std::cout);
  std::cout << "\nThe waiting implementation carries the same data in fewer\n"
               "messages (the paper's §2 design rationale); the requesting\n"
               "one buys the writer a starvation hint per blocked read.\n";
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
