// Extension: the consistency-model matrix (model x age x network).
//
// The paper picks one point in the consistency design space — per-read
// bounded staleness (non-strict coherence) — and shows it beats lockstep
// synchronisation on emerging applications.  With the model layer pluggable
// (dsm::ConsistencyModel), that design point becomes one row of a matrix:
// this bench runs the distributed Jacobi solver (the application class the
// paper's Section 1 opens with, and the workload whose operand freshness
// the models most visibly reshape) under every registered model, across
// sync and two staleness budgets, on both interconnects, and reports what
// each model's semantics cost at the read gate and in solution quality.
//
// The expected shape:
//
//   * nonstrict is the reference: bounded-staleness variants beat sync on
//     the shared medium (the paper's central claim) at a small residual
//     cost per extra sweep.
//   * regional admits a read only when EVERY operand block the task reads
//     satisfies the bound, so its blocking is at least nonstrict's; the
//     sync column (age 0 degenerates to the per-read rule) is identical.
//   * release-acquire matches nonstrict's admission but defers visibility
//     to acquire points; a blocked Global_Read is itself an acquire, so
//     completion stays close while the message/residual trajectory shifts
//     slightly (values publish in acquire-batches, not on arrival).
//   * eventual never blocks past first validity: gr blocks collapse to ~0
//     and the solver free-runs on stale operands — more sweeps, later
//     convergence, the failure mode the paper's bounded modes avoid.
//
// Each cell lands in the nscc-bench-v5 JSON (--json-out) tagged with its
// model, so nscc-bench-compare gates the default-model cells against the
// checked-in baselines while the non-default rows grow their own history.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dsm/consistency.hpp"
#include "harness/sweep.hpp"
#include "solver/jacobi.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct Cell {
  double completion_s = 0.0;
  double residual = 0.0;
  std::int64_t sweeps = 0;
  bool converged = false;
  std::uint64_t messages = 0;
  std::uint64_t gr_blocks = 0;
  double block_time_s = 0.0;
  std::uint64_t updates_parked = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t ooo_updates = 0;
  bool deadlocked = false;
};

Cell run(const nscc::solver::LinearSystem& sys, const std::string& model,
         long age, nscc::rt::Network network, int processors,
         double tolerance, std::uint64_t seed) {
  nscc::solver::ParallelJacobiConfig cfg;
  cfg.mode = age == 0 ? nscc::dsm::Mode::kSynchronous
                      : nscc::dsm::Mode::kPartialAsync;
  cfg.age = age;
  cfg.processors = processors;
  cfg.tolerance = tolerance;
  cfg.check_interval = 25;
  cfg.seed = seed;
  // The harness's mode-derived wiring; a model's shape() may override.
  cfg.propagation.coalesce = cfg.mode == nscc::dsm::Mode::kPartialAsync;
  cfg.propagation.consistency = model;

  nscc::rt::MachineConfig machine;
  machine.network = network;

  const auto r = nscc::solver::run_parallel_jacobi(sys, cfg, machine);
  Cell cell;
  cell.completion_s = nscc::sim::to_seconds(r.completion_time);
  cell.residual = r.residual;
  cell.sweeps = r.sweeps;
  cell.converged = r.converged;
  cell.messages = r.messages_sent;
  cell.gr_blocks = r.global_read_blocks;
  cell.block_time_s = nscc::sim::to_seconds(r.global_read_block_time);
  cell.updates_parked = r.updates_parked;
  cell.updates_flushed = r.updates_flushed;
  cell.ooo_updates = r.ooo_updates;
  cell.deadlocked = r.deadlocked;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("grid", 16, "Poisson grid side")
      .add_int("processors", 8, "simulated nodes")
      .add_double("tolerance", 1e-7, "residual tolerance")
      .add_int("seed", 5, "random seed")
      .add_bool("csv", false, "also emit CSV");
  nscc::harness::Sweep sweep("ext_consistency");
  nscc::harness::Sweep::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  sweep.configure(flags);
  const int processors = static_cast<int>(flags.get_int("processors"));
  const double tolerance = flags.get_double("tolerance");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto sys = nscc::solver::make_poisson_2d(
      static_cast<int>(flags.get_int("grid")), seed);

  const auto models = nscc::dsm::ConsistencyRegistry::instance().names();
  const std::vector<long> ages = {0, 5, 20};
  const std::vector<std::pair<std::string, nscc::rt::Network>> networks = {
      {"ethernet", nscc::rt::Network::kEthernet},
      {"sp2", nscc::rt::Network::kSp2Switch}};

  nscc::util::Table table(
      "Extension - consistency-model matrix (Jacobi, model x age x network, "
      "P=" + std::to_string(processors) + ")");
  table.columns({"network", "model", "variant", "completion s", "residual",
                 "sweeps", "converged", "messages", "gr blocks",
                 "block time s", "parked", "flushed", "ooo"});
  for (const auto& [net_name, network] : networks) {
    for (const auto& model : models) {
      for (long age : ages) {
        const Cell cell =
            run(sys, model, age, network, processors, tolerance, seed);
        const std::string label =
            age == 0 ? "sync" : "age" + std::to_string(age);
        char residual[32];
        std::snprintf(residual, sizeof residual, "%.3e", cell.residual);
        table.row()
            .cell(net_name)
            .cell(model)
            .cell(label + (cell.deadlocked ? " (DEADLOCK)" : ""))
            .cell(cell.completion_s, 2)
            .cell(residual)
            .cell(cell.sweeps)
            .cell(cell.converged ? "yes" : "NO")
            .cell(cell.messages)
            .cell(cell.gr_blocks)
            .cell(cell.block_time_s, 2)
            .cell(cell.updates_parked)
            .cell(cell.updates_flushed)
            .cell(cell.ooo_updates);
        nscc::harness::SweepRecord rec;
        rec.workload = "solver.jacobi";
        rec.variant = age == 0 ? "sync" : "partial";
        rec.consistency = model;
        rec.age = age;
        rec.seed = seed;
        rec.repeat = 0;
        rec.params = {{"grid",
                       static_cast<double>(flags.get_int("grid"))},
                      {"processors", static_cast<double>(processors)},
                      {"sp2", network == nscc::rt::Network::kSp2Switch
                                  ? 1.0
                                  : 0.0}};
        rec.stats = {
            {"completion_s", cell.completion_s},
            {"residual", cell.residual},
            {"sweeps", static_cast<double>(cell.sweeps)},
            {"converged", cell.converged ? 1.0 : 0.0},
            {"messages", static_cast<double>(cell.messages)},
            {"gr_blocks", static_cast<double>(cell.gr_blocks)},
            {"block_time_s", cell.block_time_s},
            {"updates_parked", static_cast<double>(cell.updates_parked)},
            {"updates_flushed", static_cast<double>(cell.updates_flushed)},
            {"ooo_updates", static_cast<double>(cell.ooo_updates)},
            {"deadlocked", cell.deadlocked ? 1.0 : 0.0}};
        sweep.add(std::move(rec));
      }
    }
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  if (!sweep.write()) return 1;
  return 0;
}
