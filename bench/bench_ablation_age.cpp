// Ablation A2: fine-grained age sweep for the island GA (the paper varies
// age over {0,5,10,20,30}; here we sweep more densely and also report the
// mechanism metrics: Global_Read blocks, block time, staleness actually
// observed, and the generations needed to match the synchronous program's
// final average fitness).
#include <iostream>

#include "exp/ga_experiments.hpp"
#include "ga/island.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  nscc::util::Flags flags;
  flags.add_int("function", 6, "test function id (multimodal default)")
      .add_int("processors", 8, "number of demes")
      .add_int("generations", 200, "generation budget")
      .add_int("seed", 1, "base seed")
      .add_bool("csv", false, "also emit CSV");
  if (!flags.parse(argc, argv)) return 1;

  nscc::ga::IslandConfig base;
  base.function_id = static_cast<int>(flags.get_int("function"));
  base.ndemes = static_cast<int>(flags.get_int("processors"));
  base.generations = static_cast<int>(flags.get_int("generations"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.compute.node_speed_spread = 0.25;  // Pronounced skew for the sweep.

  nscc::util::Table table("Ablation A2 - Global_Read age sweep, island GA f" +
                          std::to_string(base.function_id) + " P=" +
                          std::to_string(base.ndemes));
  table.columns({"age", "completion s", "blocks", "block time s",
                 "mean staleness", "final avg", "final best"});

  for (long age : {0L, 1L, 2L, 5L, 8L, 10L, 15L, 20L, 30L, 50L}) {
    auto cfg = base;
    cfg.mode = nscc::dsm::Mode::kPartialAsync;
    cfg.age = age;
    const auto r = nscc::ga::run_island_ga(cfg, {});
    table.row()
        .cell(static_cast<std::int64_t>(age))
        .cell(nscc::sim::to_seconds(r.completion_time), 2)
        .cell(r.global_read_blocks)
        .cell(nscc::sim::to_seconds(r.global_read_block_time), 2)
        .cell(r.mean_staleness, 2)
        .cell(r.final_average, 4)
        .cell(r.best_fitness, 4);
  }
  {
    auto cfg = base;
    cfg.mode = nscc::dsm::Mode::kAsynchronous;
    const auto r = nscc::ga::run_island_ga(cfg, {});
    table.row()
        .cell("async")
        .cell(nscc::sim::to_seconds(r.completion_time), 2)
        .cell(r.global_read_blocks)
        .cell(0.0, 2)
        .cell(r.mean_staleness, 2)
        .cell(r.final_average, 4)
        .cell(r.best_fitness, 4);
  }
  table.print(std::cout);
  if (flags.get_bool("csv")) std::cout << '\n' << table.to_csv();
  return 0;
}
