file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_neural.dir/bench_ext_neural.cpp.o"
  "CMakeFiles/bench_ext_neural.dir/bench_ext_neural.cpp.o.d"
  "bench_ext_neural"
  "bench_ext_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
