# Empty dependencies file for bench_ext_neural.
# This may be replaced when dependencies are built.
