# Empty compiler generated dependencies file for bench_ablation_request.
# This may be replaced when dependencies are built.
