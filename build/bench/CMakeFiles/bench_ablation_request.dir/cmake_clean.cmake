file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_request.dir/bench_ablation_request.cpp.o"
  "CMakeFiles/bench_ablation_request.dir/bench_ablation_request.cpp.o.d"
  "bench_ablation_request"
  "bench_ablation_request.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_request.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
