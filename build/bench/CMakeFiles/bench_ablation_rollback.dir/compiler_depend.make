# Empty compiler generated dependencies file for bench_ablation_rollback.
# This may be replaced when dependencies are built.
