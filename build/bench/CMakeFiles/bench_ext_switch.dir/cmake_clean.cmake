file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_switch.dir/bench_ext_switch.cpp.o"
  "CMakeFiles/bench_ext_switch.dir/bench_ext_switch.cpp.o.d"
  "bench_ext_switch"
  "bench_ext_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
