# Empty dependencies file for bench_ext_switch.
# This may be replaced when dependencies are built.
