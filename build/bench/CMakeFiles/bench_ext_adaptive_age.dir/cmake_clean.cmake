file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_age.dir/bench_ext_adaptive_age.cpp.o"
  "CMakeFiles/bench_ext_adaptive_age.dir/bench_ext_adaptive_age.cpp.o.d"
  "bench_ext_adaptive_age"
  "bench_ext_adaptive_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
