file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bayes.dir/bench_fig3_bayes.cpp.o"
  "CMakeFiles/bench_fig3_bayes.dir/bench_fig3_bayes.cpp.o.d"
  "bench_fig3_bayes"
  "bench_fig3_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
