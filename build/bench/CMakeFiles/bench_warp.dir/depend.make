# Empty dependencies file for bench_warp.
# This may be replaced when dependencies are built.
