file(REMOVE_RECURSE
  "CMakeFiles/bench_warp.dir/bench_warp.cpp.o"
  "CMakeFiles/bench_warp.dir/bench_warp.cpp.o.d"
  "bench_warp"
  "bench_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
