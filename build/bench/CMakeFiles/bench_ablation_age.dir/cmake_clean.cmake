file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_age.dir/bench_ablation_age.cpp.o"
  "CMakeFiles/bench_ablation_age.dir/bench_ablation_age.cpp.o.d"
  "bench_ablation_age"
  "bench_ablation_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
