# Empty compiler generated dependencies file for bench_ablation_age.
# This may be replaced when dependencies are built.
