file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ga_loaded.dir/bench_fig4_ga_loaded.cpp.o"
  "CMakeFiles/bench_fig4_ga_loaded.dir/bench_fig4_ga_loaded.cpp.o.d"
  "bench_fig4_ga_loaded"
  "bench_fig4_ga_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ga_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
