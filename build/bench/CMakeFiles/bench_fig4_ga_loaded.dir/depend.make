# Empty dependencies file for bench_fig4_ga_loaded.
# This may be replaced when dependencies are built.
