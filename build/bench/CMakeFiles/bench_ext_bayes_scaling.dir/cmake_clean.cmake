file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bayes_scaling.dir/bench_ext_bayes_scaling.cpp.o"
  "CMakeFiles/bench_ext_bayes_scaling.dir/bench_ext_bayes_scaling.cpp.o.d"
  "bench_ext_bayes_scaling"
  "bench_ext_bayes_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bayes_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
