file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_solver.dir/bench_ext_solver.cpp.o"
  "CMakeFiles/bench_ext_solver.dir/bench_ext_solver.cpp.o.d"
  "bench_ext_solver"
  "bench_ext_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
