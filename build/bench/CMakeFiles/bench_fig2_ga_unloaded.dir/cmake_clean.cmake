file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ga_unloaded.dir/bench_fig2_ga_unloaded.cpp.o"
  "CMakeFiles/bench_fig2_ga_unloaded.dir/bench_fig2_ga_unloaded.cpp.o.d"
  "bench_fig2_ga_unloaded"
  "bench_fig2_ga_unloaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ga_unloaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
