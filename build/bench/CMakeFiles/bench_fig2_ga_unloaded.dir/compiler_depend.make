# Empty compiler generated dependencies file for bench_fig2_ga_unloaded.
# This may be replaced when dependencies are built.
