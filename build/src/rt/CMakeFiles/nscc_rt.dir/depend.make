# Empty dependencies file for nscc_rt.
# This may be replaced when dependencies are built.
