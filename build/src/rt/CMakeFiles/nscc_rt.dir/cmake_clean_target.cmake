file(REMOVE_RECURSE
  "libnscc_rt.a"
)
