file(REMOVE_RECURSE
  "CMakeFiles/nscc_rt.dir/vm.cpp.o"
  "CMakeFiles/nscc_rt.dir/vm.cpp.o.d"
  "libnscc_rt.a"
  "libnscc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
