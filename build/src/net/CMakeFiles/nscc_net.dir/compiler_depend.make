# Empty compiler generated dependencies file for nscc_net.
# This may be replaced when dependencies are built.
