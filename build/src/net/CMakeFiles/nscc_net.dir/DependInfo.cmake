
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/load_generator.cpp" "src/net/CMakeFiles/nscc_net.dir/load_generator.cpp.o" "gcc" "src/net/CMakeFiles/nscc_net.dir/load_generator.cpp.o.d"
  "/root/repo/src/net/shared_bus.cpp" "src/net/CMakeFiles/nscc_net.dir/shared_bus.cpp.o" "gcc" "src/net/CMakeFiles/nscc_net.dir/shared_bus.cpp.o.d"
  "/root/repo/src/net/switch_fabric.cpp" "src/net/CMakeFiles/nscc_net.dir/switch_fabric.cpp.o" "gcc" "src/net/CMakeFiles/nscc_net.dir/switch_fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nscc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nscc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
