file(REMOVE_RECURSE
  "libnscc_net.a"
)
