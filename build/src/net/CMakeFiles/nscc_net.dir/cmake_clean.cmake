file(REMOVE_RECURSE
  "CMakeFiles/nscc_net.dir/load_generator.cpp.o"
  "CMakeFiles/nscc_net.dir/load_generator.cpp.o.d"
  "CMakeFiles/nscc_net.dir/shared_bus.cpp.o"
  "CMakeFiles/nscc_net.dir/shared_bus.cpp.o.d"
  "CMakeFiles/nscc_net.dir/switch_fabric.cpp.o"
  "CMakeFiles/nscc_net.dir/switch_fabric.cpp.o.d"
  "libnscc_net.a"
  "libnscc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
