file(REMOVE_RECURSE
  "CMakeFiles/nscc_solver.dir/jacobi.cpp.o"
  "CMakeFiles/nscc_solver.dir/jacobi.cpp.o.d"
  "CMakeFiles/nscc_solver.dir/linear_system.cpp.o"
  "CMakeFiles/nscc_solver.dir/linear_system.cpp.o.d"
  "libnscc_solver.a"
  "libnscc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
