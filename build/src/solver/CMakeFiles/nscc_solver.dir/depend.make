# Empty dependencies file for nscc_solver.
# This may be replaced when dependencies are built.
