file(REMOVE_RECURSE
  "libnscc_solver.a"
)
