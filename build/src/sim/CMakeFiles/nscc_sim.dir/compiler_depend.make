# Empty compiler generated dependencies file for nscc_sim.
# This may be replaced when dependencies are built.
