file(REMOVE_RECURSE
  "CMakeFiles/nscc_sim.dir/engine.cpp.o"
  "CMakeFiles/nscc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nscc_sim.dir/fiber.cpp.o"
  "CMakeFiles/nscc_sim.dir/fiber.cpp.o.d"
  "libnscc_sim.a"
  "libnscc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
