file(REMOVE_RECURSE
  "libnscc_sim.a"
)
