file(REMOVE_RECURSE
  "libnscc_nn.a"
)
