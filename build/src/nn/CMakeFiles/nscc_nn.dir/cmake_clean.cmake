file(REMOVE_RECURSE
  "CMakeFiles/nscc_nn.dir/mlp.cpp.o"
  "CMakeFiles/nscc_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/nscc_nn.dir/train.cpp.o"
  "CMakeFiles/nscc_nn.dir/train.cpp.o.d"
  "libnscc_nn.a"
  "libnscc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
