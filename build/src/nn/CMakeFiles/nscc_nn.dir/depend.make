# Empty dependencies file for nscc_nn.
# This may be replaced when dependencies are built.
