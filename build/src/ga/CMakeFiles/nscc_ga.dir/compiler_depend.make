# Empty compiler generated dependencies file for nscc_ga.
# This may be replaced when dependencies are built.
