file(REMOVE_RECURSE
  "libnscc_ga.a"
)
