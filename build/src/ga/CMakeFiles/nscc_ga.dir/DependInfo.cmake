
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/deme.cpp" "src/ga/CMakeFiles/nscc_ga.dir/deme.cpp.o" "gcc" "src/ga/CMakeFiles/nscc_ga.dir/deme.cpp.o.d"
  "/root/repo/src/ga/functions.cpp" "src/ga/CMakeFiles/nscc_ga.dir/functions.cpp.o" "gcc" "src/ga/CMakeFiles/nscc_ga.dir/functions.cpp.o.d"
  "/root/repo/src/ga/island.cpp" "src/ga/CMakeFiles/nscc_ga.dir/island.cpp.o" "gcc" "src/ga/CMakeFiles/nscc_ga.dir/island.cpp.o.d"
  "/root/repo/src/ga/sequential.cpp" "src/ga/CMakeFiles/nscc_ga.dir/sequential.cpp.o" "gcc" "src/ga/CMakeFiles/nscc_ga.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/nscc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/nscc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nscc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nscc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nscc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/warp/CMakeFiles/nscc_warp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
