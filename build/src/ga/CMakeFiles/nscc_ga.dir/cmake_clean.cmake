file(REMOVE_RECURSE
  "CMakeFiles/nscc_ga.dir/deme.cpp.o"
  "CMakeFiles/nscc_ga.dir/deme.cpp.o.d"
  "CMakeFiles/nscc_ga.dir/functions.cpp.o"
  "CMakeFiles/nscc_ga.dir/functions.cpp.o.d"
  "CMakeFiles/nscc_ga.dir/island.cpp.o"
  "CMakeFiles/nscc_ga.dir/island.cpp.o.d"
  "CMakeFiles/nscc_ga.dir/sequential.cpp.o"
  "CMakeFiles/nscc_ga.dir/sequential.cpp.o.d"
  "libnscc_ga.a"
  "libnscc_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
