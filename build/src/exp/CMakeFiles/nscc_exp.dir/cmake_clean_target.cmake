file(REMOVE_RECURSE
  "libnscc_exp.a"
)
