file(REMOVE_RECURSE
  "CMakeFiles/nscc_exp.dir/bayes_experiments.cpp.o"
  "CMakeFiles/nscc_exp.dir/bayes_experiments.cpp.o.d"
  "CMakeFiles/nscc_exp.dir/ga_experiments.cpp.o"
  "CMakeFiles/nscc_exp.dir/ga_experiments.cpp.o.d"
  "libnscc_exp.a"
  "libnscc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
