# Empty compiler generated dependencies file for nscc_exp.
# This may be replaced when dependencies are built.
