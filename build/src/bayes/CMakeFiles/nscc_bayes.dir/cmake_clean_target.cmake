file(REMOVE_RECURSE
  "libnscc_bayes.a"
)
