file(REMOVE_RECURSE
  "CMakeFiles/nscc_bayes.dir/generators.cpp.o"
  "CMakeFiles/nscc_bayes.dir/generators.cpp.o.d"
  "CMakeFiles/nscc_bayes.dir/logic_sampling.cpp.o"
  "CMakeFiles/nscc_bayes.dir/logic_sampling.cpp.o.d"
  "CMakeFiles/nscc_bayes.dir/network.cpp.o"
  "CMakeFiles/nscc_bayes.dir/network.cpp.o.d"
  "CMakeFiles/nscc_bayes.dir/parallel_sampling.cpp.o"
  "CMakeFiles/nscc_bayes.dir/parallel_sampling.cpp.o.d"
  "CMakeFiles/nscc_bayes.dir/partitioner.cpp.o"
  "CMakeFiles/nscc_bayes.dir/partitioner.cpp.o.d"
  "libnscc_bayes.a"
  "libnscc_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
