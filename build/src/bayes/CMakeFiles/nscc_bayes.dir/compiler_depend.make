# Empty compiler generated dependencies file for nscc_bayes.
# This may be replaced when dependencies are built.
