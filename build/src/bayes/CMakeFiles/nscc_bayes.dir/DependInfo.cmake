
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayes/generators.cpp" "src/bayes/CMakeFiles/nscc_bayes.dir/generators.cpp.o" "gcc" "src/bayes/CMakeFiles/nscc_bayes.dir/generators.cpp.o.d"
  "/root/repo/src/bayes/logic_sampling.cpp" "src/bayes/CMakeFiles/nscc_bayes.dir/logic_sampling.cpp.o" "gcc" "src/bayes/CMakeFiles/nscc_bayes.dir/logic_sampling.cpp.o.d"
  "/root/repo/src/bayes/network.cpp" "src/bayes/CMakeFiles/nscc_bayes.dir/network.cpp.o" "gcc" "src/bayes/CMakeFiles/nscc_bayes.dir/network.cpp.o.d"
  "/root/repo/src/bayes/parallel_sampling.cpp" "src/bayes/CMakeFiles/nscc_bayes.dir/parallel_sampling.cpp.o" "gcc" "src/bayes/CMakeFiles/nscc_bayes.dir/parallel_sampling.cpp.o.d"
  "/root/repo/src/bayes/partitioner.cpp" "src/bayes/CMakeFiles/nscc_bayes.dir/partitioner.cpp.o" "gcc" "src/bayes/CMakeFiles/nscc_bayes.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/nscc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/nscc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nscc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nscc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nscc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/warp/CMakeFiles/nscc_warp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
