# Empty compiler generated dependencies file for nscc_dsm.
# This may be replaced when dependencies are built.
