file(REMOVE_RECURSE
  "libnscc_dsm.a"
)
