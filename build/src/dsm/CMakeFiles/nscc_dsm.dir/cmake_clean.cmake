file(REMOVE_RECURSE
  "CMakeFiles/nscc_dsm.dir/shared_space.cpp.o"
  "CMakeFiles/nscc_dsm.dir/shared_space.cpp.o.d"
  "libnscc_dsm.a"
  "libnscc_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
