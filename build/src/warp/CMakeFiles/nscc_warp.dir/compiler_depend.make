# Empty compiler generated dependencies file for nscc_warp.
# This may be replaced when dependencies are built.
