file(REMOVE_RECURSE
  "CMakeFiles/nscc_warp.dir/warp_meter.cpp.o"
  "CMakeFiles/nscc_warp.dir/warp_meter.cpp.o.d"
  "libnscc_warp.a"
  "libnscc_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
