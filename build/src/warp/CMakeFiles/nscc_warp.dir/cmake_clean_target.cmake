file(REMOVE_RECURSE
  "libnscc_warp.a"
)
