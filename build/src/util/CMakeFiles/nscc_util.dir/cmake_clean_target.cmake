file(REMOVE_RECURSE
  "libnscc_util.a"
)
