file(REMOVE_RECURSE
  "CMakeFiles/nscc_util.dir/flags.cpp.o"
  "CMakeFiles/nscc_util.dir/flags.cpp.o.d"
  "CMakeFiles/nscc_util.dir/stats.cpp.o"
  "CMakeFiles/nscc_util.dir/stats.cpp.o.d"
  "CMakeFiles/nscc_util.dir/table.cpp.o"
  "CMakeFiles/nscc_util.dir/table.cpp.o.d"
  "libnscc_util.a"
  "libnscc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nscc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
