# Empty compiler generated dependencies file for nscc_util.
# This may be replaced when dependencies are built.
