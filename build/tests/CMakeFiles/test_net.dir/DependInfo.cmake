
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/test_net.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/test_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/nscc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nscc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/nscc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/nscc_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/nscc_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/nscc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/nscc_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nscc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/warp/CMakeFiles/nscc_warp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nscc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nscc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
