# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_bayes[1]_include.cmake")
include("/root/repo/build/tests/test_warp[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_switch[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
