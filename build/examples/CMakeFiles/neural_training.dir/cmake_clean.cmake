file(REMOVE_RECURSE
  "CMakeFiles/neural_training.dir/neural_training.cpp.o"
  "CMakeFiles/neural_training.dir/neural_training.cpp.o.d"
  "neural_training"
  "neural_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
