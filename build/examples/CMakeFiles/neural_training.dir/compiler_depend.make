# Empty compiler generated dependencies file for neural_training.
# This may be replaced when dependencies are built.
