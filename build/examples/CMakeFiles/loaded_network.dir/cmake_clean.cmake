file(REMOVE_RECURSE
  "CMakeFiles/loaded_network.dir/loaded_network.cpp.o"
  "CMakeFiles/loaded_network.dir/loaded_network.cpp.o.d"
  "loaded_network"
  "loaded_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaded_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
