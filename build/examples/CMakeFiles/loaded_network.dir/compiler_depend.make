# Empty compiler generated dependencies file for loaded_network.
# This may be replaced when dependencies are built.
