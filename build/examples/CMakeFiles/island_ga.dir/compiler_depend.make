# Empty compiler generated dependencies file for island_ga.
# This may be replaced when dependencies are built.
