file(REMOVE_RECURSE
  "CMakeFiles/island_ga.dir/island_ga.cpp.o"
  "CMakeFiles/island_ga.dir/island_ga.cpp.o.d"
  "island_ga"
  "island_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/island_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
