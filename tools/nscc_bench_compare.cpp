// nscc-bench-compare: the bench regression gate's CLI.
//
//   nscc-bench-compare BASELINE.json CANDIDATE.json
//       [--tol-default=R] [--tol=metric=R]...
//
// Diffs two nscc-bench JSON documents (bench/schema.md) cell by cell.
// Exit 0: every baseline cell present and within tolerance.
// Exit 1: a metric regressed, or a baseline cell/metric disappeared.
// Exit 2: usage, IO, parse, or schema/bench mismatch.
//
// Tolerances are relative (0.10 = 10%) and direction-aware: tolerated
// metrics only fail when they move the worse way (lower events_per_sec,
// higher completion_s); unknown-direction metrics fail on any
// out-of-tolerance change.  The default is exact comparison — the
// simulator is deterministic, so simulated metrics must match bit-for-bit;
// pass --tol=events_per_sec=0.25 (etc.) for wall-clock-derived metrics.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_compare.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " BASELINE.json CANDIDATE.json [--tol-default=R] [--tol=metric=R]...\n"
         "  R is a relative tolerance (0.10 = 10%); default is exact.\n"
         "  exit 0 = pass, 1 = regression, 2 = usage/IO/schema error\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "nscc-bench-compare: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  out = buf.str();
  return true;
}

/// Parse "R" with strtod, whole-string; false on garbage or negative.
bool parse_tolerance(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty() && out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  nscc::harness::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tol-default=", 0) == 0) {
      if (!parse_tolerance(arg.substr(14), options.default_tolerance)) {
        std::cerr << "nscc-bench-compare: bad tolerance in " << arg << "\n";
        return nscc::harness::kCompareError;
      }
    } else if (arg.rfind("--tol=", 0) == 0) {
      const std::string spec = arg.substr(6);
      const auto eq = spec.find('=');
      double tol = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_tolerance(spec.substr(eq + 1), tol)) {
        std::cerr << "nscc-bench-compare: expected --tol=metric=R, got " << arg
                  << "\n";
        return nscc::harness::kCompareError;
      }
      options.metric_tolerance[spec.substr(0, eq)] = tol;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return nscc::harness::kComparePass;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "nscc-bench-compare: unknown flag " << arg << "\n";
      usage(argv[0]);
      return nscc::harness::kCompareError;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage(argv[0]);
    return nscc::harness::kCompareError;
  }

  std::string baseline;
  std::string candidate;
  if (!read_file(positional[0], baseline) ||
      !read_file(positional[1], candidate)) {
    return nscc::harness::kCompareError;
  }
  return nscc::harness::compare_bench_json(baseline, candidate, options,
                                           std::cout);
}
