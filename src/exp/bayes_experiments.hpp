// Experiment drivers for the Bayesian-network results (paper Table 2 and
// Figure 3).  Two-processor configurations, as in the paper (the small
// networks do not exhibit enough parallelism for more).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bayes/generators.hpp"
#include "bayes/logic_sampling.hpp"
#include "bayes/parallel_sampling.hpp"

namespace nscc::exp {

/// The paper's four-network test set, in Table 2 order.
struct NamedNetwork {
  std::string name;
  bayes::BeliefNetwork net;
};
std::vector<NamedNetwork> table2_networks();

/// One row of Table 2, measured on our implementation.
struct Table2Row {
  std::string name;
  int nodes = 0;
  double edges_per_node = 0.0;
  double values_per_node = 0.0;
  int edge_cut_2way = 0;
  double uniprocessor_time_s = 0.0;
  std::uint64_t samples = 0;
};
std::vector<Table2Row> measure_table2(int queries_per_net, std::uint64_t seed);

struct BayesVariantResult {
  std::string name;  ///< "serial", "sync", "async", "age0", ...
  double speedup = 0.0;
  double mean_time_s = 0.0;
  double sum_time_s = 0.0;
  double converged_fraction = 0.0;
  double rollbacks = 0.0;
  double nodes_resampled = 0.0;
  double mean_warp = 0.0;
};

struct BayesCellConfig {
  int processors = 2;
  int reps = 3;  ///< Paper: 10.
  std::vector<long> ages = {0, 5, 10, 20, 30};
  int queries_per_net = 3;
  double loader_mbps = 0.0;
  std::uint64_t seed = 1;
  rt::MachineConfig machine;
};

struct BayesCellResult {
  std::string network;
  std::vector<BayesVariantResult> variants;

  [[nodiscard]] const BayesVariantResult& variant(
      const std::string& name) const;
  [[nodiscard]] double best_partial_over_best_competitor() const;
};

/// Run all variants for one network.
BayesCellResult run_bayes_cell(const NamedNetwork& network,
                               const BayesCellConfig& config);

/// Paper-style average over networks: summed serial time over summed
/// variant time.
std::vector<BayesVariantResult> average_bayes_cells(
    const std::vector<BayesCellResult>& cells);

}  // namespace nscc::exp
