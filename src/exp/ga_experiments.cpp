#include "exp/ga_experiments.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "ga/sequential.hpp"
#include "sim/time.hpp"

namespace nscc::exp {

namespace {

struct RepOutcome {
  double time_s = 0.0;
  double final_average = 0.0;
  double final_best = 0.0;
  int generations = 0;
  bool quality_ok = true;
  bool optimum_found = false;
  double mean_warp = 0.0;
  double bus_utilization = 0.0;
};

}  // namespace

const GaVariantResult& GaCellResult::variant(const std::string& name) const {
  for (const auto& v : variants) {
    if (v.name == name) return v;
  }
  throw std::out_of_range("GaCellResult: unknown variant " + name);
}

double GaCellResult::best_partial_over_best_competitor() const {
  double best_partial = 0.0;
  double best_other = 0.0;
  for (const auto& v : variants) {
    if (v.name.rfind("age", 0) == 0) {
      best_partial = std::max(best_partial, v.speedup);
    } else {
      best_other = std::max(best_other, v.speedup);
    }
  }
  return best_other > 0.0 ? best_partial / best_other : 0.0;
}

GaCellResult run_ga_cell(const GaCellConfig& config) {
  const auto& fn = ga::test_function(config.function_id);
  const double opt_tol = ga::optimum_tolerance(fn);

  // Accumulators per variant name, in a stable order.
  std::vector<std::string> names = {"serial", "sync", "async"};
  for (long age : config.ages) names.push_back("age" + std::to_string(age));
  std::map<std::string, std::vector<RepOutcome>> outcomes;
  std::vector<double> serial_times;

  for (int rep = 0; rep < config.reps; ++rep) {
    const std::uint64_t seed =
        config.seed + 1000ULL * static_cast<std::uint64_t>(rep);

    // ---- serial baseline --------------------------------------------------
    ga::SequentialGaConfig serial_cfg;
    serial_cfg.function_id = config.function_id;
    serial_cfg.pop_size = config.params.pop_size * config.processors;
    serial_cfg.generations = config.generations;
    serial_cfg.seed = seed;
    serial_cfg.params = config.params;
    serial_cfg.compute = config.compute;
    const auto serial = ga::run_sequential_ga(serial_cfg);
    serial_times.push_back(sim::to_seconds(serial.completion_time));
    {
      RepOutcome o;
      o.time_s = sim::to_seconds(serial.completion_time);
      o.final_average = serial.final_average;
      o.final_best = serial.best_fitness;
      o.generations = config.generations;
      o.optimum_found = serial.best_fitness <= fn.global_min + opt_tol;
      outcomes["serial"].push_back(o);
    }

    // ---- synchronous -------------------------------------------------------
    ga::IslandConfig island;
    island.function_id = config.function_id;
    island.ndemes = config.processors;
    island.generations = config.generations;
    island.seed = seed;
    island.params = config.params;
    island.compute = config.compute;
    island.mode = dsm::Mode::kSynchronous;
    const auto sync =
        ga::run_island_ga(island, config.machine, config.loader_mbps * 1e6);
    const double target = sync.final_average;
    const double initial_avg = serial.average.points.front().second;
    const double slack =
        config.quality_slack * std::fabs(initial_avg - target);
    {
      RepOutcome o;
      o.time_s = sim::to_seconds(sync.completion_time);
      o.final_average = sync.final_average;
      o.final_best = sync.best_fitness;
      o.generations = config.generations;
      o.optimum_found = sync.best_fitness <= fn.global_min + opt_tol;
      o.mean_warp = sync.mean_warp;
      o.bus_utilization = sync.bus_utilization;
      outcomes["sync"].push_back(o);
    }

    // ---- async and Global_Read variants ------------------------------------
    auto run_variant = [&](const std::string& name, dsm::Mode mode, long age) {
      ga::IslandConfig cfg = island;
      cfg.mode = mode;
      cfg.age = age;
      // Staleness tolerance is what licenses the DSM to coalesce pending
      // migrant updates (paper Sections 1-2); the uncontrolled asynchronous
      // program does direct per-generation sends, like the synchronous one.
      cfg.propagation.coalesce = mode == dsm::Mode::kPartialAsync;
      int gens = config.generations;
      ga::IslandResult result;
      bool ok = false;
      for (;;) {
        cfg.generations = gens;
        result = ga::run_island_ga(cfg, config.machine,
                                   config.loader_mbps * 1e6);
        ok = result.final_average <= target + slack;
        if (ok || gens >= 3 * config.generations) break;
        gens = std::min(3 * config.generations, gens * 3 / 2);
      }
      RepOutcome o;
      o.time_s = sim::to_seconds(result.completion_time);
      o.final_average = result.final_average;
      o.final_best = result.best_fitness;
      o.generations = gens;
      o.quality_ok = ok;
      o.optimum_found = result.best_fitness <= fn.global_min + opt_tol;
      o.mean_warp = result.mean_warp;
      o.bus_utilization = result.bus_utilization;
      outcomes[name].push_back(o);
    };

    run_variant("async", dsm::Mode::kAsynchronous, 0);
    for (long age : config.ages) {
      run_variant("age" + std::to_string(age), dsm::Mode::kPartialAsync, age);
    }
  }

  // ---- aggregate -------------------------------------------------------------
  GaCellResult cell;
  cell.config = config;
  for (const auto& name : names) {
    const auto& reps = outcomes.at(name);
    GaVariantResult v;
    v.name = name;
    for (std::size_t r = 0; r < reps.size(); ++r) {
      const RepOutcome& o = reps[r];
      v.speedup += serial_times[r] / o.time_s;
      v.mean_time_s += o.time_s;
      v.sum_time_s += o.time_s;
      v.final_average += o.final_average;
      v.final_best += o.final_best;
      v.mean_generations += o.generations;
      v.quality_ok_fraction += o.quality_ok ? 1.0 : 0.0;
      v.optimum_found_fraction += o.optimum_found ? 1.0 : 0.0;
      v.mean_warp += o.mean_warp;
      v.bus_utilization += o.bus_utilization;
    }
    const auto n = static_cast<double>(reps.size());
    v.speedup /= n;
    v.mean_time_s /= n;
    v.final_average /= n;
    v.final_best /= n;
    v.mean_generations /= n;
    v.quality_ok_fraction /= n;
    v.optimum_found_fraction /= n;
    v.mean_warp /= n;
    v.bus_utilization /= n;
    cell.variants.push_back(v);
  }
  return cell;
}

std::vector<GaVariantResult> average_cells(
    const std::vector<GaCellResult>& cells) {
  if (cells.empty()) return {};
  std::vector<GaVariantResult> avg;
  const auto& names = cells.front().variants;
  double serial_sum = 0.0;
  for (const auto& cell : cells) serial_sum += cell.variant("serial").sum_time_s;

  for (const auto& proto : names) {
    GaVariantResult v;
    v.name = proto.name;
    double time_sum = 0.0;
    double n = 0.0;
    for (const auto& cell : cells) {
      const auto& cv = cell.variant(proto.name);
      time_sum += cv.sum_time_s;
      v.final_average += cv.final_average;
      v.quality_ok_fraction += cv.quality_ok_fraction;
      v.optimum_found_fraction += cv.optimum_found_fraction;
      v.bus_utilization += cv.bus_utilization;
      v.mean_warp += cv.mean_warp;
      n += 1.0;
    }
    // The paper's average metric: summed serial time over summed variant time.
    v.speedup = time_sum > 0.0 ? serial_sum / time_sum : 0.0;
    v.sum_time_s = time_sum;
    v.mean_time_s = time_sum / n;
    v.final_average /= n;
    v.quality_ok_fraction /= n;
    v.optimum_found_fraction /= n;
    v.bus_utilization /= n;
    v.mean_warp /= n;
    avg.push_back(v);
  }
  return avg;
}

}  // namespace nscc::exp
