// Experiment drivers for the GA figures (paper Figures 2 and 4).
//
// Protocol (paper Section 5.1.1):
//  * The serial program (with the fitness cache [19]) and the synchronous
//    program run a fixed generation budget G; the sync run's final average
//    population fitness is the convergence target.
//  * The asynchronous and partially asynchronous programs run "enough
//    generations so that the subpopulation converged further (better) than
//    the synchronous version": we run G generations and, when the final
//    average misses the target (plus a small slack), grow the budget by
//    1.5x up to 3G ("convergence beyond the required point was ensured for
//    every trial").
//  * Speedups are serial completion time over variant completion time;
//    results are averaged over `reps` differently-seeded repetitions, and
//    the cross-benchmark average follows the paper: ratio of summed serial
//    times to summed variant times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ga/island.hpp"
#include "rt/vm.hpp"

namespace nscc::exp {

struct GaVariantResult {
  std::string name;          ///< "serial", "sync", "async", "age0", ...
  double speedup = 0.0;      ///< Mean over reps of serial/variant.
  double mean_time_s = 0.0;  ///< Mean completion (virtual seconds).
  double sum_time_s = 0.0;   ///< Summed over reps (for paper-style averages).
  double final_average = 0.0;
  double final_best = 0.0;
  double mean_generations = 0.0;  ///< Per deme, after quality inflation.
  double quality_ok_fraction = 0.0;
  double optimum_found_fraction = 0.0;  ///< Runs reaching the global optimum.
  double mean_warp = 0.0;
  double bus_utilization = 0.0;
};

struct GaCellConfig {
  int function_id = 1;
  int processors = 4;
  int generations = 300;  ///< Sync/serial budget (paper: 1000).
  int reps = 3;           ///< Paper: 25.
  std::vector<long> ages = {0, 5, 10, 20, 30};
  double quality_slack = 0.02;  ///< Fraction of achieved improvement.
  double loader_mbps = 0.0;     ///< Background load (Figure 4).
  std::uint64_t seed = 1;
  ga::GaParams params;
  ga::GaComputeModel compute;
  rt::MachineConfig machine;
};

struct GaCellResult {
  GaCellConfig config;
  std::vector<GaVariantResult> variants;  ///< serial, sync, async, ageX...

  [[nodiscard]] const GaVariantResult& variant(const std::string& name) const;
  /// Best Global_Read variant vs best of serial/sync/async (the paper's
  /// white bar); > 1 means the partially asynchronous program wins.
  [[nodiscard]] double best_partial_over_best_competitor() const;
};

/// Run every variant for one (function, processors) cell.
GaCellResult run_ga_cell(const GaCellConfig& config);

/// Paper-style cross-benchmark average: ratio of summed serial times to
/// summed variant times, per variant name.  All cells must share the same
/// variant list.
std::vector<GaVariantResult> average_cells(
    const std::vector<GaCellResult>& cells);

}  // namespace nscc::exp
