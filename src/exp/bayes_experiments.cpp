#include "exp/bayes_experiments.hpp"

#include <algorithm>
#include <stdexcept>

#include "bayes/partitioner.hpp"
#include "sim/time.hpp"

namespace nscc::exp {

std::vector<NamedNetwork> table2_networks() {
  std::vector<NamedNetwork> nets;
  nets.push_back({"A", bayes::make_network_a()});
  nets.push_back({"AA", bayes::make_network_aa()});
  nets.push_back({"C", bayes::make_network_c()});
  nets.push_back({"Hailfinder", bayes::make_hailfinder_like()});
  return nets;
}

std::vector<Table2Row> measure_table2(int queries_per_net, std::uint64_t seed) {
  std::vector<Table2Row> rows;
  for (const auto& [name, net] : table2_networks()) {
    Table2Row row;
    row.name = name;
    row.nodes = net.size();
    row.edges_per_node = net.edges_per_node();
    row.values_per_node = net.average_cardinality();
    bayes::PartitionConfig pc;
    pc.parts = 2;
    row.edge_cut_2way = bayes::edge_cut(net, bayes::partition_network(net, pc));
    bayes::InferenceConfig ic;
    ic.seed = seed;
    const auto queries = bayes::default_queries(net, queries_per_net, seed);
    const auto result = bayes::run_logic_sampling(net, {}, queries, ic);
    row.uniprocessor_time_s = sim::to_seconds(result.completion_time);
    row.samples = result.samples_drawn;
    rows.push_back(row);
  }
  return rows;
}

const BayesVariantResult& BayesCellResult::variant(
    const std::string& name) const {
  for (const auto& v : variants) {
    if (v.name == name) return v;
  }
  throw std::out_of_range("BayesCellResult: unknown variant " + name);
}

double BayesCellResult::best_partial_over_best_competitor() const {
  double best_partial = 0.0;
  double best_other = 0.0;
  for (const auto& v : variants) {
    if (v.name.rfind("age", 0) == 0) {
      best_partial = std::max(best_partial, v.speedup);
    } else {
      best_other = std::max(best_other, v.speedup);
    }
  }
  return best_other > 0.0 ? best_partial / best_other : 0.0;
}

BayesCellResult run_bayes_cell(const NamedNetwork& network,
                               const BayesCellConfig& config) {
  BayesCellResult cell;
  cell.network = network.name;

  std::vector<std::string> names = {"serial", "sync", "async"};
  for (long age : config.ages) names.push_back("age" + std::to_string(age));
  std::vector<std::vector<double>> times(names.size());
  std::vector<double> converged(names.size(), 0.0);
  std::vector<double> rollbacks(names.size(), 0.0);
  std::vector<double> resampled(names.size(), 0.0);
  std::vector<double> warp(names.size(), 0.0);

  for (int rep = 0; rep < config.reps; ++rep) {
    const std::uint64_t seed =
        config.seed + 1000ULL * static_cast<std::uint64_t>(rep);
    const auto queries =
        bayes::default_queries(network.net, config.queries_per_net, config.seed);

    bayes::InferenceConfig serial_cfg;
    serial_cfg.seed = seed;
    const auto serial =
        bayes::run_logic_sampling(network.net, {}, queries, serial_cfg);
    times[0].push_back(sim::to_seconds(serial.completion_time));
    converged[0] += serial.converged ? 1.0 : 0.0;

    bayes::ParallelInferenceConfig par;
    par.parts = config.processors;
    par.seed = seed;
    // Enough iterations for the CI to be met with margin even under the
    // speculative modes' validation lag.
    par.iterations = serial.samples_drawn * 13 / 10;

    for (std::size_t i = 1; i < names.size(); ++i) {
      if (names[i] == "sync") {
        par.mode = dsm::Mode::kSynchronous;
        par.age = 0;
      } else if (names[i] == "async") {
        par.mode = dsm::Mode::kAsynchronous;
        par.age = 0;
      } else {
        par.mode = dsm::Mode::kPartialAsync;
        par.age = std::stol(names[i].substr(3));
      }
      const auto r = bayes::run_parallel_logic_sampling(
          network.net, {}, queries, par, config.machine,
          config.loader_mbps * 1e6);
      times[i].push_back(sim::to_seconds(r.completion_time));
      converged[i] += r.converged ? 1.0 : 0.0;
      rollbacks[i] += static_cast<double>(r.rollbacks);
      resampled[i] += static_cast<double>(r.nodes_resampled);
      warp[i] += r.mean_warp;
    }
  }

  const auto n = static_cast<double>(config.reps);
  for (std::size_t i = 0; i < names.size(); ++i) {
    BayesVariantResult v;
    v.name = names[i];
    for (int rep = 0; rep < config.reps; ++rep) {
      v.speedup += times[0][static_cast<std::size_t>(rep)] /
                   times[i][static_cast<std::size_t>(rep)];
      v.mean_time_s += times[i][static_cast<std::size_t>(rep)];
      v.sum_time_s += times[i][static_cast<std::size_t>(rep)];
    }
    v.speedup /= n;
    v.mean_time_s /= n;
    v.converged_fraction = converged[i] / n;
    v.rollbacks = rollbacks[i] / n;
    v.nodes_resampled = resampled[i] / n;
    v.mean_warp = warp[i] / n;
    cell.variants.push_back(v);
  }
  return cell;
}

std::vector<BayesVariantResult> average_bayes_cells(
    const std::vector<BayesCellResult>& cells) {
  if (cells.empty()) return {};
  std::vector<BayesVariantResult> avg;
  double serial_sum = 0.0;
  for (const auto& cell : cells) serial_sum += cell.variant("serial").sum_time_s;
  for (const auto& proto : cells.front().variants) {
    BayesVariantResult v;
    v.name = proto.name;
    double time_sum = 0.0;
    double n = 0.0;
    for (const auto& cell : cells) {
      const auto& cv = cell.variant(proto.name);
      time_sum += cv.sum_time_s;
      v.converged_fraction += cv.converged_fraction;
      v.rollbacks += cv.rollbacks;
      v.nodes_resampled += cv.nodes_resampled;
      v.mean_warp += cv.mean_warp;
      n += 1.0;
    }
    v.speedup = time_sum > 0.0 ? serial_sum / time_sum : 0.0;
    v.sum_time_s = time_sum;
    v.mean_time_s = time_sum / n;
    v.converged_fraction /= n;
    v.rollbacks /= n;
    v.nodes_resampled /= n;
    v.mean_warp /= n;
    avg.push_back(v);
  }
  return avg;
}

}  // namespace nscc::exp
