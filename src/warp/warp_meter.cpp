#include "warp/warp_meter.hpp"

namespace nscc::warp {

void WarpMeter::record(int receiver, int sender, sim::Time send_time,
                       sim::Time arrival_time) {
  const std::pair<int, int> key{receiver, sender};
  Last& last = last_[key];
  if (last.valid) {
    const sim::Time dsend = send_time - last.send_time;
    const sim::Time darrive = arrival_time - last.arrival_time;
    if (dsend > 0) {
      const double w =
          static_cast<double>(darrive) / static_cast<double>(dsend);
      overall_.add(w);
      per_pair_[key].add(w);
    }
  }
  last.send_time = send_time;
  last.arrival_time = arrival_time;
  last.valid = true;
}

util::RunningStats WarpMeter::pair(int receiver, int sender) const {
  auto it = per_pair_.find({receiver, sender});
  return it == per_pair_.end() ? util::RunningStats{} : it->second;
}

void WarpMeter::reset() {
  last_.clear();
  per_pair_.clear();
  overall_.reset();
}

}  // namespace nscc::warp
