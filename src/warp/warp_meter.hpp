// Warp metric (Park [14], as used in the paper's Section 4.3).
//
// A warp sample at node i with respect to node j is the ratio of the
// difference in arrival times of two consecutive messages from j to the
// difference in their send times.  Warp ~= 1 on a stable network; values
// much larger than 1 indicate rising load.  The runtime records a sample
// for every delivered message, "above PVM", exactly as the paper measured.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace nscc::warp {

class WarpMeter {
 public:
  /// Record a delivery at `receiver` of a message from `sender` that was
  /// handed to the network at `send_time` and arrived at `arrival_time`.
  void record(int receiver, int sender, sim::Time send_time,
              sim::Time arrival_time);

  /// Distribution of warp samples over all (receiver, sender) pairs.
  [[nodiscard]] const util::RunningStats& overall() const noexcept {
    return overall_;
  }

  /// Distribution for one directed pair; empty stats when never observed.
  [[nodiscard]] util::RunningStats pair(int receiver, int sender) const;

  [[nodiscard]] std::uint64_t samples() const noexcept {
    return overall_.count();
  }

  void reset();

 private:
  struct Last {
    sim::Time send_time = 0;
    sim::Time arrival_time = 0;
    bool valid = false;
  };

  std::map<std::pair<int, int>, Last> last_;
  std::map<std::pair<int, int>, util::RunningStats> per_pair_;
  util::RunningStats overall_;
};

}  // namespace nscc::warp
