// Shared-medium network model standing in for the paper's 10 Mbps Ethernet.
//
// The bus serialises all transmissions FIFO (work-conserving arbitration):
// a frame handed to the bus at time t starts transmitting at
// max(t, busy_until), occupies the medium for (payload + per-frame overhead)
// * 8 / bandwidth, and is delivered after an additional propagation delay.
// Congestion therefore manifests as growing queueing delay — the effect the
// paper's loaded-network experiments (Figure 4) and warp measurements probe.
// An optional bounded transmit queue with tail drop models the lossy
// behaviour asynchronous algorithms tolerate.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nscc::net {

struct BusConfig {
  /// Medium bandwidth in bits per second (paper: 10 Mbps Ethernet).
  double bandwidth_bps = 10e6;
  /// One-way propagation + interrupt/DMA latency per frame.
  sim::Time propagation_delay = 50 * sim::kMicrosecond;
  /// Link + transport + PVM header bytes added to every frame.
  std::uint32_t frame_overhead_bytes = 84;
  /// Payload bytes per frame before fragmentation (Ethernet MTU minus
  /// headers).  Messages larger than this pay the overhead once per frame.
  std::uint32_t mtu_payload_bytes = 1460;
  /// Maximum frames waiting to start transmission; 0 means unbounded.
  /// When bounded, excess frames are tail-dropped.
  std::uint32_t max_pending_frames = 0;
};

/// Aggregate counters for reporting and tests.
struct BusStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time busy_time = 0;
  std::uint32_t pending_high_water = 0;
};

class SharedBus {
 public:
  SharedBus(sim::Engine& engine, BusConfig config)
      : engine_(engine), config_(config) {}

  SharedBus(const SharedBus&) = delete;
  SharedBus& operator=(const SharedBus&) = delete;

  /// Hand a message of `payload_bytes` to the medium.  `on_delivered` runs
  /// in engine context at the arrival time.  Returns false when the bounded
  /// queue tail-dropped the message (on_delivered never runs).
  bool transmit(std::uint32_t payload_bytes,
                std::function<void(sim::Time delivered_at)> on_delivered);

  /// Time the medium would need to carry `payload_bytes` (excluding queueing
  /// and propagation).
  [[nodiscard]] sim::Time transmission_time(
      std::uint32_t payload_bytes) const noexcept;

  /// Bytes put on the wire for a message of `payload_bytes` (payload plus
  /// per-fragment overhead).
  [[nodiscard]] std::uint64_t wire_bytes_for(
      std::uint32_t payload_bytes) const noexcept;

  /// Queueing delay a message handed over right now would experience before
  /// starting to transmit.
  [[nodiscard]] sim::Time current_backlog() const noexcept;

  /// Frames queued but not yet transmitting.
  [[nodiscard]] std::uint32_t pending_frames() const noexcept {
    return pending_;
  }

  /// Fraction of time the medium has been busy since time 0.
  [[nodiscard]] double utilization() const noexcept;

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BusConfig& config() const noexcept { return config_; }

  /// Attach an event tracer: frames become spans on the bus track (with
  /// queueing shown as a wait arg), contention and tail drops instants.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  sim::Engine& engine_;
  BusConfig config_;
  obs::Tracer* tracer_ = nullptr;
  sim::Time busy_until_ = 0;
  std::uint32_t pending_ = 0;
  BusStats stats_;
};

}  // namespace nscc::net
