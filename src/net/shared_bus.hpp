// Shared-medium network model standing in for the paper's 10 Mbps Ethernet.
//
// The bus serialises all transmissions FIFO (work-conserving arbitration):
// a frame handed to the bus at time t starts transmitting at
// max(t, busy_until), occupies the medium for (payload + per-frame overhead)
// * 8 / bandwidth, and is delivered after an additional propagation delay.
// Congestion therefore manifests as growing queueing delay — the effect the
// paper's loaded-network experiments (Figure 4) and warp measurements probe.
// An optional bounded transmit queue with tail drop models the lossy
// behaviour asynchronous algorithms tolerate.
//
// An attached fault::FaultInjector subjects every frame to the machine's
// FaultPlan: lost frames occupy the medium but report delivered=false, so
// callers can account for them (release transport windows, retransmit);
// duplicated frames report a second delivered=true outcome; delayed frames
// simply arrive later (and may reorder).  Tail drops and fault losses are
// also surfaced through an optional per-bus drop hook.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nscc::net {

struct BusConfig {
  /// Medium bandwidth in bits per second (paper: 10 Mbps Ethernet).
  double bandwidth_bps = 10e6;
  /// One-way propagation + interrupt/DMA latency per frame.
  sim::Time propagation_delay = 50 * sim::kMicrosecond;
  /// Link + transport + PVM header bytes added to every frame.
  std::uint32_t frame_overhead_bytes = 84;
  /// Payload bytes per frame before fragmentation (Ethernet MTU minus
  /// headers).  Messages larger than this pay the overhead once per frame.
  std::uint32_t mtu_payload_bytes = 1460;
  /// Maximum frames waiting to start transmission; 0 means unbounded.
  /// When bounded, excess frames are tail-dropped.
  std::uint32_t max_pending_frames = 0;
};

/// Aggregate counters for reporting and tests.
struct BusStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;     ///< Tail-dropped before the wire.
  std::uint64_t frames_lost = 0;        ///< Fault-injected losses on the wire.
  std::uint64_t frames_duplicated = 0;  ///< Fault-injected duplicates.
  std::uint64_t frames_delayed = 0;     ///< Fault-injected extra delay.
  std::uint64_t frames_corrupted = 0;   ///< Fault-injected payload damage.
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time busy_time = 0;
  std::uint32_t pending_high_water = 0;
};

class SharedBus {
 public:
  /// Runs at delivery (delivered=true; possibly twice for a duplicated
  /// frame) or at the moment a fault loses the frame (delivered=false);
  /// always engine context.  A tail-dropped message reports neither — the
  /// transmit() return value covers that case synchronously.
  /// `corrupt_seed` is nonzero when the frame arrived with a damaged
  /// payload (fault::corruption_effect(seed, bytes) describes the damage);
  /// a duplicated frame's second copy always arrives intact.
  using Outcome = std::function<void(sim::Time at, bool delivered,
                                     std::uint64_t corrupt_seed)>;
  /// Observer for every frame the medium abandons (tail drop or fault
  /// loss); `reason` is a static string ("tail_drop", "fault").
  using DropHook =
      std::function<void(int src, int dst, std::uint32_t payload_bytes,
                         const char* reason)>;

  SharedBus(sim::Engine& engine, BusConfig config)
      : engine_(engine), config_(config) {}

  SharedBus(const SharedBus&) = delete;
  SharedBus& operator=(const SharedBus&) = delete;

  /// Hand a message of `payload_bytes` to the medium.  `src`/`dst` identify
  /// the endpoints for per-link fault lookup (-1 = anonymous, e.g. the
  /// background load generator).  Returns false when the bounded queue
  /// tail-dropped the message (`outcome` never runs).
  bool transmit(int src, int dst, std::uint32_t payload_bytes,
                Outcome outcome);

  /// Legacy anonymous-sender form: delivery callback only, fault losses are
  /// silent (the load generator and micro-benchmarks use this).
  bool transmit(std::uint32_t payload_bytes,
                std::function<void(sim::Time delivered_at)> on_delivered);

  /// Time the medium would need to carry `payload_bytes` (excluding queueing
  /// and propagation).
  [[nodiscard]] sim::Time transmission_time(
      std::uint32_t payload_bytes) const noexcept;

  /// Bytes put on the wire for a message of `payload_bytes` (payload plus
  /// per-fragment overhead).
  [[nodiscard]] std::uint64_t wire_bytes_for(
      std::uint32_t payload_bytes) const noexcept;

  /// Queueing delay a message handed over right now would experience before
  /// starting to transmit.
  [[nodiscard]] sim::Time current_backlog() const noexcept;

  /// Frames queued but not yet transmitting.
  [[nodiscard]] std::uint32_t pending_frames() const noexcept {
    return pending_;
  }

  /// Fraction of time the medium has been busy since time 0.
  [[nodiscard]] double utilization() const noexcept;

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BusConfig& config() const noexcept { return config_; }

  /// Attach an event tracer: frames become spans on the bus track (with
  /// queueing shown as a wait arg), contention and tail drops instants.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a fault injector (nullptr detaches; not owned).
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Attach a drop observer (tail drops and fault losses).
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

 private:
  sim::Engine& engine_;
  BusConfig config_;
  obs::Tracer* tracer_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  DropHook drop_hook_;
  sim::Time busy_until_ = 0;
  std::uint32_t pending_ = 0;
  BusStats stats_;
};

}  // namespace nscc::net
