#include "net/shared_bus.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace nscc::net {

sim::Time SharedBus::transmission_time(
    std::uint32_t payload_bytes) const noexcept {
  const double bits = static_cast<double>(wire_bytes_for(payload_bytes)) * 8.0;
  return static_cast<sim::Time>(
      std::ceil(bits / config_.bandwidth_bps * static_cast<double>(sim::kSecond)));
}

std::uint64_t SharedBus::wire_bytes_for(
    std::uint32_t payload_bytes) const noexcept {
  const std::uint64_t frames =
      std::max<std::uint64_t>(1, (payload_bytes + config_.mtu_payload_bytes - 1) /
                                     config_.mtu_payload_bytes);
  return payload_bytes + frames * config_.frame_overhead_bytes;
}

sim::Time SharedBus::current_backlog() const noexcept {
  return std::max<sim::Time>(0, busy_until_ - engine_.now());
}

double SharedBus::utilization() const noexcept {
  const sim::Time elapsed = std::max<sim::Time>(
      1, std::max(engine_.now(), busy_until_));
  // busy_time already counts scheduled future transmissions.
  return static_cast<double>(stats_.busy_time) / static_cast<double>(elapsed);
}

bool SharedBus::transmit(std::uint32_t payload_bytes,
                         std::function<void(sim::Time)> on_delivered) {
  return transmit(-1, -1, payload_bytes,
                  [cb = std::move(on_delivered)](sim::Time at, bool delivered,
                                                 std::uint64_t /*corrupt*/) {
                    if (delivered && cb) cb(at);
                  });
}

bool SharedBus::transmit(int src, int dst, std::uint32_t payload_bytes,
                         Outcome outcome) {
  if (config_.max_pending_frames != 0 &&
      pending_ >= config_.max_pending_frames) {
    ++stats_.frames_dropped;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(obs::kBusTrack, "bus.drop", engine_.now(), "bytes",
                       payload_bytes);
    }
    if (drop_hook_) drop_hook_(src, dst, payload_bytes, "tail_drop");
    return false;
  }

  const sim::Time now = engine_.now();
  const sim::Time start = std::max(now, busy_until_);
  const sim::Time tx = transmission_time(payload_bytes);
  const sim::Time end = start + tx;
  sim::Time delivered_at = end + config_.propagation_delay;
  busy_until_ = end;

  ++stats_.frames_sent;
  stats_.payload_bytes += payload_bytes;
  stats_.wire_bytes += wire_bytes_for(payload_bytes);
  stats_.busy_time += tx;

  if (tracer_ != nullptr && tracer_->enabled()) {
    // Frame occupancy as a span on the bus track; acquisition wait (medium
    // contention) is surfaced both as the wait arg and a contend instant.
    tracer_->complete(obs::kBusTrack, "bus.frame", start, tx, "bytes",
                      payload_bytes, "wait_ns", start - now);
    if (start > now) {
      tracer_->instant(obs::kBusTrack, "bus.contend", now, "backlog_ns",
                       start - now);
    }
  }

  if (start > now) {
    ++pending_;
    stats_.pending_high_water = std::max(stats_.pending_high_water, pending_);
    engine_.schedule(start, obs::EventKind::kNetwork, [this] { --pending_; });
  }

  // Fault judgement: a lost frame has already occupied the medium (wire
  // time is charged above) — it dies between the wire and the receiver.
  bool lost = false;
  sim::Time dup_at = 0;
  std::uint64_t corrupt_seed = 0;
  if (injector_ != nullptr) {
    const auto verdict = injector_->judge(src, dst, now, delivered_at);
    stats_.frames_lost += verdict.drop ? 1 : 0;
    stats_.frames_duplicated += verdict.duplicate ? 1 : 0;
    stats_.frames_delayed += verdict.extra_delay > 0 ? 1 : 0;
    stats_.frames_corrupted += verdict.corrupt_seed != 0 ? 1 : 0;
    lost = verdict.drop;
    corrupt_seed = verdict.corrupt_seed;
    delivered_at += verdict.extra_delay;
    if (verdict.duplicate) dup_at = delivered_at + verdict.duplicate_delay;
    if (tracer_ != nullptr && tracer_->enabled()) {
      if (verdict.drop) {
        tracer_->instant(obs::kBusTrack, "fault.loss", now, "src", src, "dst",
                         dst);
      } else if (verdict.duplicate) {
        tracer_->instant(obs::kBusTrack, "fault.dup", now, "src", src, "dst",
                         dst);
      } else if (verdict.extra_delay > 0) {
        tracer_->instant(obs::kBusTrack, "fault.delay", now, "extra_ns",
                         verdict.extra_delay);
      }
      if (verdict.corrupt_seed != 0) {
        tracer_->instant(obs::kBusTrack, "fault.corrupt", now, "src", src,
                         "dst", dst);
      }
    }
    if (lost && drop_hook_) drop_hook_(src, dst, payload_bytes, "fault");
  }

  if (lost) {
    engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                     [cb = std::move(outcome), delivered_at] {
                       cb(delivered_at, false, 0);
                     });
    return true;
  }
  if (dup_at > 0) {
    // Two deliveries share one callback; copyable std::function allows it.
    // Only the original carries the damage: the duplicate models a
    // link-level retransmit whose second copy arrived intact.
    engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                     [cb = outcome, delivered_at, corrupt_seed] {
                       cb(delivered_at, true, corrupt_seed);
                     });
    engine_.schedule(dup_at, obs::EventKind::kNetwork,
                     [cb = std::move(outcome), dup_at] { cb(dup_at, true, 0); });
    return true;
  }
  engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                   [cb = std::move(outcome), delivered_at, corrupt_seed] {
                     cb(delivered_at, true, corrupt_seed);
                   });
  return true;
}

}  // namespace nscc::net
