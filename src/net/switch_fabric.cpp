#include "net/switch_fabric.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace nscc::net {

sim::Time SwitchFabric::link_time(std::uint32_t payload_bytes) const {
  const double bits =
      static_cast<double>(payload_bytes + config_.packet_overhead_bytes) * 8.0;
  return static_cast<sim::Time>(std::ceil(
      bits / config_.link_bandwidth_bps * static_cast<double>(sim::kSecond)));
}

void SwitchFabric::transmit(
    int src, int dst, std::uint32_t payload_bytes,
    std::function<void(sim::Time delivered_at)> on_delivered) {
  transmit_observed(src, dst, payload_bytes,
                    [cb = std::move(on_delivered)](sim::Time at, bool delivered,
                                                   std::uint64_t /*corrupt*/) {
                      if (delivered && cb) cb(at);
                    });
}

void SwitchFabric::transmit_observed(int src, int dst,
                                     std::uint32_t payload_bytes,
                                     Outcome outcome) {
  const sim::Time now = engine_.now();
  const sim::Time wire = link_time(payload_bytes);

  auto& tx = tx_busy_[static_cast<std::size_t>(src)];
  const sim::Time tx_start = std::max(now, tx);
  const sim::Time tx_end = tx_start + wire;
  tx = tx_end;

  auto& rx = rx_busy_[static_cast<std::size_t>(dst)];
  const sim::Time rx_start = std::max(tx_end + config_.fabric_latency, rx);
  sim::Time delivered_at = rx_start + wire;
  rx = delivered_at;

  ++stats_.messages;
  stats_.payload_bytes += payload_bytes;
  stats_.tx_busy_time += wire;

  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->complete(track_base_ + src, "switch.tx", tx_start, wire,
                      "dst", dst, "bytes", payload_bytes);
  }

  bool lost = false;
  sim::Time dup_at = 0;
  std::uint64_t corrupt_seed = 0;
  if (injector_ != nullptr) {
    const auto verdict = injector_->judge(src, dst, now, delivered_at);
    stats_.frames_lost += verdict.drop ? 1 : 0;
    stats_.frames_duplicated += verdict.duplicate ? 1 : 0;
    stats_.frames_delayed += verdict.extra_delay > 0 ? 1 : 0;
    stats_.frames_corrupted += verdict.corrupt_seed != 0 ? 1 : 0;
    lost = verdict.drop;
    corrupt_seed = verdict.corrupt_seed;
    delivered_at += verdict.extra_delay;
    if (verdict.duplicate) dup_at = delivered_at + verdict.duplicate_delay;
    if (tracer_ != nullptr && tracer_->enabled()) {
      if (verdict.drop) {
        tracer_->instant(track_base_ + src, "fault.loss", now, "dst",
                         dst);
      } else if (verdict.corrupt_seed != 0) {
        tracer_->instant(track_base_ + src, "fault.corrupt", now,
                         "dst", dst);
      }
    }
    if (lost && drop_hook_) drop_hook_(src, dst, payload_bytes, "fault");
  }

  if (lost) {
    engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                     [cb = std::move(outcome), delivered_at] {
                       cb(delivered_at, false, 0);
                     });
    return;
  }
  if (dup_at > 0) {
    // As on the bus, only the original copy carries the damage.
    engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                     [cb = outcome, delivered_at, corrupt_seed] {
                       cb(delivered_at, true, corrupt_seed);
                     });
    engine_.schedule(dup_at, obs::EventKind::kNetwork,
                     [cb = std::move(outcome), dup_at] { cb(dup_at, true, 0); });
    return;
  }
  engine_.schedule(delivered_at, obs::EventKind::kNetwork,
                   [cb = std::move(outcome), delivered_at, corrupt_seed] {
                     cb(delivered_at, true, corrupt_seed);
                   });
}

void SwitchFabric::set_tracer(obs::Tracer* tracer) noexcept {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    // Claim a collision-free contiguous track range: with more processors
    // than kSwitchTrackBase (or a second fabric on the same tracer) the
    // preferred base may already be taken, and overlapping it would merge
    // unrelated components onto one exported thread track.
    track_base_ =
        tracer_->claim_tracks(static_cast<int>(tx_busy_.size()),
                              obs::kSwitchTrackBase);
    for (std::size_t p = 0; p < tx_busy_.size(); ++p) {
      tracer_->set_track_name(track_base_ + static_cast<int>(p),
                              "switch.port" + std::to_string(p));
    }
  }
}

double SwitchFabric::utilization() const {
  const auto ports = static_cast<double>(tx_busy_.size());
  const sim::Time elapsed = std::max<sim::Time>(1, engine_.now());
  return static_cast<double>(stats_.tx_busy_time) /
         (ports * static_cast<double>(elapsed));
}

}  // namespace nscc::net
