// Point-to-point switched interconnect standing in for the IBM SP2's
// high-performance switch (paper Section 4.1: the SP2 had both the Ethernet
// our main experiments model and a high-speed switch; the paper expects
// applications with higher communication demands to keep benefiting from
// non-strict coherence on the faster fabric).
//
// Model: full-bisection multistage switch.  Each node has a dedicated
// injection (TX) and reception (RX) link of `link_bandwidth_bps`; a message
// serialises on its source's TX link, crosses the fabric with a fixed
// latency, then serialises on the destination's RX link.  Unlike the shared
// bus there is no global medium contention — only per-port queueing.
// An attached fault::FaultInjector subjects every message to the machine's
// FaultPlan exactly as on the shared bus: losses report delivered=false,
// duplicates deliver twice, delays push the arrival out.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nscc::net {

struct SwitchConfig {
  /// Per-port bandwidth (SP2 TB2-class: ~40 MB/s).
  double link_bandwidth_bps = 320e6;
  /// Fabric crossing latency (hardware + adapter).
  sim::Time fabric_latency = 40 * sim::kMicrosecond;
  /// Per-packet header bytes.
  std::uint32_t packet_overhead_bytes = 32;
};

struct SwitchStats {
  std::uint64_t messages = 0;
  std::uint64_t frames_lost = 0;        ///< Fault-injected losses.
  std::uint64_t frames_duplicated = 0;  ///< Fault-injected duplicates.
  std::uint64_t frames_delayed = 0;     ///< Fault-injected extra delay.
  std::uint64_t frames_corrupted = 0;   ///< Fault-injected payload damage.
  std::uint64_t payload_bytes = 0;
  sim::Time tx_busy_time = 0;  ///< Summed over ports.
};

class SwitchFabric {
 public:
  /// See SharedBus::Outcome — identical contract (including the
  /// corrupt_seed of a frame delivered with a damaged payload).
  using Outcome = std::function<void(sim::Time at, bool delivered,
                                     std::uint64_t corrupt_seed)>;
  using DropHook =
      std::function<void(int src, int dst, std::uint32_t payload_bytes,
                         const char* reason)>;

  SwitchFabric(sim::Engine& engine, int ports, SwitchConfig config)
      : engine_(engine),
        config_(config),
        tx_busy_(static_cast<std::size_t>(ports), 0),
        rx_busy_(static_cast<std::size_t>(ports), 0) {}

  SwitchFabric(const SwitchFabric&) = delete;
  SwitchFabric& operator=(const SwitchFabric&) = delete;

  /// Carry `payload_bytes` from port `src` to port `dst`; `on_delivered`
  /// runs in engine context at arrival.  Always accepted (link-level flow
  /// control is modelled by the runtime's sender window).  Fault losses are
  /// silent in this form.
  void transmit(int src, int dst, std::uint32_t payload_bytes,
                std::function<void(sim::Time delivered_at)> on_delivered);

  /// Outcome form: fault losses report delivered=false, duplicates deliver
  /// twice (see SharedBus::Outcome).
  void transmit_observed(int src, int dst, std::uint32_t payload_bytes,
                         Outcome outcome);

  /// Serialisation time of a message on one link.
  [[nodiscard]] sim::Time link_time(std::uint32_t payload_bytes) const;

  /// Mean TX-port utilisation since time 0.
  [[nodiscard]] double utilization() const;

  [[nodiscard]] const SwitchStats& stats() const noexcept { return stats_; }

  /// Attach an event tracer: TX-link occupancy becomes spans on a per-port
  /// switch track.
  void set_tracer(obs::Tracer* tracer) noexcept;

  /// Attach a fault injector (nullptr detaches; not owned).
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Attach a drop observer (fault losses; the switch never tail-drops).
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

 private:
  sim::Engine& engine_;
  SwitchConfig config_;
  obs::Tracer* tracer_ = nullptr;
  /// First track id of this fabric's per-port tracks, claimed from the
  /// tracer in set_tracer() so multiple fabrics (or many processors) can
  /// never collide with kSwitchTrackBase.
  int track_base_ = obs::kSwitchTrackBase;
  fault::FaultInjector* injector_ = nullptr;
  DropHook drop_hook_;
  std::vector<sim::Time> tx_busy_;
  std::vector<sim::Time> rx_busy_;
  SwitchStats stats_;
};

}  // namespace nscc::net
