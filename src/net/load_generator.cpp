#include "net/load_generator.hpp"

#include <cmath>
#include <functional>
#include <memory>

namespace nscc::net {

LoadGenerator::LoadGenerator(sim::Engine& engine, SharedBus& bus,
                             const LoadGeneratorConfig& config)
    : rng_(config.seed) {
  if (config.offered_bps <= 0.0) {
    running_ = false;
    return;
  }
  const double mean_period_s =
      static_cast<double>(config.frame_payload_bytes) * 8.0 /
      config.offered_bps;

  // Self-rescheduling injection event; pure engine-context, no fiber needed.
  auto inject = std::make_shared<std::function<void()>>();
  *inject = [this, &engine, &bus, config, mean_period_s, inject] {
    if (!running_) return;
    bus.transmit(config.frame_payload_bytes, [](sim::Time) {});
    ++frames_injected_;
    const double period_s = config.poisson
                                ? rng_.exponential(1.0 / mean_period_s)
                                : mean_period_s;
    engine.schedule(engine.now() + sim::from_seconds(period_s), *inject);
  };
  engine.schedule(engine.now(), *inject);
}

}  // namespace nscc::net
