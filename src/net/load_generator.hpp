// Background traffic source reproducing the paper's "network loader program".
//
// The paper loads the shared Ethernet at 0.5 / 1 / 2 Mbps from two dedicated
// SP2 nodes while the benchmarks run on four others (Figure 4).  This
// process injects frames into the SharedBus at a configured offered load,
// with optionally jittered (exponential) inter-departure times.
#pragma once

#include <cstdint>

#include "net/shared_bus.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace nscc::net {

struct LoadGeneratorConfig {
  /// Offered load in bits per second of payload (0 disables the generator).
  double offered_bps = 0.0;
  /// Payload bytes per injected frame.
  std::uint32_t frame_payload_bytes = 1024;
  /// Jitter inter-departure times exponentially (mean preserved); when
  /// false, departures are strictly periodic.
  bool poisson = true;
  std::uint64_t seed = 0x10adULL;
};

/// Spawns a simulator process that keeps the bus loaded for the whole run.
/// The process stops injecting when `stop()` is called (the experiment
/// drivers call it once the benchmark tasks finish, so the run can drain).
class LoadGenerator {
 public:
  LoadGenerator(sim::Engine& engine, SharedBus& bus,
                const LoadGeneratorConfig& config);

  void stop() noexcept { running_ = false; }

  [[nodiscard]] std::uint64_t frames_injected() const noexcept {
    return frames_injected_;
  }

 private:
  bool running_ = true;
  std::uint64_t frames_injected_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace nscc::net
