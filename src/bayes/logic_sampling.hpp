// Sequential logic sampling (Henrion's probabilistic logic sampling, as
// described in the paper's Section 3.2): ancestral simulation of the whole
// network; samples whose evidence nodes match the observations are counted,
// and query posteriors are estimated by frequency.  The run stops when every
// query's confidence interval is within the configured precision (the
// paper's 90% CI to +/-0.01), with virtual time charged per node sampled so
// the uniprocessor inference times of Table 2 are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/network.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace nscc::bayes {

struct Query {
  NodeId node = 0;
  int value = 0;
};

struct Evidence {
  NodeId node = 0;
  int value = 0;
};

struct InferenceConfig {
  double confidence = 0.90;
  double precision = 0.01;
  /// Convergence is re-checked every this many iterations.
  int check_interval = 250;
  std::uint64_t max_samples = 500000;
  std::uint64_t seed = 1;
  /// Virtual CPU cost of sampling one node once (77 MHz-class node;
  /// calibrated against Table 2's uniprocessor inference times).
  sim::Time cost_per_node_sample = 26 * sim::kMicrosecond;
  /// The uniprocessor pays the same OS-load effects as the cluster nodes:
  /// a mean slowdown factor and occasional long stalls (daemons/paging).
  double node_speed = 1.075;
  double stall_probability = 0.005;
  sim::Time stall_min = 10 * sim::kMillisecond;
  sim::Time stall_max = 60 * sim::kMillisecond;
};

struct QueryEstimate {
  Query query;
  double probability = 0.0;
  util::ConfidenceInterval ci;
};

struct InferenceResult {
  std::vector<QueryEstimate> estimates;
  std::uint64_t samples_drawn = 0;  ///< Total simulation runs.
  std::uint64_t samples_used = 0;   ///< Evidence-consistent runs.
  sim::Time completion_time = 0;
  bool converged = false;
};

InferenceResult run_logic_sampling(const BeliefNetwork& net,
                                   const std::vector<Evidence>& evidence,
                                   const std::vector<Query>& queries,
                                   const InferenceConfig& config);

/// Benchmark helpers: deterministic query/evidence selections.  Queries ask
/// for each selected node's default (most likely) value; evidence instantiates
/// nodes at their default values, keeping the rejection rate practical.
std::vector<Query> default_queries(const BeliefNetwork& net, int count,
                                   std::uint64_t seed);
std::vector<Evidence> default_evidence(const BeliefNetwork& net, int count,
                                       std::uint64_t seed);

}  // namespace nscc::bayes
