// Network generators reproducing the paper's Table 2 test set.
//
// A, AA and C are "randomly generated" networks following Kozlov & Singh
// [12] as the paper describes: conceptually a completely interconnected DAG
// whose edges are deleted at random until the target edge count remains.
// The Hailfinder network itself is proprietary-era and its hosting site is
// gone, so make_hailfinder_like() synthesises a network matching Table 2's
// published structural statistics (56 nodes, ~1.2 edges/node, 4 values per
// node) with strongly skewed CPTs, as expected of a real diagnostic model —
// the property that makes default-value speculation effective (DESIGN.md
// records this substitution).
#pragma once

#include <cstdint>

#include "bayes/network.hpp"

namespace nscc::bayes {

struct RandomNetworkConfig {
  int nodes = 54;
  /// Target total edge count (Table 2 lists edges *per node*).
  int edges = 119;
  int cardinality = 2;
  /// Maximum parents per node, bounding CPT size (2^k rows for binary).
  int max_parents = 8;
  /// CPT skew: 0 = near-uniform rows, 1 = heavily skewed rows.
  double skew = 0.25;
  std::uint64_t seed = 1;
};

/// Random DAG per the paper's recipe, with random CPTs.
BeliefNetwork make_random_network(const RandomNetworkConfig& config);

/// The paper's three random networks with Table 2's parameters.
BeliefNetwork make_network_a();
BeliefNetwork make_network_aa();
BeliefNetwork make_network_c();

/// Hailfinder-like synthetic diagnostic network (see header comment).
BeliefNetwork make_hailfinder_like();

}  // namespace nscc::bayes
