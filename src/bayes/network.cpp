#include "bayes/network.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace nscc::bayes {

NodeId BeliefNetwork::add_node(std::string name, int cardinality) {
  if (cardinality < 2) {
    throw std::invalid_argument("BeliefNetwork: cardinality must be >= 2");
  }
  Node n;
  n.name = std::move(name);
  n.cardinality = cardinality;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void BeliefNetwork::set_parents(NodeId id, std::vector<NodeId> parents) {
  for (NodeId p : parents) {
    if (p < 0 || p >= size() || p == id) {
      throw std::invalid_argument("BeliefNetwork: bad parent id");
    }
  }
  nodes_.at(static_cast<std::size_t>(id)).parents = std::move(parents);
}

void BeliefNetwork::set_cpt(NodeId id, std::vector<double> cpt) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  const std::size_t expected =
      cpt_rows(id) * static_cast<std::size_t>(n.cardinality);
  if (cpt.size() != expected) {
    throw std::invalid_argument("BeliefNetwork: CPT size mismatch");
  }
  n.cpt = std::move(cpt);
}

std::size_t BeliefNetwork::cpt_rows(NodeId id) const {
  const Node& n = node(id);
  std::size_t rows = 1;
  for (NodeId p : n.parents) {
    rows *= static_cast<std::size_t>(node(p).cardinality);
  }
  return rows;
}

std::size_t BeliefNetwork::cpt_row(
    NodeId id, const std::vector<int>& parent_values) const {
  const Node& n = node(id);
  if (parent_values.size() != n.parents.size()) {
    throw std::invalid_argument("BeliefNetwork: parent value count mismatch");
  }
  std::size_t row = 0;
  for (std::size_t i = 0; i < n.parents.size(); ++i) {
    row = row * static_cast<std::size_t>(node(n.parents[i]).cardinality) +
          static_cast<std::size_t>(parent_values[i]);
  }
  return row;
}

double BeliefNetwork::conditional(
    NodeId id, int value, const std::vector<int>& parent_values) const {
  const Node& n = node(id);
  const std::size_t row = cpt_row(id, parent_values);
  return n.cpt.at(row * static_cast<std::size_t>(n.cardinality) +
                  static_cast<std::size_t>(value));
}

int BeliefNetwork::sample_node(NodeId id, const std::vector<int>& assignment,
                               util::Xoshiro256& rng) const {
  const Node& n = node(id);
  std::size_t row = 0;
  for (NodeId p : n.parents) {
    row = row * static_cast<std::size_t>(node(p).cardinality) +
          static_cast<std::size_t>(assignment[static_cast<std::size_t>(p)]);
  }
  const double* probs =
      n.cpt.data() + row * static_cast<std::size_t>(n.cardinality);
  double ball = rng.uniform01();
  for (int v = 0; v < n.cardinality - 1; ++v) {
    ball -= probs[v];
    if (ball < 0.0) return v;
  }
  return n.cardinality - 1;
}

std::vector<NodeId> BeliefNetwork::topological_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  const auto kids = children();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    indegree[i] = static_cast<int>(nodes_[i].parents.size());
  }
  std::queue<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId u = ready.front();
    ready.pop();
    order.push_back(u);
    for (NodeId c : kids[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) ready.push(c);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("BeliefNetwork: graph has a cycle");
  }
  return order;
}

std::vector<std::vector<NodeId>> BeliefNetwork::children() const {
  std::vector<std::vector<NodeId>> kids(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId p : nodes_[i].parents) {
      kids[static_cast<std::size_t>(p)].push_back(static_cast<NodeId>(i));
    }
  }
  return kids;
}

int BeliefNetwork::edge_count() const noexcept {
  int edges = 0;
  for (const Node& n : nodes_) edges += static_cast<int>(n.parents.size());
  return edges;
}

double BeliefNetwork::edges_per_node() const noexcept {
  return nodes_.empty() ? 0.0
                        : static_cast<double>(edge_count()) /
                              static_cast<double>(nodes_.size());
}

double BeliefNetwork::average_cardinality() const noexcept {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const Node& n : nodes_) sum += n.cardinality;
  return sum / static_cast<double>(nodes_.size());
}

std::vector<int> BeliefNetwork::default_values() const {
  std::vector<int> defaults(nodes_.size(), 0);
  for (NodeId id : topological_order()) {
    const Node& n = node(id);
    std::size_t row = 0;
    for (NodeId p : n.parents) {
      row = row * static_cast<std::size_t>(node(p).cardinality) +
            static_cast<std::size_t>(defaults[static_cast<std::size_t>(p)]);
    }
    const double* probs =
        n.cpt.data() + row * static_cast<std::size_t>(n.cardinality);
    defaults[static_cast<std::size_t>(id)] = static_cast<int>(
        std::max_element(probs, probs + n.cardinality) - probs);
  }
  return defaults;
}

void BeliefNetwork::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const std::size_t expected =
        cpt_rows(static_cast<NodeId>(i)) *
        static_cast<std::size_t>(n.cardinality);
    if (n.cpt.size() != expected) {
      throw std::logic_error("BeliefNetwork: node " + n.name +
                             " has wrong CPT size");
    }
    for (std::size_t row = 0; row * n.cardinality < n.cpt.size(); ++row) {
      double sum = 0.0;
      for (int v = 0; v < n.cardinality; ++v) {
        const double p =
            n.cpt[row * static_cast<std::size_t>(n.cardinality) +
                  static_cast<std::size_t>(v)];
        if (p < 0.0 || p > 1.0) {
          throw std::logic_error("BeliefNetwork: probability out of range");
        }
        sum += p;
      }
      if (std::fabs(sum - 1.0) > 1e-6) {
        throw std::logic_error("BeliefNetwork: CPT row does not sum to 1");
      }
    }
  }
  (void)topological_order();  // Throws on cycles.
}

}  // namespace nscc::bayes
