#include "bayes/logic_sampling.hpp"

#include <algorithm>
#include <set>

namespace nscc::bayes {

InferenceResult run_logic_sampling(const BeliefNetwork& net,
                                   const std::vector<Evidence>& evidence,
                                   const std::vector<Query>& queries,
                                   const InferenceConfig& config) {
  util::Xoshiro256 rng(config.seed);
  const auto order = net.topological_order();

  std::vector<int> assignment(static_cast<std::size_t>(net.size()), 0);
  std::vector<std::uint64_t> hits(queries.size(), 0);

  InferenceResult result;
  sim::Time now = 0;
  util::Xoshiro256 stall_rng(config.seed ^ 0x57a11ULL);
  const auto per_sample = static_cast<sim::Time>(
      static_cast<double>(static_cast<sim::Time>(net.size()) *
                          config.cost_per_node_sample) *
      config.node_speed);

  auto converged = [&](std::uint64_t used) {
    if (used == 0) return false;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto ci = util::proportion_ci(hits[q], used, config.confidence);
      if (ci.half_width() > config.precision) return false;
    }
    return true;
  };

  while (result.samples_drawn < config.max_samples) {
    for (NodeId id : order) {
      assignment[static_cast<std::size_t>(id)] =
          net.sample_node(id, assignment, rng);
    }
    ++result.samples_drawn;
    now += per_sample;
    if (stall_rng.bernoulli(config.stall_probability)) {
      now += static_cast<sim::Time>(
          stall_rng.uniform(static_cast<double>(config.stall_min),
                            static_cast<double>(config.stall_max)));
    }

    bool consistent = true;
    for (const Evidence& e : evidence) {
      if (assignment[static_cast<std::size_t>(e.node)] != e.value) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      ++result.samples_used;
      for (std::size_t q = 0; q < queries.size(); ++q) {
        if (assignment[static_cast<std::size_t>(queries[q].node)] ==
            queries[q].value) {
          ++hits[q];
        }
      }
    }

    if (result.samples_drawn % static_cast<std::uint64_t>(
                                   config.check_interval) ==
        0) {
      if (converged(result.samples_used)) {
        result.converged = true;
        break;
      }
    }
  }
  if (!result.converged) result.converged = converged(result.samples_used);

  result.completion_time = now;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    QueryEstimate est;
    est.query = queries[q];
    est.probability = result.samples_used == 0
                          ? 0.0
                          : static_cast<double>(hits[q]) /
                                static_cast<double>(result.samples_used);
    est.ci =
        util::proportion_ci(hits[q], result.samples_used, config.confidence);
    result.estimates.push_back(est);
  }
  return result;
}

std::vector<Query> default_queries(const BeliefNetwork& net, int count,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const auto defaults = net.default_values();
  std::set<NodeId> chosen;
  // Prefer sink-ish nodes (late in topological order), like diagnostic
  // queries; fall back to random picks.
  const auto order = net.topological_order();
  for (int i = static_cast<int>(order.size()) - 1;
       i >= 0 && static_cast<int>(chosen.size()) < count; --i) {
    if (rng.bernoulli(0.5)) chosen.insert(order[static_cast<std::size_t>(i)]);
  }
  for (NodeId id = 0; static_cast<int>(chosen.size()) < count && id < net.size();
       ++id) {
    chosen.insert(id);
  }
  std::vector<Query> queries;
  for (NodeId id : chosen) {
    queries.push_back({id, defaults[static_cast<std::size_t>(id)]});
  }
  return queries;
}

std::vector<Evidence> default_evidence(const BeliefNetwork& net, int count,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xeuLL);
  const auto defaults = net.default_values();
  const auto order = net.topological_order();
  std::set<NodeId> chosen;
  // Evidence on root-ish nodes at their most likely value keeps the
  // rejection rate tolerable for plain logic sampling.
  for (std::size_t i = 0;
       i < order.size() && static_cast<int>(chosen.size()) < count; ++i) {
    if (rng.bernoulli(0.5)) chosen.insert(order[i]);
  }
  std::vector<Evidence> evidence;
  for (NodeId id : chosen) {
    evidence.push_back({id, defaults[static_cast<std::size_t>(id)]});
  }
  return evidence;
}

}  // namespace nscc::bayes
