#include "bayes/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace nscc::bayes {

namespace {

/// Marsaglia-Tsang gamma sampler (shape alpha, scale 1).
double sample_gamma(double alpha, util::Xoshiro256& rng) {
  if (alpha < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = rng.uniform01();
    return sample_gamma(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

/// One CPT row ~ Dirichlet(alpha,...,alpha); small alpha = skewed rows.
std::vector<double> dirichlet_row(int k, double alpha, util::Xoshiro256& rng) {
  std::vector<double> row(static_cast<std::size_t>(k));
  double sum = 0.0;
  for (double& p : row) {
    p = sample_gamma(alpha, rng);
    sum += p;
  }
  for (double& p : row) p /= sum;
  return row;
}

void fill_random_cpts(BeliefNetwork& net, double skew, util::Xoshiro256& rng) {
  const double alpha = std::max(0.05, 2.0 * (1.0 - skew));
  for (NodeId id = 0; id < net.size(); ++id) {
    const Node& n = net.node(id);
    std::vector<double> cpt;
    cpt.reserve(net.cpt_rows(id) * static_cast<std::size_t>(n.cardinality));
    for (std::size_t row = 0; row < net.cpt_rows(id); ++row) {
      const auto r = dirichlet_row(n.cardinality, alpha, rng);
      cpt.insert(cpt.end(), r.begin(), r.end());
    }
    net.set_cpt(id, std::move(cpt));
  }
}

}  // namespace

BeliefNetwork make_random_network(const RandomNetworkConfig& config) {
  util::Xoshiro256 rng(config.seed);
  BeliefNetwork net;
  for (int i = 0; i < config.nodes; ++i) {
    net.add_node("n" + std::to_string(i), config.cardinality);
  }

  // Random topological permutation, then sample the surviving edges of the
  // "complete DAG minus random deletions" uniformly: shuffle all ordered
  // pairs and keep the first `edges` that respect the parent cap.
  std::vector<int> position(static_cast<std::size_t>(config.nodes));
  std::iota(position.begin(), position.end(), 0);
  for (std::size_t i = position.size(); i > 1; --i) {
    std::swap(position[i - 1], position[rng.below(i)]);
  }

  struct Edge {
    NodeId from;
    NodeId to;
  };
  std::vector<Edge> candidates;
  for (int u = 0; u < config.nodes; ++u) {
    for (int v = 0; v < config.nodes; ++v) {
      if (position[static_cast<std::size_t>(u)] <
          position[static_cast<std::size_t>(v)]) {
        candidates.push_back({u, v});
      }
    }
  }
  for (std::size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng.below(i)]);
  }

  std::vector<std::vector<NodeId>> parents(
      static_cast<std::size_t>(config.nodes));
  int placed = 0;
  for (const Edge& e : candidates) {
    if (placed >= config.edges) break;
    auto& plist = parents[static_cast<std::size_t>(e.to)];
    if (static_cast<int>(plist.size()) >= config.max_parents) continue;
    plist.push_back(e.from);
    ++placed;
  }
  for (int v = 0; v < config.nodes; ++v) {
    net.set_parents(v, parents[static_cast<std::size_t>(v)]);
  }

  fill_random_cpts(net, config.skew, rng);
  net.validate();
  return net;
}

BeliefNetwork make_network_a() {
  RandomNetworkConfig c;
  c.nodes = 54;
  c.edges = 119;  // 2.2 edges per node.
  c.cardinality = 2;
  c.skew = 0.55;
  c.seed = 0xA;
  return make_random_network(c);
}

BeliefNetwork make_network_aa() {
  RandomNetworkConfig c;
  c.nodes = 54;
  c.edges = 130;  // 2.4 edges per node.
  c.cardinality = 2;
  c.skew = 0.55;
  c.seed = 0xAA;
  return make_random_network(c);
}

BeliefNetwork make_network_c() {
  RandomNetworkConfig c;
  c.nodes = 54;
  c.edges = 108;  // 2.0 edges per node.
  c.cardinality = 2;
  c.skew = 0.55;
  c.seed = 0xC;
  return make_random_network(c);
}

BeliefNetwork make_hailfinder_like() {
  // Two loosely coupled diagnostic sub-models (real Hailfinder is modular),
  // 56 nodes, 4 values each, ~1.2 edges/node, few cross edges so the
  // 2-way edge-cut lands near Table 2's value of 4.
  util::Xoshiro256 rng(0x4a11);
  BeliefNetwork net;
  constexpr int kNodes = 56;
  constexpr int kHalf = kNodes / 2;
  for (int i = 0; i < kNodes; ++i) {
    net.add_node("h" + std::to_string(i), 4);
  }

  std::vector<std::vector<NodeId>> parents(kNodes);
  auto add_cluster_edges = [&](int base, int count) {
    int placed = 0;
    while (placed < count) {
      const int u = base + static_cast<int>(rng.below(kHalf));
      const int v = base + static_cast<int>(rng.below(kHalf));
      if (u >= v) continue;  // Node index order is the topological order.
      auto& plist = parents[static_cast<std::size_t>(v)];
      if (static_cast<int>(plist.size()) >= 3) continue;
      if (std::find(plist.begin(), plist.end(), u) != plist.end()) continue;
      plist.push_back(u);
      ++placed;
    }
  };
  add_cluster_edges(0, 32);
  add_cluster_edges(kHalf, 32);
  // Three cross edges from the first module into the second.
  for (const auto& [u, v] : {std::pair{5, kHalf + 3}, std::pair{12, kHalf + 9},
                             std::pair{20, kHalf + 15}}) {
    parents[static_cast<std::size_t>(v)].push_back(u);
  }
  for (int v = 0; v < kNodes; ++v) {
    net.set_parents(v, parents[static_cast<std::size_t>(v)]);
  }

  // Diagnostic-model CPTs: most rows concentrate on outcome 0 ("normal"),
  // so one value dominates marginally — the property that makes
  // default-value speculation pay off and lets adaptive sampling stop
  // early (Table 2's much smaller Hailfinder inference time).
  for (NodeId id = 0; id < net.size(); ++id) {
    const Node& n = net.node(id);
    std::vector<double> cpt;
    for (std::size_t row = 0; row < net.cpt_rows(id); ++row) {
      std::vector<double> r(static_cast<std::size_t>(n.cardinality));
      if (rng.bernoulli(0.93)) {
        // "Normal" row: outcome 0 dominates strongly.
        const double p0 = rng.uniform(0.95, 0.995);
        r[0] = p0;
        double rest = 0.0;
        for (int v = 1; v < n.cardinality; ++v) {
          r[static_cast<std::size_t>(v)] = rng.uniform01();
          rest += r[static_cast<std::size_t>(v)];
        }
        for (int v = 1; v < n.cardinality; ++v) {
          r[static_cast<std::size_t>(v)] *= (1.0 - p0) / rest;
        }
      } else {
        // "Fault" row: skewed but arbitrary dominant value.
        r = dirichlet_row(n.cardinality, 0.3, rng);
      }
      cpt.insert(cpt.end(), r.begin(), r.end());
    }
    net.set_cpt(id, std::move(cpt));
  }
  net.validate();
  return net;
}

}  // namespace nscc::bayes
