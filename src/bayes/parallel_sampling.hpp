// Parallel logic sampling with default-value speculation and Time-Warp
// style rollback (paper Section 3.2), in three implementation styles.
//
// The network is partitioned across simulated nodes.  Iteration t of task k
// samples k's nodes; remote parents take the peer's iteration-(t-1) values.
// Interface values (plus a local evidence-consistency bit) are published
// every iteration through a DSM shared location per task:
//
//   * kSynchronous  — barrier per iteration, Global_Read(t-1, 0): iteration
//                     t waits for every peer's iteration-(t-1) block;
//   * kAsynchronous — never waits: iteration t uses the freshest received
//                     block (or the CPT-derived default values before any
//                     arrives) and gambles it equals iteration t-1's values;
//   * kPartialAsync — Global_Read(t-1, age): the gamble is bounded to at
//                     most `age` iterations of staleness.
//
// When a peer's true iteration-u block arrives and differs from the values
// an already-computed iteration used, the task rolls back: iterations u+1
// onward are recomputed with the corrected inputs and the corrected
// interface blocks are re-published (superseding the earlier ones, which is
// how receivers detect and cascade the rollback — the anti-message role).
// Per-(iteration, node) counter-based randomness makes recomputation
// deterministic, so values only change downstream of corrected inputs.
//
// Query tallies count only *validated* iterations (all true input blocks
// received and matched), and the run's completion time is the virtual time
// at which every owner's queries reached the configured CI precision on
// validated samples.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/logic_sampling.hpp"
#include "bayes/partitioner.hpp"
#include "dsm/shared_space.hpp"
#include "harness/run_config.hpp"
#include "recovery/recovery.hpp"
#include "rt/vm.hpp"

namespace nscc::bayes {

/// Interface-block location scheme: task p's phase-`phase` block.  Public
/// so the harness tolerance contract audits the same locations the sampler
/// shares; kMaxPhases bounds the guard phases per task.
inline constexpr int kMaxPhases = 16;
[[nodiscard]] inline dsm::LocationId block_loc(int p, int phase) noexcept {
  return 500 + p * kMaxPhases + phase;
}

/// Mode, age, seed, and the propagation policy live in the embedded
/// harness::RunConfig.  The sampler honours only the policy's read_timeout
/// (the Global_Read starvation watchdog); interface blocks are never
/// coalesced — rollback detection needs every superseding publication.
struct ParallelInferenceConfig : harness::RunConfig {
  int parts = 2;
  /// Iterations every task runs (fixed, so termination needs no global
  /// agreement; completion is extracted post hoc from CI checkpoints).
  std::uint64_t iterations = 12000;
  /// Interface-update batching: iterations per published message.  0 = auto
  /// (sync and async send every iteration — lockstep needs it and the
  /// paper's uncontrolled async floods; partial async amortises messages
  /// within its staleness budget, ~age/2 capped at 16).  Sync always uses 1.
  int batch = 0;
  double confidence = 0.90;
  double precision = 0.01;
  int check_interval = 250;
  sim::Time cost_per_node_sample = 26 * sim::kMicrosecond;
  /// Bookkeeping cost per rolled-back iteration (state restore).
  sim::Time rollback_overhead = 120 * sim::kMicrosecond;
  /// Persistent node speed spread and per-iteration jitter, as in the GA.
  double node_speed_spread = 0.15;
  double per_iter_jitter = 0.10;
  /// Occasional long stalls (OS daemons / paging on the paper's era nodes):
  /// with this probability per iteration, a task stalls for a uniform
  /// duration in [stall_min, stall_max].  These transients are what let an
  /// unthrottled asynchronous run stray far ahead and pay deep rollbacks.
  double stall_probability = 0.005;
  sim::Time stall_min = 10 * sim::kMillisecond;
  sim::Time stall_max = 60 * sim::kMillisecond;
  PartitionConfig partition;
};

struct ParallelInferenceResult {
  /// Virtual time when every task's queries met the CI target (full run
  /// time when some never did — see `converged`).
  sim::Time completion_time = 0;
  sim::Time full_run_time = 0;
  bool converged = false;
  bool deadlocked = false;

  std::vector<QueryEstimate> estimates;  ///< On validated samples.
  std::uint64_t iterations = 0;          ///< Per task (fixed).
  std::uint64_t validated_samples = 0;   ///< Min over tasks.
  std::uint64_t rollbacks = 0;
  std::uint64_t rolled_back_iterations = 0;
  std::uint64_t nodes_resampled = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  double bus_utilization = 0.0;
  double mean_warp = 0.0;
  int edge_cut = 0;
  std::uint64_t read_escalations = 0;
  /// Crash-recovery diagnostics (zero unless config.recovery was enabled).
  recovery::Stats recovery;
  std::uint64_t degraded_reads = 0;
  /// Damaged DSM frames quarantined (integrity checking enabled only).
  std::uint64_t integrity_dropped = 0;
  /// Consistency-model diagnostics (zero under the default nonstrict
  /// model): updates parked until an acquire, parked updates published at
  /// acquires, and release stamps that arrived out of order.
  std::uint64_t updates_parked = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t ooo_updates = 0;
  /// Partition diagnostics (zero unless the fault plan scheduled
  /// partition/blackhole windows).
  std::uint64_t partition_drops = 0;        ///< Frames cut by the split.
  std::uint64_t partition_stale_served = 0; ///< Minority-side stale serves.
  std::uint64_t heal_frames = 0;            ///< Anti-entropy republishes.
  std::uint64_t diverged_locations = 0;     ///< Reader locations diverged.
  std::uint64_t reconciled_locations = 0;   ///< Diverged marks later healed.
  /// Tolerance-contract violations flagged by the staleness sanitizer
  /// (zero when the machine runs with --sanitize=off).
  std::uint64_t sanitize_violations = 0;
};

ParallelInferenceResult run_parallel_logic_sampling(
    const BeliefNetwork& net, const std::vector<Evidence>& evidence,
    const std::vector<Query>& queries, const ParallelInferenceConfig& config,
    rt::MachineConfig machine, double loader_offered_bps = 0.0);

}  // namespace nscc::bayes
