// Bayesian belief networks (paper Section 3.2): a DAG of discrete-valued
// event nodes, each with a conditional probability table (CPT) over its
// parents' value combinations.  Supports ancestral (logic) sampling and the
// structural statistics reported in Table 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nscc::bayes {

using NodeId = int;

struct Node {
  std::string name;
  int cardinality = 2;          ///< Number of outcomes.
  std::vector<NodeId> parents;  ///< In CPT index order.
  /// CPT: rows are parent-value combinations (mixed-radix, first parent
  /// most significant), each row holds `cardinality` probabilities.
  std::vector<double> cpt;
};

class BeliefNetwork {
 public:
  /// Add a node; returns its id.  Parents are set separately.
  NodeId add_node(std::string name, int cardinality);

  /// Set the parent list (must reference existing nodes; the final graph
  /// must be acyclic — validated by topological_order()).
  void set_parents(NodeId id, std::vector<NodeId> parents);

  /// Set the full CPT (size must be cpt_rows(id) * cardinality; rows must
  /// each sum to ~1).
  void set_cpt(NodeId id, std::vector<double> cpt);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }

  [[nodiscard]] std::size_t cpt_rows(NodeId id) const;

  /// Row index for the given parent values (same order as node.parents).
  [[nodiscard]] std::size_t cpt_row(NodeId id,
                                    const std::vector<int>& parent_values) const;

  /// P(node = value | parents = parent_values).
  [[nodiscard]] double conditional(NodeId id, int value,
                                   const std::vector<int>& parent_values) const;

  /// Sample a value for `id` given its parents' sampled values (from the
  /// full assignment vector, indexed by node id).
  [[nodiscard]] int sample_node(NodeId id, const std::vector<int>& assignment,
                                util::Xoshiro256& rng) const;

  /// Topological order; throws std::logic_error if the graph has a cycle.
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// Children lists (derived from parents).
  [[nodiscard]] std::vector<std::vector<NodeId>> children() const;

  [[nodiscard]] int edge_count() const noexcept;
  [[nodiscard]] double edges_per_node() const noexcept;
  [[nodiscard]] double average_cardinality() const noexcept;

  /// Per-node most likely value under an ancestral default sweep: defaults
  /// are computed in topological order by following the CPT argmax given
  /// the parents' defaults (the paper's default values for speculation).
  [[nodiscard]] std::vector<int> default_values() const;

  /// Validate CPT sizes and row normalisation; throws std::logic_error.
  void validate() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace nscc::bayes
