#include "bayes/parallel_sampling.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "harness/policy.hpp"
#include "net/load_generator.hpp"
#include "obs/obs.hpp"
#include "recovery/recovery.hpp"
#include "util/rng.hpp"

namespace nscc::bayes {

namespace {

/// Deterministic per-(iteration, node) uniform draw: rollback recomputation
/// re-derives identical randomness, so re-sampled values change only
/// downstream of corrected inputs.
double counter_uniform(std::uint64_t seed, std::uint64_t iter, NodeId node) {
  util::SplitMix64 sm(seed ^ (iter * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<std::uint64_t>(node) * 0xC2B2AE3D27D4EB4FULL));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Communication phase of each node: the number of cross-partition edges on
/// the longest ancestor path.  Within one iteration (one joint sample), a
/// node at phase k can be sampled once the peers' phase-(k-1) interface
/// values for that iteration are known, so a run pipelines through the
/// network in at most max-phase+1 exchange waves (paper Section 3.2:
/// processors receive parents' values and send their nodes' values within
/// each run).
std::vector<int> node_phases(const BeliefNetwork& net, const Partition& part) {
  std::vector<int> phase(static_cast<std::size_t>(net.size()), 0);
  for (NodeId v : net.topological_order()) {
    int ph = 0;
    for (NodeId p : net.node(v).parents) {
      const int cross = part.part_of(p) != part.part_of(v) ? 1 : 0;
      ph = std::max(ph, phase[static_cast<std::size_t>(p)] + cross);
    }
    phase[static_cast<std::size_t>(v)] = ph;
  }
  return phase;
}

struct TaskOutcome {
  std::vector<QueryEstimate> estimates;
  sim::Time first_met_time = -1;
  std::uint64_t validated = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t rolled_back_iterations = 0;
  std::uint64_t nodes_resampled = 0;
  dsm::DsmStats dsm;
};

}  // namespace

ParallelInferenceResult run_parallel_logic_sampling(
    const BeliefNetwork& net, const std::vector<Evidence>& evidence,
    const std::vector<Query>& queries, const ParallelInferenceConfig& config,
    rt::MachineConfig machine, double loader_offered_bps) {
  const int P = config.parts;
  machine.ntasks = P;
  machine.seed = config.seed;

  PartitionConfig pc = config.partition;
  pc.parts = P;
  const Partition part = partition_network(net, pc);

  // Global views every task derives identically.
  const auto topo = net.topological_order();
  const auto defaults = net.default_values();
  const auto phase = node_phases(net, part);
  const int max_phase = *std::max_element(phase.begin(), phase.end());
  if (max_phase + 1 >= kMaxPhases) {
    throw std::logic_error("parallel sampling: partition needs too many phases");
  }

  // exports[p][k]: partition p's interface nodes of phase k (sorted), i.e.
  // p's nodes with a child in another partition.
  std::vector<std::vector<std::vector<NodeId>>> exports(
      static_cast<std::size_t>(P),
      std::vector<std::vector<NodeId>>(static_cast<std::size_t>(max_phase + 1)));
  for (NodeId v = 0; v < net.size(); ++v) {
    for (NodeId u : net.node(v).parents) {
      if (part.part_of(u) != part.part_of(v)) {
        auto& list = exports[static_cast<std::size_t>(part.part_of(u))]
                            [static_cast<std::size_t>(
                                phase[static_cast<std::size_t>(u)])];
        if (std::find(list.begin(), list.end(), u) == list.end()) {
          list.push_back(u);
        }
      }
    }
  }
  for (auto& per_part : exports) {
    for (auto& list : per_part) std::sort(list.begin(), list.end());
  }
  // The last phase block also carries the sender's evidence bit and acts as
  // the per-iteration completion marker, so it is always published.
  const int marker_phase = max_phase;

  rt::VirtualMachine vm(machine);

  std::unique_ptr<recovery::Coordinator> coord;
  if (config.recovery.enabled()) {
    coord = std::make_unique<recovery::Coordinator>(vm, config.recovery);
  }
  recovery::Coordinator* rc = coord.get();

  util::Xoshiro256 skew_rng(config.seed ^ 0x5ca1eULL);
  std::vector<double> speed(static_cast<std::size_t>(P));
  for (double& s : speed) {
    s = 1.0 + config.node_speed_spread * skew_rng.uniform01();
  }

  std::vector<TaskOutcome> outcomes(static_cast<std::size_t>(P));
  const auto iterations = static_cast<std::int64_t>(config.iterations);

  for (int me = 0; me < P; ++me) {
    vm.add_task("part" + std::to_string(me), [&, me](rt::Task& task) {
      TaskOutcome& out = outcomes[static_cast<std::size_t>(me)];
      util::Xoshiro256 jitter_rng = task.rng().split(0xba5e);
      const double my_speed = speed[static_cast<std::size_t>(me)];
      const int N = net.size();

      // ---- static layout ---------------------------------------------------
      std::vector<std::vector<NodeId>> my_by_phase(
          static_cast<std::size_t>(max_phase + 1));
      std::vector<NodeId> my_nodes;
      for (NodeId v : topo) {
        if (part.part_of(v) == me) {
          my_nodes.push_back(v);
          my_by_phase[static_cast<std::size_t>(
                          phase[static_cast<std::size_t>(v)])]
              .push_back(v);
        }
      }
      std::vector<Evidence> my_evidence;
      for (const Evidence& e : evidence) {
        if (part.part_of(e.node) == me) my_evidence.push_back(e);
      }
      std::vector<Query> my_queries;
      for (const Query& q : queries) {
        if (part.part_of(q.node) == me) my_queries.push_back(q);
      }

      std::vector<int> all_others;
      for (int p = 0; p < P; ++p) {
        if (p != me) all_others.push_back(p);
      }

      // A phase block is "live" when non-empty or the marker phase.
      auto live = [&](int p, int k) {
        return !exports[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)]
                    .empty() ||
               k == marker_phase;
      };
      // Highest live phase of peer p that is <= k-1 (what a phase-k sampler
      // must wait for); -1 when none.
      auto guard_phase = [&](int p, int k) {
        for (int j = k - 1; j >= 0; --j) {
          if (live(p, j)) return j;
        }
        return -1;
      };

      dsm::SharedSpace space(
          task, harness::make_policy(config, {.recovery = rc, .self = me}));
      for (int k = 0; k <= max_phase; ++k) {
        if (live(me, k)) space.declare_written(block_loc(me, k), all_others);
      }
      for (int p : all_others) {
        for (int k = 0; k <= max_phase; ++k) {
          if (live(p, k)) space.declare_read(block_loc(p, k), p);
        }
      }

      // ---- history -----------------------------------------------------------
      std::vector<std::vector<std::int8_t>> samples(static_cast<std::size_t>(N));
      for (NodeId v : my_nodes) {
        samples[static_cast<std::size_t>(v)].assign(
            static_cast<std::size_t>(iterations), -1);
      }
      // Authoritative received value / value actually used, per remote
      // interface node per iteration (same-iteration semantics).
      std::vector<std::vector<std::int8_t>> received(static_cast<std::size_t>(N));
      std::vector<std::vector<std::int8_t>> used(static_cast<std::size_t>(N));
      std::vector<std::int8_t> latest_value(static_cast<std::size_t>(N), -1);
      std::vector<std::int64_t> latest_iter(static_cast<std::size_t>(N), -1);
      for (int p : all_others) {
        for (int k = 0; k <= max_phase; ++k) {
          for (NodeId v :
               exports[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)]) {
            received[static_cast<std::size_t>(v)].assign(
                static_cast<std::size_t>(iterations), -1);
            used[static_cast<std::size_t>(v)].assign(
                static_cast<std::size_t>(iterations), -1);
          }
        }
      }
      std::vector<std::int8_t> evidence_ok_local(
          static_cast<std::size_t>(iterations), -1);
      std::vector<std::vector<std::int8_t>> evidence_ok_remote(
          static_cast<std::size_t>(P));
      // Marker-phase receipt: implies (FIFO bus) all earlier phase blocks of
      // that iteration have arrived too.
      std::vector<std::vector<bool>> have_marker(static_cast<std::size_t>(P));
      std::vector<std::int64_t> contig(static_cast<std::size_t>(P), -1);
      for (int p : all_others) {
        evidence_ok_remote[static_cast<std::size_t>(p)].assign(
            static_cast<std::size_t>(iterations), -1);
        have_marker[static_cast<std::size_t>(p)].assign(
            static_cast<std::size_t>(iterations), false);
      }
      // Last published payload per (phase, iteration) for change detection.
      std::vector<std::vector<std::vector<std::int8_t>>> published(
          static_cast<std::size_t>(max_phase + 1),
          std::vector<std::vector<std::int8_t>>(
              static_cast<std::size_t>(iterations)));

      std::int64_t last_computed = -1;

      // dirty[t] = remote inputs of iteration t whose truth differed from
      // the value used (iterations are independent joint samples, so only
      // iteration t's dependents need recomputation).
      std::map<std::int64_t, std::vector<NodeId>> dirty;

      // Per remote interface node: my nodes reachable through my-partition
      // paths (the dependent set to recompute), in topological order.
      std::map<NodeId, std::vector<NodeId>> my_affected;
      {
        const auto kids = net.children();
        for (int p : all_others) {
          for (int k = 0; k <= max_phase; ++k) {
            for (NodeId v :
                 exports[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)]) {
              std::vector<bool> reach(static_cast<std::size_t>(N), false);
              std::vector<NodeId> stack;
              for (NodeId c : kids[static_cast<std::size_t>(v)]) {
                if (part.part_of(c) == me) stack.push_back(c);
              }
              while (!stack.empty()) {
                const NodeId u = stack.back();
                stack.pop_back();
                if (reach[static_cast<std::size_t>(u)]) continue;
                reach[static_cast<std::size_t>(u)] = true;
                for (NodeId c : kids[static_cast<std::size_t>(u)]) {
                  if (part.part_of(c) == me) stack.push_back(c);
                }
              }
              std::vector<NodeId> affected;
              for (NodeId u : my_nodes) {
                if (reach[static_cast<std::size_t>(u)]) affected.push_back(u);
              }
              my_affected.emplace(v, std::move(affected));
            }
          }
        }
      }

      // ---- observer: every arriving block, including corrections -------------
      // Payload: [start_iter i64][count u32] then per iteration the phase's
      // exported node values (+ evidence bit on the marker phase).
      space.set_update_observer([&](dsm::LocationId loc, dsm::Iteration,
                                    rt::Packet& data) {
        const int src = (static_cast<int>(loc) - 500) / kMaxPhases;
        const int k = (static_cast<int>(loc) - 500) % kMaxPhases;
        const std::int64_t start = data.unpack_i64();
        const auto count = static_cast<std::int64_t>(data.unpack_u32());
        for (std::int64_t iter = start; iter < start + count; ++iter) {
          if (iter < 0 || iter >= iterations) continue;
          const auto t = static_cast<std::size_t>(iter);
          for (NodeId v : exports[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(k)]) {
            const auto value = static_cast<std::int8_t>(data.unpack_u8());
            received[static_cast<std::size_t>(v)][t] = value;
            if (iter >= latest_iter[static_cast<std::size_t>(v)]) {
              latest_iter[static_cast<std::size_t>(v)] = iter;
              latest_value[static_cast<std::size_t>(v)] = value;
            }
            // Mismatch against what was consumed (-1 = never consumed yet;
            // covers mid-iteration arrivals too).
            const std::int8_t u8 = used[static_cast<std::size_t>(v)][t];
            if (u8 != -1 && u8 != value) {
              dirty[iter].push_back(v);
            }
          }
          if (k == marker_phase) {
            evidence_ok_remote[static_cast<std::size_t>(src)][t] =
                static_cast<std::int8_t>(data.unpack_u8());
            have_marker[static_cast<std::size_t>(src)][t] = true;
            auto& c = contig[static_cast<std::size_t>(src)];
            while (c + 1 < iterations &&
                   have_marker[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(c + 1)]) {
              ++c;
            }
          }
        }
      });

      // ---- sampling ------------------------------------------------------------
      auto remote_value = [&](NodeId p_node, std::int64_t t) -> int {
        const std::int8_t auth =
            received[static_cast<std::size_t>(p_node)][static_cast<std::size_t>(t)];
        if (auth >= 0) return auth;
        const std::int8_t latest = latest_value[static_cast<std::size_t>(p_node)];
        return latest >= 0 ? latest : defaults[static_cast<std::size_t>(p_node)];
      };

      auto refresh_evidence_bit = [&](std::int64_t t) {
        const auto ti = static_cast<std::size_t>(t);
        std::int8_t ok = 1;
        for (const Evidence& e : my_evidence) {
          if (samples[static_cast<std::size_t>(e.node)][ti] != e.value) {
            ok = 0;
            break;
          }
        }
        evidence_ok_local[ti] = ok;
      };

      auto sample_nodes = [&](std::int64_t t, const std::vector<NodeId>& which) {
        const auto ti = static_cast<std::size_t>(t);
        for (NodeId v : which) {
          const Node& n = net.node(v);
          std::size_t row = 0;
          for (NodeId p : n.parents) {
            int pv = 0;
            if (part.part_of(p) == me) {
              pv = samples[static_cast<std::size_t>(p)][ti];
            } else {
              pv = remote_value(p, t);
              // If a different value for p was already consumed at this
              // iteration (by an earlier wave or recompute pass), its other
              // consumers are now stale: flag p so the rollback machinery
              // re-heals the whole dependent closure.
              auto& slot = used[static_cast<std::size_t>(p)][ti];
              if (slot != -1 && slot != static_cast<std::int8_t>(pv)) {
                dirty[t].push_back(p);
              }
              slot = static_cast<std::int8_t>(pv);
            }
            row = row * static_cast<std::size_t>(net.node(p).cardinality) +
                  static_cast<std::size_t>(pv);
          }
          const double* probs =
              n.cpt.data() + row * static_cast<std::size_t>(n.cardinality);
          double ball =
              counter_uniform(config.seed, static_cast<std::uint64_t>(t), v);
          int value = n.cardinality - 1;
          for (int c = 0; c < n.cardinality - 1; ++c) {
            ball -= probs[c];
            if (ball < 0.0) {
              value = c;
              break;
            }
          }
          samples[static_cast<std::size_t>(v)][ti] =
              static_cast<std::int8_t>(value);
        }
        refresh_evidence_bit(t);
      };

      // ---- publication -----------------------------------------------------------
      int batch = config.batch;
      if (batch <= 0) {
        batch = config.mode == dsm::Mode::kPartialAsync
                    ? std::clamp<int>(static_cast<int>(config.age / 2), 1, 16)
                    : 1;
      }
      if (config.mode == dsm::Mode::kSynchronous) batch = 1;

      auto snapshot = [&](int k, std::int64_t t) {
        const auto ti = static_cast<std::size_t>(t);
        std::vector<std::int8_t> blob;
        for (NodeId v :
             exports[static_cast<std::size_t>(me)][static_cast<std::size_t>(k)]) {
          blob.push_back(samples[static_cast<std::size_t>(v)][ti]);
        }
        if (k == marker_phase) blob.push_back(evidence_ok_local[ti]);
        return blob;
      };
      auto flush_range = [&](int k, std::int64_t from, std::int64_t to) {
        rt::Packet p;
        p.pack_i64(from);
        p.pack_u32(static_cast<std::uint32_t>(to - from + 1));
        for (std::int64_t t = from; t <= to; ++t) {
          for (std::int8_t v :
               published[static_cast<std::size_t>(k)][static_cast<std::size_t>(t)]) {
            p.pack_u8(static_cast<std::uint8_t>(v));
          }
        }
        space.write(block_loc(me, k), to, std::move(p));
      };
      // First iteration not yet flushed, per phase.
      std::vector<std::int64_t> pending_from(
          static_cast<std::size_t>(max_phase + 1), 0);
      auto publish = [&](int k, std::int64_t t) {
        if (!live(me, k)) return;
        const auto blob = snapshot(k, t);
        const auto ti = static_cast<std::size_t>(t);
        auto& pub = published[static_cast<std::size_t>(k)];
        auto& pf = pending_from[static_cast<std::size_t>(k)];
        if (t < pf) {
          // Correction of an already-flushed iteration (anti-message role).
          if (pub[ti] == blob) return;
          pub[ti] = blob;
          flush_range(k, t, t);
          return;
        }
        pub[ti] = blob;
        if (t - pf + 1 >= batch) {
          flush_range(k, pf, t);
          pf = t + 1;
        }
      };

      // Rollback observability: the cascade counters publish through the
      // machine registry and each rollback lands as a trace instant on this
      // task's track (anti-message role, paper Section 3.2).
      obs::Hub* hub =
          task.vm().obs().active() ? &task.vm().obs() : nullptr;
      obs::Counter* rollback_counter =
          hub != nullptr ? &hub->registry().counter("bayes.rollbacks", me)
                         : nullptr;
      obs::Counter* resampled_counter =
          hub != nullptr
              ? &hub->registry().counter("bayes.nodes_resampled", me)
              : nullptr;

      auto handle_rollbacks = [&] {
        while (!dirty.empty()) {
          auto it = dirty.begin();
          const std::int64_t t = it->first;
          std::vector<bool> in_set(static_cast<std::size_t>(N), false);
          for (NodeId v : it->second) {
            for (NodeId u : my_affected.at(v)) {
              in_set[static_cast<std::size_t>(u)] = true;
            }
          }
          dirty.erase(it);
          std::vector<NodeId> affected;
          for (NodeId u : my_nodes) {
            if (in_set[static_cast<std::size_t>(u)]) affected.push_back(u);
          }
          ++out.rollbacks;
          ++out.rolled_back_iterations;
          if (hub != nullptr) {
            rollback_counter->inc();
            resampled_counter->inc(affected.size());
            hub->tracer().instant(me, "rollback", task.now(), "iter", t,
                                  "resampled",
                                  static_cast<std::int64_t>(affected.size()));
          }
          if (!affected.empty()) {
            sample_nodes(t, affected);
            out.nodes_resampled += affected.size();
          } else {
            refresh_evidence_bit(t);
          }
          for (int k = 0; k <= max_phase; ++k) publish(k, t);
          task.compute(static_cast<sim::Time>(
              static_cast<double>(static_cast<sim::Time>(affected.size()) *
                                      config.cost_per_node_sample +
                                  config.rollback_overhead) *
              my_speed));
          space.poll();  // New updates may have arrived during the delay.
        }
      };

      // ---- checkpoints -------------------------------------------------------
      std::vector<std::uint64_t> hits(my_queries.size(), 0);
      auto checkpoint = [&] {
        handle_rollbacks();
        // Validated frontier: marker blocks for every iteration <= v from
        // every peer, and everything locally computed.
        std::int64_t validated = last_computed;
        for (int p : all_others) {
          validated = std::min(validated, contig[static_cast<std::size_t>(p)]);
        }
        std::fill(hits.begin(), hits.end(), 0);
        std::uint64_t used_samples = 0;
        for (std::int64_t t = 0; t <= validated; ++t) {
          const auto ti = static_cast<std::size_t>(t);
          bool ok = evidence_ok_local[ti] == 1;
          for (int p : all_others) {
            ok = ok && evidence_ok_remote[static_cast<std::size_t>(p)][ti] == 1;
          }
          if (!ok) continue;
          ++used_samples;
          for (std::size_t q = 0; q < my_queries.size(); ++q) {
            if (samples[static_cast<std::size_t>(my_queries[q].node)][ti] ==
                my_queries[q].value) {
              ++hits[q];
            }
          }
        }
        out.validated = used_samples;
        bool met = used_samples > 0;
        for (std::size_t q = 0; q < my_queries.size(); ++q) {
          const auto ci =
              util::proportion_ci(hits[q], used_samples, config.confidence);
          if (ci.half_width() > config.precision) met = false;
        }
        if (met && out.first_met_time < 0) out.first_met_time = task.now();
        return used_samples;
      };

      // ---- crash-restart -----------------------------------------------------
      // Full-state checkpoint: the sample history and every consistency
      // structure the anti-message machinery runs on.  Restarting from it
      // is protocol-native — corrections for anything the dead incarnation
      // published but lost locally flow through the ordinary rollback path.
      auto pack_i8s = [](rt::Packet& pk, const std::vector<std::int8_t>& v) {
        for (std::int8_t b : v) pk.pack_u8(static_cast<std::uint8_t>(b));
      };
      auto unpack_i8s = [](rt::Packet& pk, std::vector<std::int8_t>& v) {
        for (auto& b : v) b = static_cast<std::int8_t>(pk.unpack_u8());
      };
      auto each_remote_iface = [&](auto&& fn) {
        for (int p : all_others) {
          for (int k = 0; k <= max_phase; ++k) {
            for (NodeId v : exports[static_cast<std::size_t>(p)]
                                   [static_cast<std::size_t>(k)]) {
              fn(v);
            }
          }
        }
      };
      recovery::FnCheckpoint app(
          [&] {
            rt::Packet pk;
            pk.pack_i64(last_computed);
            for (NodeId v : my_nodes) {
              pack_i8s(pk, samples[static_cast<std::size_t>(v)]);
            }
            pack_i8s(pk, evidence_ok_local);
            each_remote_iface([&](NodeId v) {
              const auto vi = static_cast<std::size_t>(v);
              pack_i8s(pk, received[vi]);
              pack_i8s(pk, used[vi]);
              pk.pack_u8(static_cast<std::uint8_t>(latest_value[vi]));
              pk.pack_i64(latest_iter[vi]);
            });
            for (int p : all_others) {
              const auto pi = static_cast<std::size_t>(p);
              pack_i8s(pk, evidence_ok_remote[pi]);
              for (bool b : have_marker[pi]) pk.pack_u8(b ? 1 : 0);
              pk.pack_i64(contig[pi]);
            }
            for (int k = 0; k <= max_phase; ++k) {
              const auto ki = static_cast<std::size_t>(k);
              for (std::int64_t t = 0; t < iterations; ++t) {
                const auto& blob = published[ki][static_cast<std::size_t>(t)];
                pk.pack_u32(static_cast<std::uint32_t>(blob.size()));
                pack_i8s(pk, blob);
              }
              pk.pack_i64(pending_from[ki]);
            }
            return pk;
          },
          [&](rt::Packet& pk) {
            last_computed = pk.unpack_i64();
            for (NodeId v : my_nodes) {
              unpack_i8s(pk, samples[static_cast<std::size_t>(v)]);
            }
            unpack_i8s(pk, evidence_ok_local);
            each_remote_iface([&](NodeId v) {
              const auto vi = static_cast<std::size_t>(v);
              unpack_i8s(pk, received[vi]);
              unpack_i8s(pk, used[vi]);
              latest_value[vi] = static_cast<std::int8_t>(pk.unpack_u8());
              latest_iter[vi] = pk.unpack_i64();
            });
            for (int p : all_others) {
              const auto pi = static_cast<std::size_t>(p);
              unpack_i8s(pk, evidence_ok_remote[pi]);
              for (std::int64_t t = 0; t < iterations; ++t) {
                have_marker[pi][static_cast<std::size_t>(t)] =
                    pk.unpack_u8() != 0;
              }
              contig[pi] = pk.unpack_i64();
            }
            for (int k = 0; k <= max_phase; ++k) {
              const auto ki = static_cast<std::size_t>(k);
              for (std::int64_t t = 0; t < iterations; ++t) {
                auto& blob = published[ki][static_cast<std::size_t>(t)];
                blob.assign(pk.unpack_u32(), 0);
                unpack_i8s(pk, blob);
              }
              pending_from[ki] = pk.unpack_i64();
            }
          });
      const std::int64_t restored = rc != nullptr ? rc->restore(task, app) : -1;
      if (restored < 0) {
        if (rc != nullptr) rc->maybe_checkpoint(task, 0, app);
      } else {
        // Re-write the newest flushed iteration per phase so the fresh
        // SharedSpace holds a local copy that can serve peer demands.
        for (int k = 0; k <= max_phase; ++k) {
          if (!live(me, k)) continue;
          const std::int64_t pf = pending_from[static_cast<std::size_t>(k)];
          if (pf > 0) flush_range(k, pf - 1, pf - 1);
        }
      }

      // ---- main loop -----------------------------------------------------------
      for (std::int64_t t = restored + 1; t < iterations; ++t) {
        if (config.mode == dsm::Mode::kSynchronous && t > 0) task.barrier();

        for (int k = 0; k <= max_phase; ++k) {
          if (k > 0) {
            for (int p : all_others) {
              const int g = guard_phase(p, k);
              if (g < 0) continue;
              switch (config.mode) {
                case dsm::Mode::kSynchronous:
                  (void)space.global_read(block_loc(p, g), t, 0);
                  break;
                case dsm::Mode::kPartialAsync:
                  // Within the first `age` iterations the gamble is free
                  // (nothing is required yet); afterwards Global_Read
                  // bounds the run-ahead.
                  if (t > config.age) {
                    (void)space.global_read(block_loc(p, g), t, config.age);
                  } else {
                    space.poll();
                  }
                  break;
                case dsm::Mode::kAsynchronous:
                  space.poll();
                  break;
              }
            }
          }
          sample_nodes(t, my_by_phase[static_cast<std::size_t>(k)]);
          if (k == marker_phase) last_computed = t;
          publish(k, t);
        }
        handle_rollbacks();

        const double jitter =
            1.0 + config.per_iter_jitter * jitter_rng.uniform(-1.0, 1.0);
        task.compute(static_cast<sim::Time>(
            static_cast<double>(static_cast<sim::Time>(my_nodes.size()) *
                                config.cost_per_node_sample) *
            my_speed * jitter));
        if (jitter_rng.bernoulli(config.stall_probability)) {
          task.compute(static_cast<sim::Time>(
              jitter_rng.uniform(static_cast<double>(config.stall_min),
                                 static_cast<double>(config.stall_max))));
        }

        if ((t + 1) % config.check_interval == 0 && out.first_met_time < 0) {
          (void)checkpoint();
        }
        if (rc != nullptr) rc->maybe_checkpoint(task, t, app);
      }

      // Flush any unsent batch tails before settling.
      for (int k = 0; k <= max_phase; ++k) {
        if (!live(me, k)) continue;
        auto& pf = pending_from[static_cast<std::size_t>(k)];
        if (pf <= iterations - 1) {
          flush_range(k, pf, iterations - 1);
          pf = iterations;
        }
      }

      // ---- settle: reach the cross-partition fixpoint ------------------------
      // Passing a barrier guarantees every message sent before any task's
      // barrier arrival has been delivered (single FIFO bus), so rounds of
      // "barrier; absorb; correct; OR-reduce whether anyone corrected"
      // terminate exactly when the sample stream is globally consistent.
      constexpr int kSettleBitTag = 900;
      constexpr int kSettleResultTag = 901;
      for (;;) {
        task.barrier();
        space.poll();
        const bool had_work = !dirty.empty();
        handle_rollbacks();  // May publish corrections for the next round.

        std::uint8_t global_had = had_work ? 1 : 0;
        if (me == 0) {
          for (int i = 1; i < P; ++i) {
            global_had |= task.recv(kSettleBitTag).payload.unpack_u8();
          }
          rt::Packet res;
          res.pack_u8(global_had);
          for (int i = 1; i < P; ++i) task.send(i, kSettleResultTag, res);
        } else {
          rt::Packet bit;
          bit.pack_u8(global_had);
          task.send(0, kSettleBitTag, std::move(bit));
          global_had = task.recv(kSettleResultTag).payload.unpack_u8();
        }
        if (global_had == 0) break;
      }

      const std::uint64_t used_samples = checkpoint();
      // Final estimates on validated samples.
      for (std::size_t q = 0; q < my_queries.size(); ++q) {
        QueryEstimate est;
        est.query = my_queries[q];
        est.probability = used_samples == 0
                              ? 0.0
                              : static_cast<double>(hits[q]) /
                                    static_cast<double>(used_samples);
        est.ci = util::proportion_ci(hits[q], used_samples, config.confidence);
        out.estimates.push_back(est);
      }
      out.dsm = space.stats();
    });
  }

  net::LoadGenerator loader(vm.engine(), vm.bus(),
                            net::LoadGeneratorConfig{
                                .offered_bps = loader_offered_bps,
                                .frame_payload_bytes = 1024,
                                .poisson = true,
                                .seed = config.seed ^ 0x70adULL,
                            });
  const sim::Time horizon = 24LL * 3600 * sim::kSecond;
  const sim::Time full_time = vm.run(horizon);
  loader.stop();

  ParallelInferenceResult result;
  result.full_run_time = full_time;
  result.deadlocked = vm.deadlocked() || full_time >= horizon;
  result.iterations = config.iterations;
  result.bus_utilization = vm.network_utilization();
  if (vm.warp_meter().samples() > 0) {
    result.mean_warp = vm.warp_meter().overall().mean();
  }
  result.edge_cut = edge_cut(net, part);

  sim::Time completion = 0;
  result.converged = true;
  result.validated_samples = std::numeric_limits<std::uint64_t>::max();
  for (int p = 0; p < P; ++p) {
    const TaskOutcome& out = outcomes[static_cast<std::size_t>(p)];
    if (out.first_met_time < 0) {
      result.converged = false;
    } else {
      completion = std::max(completion, out.first_met_time);
    }
    result.rollbacks += out.rollbacks;
    result.rolled_back_iterations += out.rolled_back_iterations;
    result.nodes_resampled += out.nodes_resampled;
    result.validated_samples = std::min(result.validated_samples, out.validated);
    result.global_read_blocks += out.dsm.global_read_blocks;
    result.global_read_block_time += out.dsm.global_read_block_time;
    result.read_escalations += out.dsm.read_escalations;
    result.degraded_reads += out.dsm.degraded_reads;
    result.integrity_dropped += out.dsm.integrity_dropped;
    result.partition_stale_served += out.dsm.partition_stale_served;
    result.heal_frames += out.dsm.heal_frames;
    result.diverged_locations += out.dsm.diverged_marks;
    result.reconciled_locations += out.dsm.reconciled_marks;
    result.updates_parked += out.dsm.updates_parked;
    result.updates_flushed += out.dsm.updates_flushed;
    result.ooo_updates += out.dsm.ooo_updates;
    result.messages_sent += vm.task(p).stats().messages_sent;
    result.bytes_sent += vm.task(p).stats().bytes_sent;
    for (const QueryEstimate& est : out.estimates) {
      result.estimates.push_back(est);
    }
  }
  if (vm.fault_injector() != nullptr) {
    result.partition_drops = vm.fault_injector()->stats().partition_drops +
                             vm.fault_injector()->stats().blackhole_drops;
  }
  // Return estimates in the caller's query order, not partition order.
  std::vector<QueryEstimate> ordered;
  for (const Query& q : queries) {
    for (const QueryEstimate& est : result.estimates) {
      if (est.query.node == q.node && est.query.value == q.value) {
        ordered.push_back(est);
        break;
      }
    }
  }
  result.estimates = std::move(ordered);
  result.completion_time = result.converged ? completion : full_time;
  if (coord != nullptr) result.recovery = coord->stats();
  if (vm.sanitizer() != nullptr) {
    result.sanitize_violations = vm.sanitizer()->stats().total_violations();
  }
  return result;
}

}  // namespace nscc::bayes
