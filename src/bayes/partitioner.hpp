// Graph partitioner standing in for METIS [11] (see DESIGN.md).
//
// K-way partitioning of a belief network's node set: greedy BFS region
// growing for an initial balanced split, followed by Kernighan-Lin style
// boundary refinement minimising the (directed-edge) cut while keeping part
// sizes within a balance tolerance.  Table 2 reports the resulting 2-way
// edge-cut per network.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/network.hpp"

namespace nscc::bayes {

struct PartitionConfig {
  int parts = 2;
  /// Allowed deviation of a part from the ideal size (fraction).
  double balance_tolerance = 0.10;
  /// KL refinement sweeps.
  int refinement_passes = 8;
  std::uint64_t seed = 1;
};

struct Partition {
  std::vector<int> assignment;  ///< Node id -> part index.
  int parts = 0;

  [[nodiscard]] int part_of(NodeId id) const {
    return assignment.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::vector<int> part_sizes() const;
};

/// Number of DAG edges crossing part boundaries.
[[nodiscard]] int edge_cut(const BeliefNetwork& net, const Partition& p);

/// Partition the network's nodes into `config.parts` balanced parts.
[[nodiscard]] Partition partition_network(const BeliefNetwork& net,
                                          const PartitionConfig& config);

}  // namespace nscc::bayes
