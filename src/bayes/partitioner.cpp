#include "bayes/partitioner.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/rng.hpp"

namespace nscc::bayes {

std::vector<int> Partition::part_sizes() const {
  std::vector<int> sizes(static_cast<std::size_t>(parts), 0);
  for (int p : assignment) ++sizes[static_cast<std::size_t>(p)];
  return sizes;
}

int edge_cut(const BeliefNetwork& net, const Partition& p) {
  int cut = 0;
  for (NodeId v = 0; v < net.size(); ++v) {
    for (NodeId u : net.node(v).parents) {
      if (p.part_of(u) != p.part_of(v)) ++cut;
    }
  }
  return cut;
}

namespace {

std::vector<std::vector<NodeId>> undirected_adjacency(
    const BeliefNetwork& net) {
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(net.size()));
  for (NodeId v = 0; v < net.size(); ++v) {
    for (NodeId u : net.node(v).parents) {
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    }
  }
  return adj;
}

}  // namespace

Partition partition_network(const BeliefNetwork& net,
                            const PartitionConfig& config) {
  const int n = net.size();
  const auto adj = undirected_adjacency(net);
  util::Xoshiro256 rng(config.seed);

  Partition part;
  part.parts = config.parts;
  part.assignment.assign(static_cast<std::size_t>(n), config.parts - 1);

  const int ideal = (n + config.parts - 1) / config.parts;
  std::vector<bool> assigned(static_cast<std::size_t>(n), false);

  // BFS region growing for parts 0 .. parts-2; the remainder forms the last.
  for (int p = 0; p + 1 < config.parts; ++p) {
    // Seed: unassigned node with the highest unassigned degree.
    NodeId seed = -1;
    int best_deg = -1;
    for (NodeId v = 0; v < n; ++v) {
      if (assigned[static_cast<std::size_t>(v)]) continue;
      int deg = 0;
      for (NodeId u : adj[static_cast<std::size_t>(v)]) {
        if (!assigned[static_cast<std::size_t>(u)]) ++deg;
      }
      if (deg > best_deg) {
        best_deg = deg;
        seed = v;
      }
    }
    if (seed < 0) break;

    std::deque<NodeId> frontier{seed};
    int grown = 0;
    while (grown < ideal) {
      NodeId v = -1;
      if (!frontier.empty()) {
        v = frontier.front();
        frontier.pop_front();
      } else {
        // Disconnected remainder: pick any unassigned node.
        for (NodeId w = 0; w < n; ++w) {
          if (!assigned[static_cast<std::size_t>(w)]) {
            v = w;
            break;
          }
        }
        if (v < 0) break;
      }
      if (assigned[static_cast<std::size_t>(v)]) continue;
      assigned[static_cast<std::size_t>(v)] = true;
      part.assignment[static_cast<std::size_t>(v)] = p;
      ++grown;
      for (NodeId u : adj[static_cast<std::size_t>(v)]) {
        if (!assigned[static_cast<std::size_t>(u)]) frontier.push_back(u);
      }
    }
  }

  // Kernighan-Lin style greedy refinement: repeatedly move the
  // best-gain boundary node subject to the balance constraint.
  const int min_size = static_cast<int>(
      std::floor((1.0 - config.balance_tolerance) * n / config.parts));
  const int max_size = static_cast<int>(
      std::ceil((1.0 + config.balance_tolerance) * n / config.parts));

  auto sizes = part.part_sizes();
  for (int pass = 0; pass < config.refinement_passes; ++pass) {
    bool moved_any = false;
    for (NodeId v = 0; v < n; ++v) {
      const int home = part.part_of(v);
      if (sizes[static_cast<std::size_t>(home)] <= min_size) continue;
      // Count undirected edges from v into each part.
      std::vector<int> links(static_cast<std::size_t>(config.parts), 0);
      for (NodeId u : adj[static_cast<std::size_t>(v)]) {
        ++links[static_cast<std::size_t>(part.part_of(u))];
      }
      int best_part = home;
      int best_gain = 0;
      for (int p = 0; p < config.parts; ++p) {
        if (p == home || sizes[static_cast<std::size_t>(p)] >= max_size) {
          continue;
        }
        const int gain = links[static_cast<std::size_t>(p)] -
                         links[static_cast<std::size_t>(home)];
        if (gain > best_gain) {
          best_gain = gain;
          best_part = p;
        }
      }
      if (best_part != home) {
        part.assignment[static_cast<std::size_t>(v)] = best_part;
        --sizes[static_cast<std::size_t>(home)];
        ++sizes[static_cast<std::size_t>(best_part)];
        moved_any = true;
      }
    }
    if (!moved_any) break;
  }

  return part;
}

}  // namespace nscc::bayes
