#include "nn/mlp.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nscc::nn {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Mlp::Mlp(std::vector<int> layers, std::uint64_t seed)
    : layers_(std::move(layers)) {
  if (layers_.size() < 2) {
    throw std::invalid_argument("Mlp needs at least input and output layers");
  }
  std::size_t total = 0;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    Slice s;
    s.weights = total;
    total += static_cast<std::size_t>(layers_[l]) *
             static_cast<std::size_t>(layers_[l + 1]);
    s.biases = total;
    total += static_cast<std::size_t>(layers_[l + 1]);
    slices_.push_back(s);
  }
  params_.resize(total);
  util::Xoshiro256 rng(seed);
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    // Xavier-style initialisation.
    const double scale = std::sqrt(2.0 / (layers_[l] + layers_[l + 1]));
    const Slice& s = slices_[l];
    for (std::size_t i = s.weights; i < s.biases; ++i) {
      params_[i] = rng.normal(0.0, scale);
    }
    for (int j = 0; j < layers_[l + 1]; ++j) {
      params_[s.biases + static_cast<std::size_t>(j)] = 0.0;
    }
  }
}

void Mlp::set_parameters(const std::vector<double>& p) {
  if (p.size() != params_.size()) {
    throw std::invalid_argument("Mlp::set_parameters: size mismatch");
  }
  params_ = p;
}

std::vector<double> Mlp::forward(const std::vector<double>& input) const {
  std::vector<double> act = input;
  for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
    const Slice& s = slices_[l];
    const int in = layers_[l];
    const int out = layers_[l + 1];
    std::vector<double> next(static_cast<std::size_t>(out));
    for (int j = 0; j < out; ++j) {
      double z = params_[s.biases + static_cast<std::size_t>(j)];
      for (int i = 0; i < in; ++i) {
        z += params_[s.weights + static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(out) +
                     static_cast<std::size_t>(j)] *
             act[static_cast<std::size_t>(i)];
      }
      const bool last = l + 2 == layers_.size();
      next[static_cast<std::size_t>(j)] = last ? sigmoid(z) : std::tanh(z);
    }
    act = std::move(next);
  }
  return act;
}

double Mlp::loss(const std::vector<std::vector<double>>& inputs,
                 const std::vector<std::vector<double>>& targets) const {
  double sum = 0.0;
  for (std::size_t n = 0; n < inputs.size(); ++n) {
    const auto out = forward(inputs[n]);
    for (std::size_t j = 0; j < out.size(); ++j) {
      const double d = out[j] - targets[n][j];
      sum += d * d;
    }
  }
  return inputs.empty() ? 0.0 : sum / static_cast<double>(inputs.size());
}

double Mlp::accuracy(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets) const {
  if (inputs.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t n = 0; n < inputs.size(); ++n) {
    const auto out = forward(inputs[n]);
    bool all = true;
    for (std::size_t j = 0; j < out.size(); ++j) {
      all = all && ((out[j] >= 0.5) == (targets[n][j] >= 0.5));
    }
    correct += all ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

double Mlp::gradient(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets,
                     std::size_t begin, std::size_t count,
                     std::vector<double>& grad) const {
  grad.assign(params_.size(), 0.0);
  double batch_loss = 0.0;
  const std::size_t layer_count = layers_.size();

  // Per-example forward with cached activations, then backprop.
  std::vector<std::vector<double>> acts(layer_count);
  std::vector<std::vector<double>> deltas(layer_count);
  for (std::size_t n = begin; n < begin + count && n < inputs.size(); ++n) {
    acts[0] = inputs[n];
    for (std::size_t l = 0; l + 1 < layer_count; ++l) {
      const Slice& s = slices_[l];
      const int in = layers_[l];
      const int out = layers_[l + 1];
      acts[l + 1].assign(static_cast<std::size_t>(out), 0.0);
      for (int j = 0; j < out; ++j) {
        double z = params_[s.biases + static_cast<std::size_t>(j)];
        for (int i = 0; i < in; ++i) {
          z += params_[s.weights + static_cast<std::size_t>(i) *
                                       static_cast<std::size_t>(out) +
                       static_cast<std::size_t>(j)] *
               acts[l][static_cast<std::size_t>(i)];
        }
        const bool last = l + 2 == layer_count;
        acts[l + 1][static_cast<std::size_t>(j)] =
            last ? sigmoid(z) : std::tanh(z);
      }
    }

    const auto& out_act = acts[layer_count - 1];
    deltas[layer_count - 1].assign(out_act.size(), 0.0);
    for (std::size_t j = 0; j < out_act.size(); ++j) {
      const double err = out_act[j] - targets[n][j];
      batch_loss += err * err;
      // d/dz sigmoid = y(1-y); loss derivative 2*err.
      deltas[layer_count - 1][j] = 2.0 * err * out_act[j] * (1.0 - out_act[j]);
    }

    for (std::size_t l = layer_count - 1; l-- > 0;) {
      const Slice& s = slices_[l];
      const int in = layers_[l];
      const int out = layers_[l + 1];
      if (l > 0) {
        deltas[l].assign(static_cast<std::size_t>(in), 0.0);
      }
      for (int j = 0; j < out; ++j) {
        const double d = deltas[l + 1][static_cast<std::size_t>(j)];
        grad[s.biases + static_cast<std::size_t>(j)] += d;
        for (int i = 0; i < in; ++i) {
          const std::size_t w = s.weights + static_cast<std::size_t>(i) *
                                                static_cast<std::size_t>(out) +
                                static_cast<std::size_t>(j);
          grad[w] += d * acts[l][static_cast<std::size_t>(i)];
          if (l > 0) {
            const double a = acts[l][static_cast<std::size_t>(i)];
            deltas[l][static_cast<std::size_t>(i)] +=
                d * params_[w] * (1.0 - a * a);  // d/dz tanh = 1 - y^2.
          }
        }
      }
    }
  }
  const auto batch = static_cast<double>(std::min(count, inputs.size() - begin));
  if (batch > 0) {
    for (double& g : grad) g /= batch;
    batch_loss /= batch;
  }
  return batch_loss;
}

void Mlp::apply_gradient(const std::vector<double>& grad, double lr) {
  assert(grad.size() == params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i] -= lr * grad[i];
  }
}

Dataset make_two_spirals(int per_class, double noise, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Dataset data;
  for (int cls = 0; cls < 2; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      const double t =
          1.0 + 3.5 * static_cast<double>(i) / static_cast<double>(per_class);
      const double angle =
          t * 1.8 + (cls == 0 ? 0.0 : std::numbers::pi);
      const double r = t / 5.0;
      data.inputs.push_back({r * std::cos(angle) + rng.normal(0.0, noise),
                             r * std::sin(angle) + rng.normal(0.0, noise)});
      data.targets.push_back({static_cast<double>(cls)});
    }
  }
  // Shuffle for well-mixed mini-batches.
  for (std::size_t i = data.size(); i > 1; --i) {
    const auto j = rng.below(i);
    std::swap(data.inputs[i - 1], data.inputs[j]);
    std::swap(data.targets[i - 1], data.targets[j]);
  }
  return data;
}

}  // namespace nscc::nn
