#include "nn/train.hpp"

#include <algorithm>
#include <limits>

#include "net/load_generator.hpp"

namespace nscc::nn {

namespace {

constexpr dsm::LocationId kParamsLoc = 900;
constexpr int kGradientTag = 950;

sim::Time gradient_cost(const Mlp& net, int batch, sim::Time per_mac) {
  // Forward + backward ~ 2 passes over the weights per example.
  return static_cast<sim::Time>(net.parameter_count()) * batch * 4 * per_mac;
}

sim::Time eval_cost(const Mlp& net, std::size_t examples, sim::Time per_mac) {
  return static_cast<sim::Time>(net.parameter_count()) *
         static_cast<sim::Time>(examples) * 2 * per_mac;
}

}  // namespace

sim::Time TrainResult::time_to_loss(double target) const {
  for (const auto& [t, loss] : loss_trajectory) {
    if (loss <= target) return t;
  }
  return -1;
}

TrainResult train_sequential(const Dataset& data, const TrainConfig& config) {
  Mlp net(config.layers, config.seed);
  TrainResult result;
  sim::Time now = 0;
  std::vector<double> grad;
  const double speed = 1.0 + config.node_speed_spread / 2.0;
  util::Xoshiro256 jitter_rng(config.seed ^ 0x0b1);

  // Matches the parallel schedule: steps x workers mini-batches.
  const int total_steps = config.steps * config.workers;
  std::size_t cursor = 0;
  for (int step = 1; step <= total_steps; ++step) {
    net.gradient(data.inputs, data.targets, cursor,
                 static_cast<std::size_t>(config.batch_size), grad);
    net.apply_gradient(grad, config.learning_rate);
    cursor = (cursor + static_cast<std::size_t>(config.batch_size)) %
             data.size();
    const double jitter =
        1.0 + config.per_step_jitter * jitter_rng.uniform(-1.0, 1.0);
    now += static_cast<sim::Time>(
        static_cast<double>(gradient_cost(net, config.batch_size,
                                          config.cost_per_mac)) *
        speed * jitter);
    if (step % config.eval_every == 0) {
      now += static_cast<sim::Time>(
          static_cast<double>(eval_cost(net, data.size(), config.cost_per_mac)) *
          speed);
      result.loss_trajectory.emplace_back(now,
                                          net.loss(data.inputs, data.targets));
    }
  }
  result.completion_time = now;
  result.final_loss = net.loss(data.inputs, data.targets);
  result.final_accuracy = net.accuracy(data.inputs, data.targets);
  return result;
}

TrainResult train_parallel(const Dataset& data, const TrainConfig& config,
                           rt::MachineConfig machine,
                           double loader_offered_bps) {
  const int P = config.workers;
  machine.ntasks = P + 1;  // Task 0 is the parameter server.
  machine.seed = config.seed;
  rt::VirtualMachine vm(machine);

  util::Xoshiro256 skew_rng(config.seed ^ 0x5ca1eULL);
  std::vector<double> speed(static_cast<std::size_t>(P + 1));
  for (double& s : speed) {
    s = 1.0 + config.node_speed_spread * skew_rng.uniform01();
  }

  TrainResult result;
  util::RunningStats staleness;
  std::vector<dsm::DsmStats> worker_dsm(static_cast<std::size_t>(P));

  // ---- parameter server -------------------------------------------------------
  vm.add_task("server", [&](rt::Task& task) {
    Mlp net(config.layers, config.seed);
    dsm::SharedSpace space(task, {.read_timeout = config.propagation.read_timeout});
    std::vector<int> readers;
    for (int w = 1; w <= P; ++w) readers.push_back(w);
    space.declare_written(kParamsLoc, readers);

    auto publish = [&](dsm::Iteration round) {
      rt::Packet p;
      p.pack_double_vec(net.parameters());
      space.write(kParamsLoc, round, std::move(p));
    };
    publish(0);

    std::vector<int> applied(static_cast<std::size_t>(P + 1), 0);
    std::vector<std::vector<double>> pending_sync(
        static_cast<std::size_t>(P + 1));
    dsm::Iteration published_round = 0;
    int applications = 0;

    auto maybe_eval = [&] {
      if (applications % config.eval_every != 0) return;
      task.compute(static_cast<sim::Time>(
          static_cast<double>(eval_cost(net, data.size(), config.cost_per_mac)) *
          speed[0]));
      result.loss_trajectory.emplace_back(task.now(),
                                          net.loss(data.inputs, data.targets));
    };

    auto min_applied = [&] {
      int m = std::numeric_limits<int>::max();
      for (int w = 1; w <= P; ++w) {
        m = std::min(m, applied[static_cast<std::size_t>(w)]);
      }
      return m;
    };

    while (min_applied() < config.steps) {
      rt::Message msg = task.recv(kGradientTag);
      const int step = msg.payload.unpack_i32();
      auto grad = msg.payload.unpack_double_vec();

      if (config.mode == dsm::Mode::kSynchronous) {
        // Collect all P gradients of the round, then apply them one after
        // another (same per-gradient learning rate as the serial baseline).
        pending_sync[static_cast<std::size_t>(msg.src)] = std::move(grad);
        applied[static_cast<std::size_t>(msg.src)] = step;
        bool round_full = true;
        for (int w = 1; w <= P; ++w) {
          round_full = round_full &&
                       applied[static_cast<std::size_t>(w)] >= step &&
                       !pending_sync[static_cast<std::size_t>(w)].empty();
        }
        if (round_full) {
          for (int w = 1; w <= P; ++w) {
            auto& g = pending_sync[static_cast<std::size_t>(w)];
            net.apply_gradient(g, config.learning_rate);
            g.clear();
            ++applications;
          }
          task.compute(static_cast<sim::Time>(
              static_cast<double>(
                  static_cast<sim::Time>(net.parameter_count()) * 2 *
                  static_cast<sim::Time>(P) * config.cost_per_mac) *
              speed[0]));
          published_round = step;
          publish(published_round);
          maybe_eval();
        }
      } else {
        // Stale-gradient SGD: apply on arrival at the full learning rate.
        net.apply_gradient(grad, config.learning_rate);
        ++applications;
        task.compute(static_cast<sim::Time>(
            static_cast<double>(static_cast<sim::Time>(net.parameter_count()) *
                                2 * config.cost_per_mac) *
            speed[0]));
        applied[static_cast<std::size_t>(msg.src)] = step;
        const auto round = static_cast<dsm::Iteration>(min_applied());
        if (round > published_round) {
          published_round = round;
          publish(published_round);
        }
        maybe_eval();
      }
    }
    result.final_loss = net.loss(data.inputs, data.targets);
    result.final_accuracy = net.accuracy(data.inputs, data.targets);
  });

  // ---- workers -----------------------------------------------------------------
  for (int w = 1; w <= P; ++w) {
    vm.add_task("worker" + std::to_string(w), [&, w](rt::Task& task) {
      Mlp net(config.layers, config.seed);
      dsm::SharedSpace space(task, {.read_timeout = config.propagation.read_timeout});
      space.declare_read(kParamsLoc, 0);
      util::Xoshiro256 jitter_rng = task.rng().split(0xba5e);
      const double my_speed = speed[static_cast<std::size_t>(w)];

      // Each worker strides through its own shard of mini-batches.
      std::size_t cursor = static_cast<std::size_t>(w - 1) *
                           static_cast<std::size_t>(config.batch_size);
      std::vector<double> grad;

      for (int step = 1; step <= config.steps; ++step) {
        const dsm::SharedSpace::Value* v = nullptr;
        switch (config.mode) {
          case dsm::Mode::kSynchronous:
            v = &space.global_read(kParamsLoc, step - 1, 0);
            break;
          case dsm::Mode::kPartialAsync:
            v = &space.global_read(kParamsLoc, step - 1, config.age);
            break;
          case dsm::Mode::kAsynchronous:
            v = &space.read(kParamsLoc);
            break;
        }
        if (v->valid) {
          rt::Packet params = v->data;
          net.set_parameters(params.unpack_double_vec());
          staleness.add(static_cast<double>(step - 1 - v->iteration));
        }

        net.gradient(data.inputs, data.targets, cursor,
                     static_cast<std::size_t>(config.batch_size), grad);
        cursor = (cursor + static_cast<std::size_t>(config.batch_size) *
                               static_cast<std::size_t>(P)) %
                 data.size();
        const double jitter =
            1.0 + config.per_step_jitter * jitter_rng.uniform(-1.0, 1.0);
        task.compute(static_cast<sim::Time>(
            static_cast<double>(gradient_cost(net, config.batch_size,
                                              config.cost_per_mac)) *
            my_speed * jitter));

        rt::Packet g;
        g.pack_i32(step);
        g.pack_double_vec(grad);
        task.send(0, kGradientTag, std::move(g));
      }
      worker_dsm[static_cast<std::size_t>(w - 1)] = space.stats();
    });
  }

  net::LoadGenerator loader(vm.engine(), vm.bus(),
                            net::LoadGeneratorConfig{
                                .offered_bps = loader_offered_bps,
                                .frame_payload_bytes = 1024,
                                .poisson = true,
                                .seed = config.seed ^ 0x70adULL,
                            });
  const sim::Time horizon = 24LL * 3600 * sim::kSecond;
  result.completion_time = vm.run(horizon);
  loader.stop();
  result.deadlocked = vm.deadlocked() || result.completion_time >= horizon;
  result.bus_utilization = vm.network_utilization();
  for (int t = 0; t <= P; ++t) {
    result.messages_sent += vm.task(t).stats().messages_sent;
  }
  for (const auto& d : worker_dsm) {
    result.global_read_blocks += d.global_read_blocks;
    result.global_read_block_time += d.global_read_block_time;
  }
  result.mean_staleness = staleness.mean();
  return result;
}

}  // namespace nscc::nn
