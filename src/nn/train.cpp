#include "nn/train.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "harness/policy.hpp"
#include "net/load_generator.hpp"
#include "recovery/recovery.hpp"

namespace nscc::nn {

namespace {

constexpr int kGradientTag = 950;

sim::Time gradient_cost(const Mlp& net, int batch, sim::Time per_mac) {
  // Forward + backward ~ 2 passes over the weights per example.
  return static_cast<sim::Time>(net.parameter_count()) * batch * 4 * per_mac;
}

sim::Time eval_cost(const Mlp& net, std::size_t examples, sim::Time per_mac) {
  return static_cast<sim::Time>(net.parameter_count()) *
         static_cast<sim::Time>(examples) * 2 * per_mac;
}

/// Server checkpoint: the model plus the per-worker applied frontier.  The
/// gradient stream has no collective framing (each message is step-stamped),
/// so a snapshot is safe at any message boundary.
class ServerSnapshot : public recovery::Checkpointable {
 public:
  ServerSnapshot(Mlp& net, std::vector<int>& applied,
                 dsm::Iteration& published_round, int& applications)
      : net_(net),
        applied_(applied),
        published_round_(published_round),
        applications_(applications) {}

  rt::Packet checkpoint_state() override {
    rt::Packet p;
    p.pack_double_vec(net_.parameters());
    p.pack_u32(static_cast<std::uint32_t>(applied_.size()));
    for (int a : applied_) p.pack_i32(a);
    p.pack_i64(published_round_);
    p.pack_i32(applications_);
    return p;
  }

  void restore_state(rt::Packet& p) override {
    net_.set_parameters(p.unpack_double_vec());
    const std::uint32_t n = p.unpack_u32();
    applied_.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) applied_[i] = p.unpack_i32();
    published_round_ = p.unpack_i64();
    applications_ = p.unpack_i32();
  }

 private:
  Mlp& net_;
  std::vector<int>& applied_;
  dsm::Iteration& published_round_;
  int& applications_;
};

/// Worker checkpoint: loop position plus the last-seen parameters (the next
/// step refreshes them from the shared space anyway; carrying them keeps a
/// cold cache from training on initialisation weights).
class WorkerSnapshot : public recovery::Checkpointable {
 public:
  WorkerSnapshot(int& step_done, std::size_t& cursor, Mlp& net)
      : step_done_(step_done), cursor_(cursor), net_(net) {}

  rt::Packet checkpoint_state() override {
    rt::Packet p;
    p.pack_i32(step_done_);
    p.pack_u64(cursor_);
    p.pack_double_vec(net_.parameters());
    return p;
  }

  void restore_state(rt::Packet& p) override {
    step_done_ = p.unpack_i32();
    cursor_ = static_cast<std::size_t>(p.unpack_u64());
    net_.set_parameters(p.unpack_double_vec());
  }

 private:
  int& step_done_;
  std::size_t& cursor_;
  Mlp& net_;
};

}  // namespace

sim::Time TrainResult::time_to_loss(double target) const {
  for (const auto& [t, loss] : loss_trajectory) {
    if (loss <= target) return t;
  }
  return -1;
}

TrainResult train_sequential(const Dataset& data, const TrainConfig& config) {
  Mlp net(config.layers, config.seed);
  TrainResult result;
  sim::Time now = 0;
  std::vector<double> grad;
  const double speed = 1.0 + config.node_speed_spread / 2.0;
  util::Xoshiro256 jitter_rng(config.seed ^ 0x0b1);

  // Matches the parallel schedule: steps x workers mini-batches.
  const int total_steps = config.steps * config.workers;
  std::size_t cursor = 0;
  for (int step = 1; step <= total_steps; ++step) {
    net.gradient(data.inputs, data.targets, cursor,
                 static_cast<std::size_t>(config.batch_size), grad);
    net.apply_gradient(grad, config.learning_rate);
    cursor = (cursor + static_cast<std::size_t>(config.batch_size)) %
             data.size();
    const double jitter =
        1.0 + config.per_step_jitter * jitter_rng.uniform(-1.0, 1.0);
    now += static_cast<sim::Time>(
        static_cast<double>(gradient_cost(net, config.batch_size,
                                          config.cost_per_mac)) *
        speed * jitter);
    if (step % config.eval_every == 0) {
      now += static_cast<sim::Time>(
          static_cast<double>(eval_cost(net, data.size(), config.cost_per_mac)) *
          speed);
      result.loss_trajectory.emplace_back(now,
                                          net.loss(data.inputs, data.targets));
    }
  }
  result.completion_time = now;
  result.final_loss = net.loss(data.inputs, data.targets);
  result.final_accuracy = net.accuracy(data.inputs, data.targets);
  return result;
}

TrainResult train_parallel(const Dataset& data, const TrainConfig& config,
                           rt::MachineConfig machine,
                           double loader_offered_bps) {
  const int P = config.workers;
  machine.ntasks = P + 1;  // Task 0 is the parameter server.
  machine.seed = config.seed;
  rt::VirtualMachine vm(machine);

  std::unique_ptr<recovery::Coordinator> coord;
  if (config.recovery.enabled()) {
    coord = std::make_unique<recovery::Coordinator>(vm, config.recovery);
  }
  recovery::Coordinator* rc = coord.get();

  util::Xoshiro256 skew_rng(config.seed ^ 0x5ca1eULL);
  std::vector<double> speed(static_cast<std::size_t>(P + 1));
  for (double& s : speed) {
    s = 1.0 + config.node_speed_spread * skew_rng.uniform01();
  }

  TrainResult result;
  util::RunningStats staleness;
  std::vector<dsm::DsmStats> worker_dsm(static_cast<std::size_t>(P));
  dsm::DsmStats server_dsm;

  // ---- parameter server -------------------------------------------------------
  vm.add_task("server", [&](rt::Task& task) {
    Mlp net(config.layers, config.seed);
    // The server publishes to everyone and blocks on no one, so it skips
    // the recovery wiring (and its watchdog floor) entirely.
    dsm::SharedSpace space(task, harness::make_policy(config, {}));
    std::vector<int> readers;
    for (int w = 1; w <= P; ++w) readers.push_back(w);
    space.declare_written(kParamsLoc, readers);

    auto publish = [&](dsm::Iteration round) {
      rt::Packet p;
      p.pack_double_vec(net.parameters());
      space.write(kParamsLoc, round, std::move(p));
    };

    std::vector<int> applied(static_cast<std::size_t>(P + 1), 0);
    std::vector<std::vector<double>> pending_sync(
        static_cast<std::size_t>(P + 1));
    dsm::Iteration published_round = 0;
    int applications = 0;

    ServerSnapshot snapshot(net, applied, published_round, applications);
    const std::int64_t restored =
        rc != nullptr ? rc->restore(task, snapshot) : -1;
    if (restored < 0) {
      publish(0);
      if (rc != nullptr) rc->maybe_checkpoint(task, 0, snapshot);
    } else {
      // Re-announce the restored model; gradients applied since the snapshot
      // (and any lost in the crash) are simply dropped progress.
      publish(published_round);
    }

    auto maybe_eval = [&] {
      if (applications % config.eval_every != 0) return;
      task.compute(static_cast<sim::Time>(
          static_cast<double>(eval_cost(net, data.size(), config.cost_per_mac)) *
          speed[0]));
      result.loss_trajectory.emplace_back(task.now(),
                                          net.loss(data.inputs, data.targets));
    };

    auto min_applied = [&] {
      int m = std::numeric_limits<int>::max();
      for (int w = 1; w <= P; ++w) {
        // Dead (or already finished) workers cannot contribute further
        // gradients; waiting on their frontier would block the run forever.
        if (rc != nullptr && !rc->alive(w)) continue;
        m = std::min(m, applied[static_cast<std::size_t>(w)]);
      }
      return m;
    };

    while (min_applied() < config.steps) {
      std::optional<rt::Message> maybe;
      if (rc != nullptr) {
        maybe = task.recv_timeout(kGradientTag,
                                  rc->config().heartbeat_interval);
        if (!maybe) {
          // No gradient this interval — membership may have changed.  The
          // published round is the min over *alive* workers, so a death can
          // advance it even with no new gradient; republishing here is what
          // unblocks survivors whose Global_Read was waiting on the dead
          // worker's frontier.
          if (config.mode != dsm::Mode::kSynchronous) {
            const int m = min_applied();
            if (m != std::numeric_limits<int>::max() &&
                static_cast<dsm::Iteration>(m) > published_round) {
              published_round = static_cast<dsm::Iteration>(m);
              publish(published_round);
            }
          }
          continue;
        }
      } else {
        maybe = task.recv(kGradientTag);
      }
      rt::Message msg = std::move(*maybe);
      const int step = msg.payload.unpack_i32();
      auto grad = msg.payload.unpack_double_vec();

      if (config.mode == dsm::Mode::kSynchronous) {
        // Collect all P gradients of the round, then apply them one after
        // another (same per-gradient learning rate as the serial baseline).
        pending_sync[static_cast<std::size_t>(msg.src)] = std::move(grad);
        applied[static_cast<std::size_t>(msg.src)] = step;
        bool round_full = true;
        for (int w = 1; w <= P; ++w) {
          round_full = round_full &&
                       applied[static_cast<std::size_t>(w)] >= step &&
                       !pending_sync[static_cast<std::size_t>(w)].empty();
        }
        if (round_full) {
          for (int w = 1; w <= P; ++w) {
            auto& g = pending_sync[static_cast<std::size_t>(w)];
            net.apply_gradient(g, config.learning_rate);
            g.clear();
            ++applications;
          }
          task.compute(static_cast<sim::Time>(
              static_cast<double>(
                  static_cast<sim::Time>(net.parameter_count()) * 2 *
                  static_cast<sim::Time>(P) * config.cost_per_mac) *
              speed[0]));
          published_round = step;
          publish(published_round);
          maybe_eval();
        }
      } else {
        // Stale-gradient SGD: apply on arrival at the full learning rate.
        net.apply_gradient(grad, config.learning_rate);
        ++applications;
        task.compute(static_cast<sim::Time>(
            static_cast<double>(static_cast<sim::Time>(net.parameter_count()) *
                                2 * config.cost_per_mac) *
            speed[0]));
        // Retransmits can leapfrog: a lost step-k gradient may be redelivered
        // after step k+1 already arrived.  The frontier is the max seen.
        applied[static_cast<std::size_t>(msg.src)] =
            std::max(applied[static_cast<std::size_t>(msg.src)], step);
        const auto round = static_cast<dsm::Iteration>(min_applied());
        if (round > published_round) {
          published_round = round;
          publish(published_round);
        }
        maybe_eval();
      }
      if (rc != nullptr) {
        rc->maybe_checkpoint(task, applications, snapshot);
      }
    }
    result.final_loss = net.loss(data.inputs, data.targets);
    result.final_accuracy = net.accuracy(data.inputs, data.targets);
    server_dsm = space.stats();
  });

  // ---- workers -----------------------------------------------------------------
  for (int w = 1; w <= P; ++w) {
    vm.add_task("worker" + std::to_string(w), [&, w](rt::Task& task) {
      Mlp net(config.layers, config.seed);
      dsm::SharedSpace space(
          task, harness::make_policy(config, {.recovery = rc, .self = w}));
      space.declare_read(kParamsLoc, 0);
      util::Xoshiro256 jitter_rng = task.rng().split(0xba5e);
      const double my_speed = speed[static_cast<std::size_t>(w)];

      // Each worker strides through its own shard of mini-batches.
      std::size_t cursor = static_cast<std::size_t>(w - 1) *
                           static_cast<std::size_t>(config.batch_size);
      std::vector<double> grad;
      int step_done = 0;

      WorkerSnapshot snapshot(step_done, cursor, net);
      const std::int64_t restored =
          rc != nullptr ? rc->restore(task, snapshot) : -1;
      if (restored < 0 && rc != nullptr) {
        rc->maybe_checkpoint(task, 0, snapshot);
      }

      for (int step = step_done + 1; step <= config.steps; ++step) {
        const dsm::SharedSpace::Value* v = nullptr;
        switch (config.mode) {
          case dsm::Mode::kSynchronous:
            v = &space.global_read(kParamsLoc, step - 1, 0);
            break;
          case dsm::Mode::kPartialAsync:
            v = &space.global_read(kParamsLoc, step - 1, config.age);
            break;
          case dsm::Mode::kAsynchronous:
            v = &space.read(kParamsLoc);
            break;
        }
        if (v->valid) {
          rt::Packet params = v->data;
          net.set_parameters(params.unpack_double_vec());
          staleness.add(static_cast<double>(step - 1 - v->iteration));
        }

        net.gradient(data.inputs, data.targets, cursor,
                     static_cast<std::size_t>(config.batch_size), grad);
        cursor = (cursor + static_cast<std::size_t>(config.batch_size) *
                               static_cast<std::size_t>(P)) %
                 data.size();
        const double jitter =
            1.0 + config.per_step_jitter * jitter_rng.uniform(-1.0, 1.0);
        task.compute(static_cast<sim::Time>(
            static_cast<double>(gradient_cost(net, config.batch_size,
                                              config.cost_per_mac)) *
            my_speed * jitter));

        rt::Packet g;
        g.pack_i32(step);
        g.pack_double_vec(grad);
        task.send(0, kGradientTag, std::move(g));
        step_done = step;
        if (rc != nullptr) rc->maybe_checkpoint(task, step, snapshot);
      }
      worker_dsm[static_cast<std::size_t>(w - 1)] = space.stats();
    });
  }

  net::LoadGenerator loader(vm.engine(), vm.bus(),
                            net::LoadGeneratorConfig{
                                .offered_bps = loader_offered_bps,
                                .frame_payload_bytes = 1024,
                                .poisson = true,
                                .seed = config.seed ^ 0x70adULL,
                            });
  const sim::Time horizon = 24LL * 3600 * sim::kSecond;
  result.completion_time = vm.run(horizon);
  loader.stop();
  result.deadlocked = vm.deadlocked() || result.completion_time >= horizon;
  result.bus_utilization = vm.network_utilization();
  for (int t = 0; t <= P; ++t) {
    result.messages_sent += vm.task(t).stats().messages_sent;
  }
  for (const auto& d : worker_dsm) {
    result.global_read_blocks += d.global_read_blocks;
    result.global_read_block_time += d.global_read_block_time;
    result.read_escalations += d.read_escalations;
    result.degraded_reads += d.degraded_reads;
    result.integrity_dropped += d.integrity_dropped;
    result.partition_stale_served += d.partition_stale_served;
    result.heal_frames += d.heal_frames;
    result.diverged_locations += d.diverged_marks;
    result.reconciled_locations += d.reconciled_marks;
    result.updates_parked += d.updates_parked;
    result.updates_flushed += d.updates_flushed;
    result.ooo_updates += d.ooo_updates;
  }
  result.heal_frames += server_dsm.heal_frames;
  if (vm.fault_injector() != nullptr) {
    result.partition_drops = vm.fault_injector()->stats().partition_drops +
                             vm.fault_injector()->stats().blackhole_drops;
  }
  if (coord != nullptr) result.recovery = coord->stats();
  result.mean_staleness = staleness.mean();
  if (vm.sanitizer() != nullptr) {
    result.sanitize_violations = vm.sanitizer()->stats().total_violations();
  }
  return result;
}

}  // namespace nscc::nn
