// Small dense neural networks for the asynchronous-training application.
//
// The paper's Section 6 names "other emerging applications such as
// neural-network based approaches" as future work for non-strict coherence.
// Data-parallel gradient descent is the canonical data-race tolerant
// training scheme: workers can apply gradients computed against *stale*
// parameters and still converge, with the convergence rate degrading in the
// staleness — precisely the tradeoff Global_Read makes programmable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nscc::nn {

/// Fully connected network with tanh hidden activations and a sigmoid
/// output, trained with squared loss.  Parameters are stored flat so they
/// can travel through the DSM as one vector.
class Mlp {
 public:
  /// layers = {inputs, hidden..., outputs}.
  Mlp(std::vector<int> layers, std::uint64_t seed);

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] const std::vector<double>& parameters() const noexcept {
    return params_;
  }
  void set_parameters(const std::vector<double>& p);

  /// Forward pass for a single example.
  [[nodiscard]] std::vector<double> forward(
      const std::vector<double>& input) const;

  /// Mean squared loss over a set of examples.
  [[nodiscard]] double loss(const std::vector<std::vector<double>>& inputs,
                            const std::vector<std::vector<double>>& targets)
      const;

  /// Classification accuracy (output thresholded at 0.5 per dimension).
  [[nodiscard]] double accuracy(const std::vector<std::vector<double>>& inputs,
                                const std::vector<std::vector<double>>& targets)
      const;

  /// Accumulate the squared-loss gradient over a mini-batch into `grad`
  /// (resized and zeroed first).  Returns the batch loss.
  double gradient(const std::vector<std::vector<double>>& inputs,
                  const std::vector<std::vector<double>>& targets,
                  std::size_t begin, std::size_t count,
                  std::vector<double>& grad) const;

  /// params -= lr * grad.
  void apply_gradient(const std::vector<double>& grad, double lr);

  [[nodiscard]] const std::vector<int>& layers() const noexcept {
    return layers_;
  }

 private:
  struct Slice {
    std::size_t weights = 0;  ///< Offset of the weight matrix.
    std::size_t biases = 0;   ///< Offset of the bias vector.
  };

  std::vector<int> layers_;
  std::vector<Slice> slices_;  ///< Per connection (layers-1 of them).
  std::vector<double> params_;
};

/// Synthetic binary-classification task: two interleaved spirals, the
/// classic small-net benchmark with a genuinely non-linear boundary.
struct Dataset {
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;

  [[nodiscard]] std::size_t size() const noexcept { return inputs.size(); }
};

Dataset make_two_spirals(int per_class, double noise, std::uint64_t seed);

}  // namespace nscc::nn
