// Data-parallel neural-network training over the NSCC shared space — the
// "neural-network based approaches" the paper's Section 6 names as the next
// data-race tolerant application.
//
// Topology: one parameter-server task plus P worker tasks.  Workers pull
// the parameter vector through a shared location and push mini-batch
// gradients; the server applies gradients and republishes parameters.  The
// parameter location's iteration stamp is the last *globally completed
// round* (every worker's gradient up to that step applied), so
//
//   Global_Read(params, my_step - 1, age)
//
// bounds how far any worker can run ahead of the slowest contributor —
// bounded-staleness SGD, with the three styles:
//
//   * kSynchronous  — classic synchronous SGD: the server averages all P
//     step-t gradients before publishing params t; workers wait for them;
//   * kAsynchronous — uncontrolled stale-gradient SGD (Hogwild-flavoured):
//     workers use whatever parameters they have;
//   * kPartialAsync — staleness bounded by `age` rounds.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dsm/shared_space.hpp"
#include "harness/run_config.hpp"
#include "nn/mlp.hpp"
#include "recovery/recovery.hpp"
#include "rt/vm.hpp"

namespace nscc::nn {

/// Shared-location id of the parameter vector.  Public so the harness
/// tolerance contract audits the same location the trainer shares.
inline constexpr dsm::LocationId kParamsLoc = 900;

/// Mode, age, seed, and the propagation policy live in the embedded
/// harness::RunConfig.  The trainer honours only the policy's read_timeout
/// (the Global_Read starvation watchdog); parameter/gradient publications
/// are never coalesced — the server needs every worker gradient.
struct TrainConfig : harness::RunConfig {
  int workers = 4;
  int steps = 300;          ///< Mini-batch steps per worker.
  int batch_size = 16;
  double learning_rate = 0.25;
  std::vector<int> layers = {2, 16, 16, 1};
  /// Loss is evaluated on the training set every this many server
  /// applications (charged to the server).
  int eval_every = 32;
  /// Virtual cost per multiply-accumulate (77 MHz-class node).
  sim::Time cost_per_mac = 40;  // ns
  double node_speed_spread = 0.15;
  double per_step_jitter = 0.10;
};

struct TrainResult {
  double final_loss = 0.0;
  double final_accuracy = 0.0;
  /// (virtual time, training loss) at each server evaluation.
  std::vector<std::pair<sim::Time, double>> loss_trajectory;
  sim::Time completion_time = 0;  ///< All tasks finished.
  bool deadlocked = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  double mean_staleness = 0.0;
  double bus_utilization = 0.0;
  std::uint64_t read_escalations = 0;
  /// Crash-recovery diagnostics (zero unless config.recovery was enabled).
  recovery::Stats recovery;
  std::uint64_t degraded_reads = 0;
  /// Damaged DSM frames quarantined (integrity checking enabled only).
  std::uint64_t integrity_dropped = 0;
  /// Consistency-model diagnostics (zero under the default nonstrict
  /// model): updates parked until an acquire, parked updates published at
  /// acquires, and release stamps that arrived out of order.
  std::uint64_t updates_parked = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t ooo_updates = 0;
  /// Partition diagnostics (zero unless the fault plan scheduled
  /// partition/blackhole windows).
  std::uint64_t partition_drops = 0;        ///< Frames cut by the split.
  std::uint64_t partition_stale_served = 0; ///< Minority-side stale serves.
  std::uint64_t heal_frames = 0;            ///< Anti-entropy republishes.
  std::uint64_t diverged_locations = 0;     ///< Reader locations diverged.
  std::uint64_t reconciled_locations = 0;   ///< Diverged marks later healed.
  /// Tolerance-contract violations flagged by the staleness sanitizer
  /// (zero when the machine runs with --sanitize=off).
  std::uint64_t sanitize_violations = 0;

  /// First virtual time at which the training loss reached `target`;
  /// -1 when never.
  [[nodiscard]] sim::Time time_to_loss(double target) const;
};

TrainResult train_parallel(const Dataset& data, const TrainConfig& config,
                           rt::MachineConfig machine,
                           double loader_offered_bps = 0.0);

/// Single-node baseline with the same cost model (full-batch passes over
/// the same shard schedule).
TrainResult train_sequential(const Dataset& data, const TrainConfig& config);

}  // namespace nscc::nn
