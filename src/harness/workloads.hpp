// The four paper workloads as harness::Workload adapters.  Each adapter
// holds the workload's problem-size parameters as plain members (flag
// registration reads/writes them; tests may set them directly), exposes the
// RunConfig -> legacy-config mapping as a public build() so the parity
// tests can inspect it, and converts the legacy result to RunStats.
#pragma once

#include <iosfwd>
#include <string>

#include "bayes/network.hpp"
#include "bayes/parallel_sampling.hpp"
#include "ga/island.hpp"
#include "harness/workload.hpp"
#include "nn/train.hpp"
#include "solver/jacobi.hpp"

namespace nscc::harness {

/// Island-model GA (paper Sections 3.1, 4.2.1): one deme per node, best
/// individuals migrate through a shared location every generation.
class GaIslandWorkload final : public Workload {
 public:
  int function_id = 6;   ///< Test function 1..8 (6 = Rastrigin).
  int demes = 8;
  int generations = 150;

  [[nodiscard]] std::string name() const override { return "ga.island"; }
  [[nodiscard]] std::string description() const override;
  void register_params(util::Flags& flags) const override;
  void configure(const util::Flags& flags) override;
  [[nodiscard]] ga::IslandConfig build(const RunConfig& run) const;
  RunStats run(const RunConfig& run,
               const rt::MachineConfig& machine) override;
  [[nodiscard]] sanitize::ToleranceSpec tolerance_spec(
      const RunConfig& run) const override;
};

/// Speculative parallel logic sampling with rollback (paper Section 3.2) on
/// the paper's Figure 1 medical-diagnosis belief network.
class BayesSamplingWorkload final : public Workload {
 public:
  int parts = 2;
  std::uint64_t iterations = 6000;

  /// The paper's Figure 1 network: A -> {B, C}; {B, C} -> D; C -> E.
  [[nodiscard]] static bayes::BeliefNetwork figure1();

  [[nodiscard]] std::string name() const override { return "bayes.sampling"; }
  [[nodiscard]] std::string description() const override;
  void register_params(util::Flags& flags) const override;
  void configure(const util::Flags& flags) override;
  [[nodiscard]] bayes::ParallelInferenceConfig build(
      const RunConfig& run) const;
  RunStats run(const RunConfig& run,
               const rt::MachineConfig& machine) override;
  [[nodiscard]] sanitize::ToleranceSpec tolerance_spec(
      const RunConfig& run) const override;
  void print_reference(std::ostream& os, const RunConfig& base) override;
};

/// Row-block parallel Jacobi on a 2-D Poisson system (paper Section 1's
/// opening data-race tolerant application).
class JacobiWorkload final : public Workload {
 public:
  int grid = 16;          ///< Poisson grid side (n x n unknowns).
  int processors = 4;
  double tolerance = 1e-7;

  [[nodiscard]] std::string name() const override { return "solver.jacobi"; }
  [[nodiscard]] std::string description() const override;
  void register_params(util::Flags& flags) const override;
  void configure(const util::Flags& flags) override;
  [[nodiscard]] solver::ParallelJacobiConfig build(const RunConfig& run) const;
  RunStats run(const RunConfig& run,
               const rt::MachineConfig& machine) override;
  [[nodiscard]] sanitize::ToleranceSpec tolerance_spec(
      const RunConfig& run) const override;
  void print_reference(std::ostream& os, const RunConfig& base) override;
};

/// Bounded-staleness SGD on the two-spirals task (paper Section 6's named
/// future-work application): P workers plus a parameter server.
class NnTrainWorkload final : public Workload {
 public:
  int workers = 4;
  int steps = 500;

  [[nodiscard]] std::string name() const override { return "nn.train"; }
  [[nodiscard]] std::string description() const override;
  void register_params(util::Flags& flags) const override;
  void configure(const util::Flags& flags) override;
  [[nodiscard]] nn::TrainConfig build(const RunConfig& run) const;
  RunStats run(const RunConfig& run,
               const rt::MachineConfig& machine) override;
  [[nodiscard]] sanitize::ToleranceSpec tolerance_spec(
      const RunConfig& run) const override;
  void print_reference(std::ostream& os, const RunConfig& base) override;
};

}  // namespace nscc::harness
