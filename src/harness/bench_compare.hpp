// Bench regression gate: diff two nscc-bench JSON documents (the schema
// sweep.cpp emits, documented in bench/schema.md) cell by cell and metric
// by metric.  The simulator is deterministic, so the default comparison is
// EXACT — %.17g round-trips through strtod bit-for-bit — and any drift in a
// simulated metric is a real behaviour change.  Wall-clock-derived metrics
// (events_per_sec) are inherently noisy and get explicit relative
// tolerances from the caller (--tol=metric=R).
//
// Direction awareness: for a tolerated metric, only a change in the *worse*
// direction fails — lower events_per_sec, higher completion_s.  Metrics
// with no known direction fail on any out-of-tolerance change (in a
// deterministic sim an "improvement" you didn't ask for is still drift
// worth flagging).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace nscc::harness {

struct CompareOptions {
  /// Relative tolerance applied to every metric without an override.
  /// 0 = exact (the right default for a deterministic simulator).
  double default_tolerance = 0.0;
  /// Per-metric relative tolerance overrides, keyed by stat name.
  std::map<std::string, double> metric_tolerance;
};

/// Exit-code semantics shared by compare_bench_json and the CLI.
inline constexpr int kComparePass = 0;
inline constexpr int kCompareRegression = 1;
inline constexpr int kCompareError = 2;  ///< Schema/parse/usage problem.

/// Compare candidate against baseline.  Writes one line per difference (and
/// a final summary) to `out`.  Returns kComparePass when every baseline
/// cell is present and within tolerance, kCompareRegression when any metric
/// regressed or a baseline cell/metric disappeared, kCompareError when
/// either document fails to parse, is not nscc-bench-v* JSON, or the two
/// documents disagree on schema version or producing bench.
int compare_bench_json(const std::string& baseline_text,
                       const std::string& candidate_text,
                       const CompareOptions& options, std::ostream& out);

}  // namespace nscc::harness
