#include "harness/workload.hpp"

#include <ostream>

#include "harness/workloads.hpp"

namespace nscc::harness {

void Workload::print_reference(std::ostream&, const RunConfig&) {}

sanitize::ToleranceSpec Workload::tolerance_spec(const RunConfig&) const {
  return {};
}

bool Registry::add(std::unique_ptr<Workload> workload) {
  if (workload == nullptr) return false;
  if (find(workload->name()) != nullptr) return false;
  workloads_.push_back(std::move(workload));
  return true;
}

Workload* Registry::find(const std::string& name) const noexcept {
  for (const auto& w : workloads_) {
    if (w->name() == name) return w.get();
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(w->name());
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  static const bool registered = [] {
    register_builtin_workloads(registry);
    return true;
  }();
  (void)registered;
  return registry;
}

void register_builtin_workloads(Registry& registry) {
  registry.add(std::make_unique<GaIslandWorkload>());
  registry.add(std::make_unique<BayesSamplingWorkload>());
  registry.add(std::make_unique<JacobiWorkload>());
  registry.add(std::make_unique<NnTrainWorkload>());
}

}  // namespace nscc::harness
