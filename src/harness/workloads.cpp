#include "harness/workloads.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "bayes/logic_sampling.hpp"
#include "ga/functions.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"

namespace nscc::harness {

namespace {

/// The mechanism counters shared by every workload result struct.
template <typename Result>
void fill_common(RunStats& stats, const Result& r) {
  stats.completion_time = r.completion_time;
  stats.deadlocked = r.deadlocked;
  stats.messages_sent = r.messages_sent;
  stats.global_read_blocks = r.global_read_blocks;
  stats.global_read_block_time = r.global_read_block_time;
  stats.bus_utilization = r.bus_utilization;
}

/// Crash-recovery counters (every workload result embeds recovery::Stats).
template <typename Result>
void fill_recovery(RunStats& stats, const Result& r) {
  stats.crashes = r.recovery.crashes;
  stats.checkpoints_taken = r.recovery.checkpoints_taken;
  stats.restores = r.recovery.restores + r.recovery.cold_restarts;
  stats.rejoins = r.recovery.rejoins;
  stats.degraded_reads = r.degraded_reads;
  stats.detection_latency = r.recovery.detection_latency;
  stats.recovery_latency = r.recovery.recovery_latency;
  stats.lost_iterations = r.recovery.lost_iterations;
}

/// Integrity/sanitizer counters (every workload result carries both).
template <typename Result>
void fill_integrity(RunStats& stats, const Result& r) {
  stats.integrity_dropped = r.integrity_dropped;
  stats.sanitize_violations = r.sanitize_violations;
}

/// Partition counters (every workload result carries them; zero unless the
/// fault plan scheduled partition/blackhole windows).
template <typename Result>
void fill_partition(RunStats& stats, const Result& r) {
  stats.partition_drops = r.partition_drops;
  stats.partition_stale_served = r.partition_stale_served;
  stats.heal_frames = r.heal_frames;
  stats.diverged_locations = r.diverged_locations;
  stats.reconciled_locations = r.reconciled_locations;
  stats.split_brain_declarations = r.recovery.split_brain_declarations;
  stats.updates_parked = r.updates_parked;
  stats.updates_flushed = r.updates_flushed;
  stats.ooo_updates = r.ooo_updates;
}

/// The staleness bound each variant's read discipline promises: synchronous
/// reads demand the producer's previous iteration exactly, Global_Read(age)
/// reads promise the declared bound, fully asynchronous reads tolerate
/// anything (that is the paper's uncontrolled baseline).
sanitize::Iteration mode_age_bound(const RunConfig& run) {
  switch (run.mode) {
    case dsm::Mode::kSynchronous:
      return 0;
    case dsm::Mode::kPartialAsync:
      return run.age;
    case dsm::Mode::kAsynchronous:
      break;
  }
  return -1;
}

}  // namespace

// ---- ga.island -------------------------------------------------------------

std::string GaIslandWorkload::description() const {
  return "island GA on " + ga::test_function(function_id).name;
}

void GaIslandWorkload::register_params(util::Flags& flags) const {
  flags.add_int("demes", demes, "number of islands (simulated nodes)")
      .add_int("generations", generations, "generations per deme")
      .add_int("function", function_id, "test function 1..8 (6 = Rastrigin)");
}

void GaIslandWorkload::configure(const util::Flags& flags) {
  demes = static_cast<int>(flags.get_int("demes"));
  generations = static_cast<int>(flags.get_int("generations"));
  function_id = static_cast<int>(flags.get_int("function"));
}

ga::IslandConfig GaIslandWorkload::build(const RunConfig& run) const {
  ga::IslandConfig cfg;
  static_cast<RunConfig&>(cfg) = run;
  cfg.function_id = function_id;
  cfg.ndemes = demes;
  cfg.generations = generations;
  return cfg;
}

RunStats GaIslandWorkload::run(const RunConfig& run,
                               const rt::MachineConfig& machine) {
  const auto r = ga::run_island_ga(build(run), machine, run.loader_offered_bps);
  RunStats stats;
  fill_common(stats, r);
  stats.bytes_sent = r.bytes_sent;
  stats.mean_staleness = r.mean_staleness;
  stats.mean_warp = r.mean_warp;
  stats.frames_lost = r.frames_lost;
  stats.retransmissions = r.retransmissions;
  stats.read_escalations = r.read_escalations;
  fill_recovery(stats, r);
  fill_integrity(stats, r);
  fill_partition(stats, r);
  stats.quality_name = "best_fitness";
  stats.quality = r.best_fitness;
  stats.extra = {{"final_average", r.final_average},
                 {"evaluations", static_cast<double>(r.evaluations)},
                 {"cache_hits", static_cast<double>(r.cache_hits)}};
  return stats;
}

sanitize::ToleranceSpec GaIslandWorkload::tolerance_spec(
    const RunConfig& run) const {
  const ga::IslandConfig cfg = build(run);
  sanitize::ToleranceRule rule;
  rule.max_age = mode_age_bound(run);
  // Adaptive demes raise their own age at runtime, bounded by the
  // controller's cap — the contract certifies that cap, not the seed age.
  if (cfg.adaptive_age && run.mode == dsm::Mode::kPartialAsync) {
    rule.max_age = std::max(rule.max_age, cfg.adaptive.max_age);
  }
  // Sync/partial demes always state an age bound on migrant reads; only
  // the uncontrolled asynchronous variant reads un-aged.  Degraded and
  // not-yet-valid migrants are tolerated by design: demes skip them (crash
  // recovery serves the last published migrants; before the first
  // migration nothing has arrived).
  rule.require_aged = run.mode != dsm::Mode::kAsynchronous;
  sanitize::ToleranceSpec spec;
  spec.declare_range(ga::migrant_loc(0), ga::migrant_loc(cfg.ndemes), rule);
  return spec;
}

// ---- bayes.sampling --------------------------------------------------------

bayes::BeliefNetwork BayesSamplingWorkload::figure1() {
  bayes::BeliefNetwork net;
  const auto a = net.add_node("metastatic-cancer", 2);
  const auto b = net.add_node("serum-calcium", 2);
  const auto c = net.add_node("brain-tumor", 2);
  const auto d = net.add_node("coma", 2);
  const auto e = net.add_node("headache", 2);
  net.set_parents(b, {a});
  net.set_parents(c, {a});
  net.set_parents(d, {b, c});
  net.set_parents(e, {c});
  net.set_cpt(a, {0.80, 0.20});
  net.set_cpt(b, {0.80, 0.20, 0.20, 0.80});
  net.set_cpt(c, {0.95, 0.05, 0.20, 0.80});
  net.set_cpt(d, {0.95, 0.05, 0.40, 0.60, 0.30, 0.70, 0.20, 0.80});
  net.set_cpt(e, {0.90, 0.10, 0.30, 0.70});
  net.validate();
  return net;
}

namespace {
// Query: P(coma = true | metastatic-cancer = true), P(headache = true | ...).
const std::vector<bayes::Evidence> kFigure1Evidence = {{0, 1}};
const std::vector<bayes::Query> kFigure1Queries = {{3, 1}, {4, 1}};
}  // namespace

std::string BayesSamplingWorkload::description() const {
  return "speculative logic sampling on the Figure 1 belief network";
}

void BayesSamplingWorkload::register_params(util::Flags& flags) const {
  flags
      .add_int("iterations", static_cast<std::int64_t>(iterations),
               "sampling iterations per task")
      .add_int("parts", parts, "network partitions (simulated nodes)");
}

void BayesSamplingWorkload::configure(const util::Flags& flags) {
  iterations = static_cast<std::uint64_t>(flags.get_int("iterations"));
  parts = static_cast<int>(flags.get_int("parts"));
}

bayes::ParallelInferenceConfig BayesSamplingWorkload::build(
    const RunConfig& run) const {
  bayes::ParallelInferenceConfig cfg;
  static_cast<RunConfig&>(cfg) = run;
  cfg.parts = parts;
  cfg.iterations = iterations;
  return cfg;
}

RunStats BayesSamplingWorkload::run(const RunConfig& run,
                                    const rt::MachineConfig& machine) {
  const auto net = figure1();
  const auto r = bayes::run_parallel_logic_sampling(
      net, kFigure1Evidence, kFigure1Queries, build(run), machine,
      run.loader_offered_bps);
  RunStats stats;
  fill_common(stats, r);
  stats.bytes_sent = r.bytes_sent;
  stats.mean_warp = r.mean_warp;
  stats.read_escalations = r.read_escalations;
  fill_recovery(stats, r);
  fill_integrity(stats, r);
  fill_partition(stats, r);
  stats.quality_name = "P(coma|cancer)";
  stats.quality = r.estimates.empty() ? 0.0 : r.estimates[0].probability;
  stats.extra = {
      {"P(headache|cancer)",
       r.estimates.size() > 1 ? r.estimates[1].probability : 0.0},
      {"rollbacks", static_cast<double>(r.rollbacks)},
      {"nodes_resampled", static_cast<double>(r.nodes_resampled)},
      {"validated_samples", static_cast<double>(r.validated_samples)}};
  return stats;
}

sanitize::ToleranceSpec BayesSamplingWorkload::tolerance_spec(
    const RunConfig& run) const {
  sanitize::ToleranceRule rule;
  rule.max_age = mode_age_bound(run);
  // Guard-phase reads are receiver-driven flow control: partial mode polls
  // un-aged inside its free run-ahead window and the rollback machinery
  // tolerates any interim value (corrections supersede), so un-aged reads
  // are legitimate in every mode.
  rule.require_aged = false;
  sanitize::ToleranceSpec spec;
  spec.declare_range(bayes::block_loc(0, 0), bayes::block_loc(parts, 0),
                     rule);
  return spec;
}

void BayesSamplingWorkload::print_reference(std::ostream& os,
                                            const RunConfig& base) {
  bayes::InferenceConfig serial_cfg;
  serial_cfg.seed = base.seed;
  const auto serial = bayes::run_logic_sampling(figure1(), kFigure1Evidence,
                                                kFigure1Queries, serial_cfg);
  char line[256];
  std::snprintf(line, sizeof line,
                "sequential logic sampling: %llu runs (%llu "
                "evidence-consistent), P(coma|cancer)=%.3f, %.2fs virtual\n",
                static_cast<unsigned long long>(serial.samples_drawn),
                static_cast<unsigned long long>(serial.samples_used),
                serial.estimates.empty() ? 0.0
                                         : serial.estimates[0].probability,
                sim::to_seconds(serial.completion_time));
  os << line;
}

// ---- solver.jacobi ---------------------------------------------------------

std::string JacobiWorkload::description() const {
  return "row-block parallel Jacobi on a 2-D Poisson system";
}

void JacobiWorkload::register_params(util::Flags& flags) const {
  flags.add_int("grid", grid, "Poisson grid side (n x n unknowns)")
      .add_int("processors", processors, "simulated nodes")
      .add_double("tolerance", tolerance, "residual tolerance");
}

void JacobiWorkload::configure(const util::Flags& flags) {
  grid = static_cast<int>(flags.get_int("grid"));
  processors = static_cast<int>(flags.get_int("processors"));
  tolerance = flags.get_double("tolerance");
}

solver::ParallelJacobiConfig JacobiWorkload::build(const RunConfig& run) const {
  solver::ParallelJacobiConfig cfg;
  static_cast<RunConfig&>(cfg) = run;
  cfg.processors = processors;
  cfg.tolerance = tolerance;
  cfg.check_interval = 25;
  return cfg;
}

RunStats JacobiWorkload::run(const RunConfig& run,
                             const rt::MachineConfig& machine) {
  const auto sys = solver::make_poisson_2d(grid, run.seed);
  const auto r = solver::run_parallel_jacobi(sys, build(run), machine,
                                             run.loader_offered_bps);
  RunStats stats;
  fill_common(stats, r);
  stats.mean_staleness = r.mean_staleness;
  stats.read_escalations = r.read_escalations;
  fill_recovery(stats, r);
  fill_integrity(stats, r);
  fill_partition(stats, r);
  stats.quality_name = "residual";
  stats.quality = r.residual;
  stats.extra = {{"sweeps", static_cast<double>(r.sweeps)},
                 {"error_inf", r.error_inf},
                 {"converged", r.converged ? 1.0 : 0.0}};
  return stats;
}

sanitize::ToleranceSpec JacobiWorkload::tolerance_spec(const RunConfig& run) const {
  sanitize::ToleranceRule rule;
  rule.max_age = mode_age_bound(run);
  // require_aged stays off in every mode: the verified convergence phase
  // legitimately plain-reads boundary blocks after a flushing barrier, and
  // Bertsekas-Tsitsiklis convergence tolerates any finite interim
  // staleness on those paths.
  sanitize::ToleranceSpec spec;
  spec.declare_range(solver::block_loc(0), solver::block_loc(processors),
                     rule);
  return spec;
}

void JacobiWorkload::print_reference(std::ostream& os, const RunConfig& base) {
  const auto sys = solver::make_poisson_2d(grid, base.seed);
  solver::JacobiConfig seq_cfg;
  seq_cfg.tolerance = tolerance;
  const auto serial = solver::run_sequential_jacobi(sys, seq_cfg);
  char line[256];
  std::snprintf(line, sizeof line,
                "system: %d unknowns, %zu nonzeros; sequential: %d sweeps, "
                "%.2fs virtual, residual %.2e\n",
                sys.size(), sys.a.nonzeros(), serial.sweeps,
                sim::to_seconds(serial.completion_time), serial.residual);
  os << line;
}

// ---- nn.train --------------------------------------------------------------

std::string NnTrainWorkload::description() const {
  return "bounded-staleness SGD on the two-spirals MLP";
}

void NnTrainWorkload::register_params(util::Flags& flags) const {
  flags.add_int("steps", steps, "mini-batch steps per worker")
      .add_int("workers", workers, "worker nodes (plus a parameter server)");
}

void NnTrainWorkload::configure(const util::Flags& flags) {
  steps = static_cast<int>(flags.get_int("steps"));
  workers = static_cast<int>(flags.get_int("workers"));
}

nn::TrainConfig NnTrainWorkload::build(const RunConfig& run) const {
  nn::TrainConfig cfg;
  static_cast<RunConfig&>(cfg) = run;
  cfg.workers = workers;
  cfg.steps = steps;
  return cfg;
}

RunStats NnTrainWorkload::run(const RunConfig& run,
                              const rt::MachineConfig& machine) {
  const auto data = nn::make_two_spirals(60, 0.02, run.seed);
  const auto r =
      nn::train_parallel(data, build(run), machine, run.loader_offered_bps);
  RunStats stats;
  fill_common(stats, r);
  stats.mean_staleness = r.mean_staleness;
  stats.read_escalations = r.read_escalations;
  fill_recovery(stats, r);
  fill_integrity(stats, r);
  fill_partition(stats, r);
  stats.quality_name = "final_loss";
  stats.quality = r.final_loss;
  stats.extra = {{"final_accuracy", r.final_accuracy}};
  return stats;
}

sanitize::ToleranceSpec NnTrainWorkload::tolerance_spec(const RunConfig& run) const {
  sanitize::ToleranceRule rule;
  rule.max_age = mode_age_bound(run);
  // Sync/partial workers always bound their parameter pulls; only the
  // Hogwild-flavoured asynchronous variant reads un-aged.  A not-yet-valid
  // or degraded vector is tolerated: workers fall back to their local
  // parameter copy (stale-gradient SGD still converges).
  rule.require_aged = run.mode != dsm::Mode::kAsynchronous;
  sanitize::ToleranceSpec spec;
  spec.declare(nn::kParamsLoc, rule);
  return spec;
}

void NnTrainWorkload::print_reference(std::ostream& os, const RunConfig& base) {
  const auto data = nn::make_two_spirals(60, 0.02, base.seed);
  const auto serial = nn::train_sequential(data, build(base));
  char line[192];
  std::snprintf(line, sizeof line,
                "serial: loss %.4f, accuracy %.2f, %.2fs virtual\n",
                serial.final_loss, serial.final_accuracy,
                sim::to_seconds(serial.completion_time));
  os << line;
}

}  // namespace nscc::harness
