#include "harness/run_config.hpp"

#include <stdexcept>

namespace nscc::harness {

std::vector<std::pair<std::string, double>> RunStats::to_fields() const {
  std::vector<std::pair<std::string, double>> fields = {
      {"completion_s", sim::to_seconds(completion_time)},
      {"deadlocked", deadlocked ? 1.0 : 0.0},
      {"messages_sent", static_cast<double>(messages_sent)},
      {"bytes_sent", static_cast<double>(bytes_sent)},
      {"global_read_blocks", static_cast<double>(global_read_blocks)},
      {"global_read_block_s", sim::to_seconds(global_read_block_time)},
      {"bus_utilization", bus_utilization},
      {"mean_staleness", mean_staleness},
      {"mean_warp", mean_warp},
      {"frames_lost", static_cast<double>(frames_lost)},
      {"retransmissions", static_cast<double>(retransmissions)},
      {"read_escalations", static_cast<double>(read_escalations)},
      {"integrity_dropped", static_cast<double>(integrity_dropped)},
      {"sanitize_violations", static_cast<double>(sanitize_violations)},
      {"crashes", static_cast<double>(crashes)},
      {"checkpoints_taken", static_cast<double>(checkpoints_taken)},
      {"restores", static_cast<double>(restores)},
      {"rejoins", static_cast<double>(rejoins)},
      {"degraded_reads", static_cast<double>(degraded_reads)},
      {"detection_latency_s", sim::to_seconds(detection_latency)},
      {"recovery_latency_s", sim::to_seconds(recovery_latency)},
      {"lost_iterations", static_cast<double>(lost_iterations)},
      {"partition_drops", static_cast<double>(partition_drops)},
      {"partition_stale_served", static_cast<double>(partition_stale_served)},
      {"heal_frames", static_cast<double>(heal_frames)},
      {"diverged_locations", static_cast<double>(diverged_locations)},
      {"reconciled_locations", static_cast<double>(reconciled_locations)},
      {"split_brain_declarations",
       static_cast<double>(split_brain_declarations)},
      {"updates_parked", static_cast<double>(updates_parked)},
      {"updates_flushed", static_cast<double>(updates_flushed)},
      {"ooo_updates", static_cast<double>(ooo_updates)},
      {quality_name, quality},
  };
  fields.insert(fields.end(), extra.begin(), extra.end());
  return fields;
}

std::string VariantSpec::label() const {
  if (name == "sync") return "synchronous";
  if (name == "async") return "asynchronous";
  if (name == "partial") return "Global_Read(" + std::to_string(age) + ")";
  return name;
}

const std::vector<std::string>& variant_names() {
  static const std::vector<std::string> names = {"sync", "async", "partial"};
  return names;
}

VariantSpec make_variant(const std::string& name, dsm::Iteration partial_age) {
  if (name == "sync") return {name, dsm::Mode::kSynchronous, 0};
  if (name == "async") return {name, dsm::Mode::kAsynchronous, 0};
  if (name == "partial") {
    return {name, dsm::Mode::kPartialAsync, partial_age};
  }
  throw std::invalid_argument("unknown variant: " + name);
}

std::vector<VariantSpec> parse_variants(const std::string& csv,
                                        dsm::Iteration partial_age) {
  std::vector<VariantSpec> specs;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = csv.find(',', pos);
    specs.push_back(make_variant(csv.substr(pos, comma - pos), partial_age));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return specs;
}

}  // namespace nscc::harness
