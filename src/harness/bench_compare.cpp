#include "harness/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>
#include <vector>

#include "util/json.hpp"

namespace nscc::harness {

namespace {

/// Metrics where bigger is better: only a decrease can regress.
bool higher_is_better(const std::string& metric) {
  static const std::set<std::string> kHigher = {
      "speedup", "events_per_sec", "quality_ok_fraction"};
  return kHigher.count(metric) != 0;
}

/// Metrics where smaller is better: only an increase can regress.  Covers
/// the RunStats field names sweep.cpp serialises (bench/schema.md).
bool lower_is_better(const std::string& metric) {
  static const std::set<std::string> kLower = {
      "completion_s",      "block_time_s",     "messages",
      "bytes",             "gr_blocks",        "frames_lost",
      "retransmissions",   "escalations",      "wall_s",
      "peak_queue_depth",  "allocations",      "alloc_bytes",
      "mean_dispatch_ns",  "integrity_dropped", "sanitize_violations"};
  return kLower.count(metric) != 0;
}

/// One result cell, keyed by its sweep coordinates.
struct Cell {
  std::string key;
  std::vector<std::pair<std::string, double>> stats;
};

/// Deterministic cell identity: every coordinate the sweep varies, with
/// params sorted by name so writer-side ordering differences cannot split
/// a cell into two keys.
std::string cell_key(const util::json::Value& rec) {
  std::string key = "workload=" + rec.string_or("workload", "?") +
                    " variant=" + rec.string_or("variant", "?");
  // Model-matrix sweeps (schema v5) tag non-default cells; the absent field
  // means nonstrict, so legacy baselines keep their keys.
  if (const std::string cons = rec.string_or("consistency", "nonstrict");
      cons != "nonstrict") {
    key += " consistency=" + cons;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, " age=%g seed=%g repeat=%g",
                rec.number_or("age", 0), rec.number_or("seed", 0),
                rec.number_or("repeat", 0));
  key += buf;
  if (const util::json::Value* params = rec.find("params");
      params != nullptr && params->is_object()) {
    std::vector<std::pair<std::string, double>> sorted;
    for (const auto& [name, v] : params->object) {
      if (v.is_number()) sorted.emplace_back(name, v.number);
    }
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [name, v] : sorted) {
      std::snprintf(buf, sizeof buf, " %s=%.17g", name.c_str(), v);
      key += buf;
    }
  }
  return key;
}

/// Parse + schema-check one document; returns false with a message on any
/// structural problem (exit-2 class).
bool load_doc(const std::string& text, const char* label,
              util::json::Value& doc, std::ostream& out) {
  std::string error;
  auto parsed = util::json::parse(text, &error);
  if (!parsed) {
    out << "bench-compare: " << label << ": " << error << "\n";
    return false;
  }
  doc = std::move(*parsed);
  if (!doc.is_object()) {
    out << "bench-compare: " << label << ": document is not an object\n";
    return false;
  }
  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind("nscc-bench-v", 0) != 0) {
    out << "bench-compare: " << label << ": schema \"" << schema
        << "\" is not nscc-bench-v*\n";
    return false;
  }
  const util::json::Value* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    out << "bench-compare: " << label << ": missing results array\n";
    return false;
  }
  return true;
}

std::vector<Cell> collect_cells(const util::json::Value& doc) {
  std::vector<Cell> cells;
  for (const util::json::Value& rec : doc.find("results")->array) {
    if (!rec.is_object()) continue;
    Cell cell;
    cell.key = cell_key(rec);
    if (const util::json::Value* stats = rec.find("stats");
        stats != nullptr && stats->is_object()) {
      for (const auto& [name, v] : stats->object) {
        if (v.is_number()) cell.stats.emplace_back(name, v.number);
      }
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

int compare_bench_json(const std::string& baseline_text,
                       const std::string& candidate_text,
                       const CompareOptions& options, std::ostream& out) {
  util::json::Value base_doc;
  util::json::Value cand_doc;
  if (!load_doc(baseline_text, "baseline", base_doc, out) ||
      !load_doc(candidate_text, "candidate", cand_doc, out)) {
    return kCompareError;
  }
  if (base_doc.string_or("schema", "") != cand_doc.string_or("schema", "")) {
    out << "bench-compare: schema mismatch: baseline \""
        << base_doc.string_or("schema", "") << "\" vs candidate \""
        << cand_doc.string_or("schema", "") << "\"\n";
    return kCompareError;
  }
  if (base_doc.string_or("bench", "") != cand_doc.string_or("bench", "")) {
    out << "bench-compare: bench mismatch: baseline \""
        << base_doc.string_or("bench", "") << "\" vs candidate \""
        << cand_doc.string_or("bench", "") << "\"\n";
    return kCompareError;
  }

  const std::vector<Cell> base_cells = collect_cells(base_doc);
  const std::vector<Cell> cand_cells = collect_cells(cand_doc);

  int regressions = 0;
  int within = 0;  // Differences absorbed by a tolerance.
  int compared = 0;
  for (const Cell& base : base_cells) {
    const Cell* cand = nullptr;
    for (const Cell& c : cand_cells) {
      if (c.key == base.key) {
        cand = &c;
        break;
      }
    }
    if (cand == nullptr) {
      out << "REGRESSION " << base.key << ": cell missing from candidate\n";
      ++regressions;
      continue;
    }
    for (const auto& [metric, base_v] : base.stats) {
      const double* cand_v = nullptr;
      for (const auto& [name, v] : cand->stats) {
        if (name == metric) {
          cand_v = &v;
          break;
        }
      }
      if (cand_v == nullptr) {
        out << "REGRESSION " << base.key << ": metric " << metric
            << " missing from candidate\n";
        ++regressions;
        continue;
      }
      ++compared;
      if (*cand_v == base_v) continue;
      double tol = options.default_tolerance;
      if (auto it = options.metric_tolerance.find(metric);
          it != options.metric_tolerance.end()) {
        tol = it->second;
      }
      const double denom =
          std::max({std::fabs(base_v), std::fabs(*cand_v), 1e-300});
      const double rel = (*cand_v - base_v) / denom;
      // Direction: a tolerated metric only fails when it moved the wrong
      // way; an unknown-direction metric fails on any out-of-tolerance
      // change (deterministic sim — unexplained drift is the signal).
      bool worse = std::fabs(rel) > tol;
      if (worse && higher_is_better(metric) && rel > 0) worse = false;
      if (worse && lower_is_better(metric) && rel < 0) worse = false;
      char line[256];
      std::snprintf(line, sizeof line,
                    "%s %s: %s %.17g -> %.17g (%+.2f%%, tol %.2f%%)\n",
                    worse ? "REGRESSION" : "ok", base.key.c_str(),
                    metric.c_str(), base_v, *cand_v, rel * 100.0, tol * 100.0);
      out << line;
      if (worse) {
        ++regressions;
      } else {
        ++within;
      }
    }
  }

  out << "bench-compare: " << base_cells.size() << " baseline cell(s), "
      << compared << " metric(s) compared, " << within
      << " within tolerance, " << regressions << " regression(s)\n";
  return regressions > 0 ? kCompareRegression : kComparePass;
}

}  // namespace nscc::harness
