// The one Mode → PropagationPolicy mapping every workload used to
// hand-roll: which RunConfig::propagation fields a task's SharedSpace
// lifts, the synchronous-mode reliable-updates rule, and the recovery
// wiring (membership probes + the rejoin watchdog floor).  Deduplicated
// here so the consistency-model choice — and any future policy knob —
// threads through all four applications from a single place.
#pragma once

#include "dsm/shared_space.hpp"
#include "harness/run_config.hpp"

namespace nscc::recovery {
class Coordinator;
}  // namespace nscc::recovery

namespace nscc::harness {

struct PolicyOptions {
  /// Start from the run's full PropagationPolicy (the GA honours every
  /// knob — jitter, merge hooks, read_impl) instead of the curated subset
  /// the other workloads lift (read_timeout / partition_heal / integrity /
  /// consistency).
  bool full = false;
  /// Subset mode only: also lift the coalescing decision (the solver;
  /// the nn/bayes tasks never coalesce regardless of mode).
  bool coalesce = false;
  /// Synchronous mode has no staleness tolerance: when the machine has a
  /// reliable transport, force updates onto it (a lost age-0 update would
  /// stall the barrier-step pipeline until recovery).  Pass the machine's
  /// transport availability in `transport_enabled`.
  bool sync_reliable_updates = false;
  bool transport_enabled = false;
  /// Recovery coordinator (null = no failure-detector wiring) and the node
  /// id whose membership view the policy's probes should use.
  recovery::Coordinator* recovery = nullptr;
  int self = -1;
};

/// Build the task-level propagation policy for one node of a workload.
[[nodiscard]] dsm::PropagationPolicy make_policy(const RunConfig& run,
                                                 const PolicyOptions& opt);

}  // namespace nscc::harness
