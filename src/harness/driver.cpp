#include "harness/driver.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "dsm/consistency.hpp"
#include "harness/report.hpp"
#include "harness/run_config.hpp"
#include "harness/workload.hpp"
#include "obs/obs.hpp"
#include "recovery/recovery.hpp"
#include "sanitize/sanitize.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace nscc::harness {

int drive(int argc, char** argv, const DriveOptions& options) {
  Workload* workload = Registry::global().find(options.workload);
  if (workload == nullptr) {
    std::cerr << "unknown workload '" << options.workload << "'; registered:";
    for (const auto& name : Registry::global().names()) {
      std::cerr << ' ' << name;
    }
    std::cerr << '\n';
    return 2;
  }

  util::Flags flags;
  flags
      .add_enum_list("variants", options.default_variants, variant_names(),
                     "consistency variants to run")
      .add_int("age", options.default_age,
               "staleness bound for the partial (Global_Read) variant")
      .add_int("seed", 1, "random seed (also seeds the problem instance)")
      .add_enum("network",
                options.default_network == rt::Network::kSp2Switch
                    ? "sp2"
                    : "ethernet",
                {"ethernet", "sp2"},
                "interconnect: shared 10 Mbps Ethernet or SP2 switch")
      .add_enum("recovery", "none", {"none", "degraded", "rejoin"},
                "crash-recovery policy for stateful (--crash-at) windows")
      .add_double("checkpoint-interval", 0.5,
                  "virtual seconds between node checkpoints (0 disables)")
      .add_enum("consistency", "nonstrict",
                dsm::ConsistencyRegistry::instance().names(),
                "consistency model applied by every DSM instance: nonstrict "
                "(paper default), regional (region-scoped fences), "
                "release-acquire (updates visible only at acquires), or "
                "eventual (never block on staleness)")
      .add_enum("sanitize", "off", {"off", "track", "strict"},
                "staleness sanitizer: audit every DSM read against the "
                "workload's tolerance contract (strict exits nonzero on any "
                "violation)")
      .add_string("report-out", "",
                  "write an end-of-run JSON report (nscc-run-report-v1: "
                  "every row's completion/staleness/sanitizer/recovery "
                  "counters) here; empty disables")
      .add_double("quorum", 0.0,
                  "fraction of the cluster (self included) an observer must "
                  "hear before declaring a suspected peer dead; 0 disables "
                  "the split-brain gate")
      .add_bool("heal", true,
                "anti-entropy heal: writers republish their locations over "
                "the reliable channel when a partition/blackhole window ends")
      .add_int("heartbeat-interval-ms", 50,
               "failure-detector heartbeat period in virtual ms (> 0)")
      .add_int("suspect-timeout-ms", 0,
               "silence before suspecting a peer, in virtual ms (0 derives "
               "the phi-threshold default; otherwise must exceed the "
               "heartbeat interval)");
  obs::add_flags(flags);
  fault::add_flags(flags);
  workload->register_params(flags);
  for (const auto& [name, value] : options.flag_defaults) {
    if (!flags.set_default(name, value)) return 2;
  }
  if (!flags.parse(argc, argv)) return 1;

  workload->configure(flags);
  const obs::Options obs_options = obs::options_from_flags(flags);
  fault::FaultPlan flag_plan;
  try {
    flag_plan = fault::plan_from_flags(flags);
  } catch (const std::invalid_argument& e) {
    std::cerr << "harness: " << e.what() << '\n';
    return 1;
  }
  const double quorum = flags.get_double("quorum");
  if (quorum < 0.0 || quorum > 1.0) {
    std::cerr << "harness: --quorum must be in [0, 1], got " << quorum << '\n';
    return 1;
  }
  const std::int64_t heartbeat_ms = flags.get_int("heartbeat-interval-ms");
  if (heartbeat_ms <= 0) {
    std::cerr << "harness: --heartbeat-interval-ms must be > 0, got "
              << heartbeat_ms << '\n';
    return 1;
  }
  const std::int64_t suspect_ms = flags.get_int("suspect-timeout-ms");
  if (suspect_ms < 0) {
    std::cerr << "harness: --suspect-timeout-ms must be >= 0, got "
              << suspect_ms << '\n';
    return 1;
  }
  if (suspect_ms > 0 && suspect_ms <= heartbeat_ms) {
    std::cerr << "harness: --suspect-timeout-ms (" << suspect_ms
              << ") must exceed --heartbeat-interval-ms (" << heartbeat_ms
              << ") or the detector suspects peers between heartbeats\n";
    return 1;
  }
  const bool heal = flags.get_bool("heal");
  const sim::Time read_timeout = fault::read_timeout_from_flags(flags);
  const rt::Network network =
      flags.get_string("network") == "sp2" ? rt::Network::kSp2Switch
                                           : rt::Network::kEthernet;
  const auto variants =
      parse_variants(flags.get_string("variants"), flags.get_int("age"));
  const sanitize::Level sanitize_level =
      *sanitize::level_from_name(flags.get_string("sanitize"));

  std::vector<Scenario> scenarios =
      options.scenarios ? options.scenarios(flags)
                        : std::vector<Scenario>{Scenario{}};
  const bool scenario_column = !scenarios.empty() && !scenarios[0].label.empty();

  const std::string consistency = flags.get_string("consistency");

  RunConfig base;
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.propagation.read_timeout = read_timeout;
  base.propagation.consistency = consistency;
  base.recovery.policy =
      *recovery::policy_from_name(flags.get_string("recovery"));
  base.recovery.checkpoint_interval = static_cast<sim::Time>(
      flags.get_double("checkpoint-interval") *
      static_cast<double>(sim::kSecond));
  base.recovery.quorum_fraction = quorum;
  base.recovery.heartbeat_interval =
      static_cast<sim::Time>(heartbeat_ms) * sim::kMillisecond;
  base.recovery.suspect_timeout =
      static_cast<sim::Time>(suspect_ms) * sim::kMillisecond;
  workload->print_reference(std::cout, base);

  struct Row {
    std::string scenario;
    std::string variant;
    RunStats stats;
  };
  std::vector<Row> rows;
  bool any_fault = !flag_plan.empty();
  bool any_partition = false;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const Scenario& scenario = scenarios[si];
    const fault::FaultPlan& plan =
        scenario.has_fault ? scenario.fault : flag_plan;
    if (!plan.empty()) any_fault = true;
    if (plan.partitionable()) any_partition = true;
    for (const auto& v : variants) {
      RunConfig run = base;
      run.mode = v.mode;
      run.age = v.age;
      // Staleness tolerance is what licenses update coalescing (paper
      // Sections 1-2); sync and uncontrolled async send directly.
      run.propagation.coalesce = v.mode == dsm::Mode::kPartialAsync;
      // Anti-entropy heal only arms when the plan can actually split the
      // cluster, so partition-free runs stay byte-identical.
      run.propagation.partition_heal = heal && plan.partitionable();
      run.loader_offered_bps = scenario.loader_offered_bps;
      // Sanitizing turns on the end-to-end integrity layer too: audited
      // runs should also checksum what the wire delivered.
      run.propagation.integrity = sanitize_level != sanitize::Level::kOff;

      rt::MachineConfig machine;
      machine.network = network;
      machine.fault = plan;
      machine.transport.enabled = !plan.empty() || run.recovery.enabled();
      machine.sanitize.level = sanitize_level;
      machine.sanitize.spec = workload->tolerance_spec(run);
      // Observe only the Global_Read variant of the last scenario so
      // --trace-out / --metrics-out capture exactly one run (the one the
      // paper's mechanism is about).
      if (v.mode == dsm::Mode::kPartialAsync && si + 1 == scenarios.size()) {
        machine.obs = obs_options;
      }
      rows.push_back(
          {scenario.label, v.label(), workload->run(run, machine)});
    }
  }

  util::Table table(options.title.empty() ? workload->description()
                                          : options.title);
  std::vector<std::string> cols;
  if (scenario_column) cols.push_back(options.scenario_column);
  // A non-default consistency model earns its own column; the default keeps
  // the legacy table byte-identical.
  const bool model_column = consistency != "nonstrict";
  if (model_column) cols.push_back("model");
  cols.insert(cols.end(), {"variant", "completion s",
                           rows.empty() ? std::string("quality")
                                        : rows[0].stats.quality_name,
                           "messages", "gr blocks", "block time s",
                           "bus util"});
  if (any_fault) {
    cols.insert(cols.end(), {"frames lost", "retx", "escalations"});
  }
  if (any_partition) {
    cols.insert(cols.end(), {"part drops", "stale served", "heal frames",
                             "diverged", "reconciled", "split brains"});
  }
  const bool any_recovery = base.recovery.enabled();
  if (any_recovery) {
    cols.insert(cols.end(),
                {"crashes", "restores", "rejoins", "degraded reads"});
  }
  const bool any_sanitize = sanitize_level != sanitize::Level::kOff;
  if (any_sanitize) {
    cols.insert(cols.end(), {"quarantined", "violations"});
  }
  table.columns(cols);
  for (const auto& row : rows) {
    table.row();
    if (scenario_column) table.cell(row.scenario);
    if (model_column) table.cell(consistency);
    const RunStats& s = row.stats;
    // Small figures of merit (residuals, near-optimal fitness) need
    // scientific notation; everything else reads best fixed.
    char quality[32];
    if (s.quality != 0.0 && std::fabs(s.quality) < 1e-3) {
      std::snprintf(quality, sizeof quality, "%.3e", s.quality);
    } else {
      std::snprintf(quality, sizeof quality, "%.4f", s.quality);
    }
    table.cell(row.variant + (s.deadlocked ? " (DEADLOCK)" : ""))
        .cell(sim::to_seconds(s.completion_time), 2)
        .cell(quality)
        .cell(s.messages_sent)
        .cell(s.global_read_blocks)
        .cell(sim::to_seconds(s.global_read_block_time), 2)
        .cell(s.bus_utilization, 2);
    if (any_fault) {
      table.cell(s.frames_lost).cell(s.retransmissions).cell(
          s.read_escalations);
    }
    if (any_partition) {
      table.cell(s.partition_drops)
          .cell(s.partition_stale_served)
          .cell(s.heal_frames)
          .cell(s.diverged_locations)
          .cell(s.reconciled_locations)
          .cell(s.split_brain_declarations);
    }
    if (any_recovery) {
      table.cell(s.crashes).cell(s.restores).cell(s.rejoins).cell(
          s.degraded_reads);
    }
    if (any_sanitize) {
      table.cell(s.integrity_dropped).cell(s.sanitize_violations);
    }
  }
  table.print(std::cout);
  if (!options.epilogue.empty()) std::cout << '\n' << options.epilogue << '\n';

  // Written before the deadlock/sanitize exit checks below on purpose: a
  // failing run's report is exactly the artifact CI wants to upload.
  if (const std::string report_path = flags.get_string("report-out");
      !report_path.empty()) {
    std::vector<ReportRow> report_rows;
    report_rows.reserve(rows.size());
    for (const auto& row : rows) {
      report_rows.push_back({row.scenario, row.variant, row.stats});
    }
    if (!write_run_report(report_path, options.workload, report_rows)) {
      return 2;
    }
  }

  // A deadlocked run is a wedged experiment, not a data point: fail loudly
  // so scripts and CI cannot mistake the table for a healthy result.
  for (const auto& row : rows) {
    if (row.stats.deadlocked) {
      std::cerr << "harness: deadlock — variant '" << row.variant
                << "' never completed (blocked processes reported above by "
                   "the simulator); rerun with --recovery=degraded or "
                   "--recovery=rejoin to survive crash faults\n";
      return 3;
    }
  }
  // Under --sanitize=strict the tolerance contract is an assertion, not a
  // diagnostic: any read outside the declared envelope fails the run.
  if (sanitize_level == sanitize::Level::kStrict) {
    std::uint64_t violations = 0;
    for (const auto& row : rows) violations += row.stats.sanitize_violations;
    if (violations > 0) {
      std::cerr << "harness: sanitize=strict — " << violations
                << " tolerance-contract violation(s) across " << rows.size()
                << " run(s); per-read detail reported above by each "
                   "machine's sanitizer\n";
      return 4;
    }
  }
  // A partitioned run split-brains when both sides declared each other dead
  // (mutual dead declarations — the quorum gate's job to prevent) or when
  // diverged locations were never reconciled (anti-entropy heal's job).
  // This is the demonstrable failure mode of --quorum=0 --heal=false; the
  // quorum-gated + healed configuration must never reach it.
  if (any_partition) {
    std::uint64_t diverged = 0;
    std::uint64_t reconciled = 0;
    std::uint64_t split_brains = 0;
    for (const auto& row : rows) {
      diverged += row.stats.diverged_locations;
      reconciled += row.stats.reconciled_locations;
      split_brains += row.stats.split_brain_declarations;
    }
    if (split_brains > 0 || diverged > reconciled) {
      std::cerr << "harness: split-brain — " << split_brains
                << " mutual dead declaration(s), " << (diverged - reconciled)
                << " diverged location(s) never reconciled; rerun with a "
                   "majority --quorum to gate dead declarations and --heal "
                   "to merge divergent histories\n";
      return 5;
    }
  }
  return 0;
}

}  // namespace nscc::harness
