// End-of-run report (--report-out): one JSON document per harness
// invocation merging, for every (scenario, variant) row the driver ran, the
// full unified RunStats surface — completion/quality, staleness, transport
// robustness, sanitizer, and recovery counters (RunStats::to_fields).
// Where --json-out (bench sweeps) serialises *measurement cells* for the
// regression gate, --report-out serialises *one run's health* for humans
// and CI artifact upload; schema nscc-run-report-v1, see bench/schema.md.
#pragma once

#include <string>
#include <vector>

#include "harness/run_config.hpp"

namespace nscc::harness {

struct ReportRow {
  std::string scenario;  ///< Empty when the driver ran without scenarios.
  std::string variant;
  RunStats stats;
};

/// The report document as JSON text.
[[nodiscard]] std::string run_report_json(const std::string& workload,
                                          const std::vector<ReportRow>& rows);

/// Write run_report_json to `path`; false (with a stderr message) on an IO
/// error.
bool write_run_report(const std::string& path, const std::string& workload,
                      const std::vector<ReportRow>& rows);

}  // namespace nscc::harness
