// The workload seam: one interface every application implements so drivers,
// bench sweeps, and tests can run "some workload under some consistency
// variant on some machine" without knowing which application it is.
//
// A Workload owns its problem-specific parameters (registered as flags,
// configured from a parsed flag set or set directly by tests) and maps the
// unified RunConfig onto its legacy config type; its run() returns the
// unified RunStats.  The Registry maps names ("ga.island", ...) to workload
// instances; the four paper workloads are registered by
// register_builtin_workloads(), which Registry::global() applies lazily so
// static-library link order cannot drop them.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "harness/run_config.hpp"
#include "sanitize/sanitize.hpp"

namespace nscc::util {
class Flags;
}  // namespace nscc::util
namespace nscc::rt {
struct MachineConfig;
}  // namespace nscc::rt

namespace nscc::harness {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Stable registry name, e.g. "ga.island".
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line description for tables and --help.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Register the workload's problem-size flags (--demes, --grid, ...).
  virtual void register_params(util::Flags& flags) const = 0;
  /// Read the registered flags back into the workload's parameters.
  virtual void configure(const util::Flags& flags) = 0;

  /// Run once on a fresh simulated machine.  `run.seed` also seeds the
  /// workload's problem instance so a (config, machine) pair is a pure
  /// function of its fields.
  virtual RunStats run(const RunConfig& run,
                       const rt::MachineConfig& machine) = 0;

  /// The workload's race-tolerance contract for one configured run: which
  /// shared locations tolerate how much staleness, and whether degraded or
  /// never-written values may flow into their consumers.  The staleness
  /// sanitizer audits every DSM read against this.  Default: an empty spec
  /// (fully tolerant — nothing is certified).
  [[nodiscard]] virtual sanitize::ToleranceSpec tolerance_spec(
      const RunConfig& run) const;

  /// Optional sequential-reference preamble (serial baseline line) printed
  /// once by the shared driver before the variant loop.  Default: nothing.
  virtual void print_reference(std::ostream& os, const RunConfig& base);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register a workload.  Returns false (and drops the workload) when a
  /// workload with the same name is already registered.
  bool add(std::unique_ptr<Workload> workload);

  /// nullptr when no workload has that name.
  [[nodiscard]] Workload* find(const std::string& name) const noexcept;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return workloads_.size(); }

  /// The process-wide registry, with the built-in workloads registered.
  static Registry& global();

 private:
  std::vector<std::unique_ptr<Workload>> workloads_;
};

/// Register the four paper workloads (ga.island, bayes.sampling,
/// solver.jacobi, nn.train) into `registry`.
void register_builtin_workloads(Registry& registry);

}  // namespace nscc::harness
