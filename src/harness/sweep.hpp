// Shared bench-results recorder: every bench binary that sweeps (workload,
// variant, age, seed, repeat) cells pushes SweepRecords into a Sweep and
// gets a uniform machine-readable JSON file (--json-out) alongside its
// stdout tables.  The schema is documented in bench/schema.md and snapshot
// in BENCH_baseline.json so the perf trajectory can be diffed across PRs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/run_config.hpp"

namespace nscc::util {
class Flags;
}  // namespace nscc::util

namespace nscc::harness {

/// One measured cell.  `repeat` is the repetition index, or -1 when the
/// stats aggregate over all repetitions (the exp:: cell drivers report
/// means, not raw reps).
struct SweepRecord {
  std::string workload;
  std::string variant;
  /// Consistency model the cell ran under; serialised only when it differs
  /// from the paper default so legacy baselines stay byte-identical.
  std::string consistency = "nonstrict";
  long age = 0;
  std::uint64_t seed = 0;
  int repeat = 0;
  /// Sweep-axis coordinates (processors, function, loss rate, ...).
  std::vector<std::pair<std::string, double>> params;
  /// Measured values; RunStats::to_fields() or hand-assembled.
  std::vector<std::pair<std::string, double>> stats;
};

class Sweep {
 public:
  /// `bench` names the producing binary, e.g. "fig2_ga_unloaded".
  explicit Sweep(std::string bench) : bench_(std::move(bench)) {}

  /// Register the shared --json-out flag.
  static void add_flags(util::Flags& flags);
  /// Read --json-out back; empty keeps JSON output disabled.
  void configure(const util::Flags& flags);
  void set_output(std::string path) { path_ = std::move(path); }

  void add(SweepRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// The full results document as JSON text.
  [[nodiscard]] std::string to_json() const;

  /// Write to the configured path; no-op (true) when disabled, false on an
  /// IO error (reported to stderr).
  bool write() const;

 private:
  std::string bench_;
  std::string path_;
  std::vector<SweepRecord> records_;
};

}  // namespace nscc::harness
