#include "harness/report.hpp"

#include <fstream>
#include <iostream>

#include "util/json_writer.hpp"

namespace nscc::harness {

using util::jsonw::append_escaped;
using util::jsonw::append_object;

std::string run_report_json(const std::string& workload,
                            const std::vector<ReportRow>& rows) {
  std::string out = "{\n  \"schema\": \"nscc-run-report-v1\",\n  \"workload\": ";
  append_escaped(out, workload);
  out += ",\n  \"rows\": [";
  bool first = true;
  for (const ReportRow& row : rows) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"scenario\": ";
    append_escaped(out, row.scenario);
    out += ", \"variant\": ";
    append_escaped(out, row.variant);
    out += ", \"stats\": ";
    append_object(out, row.stats.to_fields());
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_run_report(const std::string& path, const std::string& workload,
                      const std::vector<ReportRow>& rows) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  file << run_report_json(workload, rows);
  file.flush();
  if (!file) {
    std::cerr << "write to " << path << " failed\n";
    return false;
  }
  return true;
}

}  // namespace nscc::harness
