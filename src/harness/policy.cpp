#include "harness/policy.hpp"

#include "recovery/recovery.hpp"
#include "sim/time.hpp"

namespace nscc::harness {

dsm::PropagationPolicy make_policy(const RunConfig& run,
                                   const PolicyOptions& opt) {
  dsm::PropagationPolicy prop;
  if (opt.full) {
    prop = run.propagation;
  } else {
    prop.read_timeout = run.propagation.read_timeout;
    prop.partition_heal = run.propagation.partition_heal;
    prop.integrity = run.propagation.integrity;
    if (opt.coalesce) prop.coalesce = run.propagation.coalesce;
  }
  // The consistency model always threads through: it is the semantics of
  // every read, not a transport knob a workload may curate away.
  prop.consistency = run.propagation.consistency;
  if (opt.sync_reliable_updates && run.mode == dsm::Mode::kSynchronous &&
      opt.transport_enabled) {
    prop.reliable_updates = true;
  }
  if (recovery::Coordinator* rc = opt.recovery; rc != nullptr) {
    const int self = opt.self;
    if (rc->partitioned()) {
      // Per-node membership: this node judges peers from the heartbeats it
      // received, and degrades (never declares) while it cannot hear a
      // quorum.
      prop.writer_alive = [rc, self](int node) {
        return rc->alive(self, node);
      };
      prop.in_quorum = [rc, self] { return rc->in_quorum(self); };
    } else {
      prop.writer_alive = [rc](int node) { return rc->alive(node); };
    }
    // Rejoin liveness needs the starvation watchdog: a restarted node's
    // empty cache is only refilled promptly by explicit demands (peers
    // blocked on *it* cannot be publishing meanwhile).
    if (prop.read_timeout <= 0) prop.read_timeout = 50 * sim::kMillisecond;
  }
  return prop;
}

}  // namespace nscc::harness
