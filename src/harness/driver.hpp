// The one example/driver layer: harness::drive() owns the flag set
// (--variants/--age/--seed/--network plus obs, fault, and workload params),
// the variant loop, the obs/fault/transport wiring, and the result table,
// so an example binary is nothing but a DriveOptions registration.
//
// A driver may also sweep a scenario axis (background load levels, frame
// loss ladders): each Scenario adds a labelled table column and its own
// loader rate / fault plan, while everything else stays shared.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "rt/vm.hpp"

namespace nscc::util {
class Flags;
}  // namespace nscc::util

namespace nscc::harness {

/// One point on a driver's scenario axis.  The default Scenario runs the
/// workload once, unloaded, with the fault plan from the --loss-rate flags.
struct Scenario {
  std::string label;                 ///< Table cell; empty = no column.
  double loader_offered_bps = 0.0;   ///< Background-load payload bits/s.
  bool has_fault = false;            ///< true = `fault` replaces the flag plan.
  fault::FaultPlan fault;
};

struct DriveOptions {
  /// Registered workload name ("ga.island", ...); required.
  std::string workload;
  /// Table title; empty = the workload's description.
  std::string title;
  /// Explanatory text printed after the table.
  std::string epilogue;
  /// Default for --variants (any comma-separated subset of
  /// sync,async,partial); the flag always accepts overrides.
  std::string default_variants = "sync,async,partial";
  /// Default for --age (staleness bound of the partial variant).
  long default_age = 10;
  /// Default for --network.
  rt::Network default_network = rt::Network::kEthernet;
  /// Per-driver defaults for any registered flag (workload params, --seed,
  /// --read-timeout-ms, ...), applied before parsing.
  std::map<std::string, std::string> flag_defaults;
  /// Header of the scenario column (required when `scenarios` is set).
  std::string scenario_column = "scenario";
  /// Scenario axis built from the parsed flags; null = one default Scenario.
  std::function<std::vector<Scenario>(const util::Flags&)> scenarios;
};

/// Run a registered workload under the configured variants and scenarios,
/// print the unified table, and return the process exit code (0 = success,
/// nonzero on flag errors or an unknown workload).
int drive(int argc, char** argv, const DriveOptions& options);

}  // namespace nscc::harness
