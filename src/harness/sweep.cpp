#include "harness/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/flags.hpp"

namespace nscc::harness {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // JSON has no NaN/Inf; a diverged metric serialises as null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_object(std::string& out,
                   const std::vector<std::pair<std::string, double>>& fields) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_number(out, value);
  }
  out += '}';
}

}  // namespace

void Sweep::add_flags(util::Flags& flags) {
  flags.add_string("json-out", "",
                   "write machine-readable results JSON here (see "
                   "bench/schema.md); empty disables");
}

void Sweep::configure(const util::Flags& flags) {
  path_ = flags.get_string("json-out");
}

std::string Sweep::to_json() const {
  std::string out = "{\n  \"schema\": \"nscc-bench-v2\",\n  \"bench\": ";
  append_escaped(out, bench_);
  out += ",\n  \"results\": [";
  bool first = true;
  for (const auto& r : records_) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"workload\": ";
    append_escaped(out, r.workload);
    out += ", \"variant\": ";
    append_escaped(out, r.variant);
    char buf[96];
    std::snprintf(buf, sizeof buf, ", \"age\": %ld, \"seed\": %llu, \"repeat\": %d",
                  r.age, static_cast<unsigned long long>(r.seed), r.repeat);
    out += buf;
    out += ", \"params\": ";
    append_object(out, r.params);
    out += ", \"stats\": ";
    append_object(out, r.stats);
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Sweep::write() const {
  if (path_.empty()) return true;
  std::ofstream file(path_);
  if (!file) {
    std::cerr << "cannot open " << path_ << " for writing\n";
    return false;
  }
  file << to_json();
  file.flush();
  if (!file) {
    std::cerr << "write to " << path_ << " failed\n";
    return false;
  }
  return true;
}

}  // namespace nscc::harness
