#include "harness/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/flags.hpp"
#include "util/json_writer.hpp"

namespace nscc::harness {

using util::jsonw::append_escaped;
using util::jsonw::append_object;

void Sweep::add_flags(util::Flags& flags) {
  flags.add_string("json-out", "",
                   "write machine-readable results JSON here (see "
                   "bench/schema.md); empty disables");
}

void Sweep::configure(const util::Flags& flags) {
  path_ = flags.get_string("json-out");
}

std::string Sweep::to_json() const {
  std::string out = "{\n  \"schema\": \"nscc-bench-v5\",\n  \"bench\": ";
  append_escaped(out, bench_);
  out += ",\n  \"results\": [";
  bool first = true;
  for (const auto& r : records_) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"workload\": ";
    append_escaped(out, r.workload);
    out += ", \"variant\": ";
    append_escaped(out, r.variant);
    if (r.consistency != "nonstrict") {
      out += ", \"consistency\": ";
      append_escaped(out, r.consistency);
    }
    char buf[96];
    std::snprintf(buf, sizeof buf, ", \"age\": %ld, \"seed\": %llu, \"repeat\": %d",
                  r.age, static_cast<unsigned long long>(r.seed), r.repeat);
    out += buf;
    out += ", \"params\": ";
    append_object(out, r.params);
    out += ", \"stats\": ";
    append_object(out, r.stats);
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Sweep::write() const {
  if (path_.empty()) return true;
  std::ofstream file(path_);
  if (!file) {
    std::cerr << "cannot open " << path_ << " for writing\n";
    return false;
  }
  file << to_json();
  file.flush();
  if (!file) {
    std::cerr << "write to " << path_ << " failed\n";
    return false;
  }
  return true;
}

}  // namespace nscc::harness
