// The unified per-run contract every workload shares (paper Section 5: the
// core experiment is always "run one workload under synchronous / fully
// asynchronous / Global_Read(age) and compare").
//
// RunConfig carries the fields that used to be duplicated across the four
// workload configs — consistency mode, staleness bound, seed, propagation
// policy (coalescing + starvation watchdog), and background load — so a new
// cross-cutting knob lands here once instead of in every driver.  Workload
// configs *embed* it (by inheritance, so existing field accesses keep
// working) and workload results convert to RunStats, the matching unified
// result surface the shared driver and bench sweeps print and serialise.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dsm/shared_space.hpp"
#include "recovery/recovery.hpp"
#include "sim/time.hpp"

namespace nscc::harness {

/// Per-run knobs common to every workload.  Workload configs inherit this;
/// anything not listed here is workload-specific and registered through
/// Workload::register_params instead.
struct RunConfig {
  dsm::Mode mode = dsm::Mode::kSynchronous;
  dsm::Iteration age = 0;  ///< Staleness bound for kPartialAsync.
  std::uint64_t seed = 1;
  /// Update-propagation policy (coalescing, Global_Read watchdog).  Each
  /// workload honours the subset it historically honoured: the GA applies
  /// the whole policy, the solver coalescing + watchdog, the sampler and
  /// the trainer only the watchdog.
  dsm::PropagationPolicy propagation;
  /// Background-load payload bits per second on the interconnect (0 = none).
  double loader_offered_bps = 0.0;
  /// Crash-restart recovery (checkpointing, failure detection, rejoin).
  /// Policy::kNone leaves every run byte-identical to the pre-recovery
  /// harness; kDegraded/kRejoin attach a recovery::Coordinator to the VM.
  recovery::Config recovery;
};

/// The unified result every workload reports: the completion/mechanism
/// numbers every driver used to pluck from its own result struct, one
/// workload-defined quality metric, and a tail of named extras.
struct RunStats {
  sim::Time completion_time = 0;
  bool deadlocked = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  double bus_utilization = 0.0;
  double mean_staleness = 0.0;
  double mean_warp = 0.0;
  /// Robustness counters (zero on a perfect network).
  std::uint64_t frames_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t read_escalations = 0;
  /// Data-integrity counters (zero unless corruption/sanitizing is on).
  std::uint64_t integrity_dropped = 0;    ///< Damaged DSM frames quarantined.
  std::uint64_t sanitize_violations = 0;  ///< Tolerance-contract violations.
  /// Crash-recovery counters (zero unless a recovery policy was active).
  std::uint64_t crashes = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t restores = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t degraded_reads = 0;
  sim::Time detection_latency = 0;  ///< Summed crash->declared-dead.
  sim::Time recovery_latency = 0;   ///< Summed crash->respawn.
  std::int64_t lost_iterations = 0; ///< Progress rolled back by restores.
  /// Partition counters (zero unless the fault plan scheduled
  /// partition/blackhole windows).
  std::uint64_t partition_drops = 0;        ///< Frames cut by the split.
  std::uint64_t partition_stale_served = 0; ///< Minority-side stale serves.
  std::uint64_t heal_frames = 0;            ///< Anti-entropy republishes.
  std::uint64_t diverged_locations = 0;     ///< Reader locations diverged.
  std::uint64_t reconciled_locations = 0;   ///< Diverged marks later healed.
  std::uint64_t split_brain_declarations = 0;  ///< Mutual dead declarations.
  /// Consistency-model counters (zero under the default nonstrict model).
  std::uint64_t updates_parked = 0;   ///< Arrivals deferred to an acquire.
  std::uint64_t updates_flushed = 0;  ///< Parked updates applied at acquires.
  std::uint64_t ooo_updates = 0;      ///< Release stamps out of order.
  /// The workload's own figure of merit (best fitness, posterior, residual,
  /// training loss, ...), labelled so tables and JSON stay self-describing.
  std::string quality_name = "quality";
  double quality = 0.0;
  /// Workload-specific diagnostics appended to JSON output.
  std::vector<std::pair<std::string, double>> extra;

  /// Flat name -> value view (times in seconds) for JSON serialisation.
  [[nodiscard]] std::vector<std::pair<std::string, double>> to_fields() const;
};

/// One (name, mode, age) point of the paper's three-way comparison.  The
/// canonical names — "sync", "async", "partial" — are what --variants
/// accepts.
struct VariantSpec {
  std::string name;
  dsm::Mode mode = dsm::Mode::kSynchronous;
  dsm::Iteration age = 0;

  /// Human label for tables ("synchronous" / "asynchronous" /
  /// "Global_Read(age)").
  [[nodiscard]] std::string label() const;
};

/// The canonical variant names, in paper order.
[[nodiscard]] const std::vector<std::string>& variant_names();

/// Build a VariantSpec from a canonical name; `partial_age` is the bound
/// used when name == "partial".  Throws std::invalid_argument otherwise.
[[nodiscard]] VariantSpec make_variant(const std::string& name,
                                       dsm::Iteration partial_age);

/// Parse a validated --variants value ("sync,partial") into specs.
[[nodiscard]] std::vector<VariantSpec> parse_variants(
    const std::string& csv, dsm::Iteration partial_age);

}  // namespace nscc::harness
