#include "sanitize/sanitize.hpp"

#include <algorithm>
#include <ostream>

namespace nscc::sanitize {

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kTrack:
      return "track";
    case Level::kStrict:
      return "strict";
  }
  return "?";
}

std::optional<Level> level_from_name(const std::string& name) {
  if (name == "off") return Level::kOff;
  if (name == "track") return Level::kTrack;
  if (name == "strict") return Level::kStrict;
  return std::nullopt;
}

const char* violation_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::kStaleness:
      return "staleness";
    case ViolationKind::kDegraded:
      return "degraded";
    case ViolationKind::kInvalid:
      return "invalid";
    case ViolationKind::kChecksum:
      return "checksum";
  }
  return "?";
}

ToleranceSpec& ToleranceSpec::set_default(ToleranceRule rule) {
  default_ = rule;
  return *this;
}

ToleranceSpec& ToleranceSpec::declare(LocationId loc, ToleranceRule rule) {
  points_[loc] = rule;
  return *this;
}

ToleranceSpec& ToleranceSpec::declare_range(LocationId lo, LocationId hi,
                                            ToleranceRule rule) {
  if (lo < hi) ranges_.push_back(Range{lo, hi, rule});
  return *this;
}

ToleranceRule ToleranceSpec::rule_for(LocationId loc) const noexcept {
  const auto it = points_.find(loc);
  if (it != points_.end()) return it->second;
  for (auto r = ranges_.rbegin(); r != ranges_.rend(); ++r) {
    if (r->lo <= loc && loc < r->hi) return r->rule;
  }
  return default_;
}

Sanitizer::Sanitizer(Options options, obs::Hub& hub)
    : opt_(std::move(options)), hub_(hub) {
  if (opt_.shadow_depth == 0) opt_.shadow_depth = 1;
}

void Sanitizer::record_write(int writer, LocationId loc, Iteration iter,
                             std::uint32_t checksum, std::uint32_t bytes,
                             sim::Time at) {
  ++stats_.writes_recorded;
  auto& log = shadow_[loc];
  log.push_back(ShadowWrite{iter, checksum, bytes, writer, at});
  while (log.size() > opt_.shadow_depth) {
    log.pop_front();
    ++stats_.shadow_evictions;
  }
}

void Sanitizer::audit_read(int reader, LocationId loc, Iteration curr_iter,
                           Iteration declared_age, bool valid, bool degraded,
                           Iteration value_iter, std::uint32_t checksum,
                           sim::Time at) {
  ++stats_.reads_audited;
  const ToleranceRule rule = opt_.spec.rule_for(loc);

  if (!valid) {
    // Never-written location; nothing else about the value is meaningful.
    // Covers the documented degraded && !valid case (a dead producer that
    // never wrote) as well as a plain read before the first update.
    if (!rule.tolerate_invalid) {
      flag(ViolationKind::kInvalid, reader, loc, curr_iter, value_iter, -1,
           at);
    }
    return;
  }

  if (degraded) {
    // A degraded value is *by definition* older than the read's age bound
    // (that is why it was served degraded), so the staleness check does
    // not apply — what matters is whether the contract allows degraded
    // data to flow into this location at all.
    if (!rule.tolerate_degraded) {
      flag(ViolationKind::kDegraded, reader, loc, curr_iter, value_iter, -1,
           at);
    }
  } else {
    // Staleness: audited only for Global_Read (declared_age >= 0); a plain
    // asynchronous read carries no iteration context to measure against.
    if (declared_age >= 0) {
      Iteration limit = declared_age;
      if (rule.max_age >= 0) limit = std::min(limit, rule.max_age);
      const Iteration staleness = curr_iter - value_iter;
      if (staleness > limit) {
        flag(ViolationKind::kStaleness, reader, loc, curr_iter, value_iter,
             limit, at);
      }
    } else if (rule.require_aged) {
      // The contract demands an explicit age bound on every read of this
      // location, and this read came through the un-aged path.
      flag(ViolationKind::kStaleness, reader, loc, curr_iter, value_iter,
           rule.max_age, at);
    }
  }

  // End-to-end integrity: the delivered payload must equal *something* the
  // writer committed for that iteration.  A writer may re-publish the same
  // iteration with corrected content (the sampler's anti-message role), so
  // a reader still holding the superseded copy matches an older entry —
  // that is writer-committed data, not corruption.  Entries older than the
  // bounded shadow log cannot be cross-checked and are counted, not
  // flagged.
  const auto it = shadow_.find(loc);
  bool found = false;
  bool matched = false;
  if (it != shadow_.end()) {
    for (auto w = it->second.rbegin(); w != it->second.rend(); ++w) {
      if (w->iter != value_iter) continue;
      found = true;
      if (w->checksum == checksum) {
        matched = true;
        break;
      }
    }
  }
  if (!found) {
    ++stats_.checksum_unverified;
  } else if (!matched) {
    flag(ViolationKind::kChecksum, reader, loc, curr_iter, value_iter, -1, at);
  }
}

void Sanitizer::flag(ViolationKind kind, int reader, LocationId loc,
                     Iteration curr_iter, Iteration value_iter,
                     Iteration limit, sim::Time at) {
  ++stats_.violations[static_cast<int>(kind)];
  if (recorded_.size() < opt_.max_recorded) {
    recorded_.push_back(
        Violation{kind, reader, loc, curr_iter, value_iter, limit, at});
  }
  hub_.tracer().instant(reader, "sanitize.violation", at, "loc", loc, "kind",
                        static_cast<int>(kind));
}

void Sanitizer::flush(obs::Registry& registry) const {
  registry.counter("sanitize.writes_recorded").inc(stats_.writes_recorded);
  registry.counter("sanitize.reads_audited").inc(stats_.reads_audited);
  registry.counter("sanitize.shadow_evictions").inc(stats_.shadow_evictions);
  registry.counter("sanitize.checksum_unverified")
      .inc(stats_.checksum_unverified);
  for (int k = 0; k < kViolationKinds; ++k) {
    registry
        .counter(std::string("sanitize.violations.") +
                 violation_name(static_cast<ViolationKind>(k)))
        .inc(stats_.violations[k]);
  }
}

void Sanitizer::report(std::ostream& out) const {
  const std::uint64_t total = stats_.total_violations();
  if (total == 0) {
    out << "[sanitize:" << level_name(opt_.level) << "] clean: "
        << stats_.reads_audited << " reads audited, "
        << stats_.writes_recorded << " writes shadowed, 0 violations\n";
    return;
  }
  out << "[sanitize:" << level_name(opt_.level) << "] " << total
      << " violation(s) in " << stats_.reads_audited << " audited reads (";
  bool first = true;
  for (int k = 0; k < kViolationKinds; ++k) {
    if (stats_.violations[k] == 0) continue;
    if (!first) out << ", ";
    out << violation_name(static_cast<ViolationKind>(k)) << "="
        << stats_.violations[k];
    first = false;
  }
  out << ")\n";
  for (const auto& v : recorded_) {
    out << "  [" << violation_name(v.kind) << "] reader=" << v.reader
        << " loc=" << v.loc << " curr_iter=" << v.curr_iter
        << " value_iter=" << v.value_iter;
    if (v.limit >= 0) out << " limit=" << v.limit;
    out << " t=" << sim::to_seconds(v.at) << "s\n";
  }
  if (total > recorded_.size()) {
    out << "  ... and " << (total - recorded_.size()) << " more (cap "
        << opt_.max_recorded << ")\n";
  }
}

}  // namespace nscc::sanitize
