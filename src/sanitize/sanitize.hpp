// Shadow-state staleness sanitizer: certify race tolerance, don't assume it.
//
// The paper's argument rests on an unchecked assumption — that every
// Global_Read(loc, iter, age) which returns stale or degraded data lands in
// code that genuinely tolerates it.  This subsystem turns that assumption
// into a checkable contract:
//
//  * Each workload declares a ToleranceSpec: per location (or location
//    range), the maximum acceptable age and whether degraded / never-valid
//    values may flow into the consumer.
//  * The Sanitizer keeps a bounded per-location shadow log of write history
//    (writer, iteration, virtual time, payload checksum) and audits every
//    DSM read against both the read's own declared age bound and the
//    contract.
//  * Violations increment obs counters, emit trace events, and are printed
//    in an end-of-run report; under --sanitize=strict the harness driver
//    turns any violation into a nonzero exit.
//
// Layering: sanitize sits below rt (rt::VirtualMachine owns the machine's
// Sanitizer and dsm::SharedSpace feeds it), so this header may depend only
// on sim, obs and util.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace nscc::sanitize {

/// Mirrors dsm::LocationId / iteration numbering without depending on dsm
/// (which sits above rt, which sits above this library).
using LocationId = std::int32_t;
using Iteration = std::int64_t;

enum class Level {
  kOff,    ///< No shadow state, no audits (zero overhead).
  kTrack,  ///< Record and report violations; the run still exits 0.
  kStrict, ///< As kTrack, but the driver exits nonzero on any violation.
};

[[nodiscard]] const char* level_name(Level level) noexcept;
[[nodiscard]] std::optional<Level> level_from_name(const std::string& name);

/// What one location (or the spec's default) tolerates.
struct ToleranceRule {
  /// Maximum acceptable staleness in iterations; -1 = unbounded.
  Iteration max_age = -1;
  /// May a degraded value (served past its age bound because the producer
  /// is dead) flow into this location's consumer?
  bool tolerate_degraded = true;
  /// May a never-written (!valid) value flow in?
  bool tolerate_invalid = true;
  /// When true, every read of this location must state an age bound
  /// (Global_Read); a plain un-aged read() is itself a staleness violation.
  /// Workloads whose barrier already guarantees freshness (e.g. the
  /// solver's verified convergence phase) leave this off and may plain-read
  /// even age-0 locations.
  bool require_aged = false;
};

/// Per-workload contract mapping locations to tolerance rules.  Lookup
/// order: exact declaration, then the most recently declared covering
/// range, then the default rule (fully tolerant — the sanitizer is
/// opt-in per location, matching how the paper's applications only
/// reason about the locations they share).
class ToleranceSpec {
 public:
  ToleranceSpec& set_default(ToleranceRule rule);
  ToleranceSpec& declare(LocationId loc, ToleranceRule rule);
  /// Declare every location in the half-open range [lo, hi).
  ToleranceSpec& declare_range(LocationId lo, LocationId hi,
                               ToleranceRule rule);
  [[nodiscard]] ToleranceRule rule_for(LocationId loc) const noexcept;

 private:
  struct Range {
    LocationId lo;
    LocationId hi;
    ToleranceRule rule;
  };
  ToleranceRule default_{};
  std::map<LocationId, ToleranceRule> points_;
  std::vector<Range> ranges_;
};

enum class ViolationKind : int {
  kStaleness = 0,  ///< Valid, non-degraded value older than the tightest bound.
  kDegraded,       ///< Degraded value into a degraded-intolerant location.
  kInvalid,        ///< Never-written value into an invalid-intolerant location.
  kChecksum,       ///< Delivered payload differs from the shadow checksum.
};
inline constexpr int kViolationKinds = 4;

[[nodiscard]] const char* violation_name(ViolationKind kind) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kStaleness;
  int reader = -1;
  LocationId loc = 0;
  Iteration curr_iter = 0;
  Iteration value_iter = -1;
  /// Effective staleness bound that was exceeded (kStaleness only).
  Iteration limit = -1;
  sim::Time at = 0;
};

struct SanitizeStats {
  std::uint64_t writes_recorded = 0;
  std::uint64_t reads_audited = 0;
  /// Shadow-log entries evicted by the depth bound.
  std::uint64_t shadow_evictions = 0;
  /// Reads whose iteration had already fallen off the bounded shadow log,
  /// so the checksum could not be cross-checked (not a violation).
  std::uint64_t checksum_unverified = 0;
  std::uint64_t violations[kViolationKinds] = {};

  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    std::uint64_t n = 0;
    for (auto v : violations) n += v;
    return n;
  }
};

struct Options {
  Level level = Level::kOff;
  /// Shadow-log depth per location; bounds sanitizer memory to
  /// O(locations * depth) regardless of run length.
  std::size_t shadow_depth = 64;
  /// Cap on individually recorded violations (counters keep counting).
  std::size_t max_recorded = 32;
  ToleranceSpec spec;

  [[nodiscard]] bool enabled() const noexcept { return level != Level::kOff; }
};

class Sanitizer {
 public:
  Sanitizer(Options options, obs::Hub& hub);

  /// Writer side: record one committed write into the shadow log.
  void record_write(int writer, LocationId loc, Iteration iter,
                    std::uint32_t checksum, std::uint32_t bytes, sim::Time at);

  /// Reader side: audit one delivered value.  `declared_age` is the age
  /// bound the reader passed to Global_Read, or -1 for a plain (async)
  /// read, which carries no staleness semantics to audit.
  void audit_read(int reader, LocationId loc, Iteration curr_iter,
                  Iteration declared_age, bool valid, bool degraded,
                  Iteration value_iter, std::uint32_t checksum, sim::Time at);

  [[nodiscard]] const Options& options() const noexcept { return opt_; }
  [[nodiscard]] const SanitizeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return stats_.total_violations();
  }
  [[nodiscard]] const std::vector<Violation>& recorded() const noexcept {
    return recorded_;
  }

  /// Flush counters into the obs registry (sanitize.* counters).
  void flush(obs::Registry& registry) const;

  /// End-of-run violation report (one line when clean).
  void report(std::ostream& out) const;

 private:
  struct ShadowWrite {
    Iteration iter;
    std::uint32_t checksum;
    std::uint32_t bytes;
    int writer;
    sim::Time at;
  };

  void flag(ViolationKind kind, int reader, LocationId loc,
            Iteration curr_iter, Iteration value_iter, Iteration limit,
            sim::Time at);

  Options opt_;
  obs::Hub& hub_;
  std::map<LocationId, std::deque<ShadowWrite>> shadow_;
  SanitizeStats stats_;
  std::vector<Violation> recorded_;
};

}  // namespace nscc::sanitize
