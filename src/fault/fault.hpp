// Deterministic, seeded fault injection for the simulated interconnects.
//
// The paper's testbed was a shared 10 Mbps Ethernet whose loaded runs
// (Figure 4) motivate non-strict coherence precisely because race-tolerant
// traffic survives delay and loss.  This subsystem makes that stress
// explicit and reproducible: a FaultPlan describes per-link frame loss,
// duplication, and extra-delay jitter, scheduled burst outages of the whole
// medium, and per-node crash-restart / pause / slowdown windows; a
// FaultInjector judges every frame against the plan with its own seeded RNG
// stream, so a run remains a pure function of (seed, plan) and two runs with
// the same plan produce byte-identical metrics.
//
// Semantics (documented here once, relied on by net:: and tests):
//   * loss        — the frame occupies the medium (it was transmitted) but
//                   is never delivered, like a collision or CRC kill;
//   * corruption  — the frame is delivered but its payload is damaged
//                   (seeded bit flips or truncation); whether the receiver
//                   notices is the transport's business (rt:: CRC-checks
//                   frames and drops damaged ones as loss);
//   * duplication — the receiver sees the frame twice, the copy arriving
//                   after an extra jitter delay (link-level retransmit of a
//                   frame whose first copy actually made it);
//   * delay       — extra latency uniform in (0, delay_max], applied per
//                   frame; large values reorder frames;
//   * outage      — a scheduled window in which every frame on the medium
//                   is lost (cable pulled, switch rebooting);
//   * partition   — a scheduled window in which the nodes are split into
//                   groups; frames between nodes in different groups are
//                   lost, traffic inside a group flows normally (a failed
//                   inter-switch uplink);
//   * blackhole   — a scheduled per-link one-way loss window (A→B dead
//                   while B→A still delivers: the half-open failure that
//                   fools naive ping-based detectors);
//   * crash       — frames to or from the node are lost while it is down;
//   * pause       — frames to the node are held and delivered when the
//                   window ends (the node stops draining its NIC);
//   * slowdown    — delivery latency of frames to the node is multiplied
//                   while the window is open (a CPU-starved receiver).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nscc::util {
class Flags;
}  // namespace nscc::util

namespace nscc::fault {

/// Half-open virtual-time window [start, end).
struct Window {
  sim::Time start = 0;
  sim::Time end = 0;
  [[nodiscard]] bool contains(sim::Time t) const noexcept {
    return t >= start && t < end;
  }
};

/// Stochastic per-link misbehaviour (probabilities are per frame).
struct LinkFaults {
  double loss_prob = 0.0;       ///< Frame lost on the wire.
  double dup_prob = 0.0;        ///< Frame delivered twice.
  double delay_prob = 0.0;      ///< Frame gets extra delay (jitter).
  sim::Time delay_max = 0;      ///< Extra delay uniform in (0, delay_max].
  double corrupt_prob = 0.0;    ///< Frame delivered with damaged payload.
  [[nodiscard]] bool any() const noexcept {
    return loss_prob > 0.0 || dup_prob > 0.0 ||
           (delay_prob > 0.0 && delay_max > 0) || corrupt_prob > 0.0;
  }
};

/// Scheduled per-node misbehaviour.
struct NodeFaults {
  std::vector<Window> crashes;  ///< Node down: frames to/from it are lost.
  std::vector<Window> pauses;   ///< Frames to it held until the window ends.
  std::vector<Window> slow;     ///< Receive-latency multiplier windows.
  double slowdown = 1.0;        ///< Latency factor applied inside `slow`.
};

/// A scheduled split of the node set into isolated groups.  While the
/// window is open a frame whose src and dst sit in *different listed
/// groups* is dropped; frames inside one group, and frames involving a
/// node listed in no group (including the -1 anonymous background-load
/// source), are untouched.  Like outages these are scheduled faults:
/// judging them consumes no randomness, so adding a partition to a plan
/// leaves the stochastic draw stream of every surviving frame aligned.
struct PartitionWindow {
  Window window;
  std::vector<std::vector<int>> groups;  ///< Node ids per isolated group.
};

/// A scheduled one-way per-link loss window: frames src→dst are dropped
/// while it is open, the reverse direction is untouched.
struct BlackholeWindow {
  int src = 0;
  int dst = 0;
  Window window;
};

/// What a crash window does to the victim beyond silencing its links.
enum class CrashSemantics {
  /// Links drop while the window is open but the node keeps computing with
  /// intact state (the original crash model; a NIC or cable failure).
  kLossy,
  /// The node's process is torn down at the window start: its fiber
  /// unwinds, volatile state is lost, and only a recovery policy
  /// (checkpoint restore + rejoin) can bring it back.  Links drop during
  /// the window exactly as with kLossy.
  kStateful,
};

/// The whole deterministic fault schedule for one run.
struct FaultPlan {
  std::uint64_t seed = 0xFA17ULL;
  LinkFaults link;  ///< Default faults for every (src, dst) link.
  /// Per-(src, dst) overrides; -1 matches the anonymous background-load
  /// source.  An entry fully replaces `link` for that pair.
  std::map<std::pair<int, int>, LinkFaults> per_link;
  std::vector<Window> outages;        ///< Whole-medium burst losses.
  /// Whole-medium payload-corruption windows: every frame handed to the
  /// wire while one is open is delivered damaged.  Like outages these are
  /// scheduled faults — deterministic, consuming no randomness — so a
  /// corrupted-frame run can be compared byte-for-byte against the same
  /// schedule expressed as an outage (corruption caught by a frame CRC
  /// must behave exactly as loss).
  std::vector<Window> corrupt_windows;
  /// Scheduled group partitions (see PartitionWindow).
  std::vector<PartitionWindow> partitions;
  /// Scheduled one-way per-link loss windows.
  std::vector<BlackholeWindow> blackholes;
  std::map<int, NodeFaults> nodes;    ///< Keyed by node/task id.
  /// How crash windows treat the victim's process state.  kLossy keeps the
  /// pre-recovery behaviour byte-identical; kStateful destroys the fiber.
  CrashSemantics crash_semantics = CrashSemantics::kLossy;

  [[nodiscard]] bool empty() const noexcept {
    return !link.any() && per_link.empty() && outages.empty() &&
           corrupt_windows.empty() && partitions.empty() &&
           blackholes.empty() && nodes.empty();
  }

  /// True while any partition or blackhole window is scheduled — the
  /// signal for per-node membership views and anti-entropy healing.
  [[nodiscard]] bool partitionable() const noexcept {
    return !partitions.empty() || !blackholes.empty();
  }

  /// True when `a` and `b` can exchange frames in *both* directions at
  /// time `t` under the scheduled partition/blackhole windows (stochastic
  /// faults and outages are ignored — this answers reachability of the
  /// scheduled topology, which is what rejoin gating needs).
  [[nodiscard]] bool reachable(int a, int b, sim::Time t) const noexcept;

  /// Latest end of any partition/blackhole window containing `t`
  /// (0 when none does).
  [[nodiscard]] sim::Time partition_release_after(sim::Time t) const noexcept;
};

struct FaultStats {
  std::uint64_t frames_judged = 0;
  std::uint64_t frames_lost = 0;       ///< All losses (random + outage + crash).
  std::uint64_t outage_drops = 0;      ///< Subset of frames_lost.
  std::uint64_t crash_drops = 0;       ///< Subset of frames_lost.
  std::uint64_t partition_drops = 0;   ///< Subset of frames_lost.
  std::uint64_t blackhole_drops = 0;   ///< Subset of frames_lost.
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_delayed = 0;    ///< Jitter, pause holds, and slowdowns.
  std::uint64_t frames_corrupted = 0;  ///< Delivered with damaged payload.
};

/// Judges every frame a network model is about to deliver.  Stateless apart
/// from its RNG stream and counters; both SharedBus and SwitchFabric share
/// one injector per machine so the draw sequence is a deterministic function
/// of the (globally ordered) transmit sequence.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// What should happen to one frame handed to the medium at `now` with a
  /// nominal arrival of `delivered_at`.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Time extra_delay = 0;      ///< Added to the nominal arrival.
    sim::Time duplicate_delay = 0;  ///< Copy arrives this much after the
                                    ///< (possibly delayed) original.
    /// Nonzero = deliver the frame with its payload damaged; the seed
    /// determines the damage via corruption_effect().  Only the original
    /// copy is damaged — a duplicate models a link-level retransmit whose
    /// second copy arrived intact.
    std::uint64_t corrupt_seed = 0;
  };
  Verdict judge(int src, int dst, sim::Time now, sim::Time delivered_at);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  [[nodiscard]] const LinkFaults& link_for(int src, int dst) const;

  FaultPlan plan_;
  util::Xoshiro256 rng_;
  FaultStats stats_;
};

/// Deterministic damage derived from a Verdict's corrupt_seed: either the
/// frame is cut short or a handful of payload bits flip.  A pure function
/// of (seed, payload size), so the receiver can apply it without the
/// injector's RNG stream being involved.
struct CorruptionEffect {
  /// Truncate the payload to this many bytes first; SIZE_MAX = no cut.
  std::size_t truncate_to = static_cast<std::size_t>(-1);
  /// Bit indices to flip (into the possibly-truncated payload).
  std::vector<std::size_t> bit_flips;
};
[[nodiscard]] CorruptionEffect corruption_effect(std::uint64_t seed,
                                                 std::size_t payload_bytes);

/// Register the standard fault flags (--loss-rate, --corrupt-rate,
/// --fault-seed, --read-timeout-ms, --partition-at, --blackhole-at) on a
/// driver's flag set; like every util::Flags entry they honour the NSCC_*
/// environment overrides.
void add_flags(util::Flags& flags);

/// Build a plan from flags registered by add_flags(): a uniform per-frame
/// loss probability on every link, deterministically seeded.  Throws
/// std::invalid_argument on a malformed --partition-at / --blackhole-at
/// spec (drivers turn that into their flag-error exit).
[[nodiscard]] FaultPlan plan_from_flags(const util::Flags& flags);

/// Parse one `start:end:group-spec` partition window, where group-spec is
/// `|`-separated groups of `,`-separated node ids (e.g. `0.2:0.6:0,1|2,3`)
/// and times are virtual seconds.  Throws std::invalid_argument on junk.
[[nodiscard]] PartitionWindow parse_partition_spec(const std::string& spec);

/// Parse one `start:end:src:dst` one-way blackhole window (virtual
/// seconds).  Throws std::invalid_argument on junk.
[[nodiscard]] BlackholeWindow parse_blackhole_spec(const std::string& spec);

/// The --read-timeout-ms flag as a virtual-time budget (0 = watchdog off).
[[nodiscard]] sim::Time read_timeout_from_flags(const util::Flags& flags);

}  // namespace nscc::fault
