#include "fault/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/flags.hpp"

namespace nscc::fault {

namespace {

bool in_any(const std::vector<Window>& windows, sim::Time t) {
  for (const Window& w : windows) {
    if (w.contains(t)) return true;
  }
  return false;
}

/// Group index of `node` in a partition window's group list, -1 when the
/// node is listed in no group (unlisted nodes are never isolated).
int group_of(const PartitionWindow& p, int node) {
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    for (const int id : p.groups[g]) {
      if (id == node) return static_cast<int>(g);
    }
  }
  return -1;
}

/// True when the partition window isolates src from dst (both listed, in
/// different groups).
bool partition_cuts(const PartitionWindow& p, int src, int dst) {
  const int gs = group_of(p, src);
  if (gs < 0) return false;
  const int gd = group_of(p, dst);
  return gd >= 0 && gd != gs;
}

/// Latest `end` among windows containing t (0 when none does).
sim::Time release_after(const std::vector<Window>& windows, sim::Time t) {
  sim::Time release = 0;
  for (const Window& w : windows) {
    if (w.contains(t)) release = std::max(release, w.end);
  }
  return release;
}

}  // namespace

bool FaultPlan::reachable(int a, int b, sim::Time t) const noexcept {
  for (const PartitionWindow& p : partitions) {
    if (p.window.contains(t) && partition_cuts(p, a, b)) return false;
  }
  for (const BlackholeWindow& h : blackholes) {
    if (!h.window.contains(t)) continue;
    if ((h.src == a && h.dst == b) || (h.src == b && h.dst == a)) {
      return false;
    }
  }
  return true;
}

sim::Time FaultPlan::partition_release_after(sim::Time t) const noexcept {
  sim::Time release = 0;
  for (const PartitionWindow& p : partitions) {
    if (p.window.contains(t)) release = std::max(release, p.window.end);
  }
  for (const BlackholeWindow& h : blackholes) {
    if (h.window.contains(t)) release = std::max(release, h.window.end);
  }
  return release;
}

const LinkFaults& FaultInjector::link_for(int src, int dst) const {
  const auto it = plan_.per_link.find({src, dst});
  return it != plan_.per_link.end() ? it->second : plan_.link;
}

FaultInjector::Verdict FaultInjector::judge(int src, int dst, sim::Time now,
                                            sim::Time delivered_at) {
  Verdict v;
  ++stats_.frames_judged;

  // Scheduled faults first: they consume no randomness, so a plan that only
  // schedules windows perturbs nothing about the stochastic draw sequence.
  if (in_any(plan_.outages, now)) {
    v.drop = true;
    ++stats_.frames_lost;
    ++stats_.outage_drops;
    return v;
  }
  for (const PartitionWindow& p : plan_.partitions) {
    if (p.window.contains(now) && partition_cuts(p, src, dst)) {
      v.drop = true;
      ++stats_.frames_lost;
      ++stats_.partition_drops;
      return v;
    }
  }
  for (const BlackholeWindow& h : plan_.blackholes) {
    if (h.src == src && h.dst == dst && h.window.contains(now)) {
      v.drop = true;
      ++stats_.frames_lost;
      ++stats_.blackhole_drops;
      return v;
    }
  }
  for (const int node : {src, dst}) {
    const auto it = plan_.nodes.find(node);
    if (it != plan_.nodes.end() && in_any(it->second.crashes, now)) {
      v.drop = true;
      ++stats_.frames_lost;
      ++stats_.crash_drops;
      return v;
    }
  }

  const LinkFaults& link = link_for(src, dst);
  if (link.any()) {
    // Fixed draw order (loss, dup, delay, corruption) keeps the stream
    // aligned across links with different fault subsets enabled; each draw
    // is guarded on its probability so a disabled fault class consumes no
    // randomness and old plans stay byte-identical.
    const bool lost = link.loss_prob > 0.0 && rng_.bernoulli(link.loss_prob);
    const bool dup = link.dup_prob > 0.0 && rng_.bernoulli(link.dup_prob);
    const bool late = link.delay_prob > 0.0 && link.delay_max > 0 &&
                      rng_.bernoulli(link.delay_prob);
    sim::Time jitter = 0;
    if (dup || late) {
      jitter = 1 + static_cast<sim::Time>(rng_.below(
                       static_cast<std::uint64_t>(std::max<sim::Time>(
                           1, link.delay_max))));
    }
    const bool corrupt =
        link.corrupt_prob > 0.0 && rng_.bernoulli(link.corrupt_prob);
    if (lost) {
      v.drop = true;
      ++stats_.frames_lost;
      return v;
    }
    if (late) {
      v.extra_delay += jitter;
      ++stats_.frames_delayed;
    }
    if (dup) {
      v.duplicate = true;
      v.duplicate_delay = jitter;
      ++stats_.frames_duplicated;
    }
    if (corrupt) {
      const std::uint64_t seed = rng_();
      v.corrupt_seed = seed != 0 ? seed : 1;
      ++stats_.frames_corrupted;
    }
  }

  // Scheduled corruption, like outages, consumes no randomness: the damage
  // seed is a pure function of the frame's position in the schedule, so a
  // corrupt-window run stays stream-aligned with the same schedule run as
  // an outage.
  if (!v.drop && v.corrupt_seed == 0 &&
      in_any(plan_.corrupt_windows, now)) {
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(now) * 0x9E3779B97F4A7C15ULL) ^
        stats_.frames_judged;
    v.corrupt_seed = seed != 0 ? seed : 1;
    ++stats_.frames_corrupted;
  }

  // Receiver-side scheduled effects act on the (jittered) arrival time.
  const auto it = plan_.nodes.find(dst);
  if (it != plan_.nodes.end()) {
    const sim::Time arrival = delivered_at + v.extra_delay;
    if (const sim::Time release = release_after(it->second.pauses, arrival);
        release > arrival) {
      v.extra_delay += release - arrival;
      ++stats_.frames_delayed;
    } else if (it->second.slowdown > 1.0 &&
               in_any(it->second.slow, arrival)) {
      v.extra_delay += static_cast<sim::Time>(
          (it->second.slowdown - 1.0) * static_cast<double>(arrival - now));
      ++stats_.frames_delayed;
    }
  }
  return v;
}

CorruptionEffect corruption_effect(std::uint64_t seed,
                                   std::size_t payload_bytes) {
  CorruptionEffect effect;
  if (seed == 0 || payload_bytes == 0) return effect;
  util::Xoshiro256 rng(seed);
  // One in four corrupted frames is cut short; the rest take 1-3 bit flips
  // (single-event upsets and short bursts — the damage real CRCs exist to
  // catch).  A truncation always removes at least the last byte so the
  // damage is never a no-op.
  if (rng.below(4) == 0) {
    effect.truncate_to = static_cast<std::size_t>(rng.below(payload_bytes));
    return effect;
  }
  const std::uint64_t nflips = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < nflips; ++i) {
    effect.bit_flips.push_back(
        static_cast<std::size_t>(rng.below(payload_bytes * 8)));
  }
  return effect;
}

void add_flags(util::Flags& flags) {
  flags
      .add_double("loss-rate", 0.0,
                  "per-frame loss probability injected on every link")
      .add_double("corrupt-rate", 0.0,
                  "per-frame payload-corruption probability injected on "
                  "every link (bit flips / truncation; CRC-checked frames "
                  "are dropped as loss)")
      .add_int("fault-seed", 0xFA17,
               "seed for the fault injector's RNG stream")
      .add_double("read-timeout-ms", 0.0,
                  "Global_Read starvation watchdog budget in virtual ms "
                  "(0 disables escalation)")
      .add_double("crash-at", 0.0,
                  "virtual seconds at which --crash-node loses its state "
                  "(0 disables the crash window)")
      .add_double("crash-for", 1.0,
                  "length of the crash window in virtual seconds")
      .add_int("crash-node", 1, "node id torn down at --crash-at")
      .add_string("partition-at", "",
                  "scheduled group partition start:end:group-spec, times in "
                  "virtual seconds, groups |-separated node lists "
                  "(e.g. 0.2:0.6:0,1|2,3); empty disables")
      .add_string("blackhole-at", "",
                  "scheduled one-way link loss start:end:src:dst in virtual "
                  "seconds (frames src->dst dropped, reverse untouched); "
                  "empty disables");
}

namespace {

/// Split on `sep` into non-empty trimless tokens; empty tokens are junk.
std::vector<std::string> split_strict(const std::string& s, char sep,
                                      const std::string& what) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = s.find(sep, begin);
    const std::string tok = s.substr(begin, end - begin);
    if (tok.empty()) {
      throw std::invalid_argument("empty token in " + what + ": '" + s + "'");
    }
    out.push_back(tok);
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out;
}

double parse_seconds(const std::string& tok, const std::string& what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number in " + what + ": '" + tok + "'");
  }
  if (used != tok.size() || v < 0.0) {
    throw std::invalid_argument("bad number in " + what + ": '" + tok + "'");
  }
  return v;
}

int parse_node(const std::string& tok, const std::string& what) {
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(tok, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad node id in " + what + ": '" + tok + "'");
  }
  if (used != tok.size()) {
    throw std::invalid_argument("bad node id in " + what + ": '" + tok + "'");
  }
  return v;
}

Window parse_window(const std::string& start_tok, const std::string& end_tok,
                    const std::string& what) {
  const double start_s = parse_seconds(start_tok, what);
  const double end_s = parse_seconds(end_tok, what);
  if (end_s <= start_s) {
    throw std::invalid_argument(what + " window must satisfy start < end");
  }
  return Window{static_cast<sim::Time>(start_s * sim::kSecond),
                static_cast<sim::Time>(end_s * sim::kSecond)};
}

}  // namespace

PartitionWindow parse_partition_spec(const std::string& spec) {
  const std::string what = "--partition-at";
  const auto parts = split_strict(spec, ':', what);
  if (parts.size() != 3) {
    throw std::invalid_argument(what + " wants start:end:group-spec, got '" +
                                spec + "'");
  }
  PartitionWindow p;
  p.window = parse_window(parts[0], parts[1], what);
  for (const std::string& group : split_strict(parts[2], '|', what)) {
    std::vector<int> ids;
    for (const std::string& tok : split_strict(group, ',', what)) {
      ids.push_back(parse_node(tok, what));
    }
    p.groups.push_back(std::move(ids));
  }
  if (p.groups.size() < 2) {
    throw std::invalid_argument(what +
                                " needs at least two |-separated groups");
  }
  std::vector<int> seen;
  for (const auto& group : p.groups) {
    for (const int id : group) {
      if (std::find(seen.begin(), seen.end(), id) != seen.end()) {
        throw std::invalid_argument(what + " lists node " +
                                    std::to_string(id) + " twice");
      }
      seen.push_back(id);
    }
  }
  return p;
}

BlackholeWindow parse_blackhole_spec(const std::string& spec) {
  const std::string what = "--blackhole-at";
  const auto parts = split_strict(spec, ':', what);
  if (parts.size() != 4) {
    throw std::invalid_argument(what + " wants start:end:src:dst, got '" +
                                spec + "'");
  }
  BlackholeWindow h;
  h.window = parse_window(parts[0], parts[1], what);
  h.src = parse_node(parts[2], what);
  h.dst = parse_node(parts[3], what);
  if (h.src == h.dst) {
    throw std::invalid_argument(what + " src and dst must differ");
  }
  return h;
}

FaultPlan plan_from_flags(const util::Flags& flags) {
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  plan.link.loss_prob = flags.get_double("loss-rate");
  plan.link.corrupt_prob = flags.get_double("corrupt-rate");
  const double crash_at = flags.get_double("crash-at");
  if (crash_at > 0.0) {
    const auto start = static_cast<sim::Time>(crash_at * sim::kSecond);
    const auto span = static_cast<sim::Time>(
        std::max(0.0, flags.get_double("crash-for")) * sim::kSecond);
    plan.nodes[static_cast<int>(flags.get_int("crash-node"))].crashes.push_back(
        Window{start, start + span});
    // A flag-scheduled crash is a real crash: the victim's fiber is torn
    // down, not just its links.  (Plans built in code default to kLossy so
    // pre-recovery behaviour stays byte-identical.)
    plan.crash_semantics = CrashSemantics::kStateful;
  }
  if (const std::string& spec = flags.get_string("partition-at");
      !spec.empty()) {
    plan.partitions.push_back(parse_partition_spec(spec));
  }
  if (const std::string& spec = flags.get_string("blackhole-at");
      !spec.empty()) {
    plan.blackholes.push_back(parse_blackhole_spec(spec));
  }
  return plan;
}

sim::Time read_timeout_from_flags(const util::Flags& flags) {
  const double ms = flags.get_double("read-timeout-ms");
  return ms <= 0.0 ? 0
                   : static_cast<sim::Time>(
                         ms * static_cast<double>(sim::kMillisecond));
}

}  // namespace nscc::fault
