#include "obs/obs.hpp"

#include <cstdio>

#include "util/flags.hpp"

namespace nscc::obs {

Hub::Hub(Options options)
    : options_(std::move(options)), tracer_(options_.trace_capacity) {
  active_ = options_.enable || !options_.trace_path.empty() ||
            !options_.metrics_path.empty() || options_.flow_trace ||
            options_.profile;
  tracer_.enable(options_.enable || !options_.trace_path.empty() ||
                 options_.flow_trace);
  tracer_.set_flows(options_.flow_trace);
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool Hub::finalize() {
  bool ok = true;
  if (tracer_.dropped() > 0) {
    // Surface the truncation in both machine-readable (registry counter)
    // and human-readable (end-of-run stderr warning) form.
    registry_.counter("trace.dropped_events").inc(tracer_.dropped());
    std::fprintf(stderr,
                 "obs: trace ring dropped %llu event(s) (capacity %zu) — the "
                 "exported trace is truncated; raise Options::trace_capacity\n",
                 static_cast<unsigned long long>(tracer_.dropped()),
                 tracer_.capacity());
  }
  if (tracer_.track_collisions() > 0) {
    registry_.counter("trace.track_collisions").inc(tracer_.track_collisions());
    std::fprintf(stderr,
                 "obs: %llu trace track-id collision(s) — events from "
                 "distinct components share a thread track\n",
                 static_cast<unsigned long long>(tracer_.track_collisions()));
  }
  if (!options_.trace_path.empty()) {
    ok = tracer_.write_chrome_json(options_.trace_path) && ok;
  }
  if (!options_.metrics_path.empty()) {
    ok = (has_suffix(options_.metrics_path, ".json")
              ? sampler_.write_json(options_.metrics_path)
              : sampler_.write_csv(options_.metrics_path)) &&
         ok;
  }
  return ok;
}

void add_flags(util::Flags& flags) {
  flags
      .add_string("trace-out", "",
                  "write a Chrome trace-event JSON of the run here")
      .add_string("metrics-out", "",
                  "write the virtual-time metrics series here (CSV, or JSON "
                  "with a .json suffix)")
      .add_double("sample-interval", 50.0,
                  "metrics sampling interval in virtual milliseconds")
      .add_bool("flow-trace", false,
                "record causal write->transit->read flow arrows in the "
                "trace (use with --trace-out; implies tracing)")
      .add_bool("profile", false,
                "run the engine self-profiler (events/sec, per-event-kind "
                "wall-clock histograms, queue depth, allocations)");
}

Options options_from_flags(const util::Flags& flags) {
  Options opts;
  opts.trace_path = flags.get_string("trace-out");
  opts.metrics_path = flags.get_string("metrics-out");
  opts.flow_trace = flags.get_bool("flow-trace");
  opts.profile = flags.get_bool("profile");
  opts.sample_interval = static_cast<sim::Time>(
      flags.get_double("sample-interval") *
      static_cast<double>(sim::kMillisecond));
  if (opts.sample_interval < 1) opts.sample_interval = 1;
  return opts;
}

}  // namespace nscc::obs
