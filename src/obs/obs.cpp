#include "obs/obs.hpp"

#include "util/flags.hpp"

namespace nscc::obs {

Hub::Hub(Options options)
    : options_(std::move(options)), tracer_(options_.trace_capacity) {
  active_ = options_.enable || !options_.trace_path.empty() ||
            !options_.metrics_path.empty();
  tracer_.enable(options_.enable || !options_.trace_path.empty());
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool Hub::finalize() {
  bool ok = true;
  if (!options_.trace_path.empty()) {
    ok = tracer_.write_chrome_json(options_.trace_path) && ok;
  }
  if (!options_.metrics_path.empty()) {
    ok = (has_suffix(options_.metrics_path, ".json")
              ? sampler_.write_json(options_.metrics_path)
              : sampler_.write_csv(options_.metrics_path)) &&
         ok;
  }
  return ok;
}

void add_flags(util::Flags& flags) {
  flags
      .add_string("trace-out", "",
                  "write a Chrome trace-event JSON of the run here")
      .add_string("metrics-out", "",
                  "write the virtual-time metrics series here (CSV, or JSON "
                  "with a .json suffix)")
      .add_double("sample-interval", 50.0,
                  "metrics sampling interval in virtual milliseconds");
}

Options options_from_flags(const util::Flags& flags) {
  Options opts;
  opts.trace_path = flags.get_string("trace-out");
  opts.metrics_path = flags.get_string("metrics-out");
  opts.sample_interval = static_cast<sim::Time>(
      flags.get_double("sample-interval") *
      static_cast<double>(sim::kMillisecond));
  if (opts.sample_interval < 1) opts.sample_interval = 1;
  return opts;
}

}  // namespace nscc::obs
