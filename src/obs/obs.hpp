// Observability hub: one object bundling the metrics registry, the event
// tracer, and the virtual-time sampler, plus the driver-facing glue
// (--trace-out / --metrics-out / --sample-interval flags).
//
// A VirtualMachine owns one Hub; every instrumented layer (engine, runtime,
// DSM, network, applications) reaches it through the machine and guards all
// work on the single `active()` bit, so a run with observability off pays
// one predicted branch per instrumentation site and nothing else.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace nscc::util {
class Flags;
}  // namespace nscc::util

namespace nscc::obs {

struct Options {
  /// Collect metrics/trace in memory even when no output path is set (for
  /// tests and drivers that report through the registry directly).
  bool enable = false;
  /// Chrome trace-event JSON output path; empty disables tracing.
  std::string trace_path;
  /// Time-series output path; ".json" suffix selects JSON, anything else
  /// CSV.  Empty disables the sampler file output.
  std::string metrics_path;
  /// Virtual time between metric samples.
  sim::Time sample_interval = 50 * sim::kMillisecond;
  /// Trace ring-buffer capacity in events (oldest are dropped on overflow).
  std::size_t trace_capacity = 1 << 18;
  /// Record causal flow events (write -> transit -> read arrows) in the
  /// trace.  Implies tracing; costs several ring slots per DSM update, so
  /// it is a separate opt-in on top of --trace-out.
  bool flow_trace = false;
  /// Run the engine self-profiler (wall-clock dispatch histograms,
  /// events/sec, queue depth, allocations).  Wall-clock only: the simulated
  /// results of a profiled run are byte-identical to an unprofiled one.
  bool profile = false;
};

class Hub {
 public:
  explicit Hub(Options options = {});

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// True when any collection is on; instrumentation sites check this once.
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] bool tracing() const noexcept { return tracer_.enabled(); }

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] Sampler& sampler() noexcept { return sampler_; }
  [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] const Sampler& sampler() const noexcept { return sampler_; }
  [[nodiscard]] const Profiler& profiler() const noexcept { return profiler_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Write the configured outputs (trace JSON, metrics time series).  When
  /// the trace ring dropped events, publishes the count as the
  /// "trace.dropped_events" counter and warns on stderr — a truncated trace
  /// must never be mistaken for a complete one.  Returns false if any
  /// configured file could not be written.
  bool finalize();

 private:
  Options options_;
  bool active_ = false;
  Registry registry_;
  Tracer tracer_;
  Sampler sampler_;
  Profiler profiler_;
};

/// Register the standard observability flags on a driver's flag set.
void add_flags(util::Flags& flags);

/// Build Options from flags registered by add_flags().
[[nodiscard]] Options options_from_flags(const util::Flags& flags);

}  // namespace nscc::obs
