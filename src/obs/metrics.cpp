#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nscc::obs {

namespace {

int bucket_index(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // v < 1, zero, negative, or NaN.
  const int e = std::ilogb(v) + 1;
  return std::min(e, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::observe(double v) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::bucket_upper(int i) noexcept {
  if (i <= 0) return 1.0;
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i);
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

Counter& Registry::counter(const std::string& name, int pid) {
  return counters_[{name, pid}];
}

Gauge& Registry::gauge(const std::string& name, int pid) {
  return gauges_[{name, pid}];
}

Histogram& Registry::histogram(const std::string& name, int pid) {
  return histograms_[{name, pid}];
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      int pid) const noexcept {
  auto it = counters_.find({name, pid});
  return it == counters_.end() ? 0 : it->second.value();
}

double Registry::gauge_value(const std::string& name, int pid) const noexcept {
  auto it = gauges_.find({name, pid});
  return it == gauges_.end() ? 0.0 : it->second.value();
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          int pid) const noexcept {
  auto it = histograms_.find({name, pid});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(size());
  for (const auto& [key, c] : counters_) {
    out.push_back({key.first, key.second, "counter",
                   static_cast<double>(c.value()), 0, 0.0});
  }
  for (const auto& [key, g] : gauges_) {
    out.push_back({key.first, key.second, "gauge", g.value(), 0, 0.0});
  }
  for (const auto& [key, h] : histograms_) {
    out.push_back({key.first, key.second, "histogram", h.mean(), h.count(),
                   h.max()});
  }
  return out;
}

std::string Registry::to_csv() const {
  std::ostringstream os;
  os << "name,pid,kind,value,count,max\n";
  for (const Sample& s : snapshot()) {
    os << s.name << ',' << s.pid << ',' << s.kind << ',' << s.value << ','
       << s.count << ',' << s.max << '\n';
  }
  return os.str();
}

std::string Registry::to_json() const {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!first) os << ",\n";
    first = false;
    os << R"(  {"name":")" << s.name << R"(","pid":)" << s.pid
       << R"(,"kind":")" << s.kind << R"(","value":)" << s.value
       << R"(,"count":)" << s.count << R"(,"max":)" << s.max << '}';
  }
  os << "\n]\n";
  return os.str();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace nscc::obs
