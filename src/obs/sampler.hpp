// Virtual-time series sampler: snapshots a set of probes every N simulated
// time units and exports CSV/JSON.
//
// The sampler does not inject events into the simulation (which would keep
// a drained queue alive and confuse deadlock detection); instead the
// engine's run loop calls sample_now() whenever the virtual clock crosses a
// sampling boundary (see Engine::set_sampler), so samples land exactly at
// multiples of the interval and reflect the state just before the first
// event at-or-after each boundary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nscc::obs {

class Sampler {
 public:
  /// Register a column; `probe` is called at every sample point.
  void add_probe(std::string column, std::function<double()> probe);

  /// Record one row at virtual time `t` (monotonically non-decreasing by
  /// convention; the engine and end-of-run flush guarantee this).
  void sample_now(sim::Time t);

  struct Row {
    sim::Time t = 0;
    std::vector<double> values;
  };

  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Header "time_ns,time_s,<col>..." then one row per sample.
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

  void clear() noexcept { rows_.clear(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::function<double()>> probes_;
  std::vector<Row> rows_;
};

}  // namespace nscc::obs
