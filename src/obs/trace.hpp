// Event tracer keyed by virtual time, exporting Chrome trace-event JSON.
//
// Instrumented code records spans ("X" complete events), instants ("i") and
// counter samples ("C") against a simulated-process track id; the exporter
// writes the trace-event format that chrome://tracing and Perfetto load,
// with one named track per simulated processor (plus dedicated tracks for
// the engine, the shared bus, and switch ports).
//
// Hot-path discipline: record() does no allocation and no formatting — it
// copies POD into a preallocated ring buffer and `name`/arg names must be
// string literals (they are stored as const char* and formatted only at
// export time).  When the tracer is disabled every record call is a single
// predicted branch.
//
// Flow events ('s' start / 't' step / 'f' end) carry a machine-unique flow
// id and render as arrows between tracks in Perfetto — the DSM stamps one
// per propagated update so a stale read can be traced back to the write
// that produced it.  Flows are gated separately (set_flows) because every
// update costs three-plus ring slots; --flow-trace turns them on.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace nscc::obs {

/// Track ids for shared infrastructure (simulated processors use their own
/// small ids; these are chosen not to collide).
inline constexpr int kEngineTrack = 990;
inline constexpr int kBusTrack = 991;
inline constexpr int kSwitchTrackBase = 1000;  ///< + port number.

class Tracer {
 public:
  struct Event {
    sim::Time ts = 0;        ///< Virtual ns.
    sim::Time dur = 0;       ///< Complete events only.
    const char* name = nullptr;
    const char* a0_name = nullptr;  ///< Optional integer args.
    const char* a1_name = nullptr;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::uint64_t flow = 0;  ///< Flow id ('s'/'t'/'f' phases only).
    std::int32_t tid = 0;
    char phase = 'i';  ///< 'X' complete, 'i' instant, 'C' counter,
                       ///< 's'/'t'/'f' flow start/step/end.
  };

  explicit Tracer(std::size_t capacity = 1 << 18);

  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// A span of virtual time [ts, ts+dur] on track `tid`.
  void complete(int tid, const char* name, sim::Time ts, sim::Time dur,
                const char* a0_name = nullptr, std::int64_t a0 = 0,
                const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!enabled_) return;
    push(Event{ts, dur, name, a0_name, a1_name, a0, a1, 0, tid, 'X'});
  }

  /// A point event at virtual time `ts`.
  void instant(int tid, const char* name, sim::Time ts,
               const char* a0_name = nullptr, std::int64_t a0 = 0,
               const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!enabled_) return;
    push(Event{ts, 0, name, a0_name, a1_name, a0, a1, 0, tid, 'i'});
  }

  /// A counter-track sample (renders as a filled area in Perfetto).
  void counter(int tid, const char* name, sim::Time ts,
               std::int64_t value) noexcept {
    if (!enabled_) return;
    push(Event{ts, 0, name, "value", nullptr, value, 0, 0, tid, 'C'});
  }

  /// Flow events: an 's' start on the producing track, any number of 't'
  /// steps on intermediate tracks, and an 'f' end (bind-enclosing) on the
  /// consuming track, all sharing one flow id.  Perfetto draws the arrows.
  /// Gated on set_flows() in addition to enable() — see flows_enabled().
  void flow_begin(int tid, const char* name, sim::Time ts, std::uint64_t id,
                  const char* a0_name = nullptr, std::int64_t a0 = 0,
                  const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!flows_enabled()) return;
    push(Event{ts, 0, name, a0_name, a1_name, a0, a1, id, tid, 's'});
  }
  void flow_step(int tid, const char* name, sim::Time ts, std::uint64_t id,
                 const char* a0_name = nullptr, std::int64_t a0 = 0,
                 const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!flows_enabled()) return;
    push(Event{ts, 0, name, a0_name, a1_name, a0, a1, id, tid, 't'});
  }
  void flow_end(int tid, const char* name, sim::Time ts, std::uint64_t id,
                const char* a0_name = nullptr, std::int64_t a0 = 0,
                const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!flows_enabled()) return;
    push(Event{ts, 0, name, a0_name, a1_name, a0, a1, id, tid, 'f'});
  }

  /// Turn flow recording on/off (independent of enable(): flows add several
  /// ring slots per DSM update, so they are strictly opt-in).
  void set_flows(bool on) noexcept { flows_ = on; }
  [[nodiscard]] bool flows_enabled() const noexcept {
    return enabled_ && flows_;
  }
  /// Allocate a fresh machine-unique flow id (never 0; 0 means "no flow").
  [[nodiscard]] std::uint64_t new_flow() noexcept { return next_flow_++; }

  /// Human-readable track name emitted as thread_name metadata.  The first
  /// registration for a tid wins; re-registering the same name is a no-op
  /// (dedup), a *different* name is a track-id collision — asserted in
  /// debug builds, counted in release (see track_collisions()).
  void set_track_name(int tid, std::string name);
  /// Conflicting set_track_name registrations observed (release builds).
  [[nodiscard]] std::uint64_t track_collisions() const noexcept {
    return track_collisions_;
  }

  /// Reserve a contiguous range of `count` track ids for a component with
  /// many tracks (e.g. one per switch port).  Returns `preferred_base` when
  /// the range is free, otherwise the first non-overlapping base above it —
  /// so two SwitchFabrics sharing one tracer can never collide.
  int claim_tracks(int count, int preferred_base);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten because the ring filled (oldest are lost first).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Events in record order, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  [[nodiscard]] std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  void clear() noexcept;

 private:
  void push(const Event& e) noexcept {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  bool enabled_ = false;
  bool flows_ = false;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   ///< Next write position.
  std::size_t count_ = 0;  ///< Valid events in the ring.
  std::uint64_t dropped_ = 0;
  std::uint64_t next_flow_ = 1;
  std::uint64_t track_collisions_ = 0;
  std::map<int, std::string> track_names_;
  std::vector<std::pair<int, int>> claimed_;  ///< [lo, hi) track ranges.
};

}  // namespace nscc::obs
