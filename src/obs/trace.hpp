// Event tracer keyed by virtual time, exporting Chrome trace-event JSON.
//
// Instrumented code records spans ("X" complete events), instants ("i") and
// counter samples ("C") against a simulated-process track id; the exporter
// writes the trace-event format that chrome://tracing and Perfetto load,
// with one named track per simulated processor (plus dedicated tracks for
// the engine, the shared bus, and switch ports).
//
// Hot-path discipline: record() does no allocation and no formatting — it
// copies POD into a preallocated ring buffer and `name`/arg names must be
// string literals (they are stored as const char* and formatted only at
// export time).  When the tracer is disabled every record call is a single
// predicted branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nscc::obs {

/// Track ids for shared infrastructure (simulated processors use their own
/// small ids; these are chosen not to collide).
inline constexpr int kEngineTrack = 990;
inline constexpr int kBusTrack = 991;
inline constexpr int kSwitchTrackBase = 1000;  ///< + port number.

class Tracer {
 public:
  struct Event {
    sim::Time ts = 0;        ///< Virtual ns.
    sim::Time dur = 0;       ///< Complete events only.
    const char* name = nullptr;
    const char* a0_name = nullptr;  ///< Optional integer args.
    const char* a1_name = nullptr;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::int32_t tid = 0;
    char phase = 'i';  ///< 'X' complete, 'i' instant, 'C' counter.
  };

  explicit Tracer(std::size_t capacity = 1 << 18);

  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// A span of virtual time [ts, ts+dur] on track `tid`.
  void complete(int tid, const char* name, sim::Time ts, sim::Time dur,
                const char* a0_name = nullptr, std::int64_t a0 = 0,
                const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!enabled_) return;
    push(Event{ts, dur, name, a0_name, a1_name, a0, a1, tid, 'X'});
  }

  /// A point event at virtual time `ts`.
  void instant(int tid, const char* name, sim::Time ts,
               const char* a0_name = nullptr, std::int64_t a0 = 0,
               const char* a1_name = nullptr, std::int64_t a1 = 0) noexcept {
    if (!enabled_) return;
    push(Event{ts, 0, name, a0_name, a1_name, a0, a1, tid, 'i'});
  }

  /// A counter-track sample (renders as a filled area in Perfetto).
  void counter(int tid, const char* name, sim::Time ts,
               std::int64_t value) noexcept {
    if (!enabled_) return;
    push(Event{ts, 0, name, "value", nullptr, value, 0, tid, 'C'});
  }

  /// Human-readable track name emitted as thread_name metadata.
  void set_track_name(int tid, std::string name);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten because the ring filled (oldest are lost first).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Events in record order, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  [[nodiscard]] std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  void clear() noexcept;

 private:
  void push(const Event& e) noexcept {
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  bool enabled_ = false;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   ///< Next write position.
  std::size_t count_ = 0;  ///< Valid events in the ring.
  std::uint64_t dropped_ = 0;
  std::map<int, std::string> track_names_;
};

}  // namespace nscc::obs
