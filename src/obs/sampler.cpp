#include "obs/sampler.hpp"

#include <fstream>
#include <sstream>
#include <utility>

namespace nscc::obs {

void Sampler::add_probe(std::string column, std::function<double()> probe) {
  columns_.push_back(std::move(column));
  probes_.push_back(std::move(probe));
}

void Sampler::sample_now(sim::Time t) {
  Row row;
  row.t = t;
  row.values.reserve(probes_.size());
  for (const auto& probe : probes_) row.values.push_back(probe());
  rows_.push_back(std::move(row));
}

std::string Sampler::to_csv() const {
  std::ostringstream os;
  os << "time_ns,time_s";
  for (const auto& c : columns_) os << ',' << c;
  os << '\n';
  for (const Row& r : rows_) {
    os << r.t << ',' << sim::to_seconds(r.t);
    for (double v : r.values) os << ',' << v;
    os << '\n';
  }
  return os.str();
}

std::string Sampler::to_json() const {
  std::ostringstream os;
  os << "{\"columns\":[\"time_ns\",\"time_s\"";
  for (const auto& c : columns_) os << ",\"" << c << '"';
  os << "],\"rows\":[\n";
  bool first = true;
  for (const Row& r : rows_) {
    if (!first) os << ",\n";
    first = false;
    os << '[' << r.t << ',' << sim::to_seconds(r.t);
    for (double v : r.values) os << ',' << v;
    os << ']';
  }
  os << "\n]}\n";
  return os.str();
}

bool Sampler::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

bool Sampler::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace nscc::obs
