// Unified metrics registry: named counters, gauges, and log-scale
// histograms with an optional per-process label.
//
// Every subsystem's ad-hoc stats struct (DsmStats, TaskStats, BusStats,
// WarpMeter, rollback counters) publishes through this one interface, so a
// driver can dump a single coherent table/CSV/JSON instead of each
// experiment hand-rolling its own reporting.  Lookups are string-keyed and
// therefore NOT for the hot path: instrumented code obtains a handle once
// (references into the registry are stable) and increments through it, or
// flushes an existing stats struct wholesale at end of run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace nscc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time level (blocked readers, in-flight updates, utilisation).
class Gauge {
 public:
  void set(double v) noexcept { v_ = v; }
  void add(double d) noexcept { v_ += d; }
  [[nodiscard]] double value() const noexcept { return v_; }

 private:
  double v_ = 0.0;
};

/// Log2-bucketed histogram: bucket 0 holds v < 1, bucket i (i >= 1) holds
/// [2^(i-1), 2^i).  Cheap enough for per-primitive latencies in virtual
/// nanoseconds and for small integer distributions like staleness.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v) noexcept;

  /// Fold another histogram's buckets and moments into this one (exact:
  /// both use the same fixed log2 bucket layout).
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Exclusive upper bound of bucket i (inf for the last).
  [[nodiscard]] static double bucket_upper(int i) noexcept;
  /// Bucket-resolution quantile estimate (upper bound of the bucket holding
  /// the q-th observation); 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class Registry {
 public:
  /// Get or create a metric.  `pid` labels the simulated process the metric
  /// belongs to; -1 means machine-wide.  Returned references stay valid for
  /// the registry's lifetime.
  Counter& counter(const std::string& name, int pid = -1);
  Gauge& gauge(const std::string& name, int pid = -1);
  Histogram& histogram(const std::string& name, int pid = -1);

  /// Read-only lookups that do NOT create (for tests and reporting):
  /// value of an absent counter/gauge is 0; absent histogram is nullptr.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            int pid = -1) const noexcept;
  [[nodiscard]] double gauge_value(const std::string& name,
                                   int pid = -1) const noexcept;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                int pid = -1) const noexcept;

  /// One flattened row per metric (histograms export count/mean/max).
  struct Sample {
    std::string name;
    int pid = -1;       ///< -1 = machine-wide.
    const char* kind;   ///< "counter", "gauge", "histogram".
    double value;       ///< Counter/gauge value; histogram mean.
    std::uint64_t count = 0;  ///< Histogram observation count.
    double max = 0.0;         ///< Histogram max.
  };
  [[nodiscard]] std::vector<Sample> snapshot() const;

  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

 private:
  using Key = std::pair<std::string, int>;
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace nscc::obs
