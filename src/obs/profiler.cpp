#include "obs/profiler.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

// ---- Process-wide allocation counters ---------------------------------------
//
// The global operator new/delete are replaced with thin malloc/free wrappers
// that bump relaxed atomics.  The whole new/delete family is replaced
// together (including sized and nothrow forms) so memory our new obtained
// from malloc is always released through free — which also keeps
// AddressSanitizer's alloc/dealloc pairing checks consistent, since ASan
// intercepts the underlying malloc/free.  Over-aligned forms are left to
// the implementation (they pair among themselves); their traffic is simply
// not counted.  Cost when nobody reads the counters: one relaxed add per
// allocation.

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace nscc::obs {

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kGeneric:
      return "generic";
    case EventKind::kProcess:
      return "process";
    case EventKind::kWatchdog:
      return "watchdog";
    case EventKind::kNetwork:
      return "network";
    case EventKind::kTransport:
      return "transport";
  }
  return "?";
}

AllocCounts alloc_counts() noexcept {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

namespace {

std::int64_t wall_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Profiler::start_run(std::uint64_t events_executed) noexcept {
  events_at_start_ = events_executed;
  allocs_at_start_ = alloc_counts();
  wall_start_ns_ = wall_now_ns();
  running_ = true;
}

void Profiler::finish_run(std::uint64_t events_executed) noexcept {
  if (!running_) return;
  running_ = false;
  const std::int64_t elapsed = wall_now_ns() - wall_start_ns_;
  wall_seconds_ = static_cast<double>(elapsed > 0 ? elapsed : 0) * 1e-9;
  events_ = events_executed - events_at_start_;
  const AllocCounts now = alloc_counts();
  allocations_ = now.count - allocs_at_start_.count;
  alloc_bytes_ = now.bytes - allocs_at_start_.bytes;
}

void Profiler::flush(Registry& registry) const {
  registry.gauge("profiler.events_per_sec").set(events_per_sec());
  registry.gauge("profiler.wall_s").set(wall_seconds_);
  registry.counter("profiler.events").inc(events_);
  registry.counter("profiler.peak_queue_depth").inc(peak_queue_depth_);
  registry.counter("profiler.allocations").inc(allocations_);
  registry.counter("profiler.alloc_bytes").inc(alloc_bytes_);
  for (int k = 0; k < kEventKinds; ++k) {
    std::string name = "profiler.dispatch_ns.";
    name += event_kind_name(static_cast<EventKind>(k));
    registry.histogram(name).merge(dispatch_[k]);
  }
}

}  // namespace nscc::obs
