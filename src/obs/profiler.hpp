// Engine self-profiler: where does *wall-clock* time go inside the DES run
// loop?  Virtual time measures the modelled system; this measures the
// simulator itself — per-event-kind dispatch-cost histograms, events/sec,
// peak event-queue depth, and per-run heap-allocation counts — the numbers
// ROADMAP item 2 ("make the simulator fast, and prove it") regresses on.
//
// Hot-path discipline mirrors the tracer's: when no Profiler is attached to
// the engine, every hook is a single predicted null check; when attached,
// record() is two loads, a histogram observe, and no allocation.  Wall-clock
// readings never feed back into virtual time, so a profiled run's simulated
// results are byte-identical to an unprofiled one.
//
// Allocation counting is process-wide: profiler.cpp replaces the global
// operator new/delete with malloc/free wrappers that bump relaxed atomic
// counters.  start_run() snapshots them; finish_run() reports the delta.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace nscc::obs {

/// Coarse classification of engine events, tagged at schedule() time.
enum class EventKind : std::uint8_t {
  kGeneric = 0,  ///< Untagged schedule() calls (tests, app callbacks).
  kProcess,      ///< Fiber resume/delay continuations.
  kWatchdog,     ///< set_watchdog timers (retransmit, read escalation).
  kNetwork,      ///< Bus/switch frame delivery and medium bookkeeping.
  kTransport,    ///< Runtime-local delivery (self-sends, loopback).
};
inline constexpr int kEventKinds = 5;

[[nodiscard]] const char* event_kind_name(EventKind k) noexcept;

/// Process-wide heap-allocation counters (see operator new in profiler.cpp).
struct AllocCounts {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};
[[nodiscard]] AllocCounts alloc_counts() noexcept;

class Profiler {
 public:
  /// Mark the start of the measured region: snapshots the wall clock, the
  /// process-wide allocation counters, and the engine's cumulative executed
  /// event count (so nested or repeated runs report deltas).
  void start_run(std::uint64_t events_executed = 0) noexcept;

  /// Mark the end: `events_executed` is the engine's cumulative count (the
  /// delta since start_run() is what events/sec is computed over).
  void finish_run(std::uint64_t events_executed) noexcept;

  /// One executed event of kind `k` that took `wall_ns` of host time.
  void record(EventKind k, std::uint64_t wall_ns) noexcept {
    dispatch_[static_cast<int>(k)].observe(static_cast<double>(wall_ns));
  }

  /// Queue depth after a push; tracks the high-water mark.
  void note_queue_depth(std::uint64_t depth) noexcept {
    if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
  }

  [[nodiscard]] const Histogram& dispatch(EventKind k) const noexcept {
    return dispatch_[static_cast<int>(k)];
  }
  /// Events executed between start_run() and finish_run().
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] double wall_seconds() const noexcept { return wall_seconds_; }
  [[nodiscard]] double events_per_sec() const noexcept {
    return wall_seconds_ > 0.0 ? static_cast<double>(events_) / wall_seconds_
                               : 0.0;
  }
  [[nodiscard]] std::uint64_t peak_queue_depth() const noexcept {
    return peak_queue_depth_;
  }
  /// Heap allocations (count / bytes) between start_run() and finish_run().
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocations_;
  }
  [[nodiscard]] std::uint64_t alloc_bytes() const noexcept {
    return alloc_bytes_;
  }

  /// Publish everything into a registry: "profiler.events_per_sec",
  /// "profiler.wall_s", "profiler.events", "profiler.peak_queue_depth",
  /// "profiler.allocations", "profiler.alloc_bytes", and one
  /// "profiler.dispatch_ns.<kind>" histogram per event kind.
  void flush(Registry& registry) const;

 private:
  Histogram dispatch_[kEventKinds];
  std::uint64_t events_ = 0;
  std::uint64_t events_at_start_ = 0;
  double wall_seconds_ = 0.0;
  std::uint64_t peak_queue_depth_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t alloc_bytes_ = 0;
  AllocCounts allocs_at_start_;
  std::int64_t wall_start_ns_ = 0;
  bool running_ = false;
};

}  // namespace nscc::obs
