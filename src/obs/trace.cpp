#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace nscc::obs {

Tracer::Tracer(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void Tracer::set_track_name(int tid, std::string name) {
  auto it = track_names_.find(tid);
  if (it != track_names_.end()) {
    if (it->second != name) {
      // Two components claimed the same track id (e.g. a switch port base
      // overlapping a processor id).  The exported trace would interleave
      // their events under one thread — fail loudly in debug, keep the
      // first registration and count the conflict in release.
      assert(false && "Tracer: track id registered under two names");
      ++track_collisions_;
    }
    return;  // Dedup: repeated identical registration is a no-op.
  }
  track_names_.emplace(tid, std::move(name));
}

int Tracer::claim_tracks(int count, int preferred_base) {
  assert(count > 0);
  int base = preferred_base;
  auto conflicts = [this](int lo, int hi) -> int {
    // Returns the first id past a conflict, or lo when the range is free.
    for (const auto& [clo, chi] : claimed_) {
      if (lo < chi && clo < hi) return chi;
    }
    auto it = track_names_.lower_bound(lo);
    if (it != track_names_.end() && it->first < hi) return it->first + 1;
    return lo;
  };
  for (;;) {
    const int next = conflicts(base, base + count);
    if (next == base) break;
    base = next;
  }
  claimed_.emplace_back(base, base + count);
  return base;
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  // Oldest event is at head_ when the ring wrapped, else at 0.
  const std::size_t start = count_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

void escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Virtual ns -> trace-event microseconds (fractional, full precision).
void ts_into(std::ostream& os, sim::Time ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Single trace-event "process" (the simulated machine); one thread track
  // per simulated processor / infrastructure component.
  sep();
  os << R"({"ph":"M","pid":0,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"nscc-sim"}})";
  for (const auto& [tid, name] : track_names_) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")";
    escape_into(os, name);
    os << "\"}}";
  }
  for (const Event& e : events()) {
    sep();
    os << R"({"ph":")" << e.phase << R"(","pid":0,"tid":)" << e.tid
       << R"(,"ts":)";
    ts_into(os, e.ts);
    os << R"(,"name":")" << (e.name != nullptr ? e.name : "?") << '"';
    if (e.phase == 'X') {
      os << R"(,"dur":)";
      ts_into(os, e.dur);
    }
    if (e.phase == 'i') os << R"(,"s":"t")";
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      // Flow events need a category and the shared flow id; the end binds
      // to the enclosing slice ("bp":"e") so Perfetto attaches the arrow
      // head to whatever span the consumer was in.
      os << R"(,"cat":"flow","id":)" << e.flow;
      if (e.phase == 'f') os << R"(,"bp":"e")";
    }
    if (e.a0_name != nullptr || e.a1_name != nullptr) {
      os << R"(,"args":{)";
      if (e.a0_name != nullptr) {
        os << '"' << e.a0_name << "\":" << e.a0;
      }
      if (e.a1_name != nullptr) {
        if (e.a0_name != nullptr) os << ',';
        os << '"' << e.a1_name << "\":" << e.a1;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

void Tracer::clear() noexcept {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  next_flow_ = 1;
  track_collisions_ = 0;
  track_names_.clear();
  claimed_.clear();
}

}  // namespace nscc::obs
