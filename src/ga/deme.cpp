#include "ga/deme.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace nscc::ga {

Deme::Deme(const TestFunction& fn, GaParams params, util::Xoshiro256 rng,
           FitnessCache* cache)
    : fn_(fn), params_(params), rng_(rng), cache_(cache) {
  assert(params_.pop_size >= 2);
  assert(params_.scaling_window >= 1);
}

EvalCount Deme::evaluate(Individual& ind) {
  EvalCount count;
  if (ind.evaluated) return count;
  double fitness = 0.0;
  if (cache_ != nullptr && cache_->lookup(ind.genome, fitness)) {
    ++count.cache_hits;
  } else {
    fitness = fn_.eval(decode(ind.genome, fn_), rng_);
    ++count.evaluations;
    if (cache_ != nullptr) cache_->insert(ind.genome, fitness);
  }
  ind.fitness = fitness;
  ind.evaluated = true;
  return count;
}

EvalCount Deme::initialize() {
  population_.assign(static_cast<std::size_t>(params_.pop_size), Individual{});
  EvalCount count;
  for (Individual& ind : population_) {
    ind.genome = util::BitVec(static_cast<std::size_t>(fn_.genome_bits()));
    ind.genome.randomize(rng_);
    ind.evaluated = false;
    count += evaluate(ind);
  }
  worst_window_.clear();
  worst_window_.push_back(worst_fitness());
  generation_ = 0;
  return count;
}

std::vector<int> Deme::ranked() const {
  std::vector<int> idx(population_.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [this](int a, int b) {
    return population_[static_cast<std::size_t>(a)].fitness <
           population_[static_cast<std::size_t>(b)].fitness;
  });
  return idx;
}

const Individual& Deme::best() const {
  assert(!population_.empty());
  return *std::min_element(population_.begin(), population_.end(),
                           [](const Individual& a, const Individual& b) {
                             return a.fitness < b.fitness;
                           });
}

double Deme::worst_fitness() const {
  assert(!population_.empty());
  return std::max_element(population_.begin(), population_.end(),
                          [](const Individual& a, const Individual& b) {
                            return a.fitness < b.fitness;
                          })
      ->fitness;
}

double Deme::average_fitness() const {
  double sum = 0.0;
  for (const Individual& ind : population_) sum += ind.fitness;
  return sum / static_cast<double>(population_.size());
}

std::vector<Individual> Deme::best_k(int k) const {
  const auto idx = ranked();
  std::vector<Individual> out;
  const int n = std::min<int>(k, static_cast<int>(idx.size()));
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(population_[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]);
  }
  return out;
}

void Deme::incorporate(const std::vector<Individual>& migrants,
                       int replace_count) {
  if (migrants.empty() || replace_count <= 0) return;
  // Best `replace_count` of the incoming pool...
  std::vector<const Individual*> pool;
  pool.reserve(migrants.size());
  for (const Individual& m : migrants) pool.push_back(&m);
  std::sort(pool.begin(), pool.end(),
            [](const Individual* a, const Individual* b) {
              return a->fitness < b->fitness;
            });
  const int k = std::min<int>(
      {replace_count, static_cast<int>(pool.size()),
       static_cast<int>(population_.size())});
  // ...replace the worst k of the population.
  auto idx = ranked();
  for (int i = 0; i < k; ++i) {
    const int victim =
        idx[static_cast<std::size_t>(static_cast<int>(idx.size()) - 1 - i)];
    population_[static_cast<std::size_t>(victim)] = *pool[static_cast<std::size_t>(i)];
  }
}

void Deme::restore(std::vector<Individual> population, int generation) {
  population_ = std::move(population);
  generation_ = generation;
  worst_window_.clear();
  worst_window_.push_back(worst_fitness());
}

EvalCount Deme::step() {
  assert(!population_.empty() && "initialize() must be called first");
  EvalCount count;

  // Window scaling: fitness' = (worst over last W generations) - fitness.
  const double window_worst =
      *std::max_element(worst_window_.begin(), worst_window_.end());
  std::vector<double> wheel(population_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < population_.size(); ++i) {
    wheel[i] = std::max(0.0, window_worst - population_[i].fitness);
    total += wheel[i];
  }

  auto select = [&]() -> const Individual& {
    if (total <= 0.0) {
      // Degenerate scaling (all equal): uniform choice.
      return population_[rng_.below(population_.size())];
    }
    double ball = rng_.uniform01() * total;
    for (std::size_t i = 0; i < wheel.size(); ++i) {
      ball -= wheel[i];
      if (ball <= 0.0) return population_[i];
    }
    return population_.back();
  };

  const Individual elite = best();

  std::vector<Individual> children;
  children.reserve(population_.size());
  const std::size_t nbits = static_cast<std::size_t>(fn_.genome_bits());
  while (children.size() < population_.size()) {
    Individual a = select();
    Individual b = select();
    if (rng_.bernoulli(params_.crossover_rate)) {
      const std::size_t point = 1 + rng_.below(nbits - 1);
      util::BitVec ca;
      util::BitVec cb;
      util::BitVec::crossover(a.genome, b.genome, point, ca, cb);
      a.genome = std::move(ca);
      b.genome = std::move(cb);
      a.evaluated = false;
      b.evaluated = false;
    }
    for (Individual* child : {&a, &b}) {
      for (std::size_t bit = 0; bit < nbits; ++bit) {
        if (rng_.bernoulli(params_.mutation_rate)) {
          child->genome.flip(bit);
          child->evaluated = false;
        }
      }
      if (children.size() < population_.size()) {
        children.push_back(std::move(*child));
      }
    }
  }

  for (Individual& child : children) count += evaluate(child);

  if (params_.elitist) {
    // The best of the previous generation survives, replacing the worst child.
    auto worst_it = std::max_element(children.begin(), children.end(),
                                     [](const Individual& a, const Individual& b) {
                                       return a.fitness < b.fitness;
                                     });
    if (worst_it->fitness > elite.fitness) *worst_it = elite;
  }

  population_ = std::move(children);
  ++generation_;

  worst_window_.push_back(worst_fitness());
  while (static_cast<int>(worst_window_.size()) > params_.scaling_window) {
    worst_window_.pop_front();
  }
  return count;
}

}  // namespace nscc::ga
