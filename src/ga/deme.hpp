// Generational GA engine for one (sub)population.
//
// Implements the paper's GA class (Section 4.2.1) with DeJong's settings:
// population size N, crossover rate C, bit mutation rate M, generation gap
// G = 1 (full replacement), scaling window W, and elitist selection (S = E).
// Selection is roulette-wheel on window-scaled fitness; crossover is
// one-point.  All problems are minimisation.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ga/chromosome.hpp"
#include "ga/fitness_cache.hpp"
#include "ga/functions.hpp"
#include "util/rng.hpp"

namespace nscc::ga {

struct GaParams {
  int pop_size = 50;            ///< N
  double crossover_rate = 0.6;  ///< C
  double mutation_rate = 0.001; ///< M (per bit)
  int scaling_window = 1;       ///< W (generations of worst-fitness history)
  bool elitist = true;          ///< S = E
};

/// Cost-relevant counters for one operation (the simulator charges
/// virtual CPU per evaluation / cache hit).
struct EvalCount {
  int evaluations = 0;
  int cache_hits = 0;

  EvalCount& operator+=(const EvalCount& o) noexcept {
    evaluations += o.evaluations;
    cache_hits += o.cache_hits;
    return *this;
  }
};

class Deme {
 public:
  /// `cache` may be nullptr to disable fitness caching.
  Deme(const TestFunction& fn, GaParams params, util::Xoshiro256 rng,
       FitnessCache* cache = nullptr);

  /// Create and evaluate the initial random population.
  EvalCount initialize();

  /// Advance one generation (selection, crossover, mutation, evaluation,
  /// elitism).  Requires initialize() first.
  EvalCount step();

  [[nodiscard]] const Individual& best() const;
  [[nodiscard]] double worst_fitness() const;
  [[nodiscard]] double average_fitness() const;

  /// The k best individuals (copies), ascending fitness (best first).
  [[nodiscard]] std::vector<Individual> best_k(int k) const;

  /// Replace the worst individuals with the best `replace_count` of the
  /// incoming pool (the paper's "replace the worst ... with these
  /// migrants", bounded so a deme is never wiped out by P-1 senders).
  void incorporate(const std::vector<Individual>& migrants, int replace_count);

  /// Checkpoint restore: adopt an already-evaluated population as the state
  /// at `generation`.  The scaling window restarts from the population's
  /// current worst (its deeper history is not worth checkpointing).
  void restore(std::vector<Individual> population, int generation);

  [[nodiscard]] int generation() const noexcept { return generation_; }
  [[nodiscard]] const std::vector<Individual>& population() const noexcept {
    return population_;
  }
  [[nodiscard]] const TestFunction& function() const noexcept { return fn_; }

 private:
  EvalCount evaluate(Individual& ind);
  /// Indices into population_ sorted by ascending fitness.
  [[nodiscard]] std::vector<int> ranked() const;

  const TestFunction& fn_;
  GaParams params_;
  util::Xoshiro256 rng_;
  FitnessCache* cache_;
  std::vector<Individual> population_;
  std::deque<double> worst_window_;  ///< Worst raw fitness per generation (W deep).
  int generation_ = 0;
};

}  // namespace nscc::ga
