// Island-model parallel GA over the NSCC shared space (paper Sections 3.1,
// 4.2.1): each deme evolves on its own simulated node; every generation it
// broadcasts its best N/2 individuals to all other demes through a shared
// location, and incorporates fresh migrants by replacing its worst
// individuals.  Three implementation styles are provided:
//
//   * kSynchronous  — barrier each generation, then Global_Read with age 0
//                     (everyone consumes the previous generation's migrants);
//   * kAsynchronous — plain reads; migrants are used as and when they arrive;
//   * kPartialAsync — Global_Read with a programmer-chosen age bound.
//
// Demes run a fixed number of generations; the result carries the merged
// best-so-far trajectory over virtual time so experiment drivers can apply
// the paper's protocol (async/partial run until they converge at least as
// far as the synchronous program did).
#pragma once

#include <cstdint>

#include "dsm/adaptive_age.hpp"
#include "dsm/shared_space.hpp"
#include "ga/sequential.hpp"
#include "harness/run_config.hpp"
#include "recovery/recovery.hpp"
#include "rt/vm.hpp"

namespace nscc::ga {

/// The consistency mode, staleness bound, seed, and propagation policy live
/// in the embedded harness::RunConfig; fields here are GA-specific.
struct IslandConfig : harness::RunConfig {
  int function_id = 1;
  /// Dynamic age setting (paper Section 6 future work): when true (and mode
  /// is kPartialAsync), each deme adjusts its own age at runtime with an
  /// AdaptiveAgeController seeded from `adaptive`.
  bool adaptive_age = false;
  dsm::AdaptiveAgeController::Config adaptive;
  int ndemes = 4;
  int deme_size = 50;      ///< N per deme; total population scales with P.
  int migrants = 25;       ///< N/2 individuals broadcast per generation.
  int generations = 300;   ///< Every deme runs exactly this many.
  GaParams params;
  GaComputeModel compute;
  bool use_fitness_cache = true;
};

/// Shared-location id for deme d's migrant buffer.  Public so the harness
/// tolerance contract audits the same locations the demes actually share.
[[nodiscard]] inline dsm::LocationId migrant_loc(int deme) noexcept {
  return 100 + deme;
}

struct IslandResult {
  sim::Time completion_time = 0;  ///< All demes finished their generations.
  double best_fitness = 0.0;      ///< Global best at the end.
  GaTrajectory global_best;       ///< Merged best-so-far over virtual time.
  /// Mean population fitness across demes over virtual time (step-function
  /// merge of the per-deme averages).  The paper's "converged further than
  /// the synchronous version" criterion is evaluated on this curve.
  GaTrajectory global_average;
  double final_average = 0.0;
  bool deadlocked = false;

  // Aggregated diagnostics.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  double mean_staleness = 0.0;
  double mean_warp = 0.0;
  double bus_utilization = 0.0;
  /// Adaptive-age diagnostics (zero unless adaptive_age was on).
  double mean_final_age = 0.0;
  std::uint64_t age_adjustments = 0;
  /// Robustness diagnostics (zero on a perfect network).
  std::uint64_t frames_lost = 0;       ///< Fault-injected wire losses.
  std::uint64_t retransmissions = 0;   ///< Reliable-transport resends.
  std::uint64_t read_escalations = 0;  ///< Global_Read watchdog demands.
  /// Crash-recovery diagnostics (zero unless config.recovery was enabled).
  recovery::Stats recovery;
  std::uint64_t degraded_reads = 0;  ///< Reads served stale past a dead peer.
  /// Damaged DSM frames quarantined (integrity checking enabled only).
  std::uint64_t integrity_dropped = 0;
  /// Consistency-model diagnostics (zero under the default nonstrict
  /// model): updates parked until an acquire, parked updates published at
  /// acquires, and release stamps that arrived out of order.
  std::uint64_t updates_parked = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t ooo_updates = 0;
  /// Partition diagnostics (zero unless the fault plan scheduled
  /// partition/blackhole windows).
  std::uint64_t partition_drops = 0;        ///< Frames cut by the split.
  std::uint64_t partition_stale_served = 0; ///< Minority-side stale serves.
  std::uint64_t heal_frames = 0;            ///< Anti-entropy republishes.
  std::uint64_t diverged_locations = 0;     ///< Reader locations diverged.
  std::uint64_t reconciled_locations = 0;   ///< Diverged marks later healed.
  /// Tolerance-contract violations flagged by the staleness sanitizer
  /// (zero when the machine runs with --sanitize=off).
  std::uint64_t sanitize_violations = 0;
};

/// Run one island-GA experiment on a fresh simulated machine.  `machine`
/// supplies the network/runtime cost parameters (ntasks is overridden by
/// config.ndemes).  A background load of `loader_offered_bps` payload bits
/// per second is injected for loaded-network experiments (0 = unloaded).
IslandResult run_island_ga(const IslandConfig& config,
                           rt::MachineConfig machine,
                           double loader_offered_bps = 0.0);

}  // namespace nscc::ga
