#include "ga/functions.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nscc::ga {

namespace {

using sim::kMicrosecond;

double f1_sphere(const std::vector<double>& x, util::Xoshiro256&) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

// Table 1 prints DeJong's F2 as 100(x1^2 - x2^2)^2 + (1 - x1)^2; we follow
// the paper's printed form (min 0 at x1 = 1, x2 = +/-1).
double f2_rosenbrock(const std::vector<double>& x, util::Xoshiro256&) {
  const double a = x[0] * x[0] - x[1] * x[1];
  const double b = 1.0 - x[0];
  return 100.0 * a * a + b * b;
}

// DeJong's step function.  The +30 offset normalises the published minimum
// to 0 as listed in Table 1 (floor(-5.12..) = -6 per variable, 5 variables).
double f3_step(const std::vector<double>& x, util::Xoshiro256&) {
  double s = 30.0;
  for (double v : x) s += std::floor(v);
  return s;
}

// DeJong's quartic with Gaussian noise.
double f4_quartic_noise(const std::vector<double>& x, util::Xoshiro256& rng) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = x[i] * x[i];
    s += static_cast<double>(i + 1) * v * v;
  }
  return s + rng.normal();
}

// Shekel's foxholes in the standard (reciprocal) form with minimum
// ~0.998004 at (-32, -32), matching Table 1's listed minimum 0.99804.
double f5_foxholes(const std::vector<double>& x, util::Xoshiro256&) {
  static const auto a = [] {
    std::array<std::array<double, 25>, 2> arr{};
    const double vals[5] = {-32.0, -16.0, 0.0, 16.0, 32.0};
    for (int j = 0; j < 25; ++j) {
      arr[0][static_cast<std::size_t>(j)] = vals[j % 5];
      arr[1][static_cast<std::size_t>(j)] = vals[j / 5];
    }
    return arr;
  }();
  double sum = 0.002;
  for (int j = 0; j < 25; ++j) {
    double denom = 1.0 + j;
    for (int i = 0; i < 2; ++i) {
      const double d = x[static_cast<std::size_t>(i)] -
                       a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      const double d2 = d * d;
      denom += d2 * d2 * d2;
    }
    sum += 1.0 / denom;
  }
  return 1.0 / sum;
}

double f6_rastrigin(const std::vector<double>& x, util::Xoshiro256&) {
  constexpr double kA = 10.0;
  double s = kA * static_cast<double>(x.size());
  for (double v : x) {
    s += v * v - kA * std::cos(2.0 * std::numbers::pi * v);
  }
  return s;
}

double f7_schwefel(const std::vector<double>& x, util::Xoshiro256&) {
  double s = 0.0;
  for (double v : x) s += -v * std::sin(std::sqrt(std::fabs(v)));
  return s;
}

double f8_griewank(const std::vector<double>& x, util::Xoshiro256&) {
  double sum = 0.0;
  double prod = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * x[i] / 4000.0;
    prod *= std::cos(x[i] / std::sqrt(static_cast<double>(i + 1)));
  }
  return sum - prod + 1.0;
}

/// Per-evaluation virtual cost: decode + arithmetic on a 77 MHz-class node.
/// Base covers genome decode and call overhead; per-variable and
/// transcendental terms scale with the function body.  Calibrated so a
/// 50-individual generation costs 10-30 ms — the regime in which the
/// paper's per-generation PVM/Ethernet messaging is a first-order cost.
sim::Time cost(int nvars, double transcendental_factor) {
  const double us = 400.0 + 30.0 * nvars + 60.0 * nvars * transcendental_factor;
  return static_cast<sim::Time>(us) * kMicrosecond;
}

std::vector<TestFunction> build_testbed() {
  std::vector<TestFunction> fns;
  fns.push_back({1, "f1-sphere", 3, 10, -5.12, 5.12, 0.0, false, f1_sphere,
                 cost(3, 0.0)});
  fns.push_back({2, "f2-rosenbrock", 2, 12, -2.048, 2.048, 0.0, false,
                 f2_rosenbrock, cost(2, 0.0)});
  fns.push_back({3, "f3-step", 5, 10, -5.12, 5.12, 0.0, false, f3_step,
                 cost(5, 0.0)});
  fns.push_back({4, "f4-quartic-noise", 30, 8, -1.28, 1.28, -2.5, true,
                 f4_quartic_noise, cost(30, 0.0)});
  fns.push_back({5, "f5-foxholes", 2, 17, -65.536, 65.536, 0.99804, false,
                 f5_foxholes, cost(2, 12.0)});
  fns.push_back({6, "f6-rastrigin", 20, 10, -5.12, 5.12, 0.0, false,
                 f6_rastrigin, cost(20, 1.0)});
  fns.push_back({7, "f7-schwefel", 10, 10, -500.0, 500.0, -4189.83, false,
                 f7_schwefel, cost(10, 2.0)});
  fns.push_back({8, "f8-griewank", 10, 10, -600.0, 600.0, 0.0, false,
                 f8_griewank, cost(10, 1.0)});
  return fns;
}

}  // namespace

const std::vector<TestFunction>& dejong_testbed() {
  static const std::vector<TestFunction> testbed = build_testbed();
  return testbed;
}

const TestFunction& test_function(int id) {
  const auto& bed = dejong_testbed();
  if (id < 1 || id > static_cast<int>(bed.size())) {
    throw std::out_of_range("test_function: id must be 1..8");
  }
  return bed[static_cast<std::size_t>(id - 1)];
}

}  // namespace nscc::ga
