// Software fitness cache (the paper's sequential-GA optimisation [19]).
//
// With generation gap G = 1, elitism, crossover rate 0.6 and a very low
// mutation rate, many offspring are bit-identical to previously evaluated
// individuals; caching their fitness avoids recomputation.  The cache is
// exact: entries are verified by full genome comparison, not just hash.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bitvec.hpp"

namespace nscc::ga {

class FitnessCache {
 public:
  explicit FitnessCache(std::size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  /// Returns true and fills `fitness` on a hit.
  bool lookup(const util::BitVec& genome, double& fitness) {
    auto it = map_.find(genome.hash());
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    for (const Entry& e : it->second) {
      if (e.genome == genome) {
        fitness = e.fitness;
        ++hits_;
        return true;
      }
    }
    ++misses_;
    return false;
  }

  void insert(const util::BitVec& genome, double fitness) {
    if (entries_ >= max_entries_) return;  // Bounded memory; stop filling.
    auto& bucket = map_[genome.hash()];
    for (const Entry& e : bucket) {
      if (e.genome == genome) return;
    }
    bucket.push_back(Entry{genome, fitness});
    ++entries_;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_; }

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }

  void clear() {
    map_.clear();
    entries_ = 0;
  }

 private:
  struct Entry {
    util::BitVec genome;
    double fitness;
  };

  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t entries_ = 0;
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nscc::ga
