// Binary-coded chromosomes and their decoding/serialisation.
//
// Each variable occupies bits_per_var bits; decoding maps the unsigned
// integer linearly onto [lo, hi] as in DeJong's experiments.  Migrant
// serialisation is compact (raw genome bytes + float32 fitness) to match
// the small PVM messages of the paper's user-level implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "ga/functions.hpp"
#include "rt/packet.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace nscc::ga {

struct Individual {
  util::BitVec genome;
  double fitness = 0.0;
  bool evaluated = false;
};

/// Decode a genome into real variables for `fn`.
[[nodiscard]] inline std::vector<double> decode(const util::BitVec& genome,
                                                const TestFunction& fn) {
  std::vector<double> x(static_cast<std::size_t>(fn.nvars));
  const double denom =
      static_cast<double>((1ULL << fn.bits_per_var) - 1ULL);
  for (int i = 0; i < fn.nvars; ++i) {
    const std::uint64_t raw =
        genome.extract(static_cast<std::size_t>(i * fn.bits_per_var),
                       static_cast<std::size_t>(fn.bits_per_var));
    x[static_cast<std::size_t>(i)] =
        fn.lo + (fn.hi - fn.lo) * static_cast<double>(raw) / denom;
  }
  return x;
}

/// Serialized size of one migrant for `fn`: byte-packed genome plus the
/// fitness as a double (the PVM-era wire format of a bitstring + score).
[[nodiscard]] inline std::uint32_t migrant_bytes(const TestFunction& fn) {
  return static_cast<std::uint32_t>((fn.genome_bits() + 7) / 8 +
                                    sizeof(double));
}

/// Append an individual's wire form to `p`.
inline void pack_individual(rt::Packet& p, const Individual& ind,
                            const TestFunction& fn) {
  const int nbytes = (fn.genome_bits() + 7) / 8;
  for (int b = 0; b < nbytes; ++b) {
    p.pack_u8(static_cast<std::uint8_t>(
        ind.genome.extract(static_cast<std::size_t>(b) * 8,
                           static_cast<std::size_t>(
                               std::min(8, fn.genome_bits() - b * 8)))));
  }
  p.pack_double(ind.fitness);
}

/// Inverse of pack_individual.
[[nodiscard]] inline Individual unpack_individual(rt::Packet& p,
                                                  const TestFunction& fn) {
  Individual ind;
  ind.genome = util::BitVec(static_cast<std::size_t>(fn.genome_bits()));
  const int nbytes = (fn.genome_bits() + 7) / 8;
  for (int b = 0; b < nbytes; ++b) {
    const std::uint8_t byte = p.unpack_u8();
    const int nbits = std::min(8, fn.genome_bits() - b * 8);
    for (int k = 0; k < nbits; ++k) {
      ind.genome.set(static_cast<std::size_t>(b * 8 + k), (byte >> k) & 1);
    }
  }
  ind.fitness = p.unpack_double();
  ind.evaluated = true;
  return ind;
}

}  // namespace nscc::ga
