#include "ga/island.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "ga/chromosome.hpp"
#include "harness/policy.hpp"
#include "net/load_generator.hpp"
#include "recovery/recovery.hpp"

namespace nscc::ga {

namespace {

/// Everything a deme needs to continue from generation `gen` after a
/// crash-restart: its evolved population, the best-so-far tracker, and the
/// per-source frontier of migrants already incorporated.
class DemeSnapshot : public recovery::Checkpointable {
 public:
  DemeSnapshot(Deme& deme, double& best_so_far,
               std::map<int, dsm::Iteration>& taken, const TestFunction& fn)
      : deme_(deme), best_so_far_(best_so_far), taken_(taken), fn_(fn) {}

  rt::Packet checkpoint_state() override {
    rt::Packet p;
    p.pack_i32(deme_.generation());
    p.pack_double(best_so_far_);
    p.pack_u32(static_cast<std::uint32_t>(taken_.size()));
    for (const auto& [src, iter] : taken_) {
      p.pack_i32(src);
      p.pack_i64(iter);
    }
    const auto& pop = deme_.population();
    p.pack_u32(static_cast<std::uint32_t>(pop.size()));
    for (const Individual& ind : pop) pack_individual(p, ind, fn_);
    return p;
  }

  void restore_state(rt::Packet& p) override {
    const int gen = p.unpack_i32();
    best_so_far_ = p.unpack_double();
    taken_.clear();
    const std::uint32_t ntaken = p.unpack_u32();
    for (std::uint32_t i = 0; i < ntaken; ++i) {
      const int src = p.unpack_i32();
      taken_[src] = p.unpack_i64();
    }
    const std::uint32_t n = p.unpack_u32();
    std::vector<Individual> pop;
    pop.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      pop.push_back(unpack_individual(p, fn_));
    }
    deme_.restore(std::move(pop), gen);
  }

 private:
  Deme& deme_;
  double& best_so_far_;
  std::map<int, dsm::Iteration>& taken_;
  const TestFunction& fn_;
};

struct DemeOutcome {
  std::vector<std::pair<sim::Time, double>> best_points;
  std::vector<std::pair<sim::Time, double>> avg_points;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  dsm::Iteration final_age = 0;
  std::uint64_t age_adjustments = 0;
  dsm::DsmStats dsm;
};

}  // namespace

IslandResult run_island_ga(const IslandConfig& config,
                           rt::MachineConfig machine,
                           double loader_offered_bps) {
  const TestFunction& fn = test_function(config.function_id);
  machine.ntasks = config.ndemes;
  machine.seed = config.seed;

  rt::VirtualMachine vm(machine);

  std::unique_ptr<recovery::Coordinator> coord;
  if (config.recovery.enabled()) {
    coord = std::make_unique<recovery::Coordinator>(vm, config.recovery);
  }

  // Persistent node speed factors (load skew across the cluster).
  util::Xoshiro256 skew_rng(config.seed ^ 0x5ca1eULL);
  std::vector<double> speed(static_cast<std::size_t>(config.ndemes));
  for (double& s : speed) {
    s = 1.0 + config.compute.node_speed_spread * skew_rng.uniform01();
  }

  std::vector<DemeOutcome> outcomes(static_cast<std::size_t>(config.ndemes));

  for (int d = 0; d < config.ndemes; ++d) {
    vm.add_task("deme" + std::to_string(d), [&, d](rt::Task& task) {
      DemeOutcome& out = outcomes[static_cast<std::size_t>(d)];
      const double my_speed = speed[static_cast<std::size_t>(d)];
      util::Xoshiro256 jitter_rng = task.rng().split(0xba5e);

      // The deme honours the run's full policy (jitter, merge hooks) and
      // adds the sync reliable-updates rule plus the recovery wiring —
      // all via the shared harness mapping.
      recovery::Coordinator* rc = coord.get();
      dsm::PropagationPolicy prop = harness::make_policy(
          config, {.full = true,
                   .sync_reliable_updates = true,
                   .transport_enabled = task.vm().config().transport.enabled,
                   .recovery = rc,
                   .self = d});
      dsm::SharedSpace space(task, prop);
      std::vector<int> readers;
      for (int r = 0; r < config.ndemes; ++r) {
        if (r != d) readers.push_back(r);
      }
      space.declare_written(migrant_loc(d), readers);
      for (int r = 0; r < config.ndemes; ++r) {
        if (r != d) space.declare_read(migrant_loc(r), r);
      }

      FitnessCache cache;
      GaParams params = config.params;
      params.pop_size = config.deme_size;
      Deme deme(fn, params, task.rng().split(0xdee),
                config.use_fitness_cache ? &cache : nullptr);

      double best_so_far = std::numeric_limits<double>::infinity();
      auto charge = [&](const EvalCount& count, sim::Time extra) {
        const double jitter =
            1.0 + config.compute.per_gen_jitter * jitter_rng.uniform(-1.0, 1.0);
        const sim::Time work =
            static_cast<sim::Time>(count.evaluations) * fn.eval_cost +
            static_cast<sim::Time>(count.cache_hits) *
                config.compute.cache_hit_cost +
            static_cast<sim::Time>(params.pop_size) *
                config.compute.op_cost_per_individual +
            extra;
        task.compute(static_cast<sim::Time>(static_cast<double>(work) *
                                            my_speed * jitter));
        if (jitter_rng.bernoulli(config.compute.stall_probability)) {
          task.compute(static_cast<sim::Time>(jitter_rng.uniform(
              static_cast<double>(config.compute.stall_min),
              static_cast<double>(config.compute.stall_max))));
        }
        out.evaluations += static_cast<std::uint64_t>(count.evaluations);
        out.cache_hits += static_cast<std::uint64_t>(count.cache_hits);
      };
      auto record = [&] {
        best_so_far = std::min(best_so_far, deme.best().fitness);
        out.best_points.emplace_back(task.now(), best_so_far);
        out.avg_points.emplace_back(task.now(), deme.average_fitness());
      };
      auto publish = [&](dsm::Iteration gen) {
        rt::Packet p;
        const auto migrants = deme.best_k(config.migrants);
        p.pack_u32(static_cast<std::uint32_t>(migrants.size()));
        for (const Individual& m : migrants) pack_individual(p, m, fn);
        space.write(migrant_loc(d), gen, std::move(p));
      };

      // Freshest migrant iteration already incorporated, per source deme.
      std::map<int, dsm::Iteration> taken;

      // Crash-restart: a respawned incarnation restores the last snapshot
      // and continues from its generation; the adaptive-age controller and
      // scaling-window history restart fresh (part of the quality delta a
      // crash costs).
      DemeSnapshot snapshot(deme, best_so_far, taken, fn);
      const std::int64_t restored =
          rc != nullptr ? rc->restore(task, snapshot) : -1;
      if (restored < 0) {
        charge(deme.initialize(), 0);
        record();
        publish(0);
        if (rc != nullptr) rc->maybe_checkpoint(task, 0, snapshot);
      } else {
        // Re-announce the restored state: peers with newer copies drop the
        // update as stale; our own local copy must exist to serve demands.
        record();
        publish(restored);
      }

      // Dynamic age setting (paper Section 6): per-deme controller fed one
      // observation per generation.
      dsm::AdaptiveAgeController controller(config.adaptive);
      const bool adaptive =
          config.adaptive_age && config.mode == dsm::Mode::kPartialAsync;
      sim::Time last_gen_start = task.now();
      sim::Time last_block_time = 0;

      // Generation 0 is covered by either the initialize+publish above or
      // the restored checkpoint, so the loop resumes after it.
      for (int gen = static_cast<int>(restored < 0 ? 0 : restored) + 1;
           gen <= config.generations; ++gen) {
        if (config.mode == dsm::Mode::kSynchronous) task.barrier();
        const dsm::Iteration age = adaptive ? controller.age() : config.age;
        double gen_max_staleness = 0.0;

        std::vector<Individual> pool;
        for (int r = 0; r < config.ndemes; ++r) {
          if (r == d) continue;
          const dsm::SharedSpace::Value* v = nullptr;
          switch (config.mode) {
            case dsm::Mode::kSynchronous:
              v = &space.global_read(migrant_loc(r), gen - 1, 0);
              break;
            case dsm::Mode::kPartialAsync:
              v = &space.global_read(migrant_loc(r), gen - 1, age);
              gen_max_staleness =
                  std::max(gen_max_staleness,
                           static_cast<double>(gen - 1 - v->iteration));
              break;
            case dsm::Mode::kAsynchronous:
              v = &space.read(migrant_loc(r));
              break;
          }
          if (!v->valid || v->iteration <= taken[r]) continue;
          taken[r] = v->iteration;
          rt::Packet data = v->data;  // Copy: unpacking consumes the buffer.
          const std::uint32_t count = data.unpack_u32();
          for (std::uint32_t i = 0; i < count; ++i) {
            pool.push_back(unpack_individual(data, fn));
          }
        }
        if (!pool.empty()) {
          deme.incorporate(pool, config.migrants);
          charge(EvalCount{},
                 static_cast<sim::Time>(pool.size()) *
                     config.compute.migration_cost_per_individual);
        }

        charge(deme.step(), 0);
        record();
        publish(gen);
        // A generation boundary is restart-safe: the publish above already
        // carries everything peers may demand from this deme.
        if (rc != nullptr) rc->maybe_checkpoint(task, gen, snapshot);

        if (adaptive) {
          const sim::Time now = task.now();
          const sim::Time blocked =
              space.stats().global_read_block_time - last_block_time;
          controller.observe(now - last_gen_start, blocked, gen_max_staleness);
          last_gen_start = now;
          last_block_time = space.stats().global_read_block_time;
        }
      }

      out.final_age = adaptive ? controller.age() : config.age;
      out.age_adjustments = controller.increases() + controller.decreases();
      out.dsm = space.stats();
    });
  }

  net::LoadGenerator loader(vm.engine(), vm.bus(),
                            net::LoadGeneratorConfig{
                                .offered_bps = loader_offered_bps,
                                .frame_payload_bytes = 1024,
                                .poisson = true,
                                .seed = config.seed ^ 0x70adULL,
                            });

  // Generous horizon so a logic error cannot spin the loader forever.
  const sim::Time horizon = 24LL * 3600 * sim::kSecond;
  const sim::Time completion = vm.run(horizon);
  loader.stop();

  IslandResult result;
  result.completion_time = completion;
  result.deadlocked = vm.deadlocked() || completion >= horizon;
  result.bus_utilization = vm.network_utilization();
  if (vm.warp_meter().samples() > 0) {
    result.mean_warp = vm.warp_meter().overall().mean();
  }

  // Merge per-deme best-so-far points into a global prefix-min trajectory.
  std::vector<std::pair<sim::Time, double>> merged;
  for (int d = 0; d < config.ndemes; ++d) {
    const DemeOutcome& out = outcomes[static_cast<std::size_t>(d)];
    merged.insert(merged.end(), out.best_points.begin(), out.best_points.end());
    result.evaluations += out.evaluations;
    result.cache_hits += out.cache_hits;
    result.global_read_blocks += out.dsm.global_read_blocks;
    result.global_read_block_time += out.dsm.global_read_block_time;
    result.messages_sent += vm.task(d).stats().messages_sent;
    result.bytes_sent += vm.task(d).stats().bytes_sent;
    result.mean_final_age += static_cast<double>(out.final_age) /
                             static_cast<double>(config.ndemes);
    result.age_adjustments += out.age_adjustments;
  }
  // The machine-wide staleness histogram already merges every deme's
  // per-task histogram at the source (single registry), so its mean IS the
  // run mean — no second accounting to reconcile.
  result.mean_staleness =
      vm.obs().registry().histogram("dsm.staleness").mean();
  for (int d = 0; d < config.ndemes; ++d) {
    result.read_escalations +=
        outcomes[static_cast<std::size_t>(d)].dsm.read_escalations;
    result.degraded_reads +=
        outcomes[static_cast<std::size_t>(d)].dsm.degraded_reads;
    result.integrity_dropped +=
        outcomes[static_cast<std::size_t>(d)].dsm.integrity_dropped;
    result.partition_stale_served +=
        outcomes[static_cast<std::size_t>(d)].dsm.partition_stale_served;
    result.heal_frames +=
        outcomes[static_cast<std::size_t>(d)].dsm.heal_frames;
    result.diverged_locations +=
        outcomes[static_cast<std::size_t>(d)].dsm.diverged_marks;
    result.reconciled_locations +=
        outcomes[static_cast<std::size_t>(d)].dsm.reconciled_marks;
    result.updates_parked +=
        outcomes[static_cast<std::size_t>(d)].dsm.updates_parked;
    result.updates_flushed +=
        outcomes[static_cast<std::size_t>(d)].dsm.updates_flushed;
    result.ooo_updates +=
        outcomes[static_cast<std::size_t>(d)].dsm.ooo_updates;
  }
  if (vm.fault_injector() != nullptr) {
    result.partition_drops = vm.fault_injector()->stats().partition_drops +
                             vm.fault_injector()->stats().blackhole_drops;
  }
  if (vm.sanitizer() != nullptr) {
    result.sanitize_violations = vm.sanitizer()->stats().total_violations();
  }
  if (coord != nullptr) result.recovery = coord->stats();
  result.retransmissions = vm.transport_stats().retransmissions;
  result.frames_lost =
      vm.bus().stats().frames_lost +
      (machine.network == rt::Network::kSp2Switch
           ? vm.sp2_switch().stats().frames_lost
           : 0);
  std::sort(merged.begin(), merged.end());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [t, f] : merged) {
    if (f < best) {
      best = f;
      result.global_best.points.emplace_back(t, best);
    }
  }
  result.best_fitness = best;

  // Global average fitness: step-function merge of the per-deme averages.
  struct Sample {
    sim::Time t;
    int deme;
    double avg;
  };
  std::vector<Sample> samples;
  for (int d = 0; d < config.ndemes; ++d) {
    for (const auto& [t, a] : outcomes[static_cast<std::size_t>(d)].avg_points) {
      samples.push_back({t, d, a});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.t < b.t; });
  std::vector<double> last(static_cast<std::size_t>(config.ndemes));
  std::vector<bool> seen(static_cast<std::size_t>(config.ndemes), false);
  int seen_count = 0;
  for (const Sample& s : samples) {
    if (!seen[static_cast<std::size_t>(s.deme)]) {
      seen[static_cast<std::size_t>(s.deme)] = true;
      ++seen_count;
    }
    last[static_cast<std::size_t>(s.deme)] = s.avg;
    if (seen_count == config.ndemes) {
      double sum = 0.0;
      for (double v : last) sum += v;
      result.global_average.points.emplace_back(
          s.t, sum / static_cast<double>(config.ndemes));
    }
  }
  result.final_average = result.global_average.points.empty()
                             ? std::numeric_limits<double>::infinity()
                             : result.global_average.points.back().second;
  return result;
}

}  // namespace nscc::ga
