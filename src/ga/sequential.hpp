// Optimised sequential GA baseline (the paper's serial programs, including
// the software fitness-caching technique [19]) with virtual-time accounting
// so its completion time is comparable to the simulated parallel runs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ga/deme.hpp"
#include "sim/time.hpp"

namespace nscc::ga {

/// Virtual CPU cost model shared by the serial and island GAs, calibrated
/// to a 77 MHz-class node (see DESIGN.md).
struct GaComputeModel {
  /// Cache probe + hit bookkeeping.
  sim::Time cache_hit_cost = 50 * sim::kMicrosecond;
  /// Selection / crossover / mutation bookkeeping per individual per
  /// generation.
  sim::Time op_cost_per_individual = 150 * sim::kMicrosecond;
  /// Cost of splicing one migrant into the population.
  sim::Time migration_cost_per_individual = 30 * sim::kMicrosecond;
  /// Persistent multiplicative speed difference between nodes (load skew):
  /// node factor ~ 1 + spread * U(0,1).  The serial baseline uses the mean
  /// factor (same class of node, average OS load).
  double node_speed_spread = 0.15;
  /// Per-generation multiplicative jitter: 1 + U(-j, +j) (OS noise).
  double per_gen_jitter = 0.10;
  /// Occasional long stalls (daemons/paging), paid by serial and parallel
  /// nodes alike; the island variants differ in how they tolerate them.
  double stall_probability = 0.01;
  sim::Time stall_min = 20 * sim::kMillisecond;
  sim::Time stall_max = 80 * sim::kMillisecond;
};

/// Best-so-far fitness over virtual time.
struct GaTrajectory {
  std::vector<std::pair<sim::Time, double>> points;

  /// First virtual time at which best-so-far <= target; -1 when never.
  [[nodiscard]] sim::Time time_to_reach(double target) const;
  [[nodiscard]] double final_best() const;
};

struct SequentialGaConfig {
  int function_id = 1;
  int pop_size = 50;
  int generations = 1000;
  std::uint64_t seed = 1;
  GaParams params;
  GaComputeModel compute;
  bool use_fitness_cache = true;
};

struct SequentialGaResult {
  sim::Time completion_time = 0;
  double best_fitness = 0.0;
  GaTrajectory trajectory;        ///< Best-so-far over virtual time.
  GaTrajectory average;           ///< Population average over virtual time.
  double final_average = 0.0;
  std::uint64_t evaluations = 0;
  std::uint64_t cache_hits = 0;
  [[nodiscard]] double cache_hit_rate() const noexcept {
    const auto total = evaluations + cache_hits;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

SequentialGaResult run_sequential_ga(const SequentialGaConfig& config);

/// Tolerance used to decide "global optimum found" for a test function
/// (accounts for the binary-grid resolution).
[[nodiscard]] double optimum_tolerance(const TestFunction& fn);

}  // namespace nscc::ga
