// The eight-function GA test bed (paper Table 1): DeJong's five classic
// functions [5] plus Rastrigin, Schwefel, and Griewank from Muehlenbein et
// al. [13].  All are minimisation problems over box-constrained reals,
// binary-encoded per variable as in DeJong's work.
//
// Each function also carries a virtual per-evaluation compute cost,
// calibrated to a 77 MHz-class node so that the simulated
// communication-to-computation ratio on a 10 Mbps Ethernet matches the
// paper's regime (see DESIGN.md "Fidelity notes").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nscc::ga {

struct TestFunction {
  int id = 0;                ///< 1-based index as in Table 1.
  std::string name;
  int nvars = 0;
  int bits_per_var = 0;
  double lo = 0.0;           ///< Lower variable limit.
  double hi = 0.0;           ///< Upper variable limit.
  double global_min = 0.0;   ///< Published min f(x) (approximate for noisy f4).
  bool noisy = false;        ///< f4 adds Gauss(0,1) per evaluation.
  /// Evaluate at x; `rng` is used only by noisy functions.
  std::function<double(const std::vector<double>&, util::Xoshiro256&)> eval;
  /// Virtual CPU cost charged per evaluation in the simulator.
  sim::Time eval_cost = 0;

  [[nodiscard]] int genome_bits() const noexcept { return nvars * bits_per_var; }
};

/// The eight functions of Table 1, in order (index 0 is function 1).
const std::vector<TestFunction>& dejong_testbed();

/// Lookup by 1-based id; throws std::out_of_range for ids outside 1..8.
const TestFunction& test_function(int id);

}  // namespace nscc::ga
