#include "ga/sequential.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nscc::ga {

sim::Time GaTrajectory::time_to_reach(double target) const {
  for (const auto& [t, best] : points) {
    if (best <= target) return t;
  }
  return -1;
}

double GaTrajectory::final_best() const {
  return points.empty() ? std::numeric_limits<double>::infinity()
                        : points.back().second;
}

double optimum_tolerance(const TestFunction& fn) {
  return 1e-3 + 1e-3 * std::fabs(fn.global_min);
}

SequentialGaResult run_sequential_ga(const SequentialGaConfig& config) {
  const TestFunction& fn = test_function(config.function_id);
  util::Xoshiro256 rng(config.seed);
  util::Xoshiro256 jitter_rng = rng.split(0x0b1);
  FitnessCache cache;

  GaParams params = config.params;
  params.pop_size = config.pop_size;
  Deme deme(fn, params, rng.split(1),
            config.use_fitness_cache ? &cache : nullptr);

  SequentialGaResult result;
  sim::Time now = 0;
  double best_so_far = std::numeric_limits<double>::infinity();

  // Serial runs on the same node class: mean speed factor, same stalls.
  const double node_speed = 1.0 + config.compute.node_speed_spread / 2.0;
  auto charge = [&](const EvalCount& count) {
    const double jitter =
        1.0 + config.compute.per_gen_jitter * jitter_rng.uniform(-1.0, 1.0);
    const sim::Time work =
        static_cast<sim::Time>(count.evaluations) * fn.eval_cost +
        static_cast<sim::Time>(count.cache_hits) *
            config.compute.cache_hit_cost +
        static_cast<sim::Time>(params.pop_size) *
            config.compute.op_cost_per_individual;
    now += static_cast<sim::Time>(static_cast<double>(work) * jitter *
                                  node_speed);
    if (jitter_rng.bernoulli(config.compute.stall_probability)) {
      now += static_cast<sim::Time>(
          jitter_rng.uniform(static_cast<double>(config.compute.stall_min),
                             static_cast<double>(config.compute.stall_max)));
    }
    result.evaluations += static_cast<std::uint64_t>(count.evaluations);
    result.cache_hits += static_cast<std::uint64_t>(count.cache_hits);
  };

  charge(deme.initialize());
  best_so_far = deme.best().fitness;
  result.trajectory.points.emplace_back(now, best_so_far);
  result.average.points.emplace_back(now, deme.average_fitness());

  for (int gen = 1; gen <= config.generations; ++gen) {
    charge(deme.step());
    best_so_far = std::min(best_so_far, deme.best().fitness);
    result.trajectory.points.emplace_back(now, best_so_far);
    result.average.points.emplace_back(now, deme.average_fitness());
  }

  result.completion_time = now;
  result.best_fitness = best_so_far;
  result.final_average = result.average.points.back().second;
  return result;
}

}  // namespace nscc::ga
