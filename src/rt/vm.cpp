#include "rt/vm.hpp"

#include <cassert>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <utility>

namespace nscc::rt {

// ---- Task -------------------------------------------------------------------

int Task::vm_size() const noexcept { return vm_.size(); }

const std::string& Task::name() const noexcept { return process_->name(); }

sim::Time Task::now() const noexcept { return vm_.engine_.now(); }

void Task::compute(sim::Time dt) {
  assert(vm_.engine_.current() == process_ &&
         "compute() must run inside the task's process");
  stats_.compute_time += dt;
  process_->delay(dt);
}

void Task::send(int dst, int tag, Packet payload) {
  send_observed(dst, tag, std::move(payload), {});
}

void Task::send_observed(int dst, int tag, Packet payload,
                         std::function<void(bool)> on_settled,
                         Reliability reliability, std::uint64_t flow) {
  compute(vm_.config_.send_sw_overhead);
  // Transport backpressure: block while the socket-buffer window is full
  // (a flooding sender is throttled to the medium's drain rate).
  const std::uint64_t window = vm_.config_.sender_window_bytes;
  const std::uint64_t bytes = payload.byte_size();
  if (window != 0 && in_flight_bytes_ > 0 &&
      in_flight_bytes_ + bytes > window) {
    ++stats_.send_backpressure_events;
    const sim::Time blocked_from = now();
    while (in_flight_bytes_ > 0 && in_flight_bytes_ + bytes > window) {
      waiting_for_window_ = true;
      process_->suspend();
    }
    stats_.send_backpressure_time += now() - blocked_from;
    vm_.obs_.tracer().complete(id_, "send.window_wait", blocked_from,
                               now() - blocked_from, "bytes",
                               static_cast<std::int64_t>(bytes));
  }
  if (!vm_.post(id_, dst, tag, std::move(payload), std::move(on_settled),
                reliability, flow)) {
    ++stats_.messages_dropped;
  }
}

void Task::broadcast(int tag, const Packet& payload) {
  for (int dst = 0; dst < vm_.size(); ++dst) {
    if (dst != id_) send(dst, tag, payload);
  }
}

std::optional<std::size_t> Task::find_match(int tag) const noexcept {
  for (std::size_t i = 0; i < mailbox_.size(); ++i) {
    const int t = mailbox_[i].tag;
    const bool match = (tag == kAnyTag) ? (t < kReservedTagBase) : (t == tag);
    if (match) return i;
  }
  return std::nullopt;
}

Message Task::pop_at(std::size_t index) {
  Message msg = std::move(mailbox_[index]);
  mailbox_.erase(mailbox_.begin() + static_cast<std::ptrdiff_t>(index));
  return msg;
}

Message Task::recv(int tag) {
  assert(vm_.engine_.current() == process_ &&
         "recv() must run inside the task's process");
  for (;;) {
    if (auto idx = find_match(tag)) {
      Message msg = pop_at(*idx);
      ++stats_.messages_received;
      compute(vm_.config_.recv_sw_overhead);
      return msg;
    }
    waiting_ = true;
    waiting_tag_ = tag;
    const sim::Time blocked_from = now();
    process_->suspend();
    stats_.blocked_time += now() - blocked_from;
    vm_.obs_.tracer().complete(id_, "recv.wait", blocked_from,
                               now() - blocked_from, "tag", tag);
  }
}

std::optional<Message> Task::recv_timeout(int tag, sim::Time timeout) {
  assert(vm_.engine_.current() == process_ &&
         "recv_timeout() must run inside the task's process");
  if (timeout <= 0) return try_recv(tag);
  timed_out_ = false;
  const auto watchdog =
      vm_.engine_.set_watchdog(now() + timeout, [this] {
        if (waiting_) {
          waiting_ = false;
          timed_out_ = true;
          process_->resume();
        }
      });
  for (;;) {
    if (auto idx = find_match(tag)) {
      vm_.engine_.cancel_watchdog(watchdog);
      Message msg = pop_at(*idx);
      ++stats_.messages_received;
      compute(vm_.config_.recv_sw_overhead);
      return msg;
    }
    if (timed_out_) return std::nullopt;
    waiting_ = true;
    waiting_tag_ = tag;
    const sim::Time blocked_from = now();
    process_->suspend();
    stats_.blocked_time += now() - blocked_from;
    vm_.obs_.tracer().complete(id_, "recv.wait", blocked_from,
                               now() - blocked_from, "tag", tag);
  }
}

std::optional<Message> Task::try_recv(int tag) {
  assert(vm_.engine_.current() == process_);
  if (auto idx = find_match(tag)) {
    Message msg = pop_at(*idx);
    ++stats_.messages_received;
    compute(vm_.config_.recv_sw_overhead);
    return msg;
  }
  return std::nullopt;
}

bool Task::probe(int tag) const noexcept { return find_match(tag).has_value(); }

void Task::set_tag_handler(int tag, std::function<void(Message)> handler) {
  if (handler) {
    tag_handlers_[tag] = std::move(handler);
  } else {
    tag_handlers_.erase(tag);
  }
}

void Task::deliver(Message msg) {
  if (msg.src != id_) {
    vm_.warp_.record(id_, msg.src, msg.sent_at, msg.delivered_at);
  }
  vm_.obs_.tracer().instant(id_, "msg.deliver", msg.delivered_at, "src",
                            msg.src, "bytes", msg.payload.byte_size());
  if (auto h = tag_handlers_.find(msg.tag); h != tag_handlers_.end()) {
    // Engine-context consumer (DSM request daemon): the message never
    // touches the mailbox, so it is served even while the task body is
    // blocked in a barrier or Global_Read.
    ++stats_.messages_received;
    h->second(std::move(msg));
    return;
  }
  mailbox_.push_back(std::move(msg));
  if (waiting_) {
    const Message& arrived = mailbox_.back();
    const bool match = (waiting_tag_ == kAnyTag)
                           ? (arrived.tag < kReservedTagBase)
                           : (arrived.tag == waiting_tag_);
    if (match) {
      waiting_ = false;
      process_->resume();
    }
  }
}

void Task::barrier() {
  Packet empty;
  if (id_ == 0) {
    for (int i = 1; i < vm_.size(); ++i) {
      (void)recv(kBarrierArriveTag);
    }
    for (int i = 1; i < vm_.size(); ++i) {
      send(i, kBarrierReleaseTag, empty);
    }
  } else {
    send(0, kBarrierArriveTag, empty);
    (void)recv(kBarrierReleaseTag);
  }
}

// ---- VirtualMachine ----------------------------------------------------------

bool VirtualMachine::reliable_for(int tag, Reliability reliability) const {
  if (!config_.transport.enabled || tag == kAckTag) return false;
  switch (reliability) {
    case Reliability::kReliable:
      return true;
    case Reliability::kBestEffort:
      return false;
    case Reliability::kAuto:
      break;
  }
  // Application traffic and runtime control traffic ride the reliable
  // channel; DSM updates are the race-tolerant payload and stay best-effort
  // unless the caller opts in (synchronous mode does).  Heartbeats are
  // control traffic: a lost heartbeat must not fake a node death.
  if (tag < kReservedTagBase) return true;
  return tag == kBarrierArriveTag || tag == kBarrierReleaseTag ||
         tag == kDsmRequestTag || tag == kHeartbeatTag;
}

bool VirtualMachine::post(int src, int dst, int tag, Packet payload,
                          std::function<void(bool)> on_settled,
                          Reliability reliability, std::uint64_t flow) {
  assert(src >= 0 && src < size());
  assert(dst >= 0 && dst < size());

  Task* sender = tasks_.at(src).get();
  const bool is_ack = (tag == kAckTag);

  auto st = std::make_shared<TxState>();
  st->msg.src = src;
  st->msg.tag = tag;
  st->msg.payload = std::move(payload);
  st->msg.epoch = sender->epoch_;
  st->msg.flow = flow;
  st->msg.sent_at = engine_.now();
  st->dst = dst;
  // ACKs have a fixed modelled wire size and are exempt from the sender
  // window and per-task traffic stats (hardware/daemon-level frames).
  st->payload_bytes =
      is_ack ? config_.transport.ack_bytes : st->msg.payload.byte_size();
  // Stamp the payload checksum only when the plan can actually damage
  // frames: corruption-free runs never pay for the CRC pass.
  if (may_corrupt_) st->crc = st->msg.payload.crc32();
  st->on_settled = std::move(on_settled);

  if (is_ack) {
    st->window_released = true;
  } else {
    ++sender->stats_.messages_sent;
    sender->stats_.bytes_sent += st->payload_bytes;
    sender->in_flight_bytes_ += st->payload_bytes;
    obs_.tracer().instant(src, "msg.send", engine_.now(), "dst", dst, "bytes",
                          st->payload_bytes);
  }

  if (dst == src) {
    // Local delivery: no wire time (and no faults or transport), still
    // ordered via an event.
    engine_.schedule(engine_.now(), obs::EventKind::kTransport,
                     [this, st, sender] {
      st->msg.delivered_at = engine_.now();
      if (!st->window_released) {
        st->window_released = true;
        sender->in_flight_bytes_ -= st->payload_bytes;
        if (sender->waiting_for_window_) {
          sender->waiting_for_window_ = false;
          sender->process_->resume();
        }
      }
      sender->deliver(std::move(st->msg));
      settle(st, true);
    });
    return true;
  }

  st->reliable = reliable_for(tag, reliability);
  if (st->reliable) {
    st->msg.seq = ++tx_seq_[{src, dst}];
    st->rto = config_.transport.ack_timeout;
    pending_tx_[{src, dst, st->msg.seq}] = st;
    arm_retx_timer(st);
  }

  transmit_frame(st);
  // Only a best-effort tail drop settles synchronously (reliable frames are
  // retried by the timer and always count as accepted).
  return st->reliable || !st->settled;
}

void VirtualMachine::transmit_frame(const std::shared_ptr<TxState>& st) {
  auto outcome = [this, st](sim::Time at, bool delivered,
                            std::uint64_t corrupt_seed) {
    on_wire_outcome(st, at, delivered, corrupt_seed);
  };
  if (switch_) {
    switch_->transmit_observed(st->msg.src, st->dst, st->payload_bytes,
                               std::move(outcome));
    return;
  }
  if (!bus_.transmit(st->msg.src, st->dst, st->payload_bytes,
                     std::move(outcome))) {
    // Tail drop: nothing went on the wire, so the outcome callback will
    // never run.  Release the window now; a reliable frame stays pending
    // for the retransmit timer, a best-effort frame settles as lost.
    on_wire_outcome(st, engine_.now(), false, 0);
  }
}

void VirtualMachine::on_wire_outcome(const std::shared_ptr<TxState>& st,
                                     sim::Time at, bool delivered,
                                     std::uint64_t corrupt_seed) {
  if (!st->window_released) {
    st->window_released = true;
    Task* sender = tasks_.at(st->msg.src).get();
    sender->in_flight_bytes_ -= st->payload_bytes;
    if (sender->waiting_for_window_) {
      sender->waiting_for_window_ = false;
      sender->process_->resume();
    }
  }
  if (delivered) {
    deliver_frame(st, at, corrupt_seed);
  } else if (!st->reliable) {
    // A lost best-effort frame settles as undelivered right away; a lost
    // reliable frame is recovered by the retransmit timer.
    settle(st, false);
  }
}

void VirtualMachine::deliver_frame(const std::shared_ptr<TxState>& st,
                                   sim::Time at,
                                   std::uint64_t corrupt_seed) {
  Task* receiver = tasks_.at(st->dst).get();

  // Fault-injected payload damage lands on a copy — TxState keeps the
  // pristine payload so a retransmission resends intact bytes.
  std::optional<Packet> damaged;
  if (corrupt_seed != 0) {
    damaged = st->msg.payload;
    const auto effect =
        fault::corruption_effect(corrupt_seed, damaged->byte_size());
    for (const std::size_t bit : effect.bit_flips) damaged->flip_bit(bit);
    if (effect.truncate_to != static_cast<std::size_t>(-1)) {
      damaged->truncate_to(effect.truncate_to);
    }
    if (config_.transport.crc_frames && damaged->crc32() != st->crc) {
      // The receiver's NIC catches the damage: discard the frame exactly
      // as if the wire had lost it.  A best-effort frame settles as
      // undelivered; a reliable one is recovered by the retransmit timer.
      ++transport_stats_.crc_drops;
      obs_.tracer().instant(st->dst, "rt.crc_drop", at, "src", st->msg.src,
                            "tag", st->msg.tag);
      if (!st->reliable) settle(st, false);
      return;
    }
    // CRC framing off (or an undetected collision): the damaged payload
    // reaches the stack — the DSM integrity layer / sanitizer's business.
  }

  if (st->msg.tag == kAckTag) {
    // Transport control frame: settle the acknowledged data frame and stop.
    Packet p = damaged ? *damaged : st->msg.payload;
    p.rewind();
    if (p.remaining() < sizeof(std::uint64_t)) {
      // A corrupted ACK cut below its sequence number carries nothing
      // usable; the data frame's retransmit timer re-elicits one.
      ++transport_stats_.malformed_frames;
      settle(st, true);
      return;
    }
    const std::uint64_t seq = p.unpack_u64();
    // The ACK's destination is the original data sender; its source is the
    // node that received the data.
    if (auto it = pending_tx_.find({st->dst, st->msg.src, seq});
        it != pending_tx_.end()) {
      settle(it->second, true);
    }
    settle(st, true);
    return;
  }

  if (st->msg.seq != 0) {
    send_ack(st->dst, st->msg.src, st->msg.seq);
    if (!receiver->rx_seq_[static_cast<std::size_t>(st->msg.src)].fresh(
            st->msg.seq)) {
      // Replay (retransmit racing the original, or a fault duplicate):
      // drop after re-ACKing so the sender still learns of delivery.
      ++transport_stats_.dup_frames_dropped;
      return;
    }
  }

  Message m = st->msg;  // Copy: fault duplicates may deliver a second time.
  if (damaged) m.payload = std::move(*damaged);
  m.delivered_at = at;
  if (m.flow != 0) {
    // Transit hop of a traced DSM update: the arrow touches the receiver's
    // track at arrival time, between the producer's 's' and the consuming
    // read's 'f'.
    obs_.tracer().flow_step(st->dst, "dsm.flow", at, m.flow, "src",
                            st->msg.src, "attempt", st->attempts);
  }
  receiver->deliver(std::move(m));
  if (!st->reliable) settle(st, true);
  // Reliable frames settle when their ACK returns (or retransmission is
  // exhausted), so on_settled reports end-to-end fate, not wire fate.
}

void VirtualMachine::settle(const std::shared_ptr<TxState>& st,
                            bool delivered) {
  if (st->settled) return;
  st->settled = true;
  if (st->retx_timer != 0) {
    engine_.cancel_watchdog(st->retx_timer);
    st->retx_timer = 0;
  }
  if (st->msg.seq != 0) {
    pending_tx_.erase({st->msg.src, st->dst, st->msg.seq});
  }
  if (st->on_settled) {
    auto cb = std::move(st->on_settled);
    st->on_settled = nullptr;
    cb(delivered);
  }
}

void VirtualMachine::arm_retx_timer(const std::shared_ptr<TxState>& st) {
  st->retx_timer =
      engine_.set_watchdog(engine_.now() + st->rto, [this, st] {
        st->retx_timer = 0;
        if (st->settled) return;
        if (st->attempts >= config_.transport.max_attempts) {
          ++transport_stats_.retx_abandoned;
          obs_.registry().counter("rt.retx.abandoned").inc();
          obs_.tracer().instant(st->msg.src, "rt.retx_abandon", engine_.now(),
                                "dst", st->dst, "seq",
                                static_cast<std::int64_t>(st->msg.seq));
          if (link_failure_hook_) link_failure_hook_(st->msg.src, st->dst);
          settle(st, false);
          return;
        }
        ++st->attempts;
        ++transport_stats_.retransmissions;
        obs_.tracer().instant(st->msg.src, "rt.retx", engine_.now(), "dst",
                              st->dst, "seq",
                              static_cast<std::int64_t>(st->msg.seq));
        if (st->msg.flow != 0) {
          // Escalation hop: the flow arrow dips back to the sender's track
          // at each retransmission, so a late read's latency visibly
          // decomposes into retry rounds.
          obs_.tracer().flow_step(st->msg.src, "dsm.flow.retx", engine_.now(),
                                  st->msg.flow, "attempt", st->attempts);
        }
        st->rto = static_cast<sim::Time>(static_cast<double>(st->rto) *
                                         config_.transport.backoff);
        transmit_frame(st);
        arm_retx_timer(st);
      });
}

void VirtualMachine::send_ack(int from, int to, std::uint64_t seq) {
  ++transport_stats_.acks_sent;
  Packet p;
  p.pack_u64(seq);
  post(from, to, kAckTag, std::move(p), {}, Reliability::kBestEffort);
}

double VirtualMachine::network_utilization() const noexcept {
  return switch_ ? switch_->utilization() : bus_.utilization();
}

void VirtualMachine::kill_task(int id) {
  Task* t = tasks_.at(static_cast<std::size_t>(id)).get();
  if (t->process_->finished()) return;
  engine_.kill(*t->process_);
  // Volatile state dies with the fiber: queued messages and wait flags are
  // gone.  NIC-level state survives the crash on purpose — in-flight frames
  // still settle against in_flight_bytes_ (clearing it would underflow), and
  // sequence trackers keep peers' dedup consistent across the restart.
  // Engine-context tag handlers registered by external observers (the
  // recovery coordinator's heartbeat sink) stay installed; the DSM
  // unregisters its own handler as its instance unwinds.
  t->mailbox_.clear();
  t->waiting_ = false;
  t->waiting_tag_ = kAnyTag;
  t->timed_out_ = false;
  t->waiting_for_window_ = false;
  obs_.tracer().instant(id, "task.crash", engine_.now(), "epoch",
                        static_cast<std::int64_t>(t->epoch_));
}

void VirtualMachine::respawn_task(int id) {
  Task* t = tasks_.at(static_cast<std::size_t>(id)).get();
  assert(t->process_->finished() && "respawn of a live task");
  ++t->epoch_;
  auto body = bodies_.at(static_cast<std::size_t>(id)).second;
  Task* task = t;
  t->process_ = &engine_.respawn(
      *t->process_, [task, body](sim::Process&) { body(*task); },
      engine_.now());
  obs_.tracer().instant(id, "task.respawn", engine_.now(), "epoch",
                        static_cast<std::int64_t>(t->epoch_));
}

bool VirtualMachine::task_alive(int id) const {
  return !tasks_.at(static_cast<std::size_t>(id))->process_->finished();
}

VirtualMachine::VirtualMachine(MachineConfig config)
    : config_(config), obs_(config.obs), bus_(engine_, config.bus) {
  if (config_.ntasks < 1) {
    throw std::invalid_argument("VirtualMachine needs at least one task");
  }
  if (config_.network == Network::kSp2Switch) {
    switch_ = std::make_unique<net::SwitchFabric>(engine_, config_.ntasks,
                                                  config_.sp2_switch);
  }
  if (!config_.fault.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.fault);
    bus_.set_fault_injector(injector_.get());
    if (switch_) switch_->set_fault_injector(injector_.get());
    may_corrupt_ = config_.fault.link.corrupt_prob > 0.0 ||
                   !config_.fault.corrupt_windows.empty();
    for (const auto& entry : config_.fault.per_link) {
      may_corrupt_ = may_corrupt_ || entry.second.corrupt_prob > 0.0;
    }
  }
  if (config_.sanitize.enabled()) {
    sanitizer_ = std::make_unique<sanitize::Sanitizer>(config_.sanitize, obs_);
  }
  if (obs_.active()) {
    // Route every frame death (tail drop or injected fault) into a named
    // registry counter so lossy runs can be audited from the metrics dump.
    auto drop_hook = [this](int src, int dst, std::uint32_t bytes,
                            const char* reason) {
      (void)src;
      (void)dst;
      (void)bytes;
      obs_.registry().counter(std::string("net.drops.") + reason).inc();
    };
    bus_.set_drop_hook(drop_hook);
    if (switch_) switch_->set_drop_hook(drop_hook);
  }
  if (config_.obs.profile) {
    // Self-profiling: wall-clock per dispatched event, attributed by kind.
    // Never touches virtual time, so profiled runs stay byte-identical.
    engine_.set_profiler(&obs_.profiler());
  }
  if (obs_.active()) {
    engine_.set_tracer(&obs_.tracer());
    bus_.set_tracer(&obs_.tracer());
    if (switch_) switch_->set_tracer(&obs_.tracer());
    obs_.tracer().set_track_name(obs::kEngineTrack, "engine");
    obs_.tracer().set_track_name(obs::kBusTrack, "bus");

    // Virtual-time series probes (sampled every config.obs.sample_interval).
    obs::Registry& reg = obs_.registry();
    obs::Sampler& sampler = obs_.sampler();
    sampler.add_probe("staleness_mean", [&reg] {
      return reg.histogram("dsm.staleness").mean();
    });
    sampler.add_probe("blocked_readers", [&reg] {
      return reg.gauge("dsm.blocked_readers").value();
    });
    sampler.add_probe("inflight_updates", [&reg] {
      return reg.gauge("dsm.updates_inflight").value();
    });
    sampler.add_probe("warp_mean", [this] {
      return warp_.samples() > 0 ? warp_.overall().mean() : 0.0;
    });
    sampler.add_probe("network_utilization",
                      [this] { return network_utilization(); });
    sampler.add_probe("events_executed", [this] {
      return static_cast<double>(engine_.events_executed());
    });
    engine_.set_sampler(&sampler, config_.obs.sample_interval);
  }
}

void VirtualMachine::flush_stats() {
  obs::Registry& reg = obs_.registry();
  for (const auto& t : tasks_) {
    const TaskStats& s = t->stats_;
    const int pid = t->id();
    reg.counter("rt.messages_sent", pid).inc(s.messages_sent);
    reg.counter("rt.bytes_sent", pid).inc(s.bytes_sent);
    reg.counter("rt.messages_received", pid).inc(s.messages_received);
    reg.counter("rt.messages_dropped", pid).inc(s.messages_dropped);
    reg.counter("rt.backpressure_events", pid).inc(s.send_backpressure_events);
    reg.counter("rt.compute_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.compute_time));
    reg.counter("rt.blocked_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.blocked_time));
    reg.counter("rt.backpressure_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.send_backpressure_time));
  }
  const net::BusStats& bs = bus_.stats();
  reg.counter("net.frames_sent").inc(bs.frames_sent);
  reg.counter("net.frames_dropped").inc(bs.frames_dropped);
  reg.counter("net.frames_lost").inc(bs.frames_lost);
  reg.counter("net.frames_duplicated").inc(bs.frames_duplicated);
  reg.counter("net.frames_delayed").inc(bs.frames_delayed);
  reg.counter("net.frames_corrupted").inc(bs.frames_corrupted);
  reg.counter("net.payload_bytes").inc(bs.payload_bytes);
  reg.counter("net.wire_bytes").inc(bs.wire_bytes);
  reg.counter("net.busy_time_ns").inc(static_cast<std::uint64_t>(bs.busy_time));
  if (switch_) {
    const net::SwitchStats& ss = switch_->stats();
    reg.counter("net.switch.messages").inc(ss.messages);
    reg.counter("net.switch.frames_lost").inc(ss.frames_lost);
    reg.counter("net.switch.frames_duplicated").inc(ss.frames_duplicated);
    reg.counter("net.switch.frames_delayed").inc(ss.frames_delayed);
    reg.counter("net.switch.frames_corrupted").inc(ss.frames_corrupted);
    reg.counter("net.switch.payload_bytes").inc(ss.payload_bytes);
    reg.counter("net.switch.tx_busy_time_ns")
        .inc(static_cast<std::uint64_t>(ss.tx_busy_time));
  }
  reg.counter("rt.retransmissions").inc(transport_stats_.retransmissions);
  reg.counter("rt.retx_abandoned").inc(transport_stats_.retx_abandoned);
  reg.counter("rt.acks_sent").inc(transport_stats_.acks_sent);
  reg.counter("rt.dup_frames_dropped")
      .inc(transport_stats_.dup_frames_dropped);
  reg.counter("rt.crc_drops").inc(transport_stats_.crc_drops);
  reg.counter("rt.malformed_frames").inc(transport_stats_.malformed_frames);
  if (injector_) {
    const fault::FaultStats& fs = injector_->stats();
    reg.counter("fault.frames_judged").inc(fs.frames_judged);
    reg.counter("fault.frames_lost").inc(fs.frames_lost);
    reg.counter("fault.outage_drops").inc(fs.outage_drops);
    reg.counter("fault.crash_drops").inc(fs.crash_drops);
    reg.counter("fault.partition_drops").inc(fs.partition_drops);
    reg.counter("fault.blackhole_drops").inc(fs.blackhole_drops);
    reg.counter("fault.frames_duplicated").inc(fs.frames_duplicated);
    reg.counter("fault.frames_delayed").inc(fs.frames_delayed);
    reg.counter("fault.frames_corrupted").inc(fs.frames_corrupted);
  }
  if (sanitizer_) sanitizer_->flush(reg);
  reg.gauge("net.utilization").set(network_utilization());
  reg.gauge("warp.mean").set(warp_.samples() > 0 ? warp_.overall().mean()
                                                 : 0.0);
  reg.counter("warp.samples").inc(warp_.samples());
  reg.counter("sim.events_executed").inc(engine_.events_executed());
  if (engine_.profiler() != nullptr) engine_.profiler()->flush(reg);
  for (const auto& hook : flush_hooks_) hook();
}

void VirtualMachine::add_task(std::string name,
                              std::function<void(Task&)> body) {
  if (static_cast<int>(bodies_.size()) >= config_.ntasks) {
    throw std::logic_error("more task bodies than configured ntasks");
  }
  bodies_.emplace_back(std::move(name), std::move(body));
}

sim::Time VirtualMachine::run(sim::Time until) {
  if (static_cast<int>(bodies_.size()) != config_.ntasks) {
    throw std::logic_error("not all task bodies registered before run()");
  }
  if (!tasks_.empty()) {
    throw std::logic_error("VirtualMachine::run() may only be called once");
  }

  util::Xoshiro256 root(config_.seed);
  for (int id = 0; id < config_.ntasks; ++id) {
    tasks_.push_back(std::unique_ptr<Task>(
        new Task(*this, id, root.split(static_cast<std::uint64_t>(id)))));
    tasks_.back()->rx_seq_.resize(static_cast<std::size_t>(config_.ntasks));
  }
  for (int id = 0; id < config_.ntasks; ++id) {
    Task* task = tasks_[id].get();
    auto body = bodies_[id].second;
    task->process_ = &engine_.spawn(bodies_[id].first,
                                    [task, body](sim::Process&) { body(*task); });
  }
  // Stateful crash windows tear the victim's fiber down at the window start;
  // the injector keeps silencing its links for the window's span either way.
  if (injector_ != nullptr &&
      config_.fault.crash_semantics == fault::CrashSemantics::kStateful) {
    for (const auto& entry : config_.fault.nodes) {
      const int node = entry.first;
      if (node < 0 || node >= config_.ntasks) continue;
      for (const fault::Window& w : entry.second.crashes) {
        engine_.schedule(w.start, [this, node] { kill_task(node); });
      }
    }
  }
  for (const auto& hook : start_hooks_) hook();
  if (obs::Profiler* prof = engine_.profiler(); prof != nullptr) {
    prof->start_run(engine_.events_executed());
  }
  // Stop once every task body has returned, even if non-task event sources
  // (e.g. a background load generator) would keep the queue non-empty.
  const sim::Time end = engine_.run(until, [this] {
    for (const auto& t : tasks_) {
      if (!t->process_->finished()) return false;
    }
    return true;
  });
  if (obs::Profiler* prof = engine_.profiler(); prof != nullptr) {
    prof->finish_run(engine_.events_executed());
  }
  if (obs_.active()) {
    flush_stats();
    obs_.sampler().sample_now(end);  // Final row at the completion time.
    obs_.finalize();
  } else if (sanitizer_) {
    // flush_stats() (above) already forwarded the sanitizer's counters when
    // obs is active; with obs off the registry still exists, so the
    // counters stay queryable either way.
    sanitizer_->flush(obs_.registry());
  }
  // The violation report prints regardless of observability: certifying
  // race tolerance is the whole point of running with --sanitize on.
  if (sanitizer_) sanitizer_->report(std::cerr);
  return end;
}

}  // namespace nscc::rt
