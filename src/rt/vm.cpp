#include "rt/vm.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace nscc::rt {

// ---- Task -------------------------------------------------------------------

int Task::vm_size() const noexcept { return vm_.size(); }

const std::string& Task::name() const noexcept { return process_->name(); }

sim::Time Task::now() const noexcept { return vm_.engine_.now(); }

void Task::compute(sim::Time dt) {
  assert(vm_.engine_.current() == process_ &&
         "compute() must run inside the task's process");
  stats_.compute_time += dt;
  process_->delay(dt);
}

void Task::send(int dst, int tag, Packet payload) {
  send_observed(dst, tag, std::move(payload), {});
}

void Task::send_observed(int dst, int tag, Packet payload,
                         std::function<void()> after_delivery) {
  compute(vm_.config_.send_sw_overhead);
  // Transport backpressure: block while the socket-buffer window is full
  // (a flooding sender is throttled to the medium's drain rate).
  const std::uint64_t window = vm_.config_.sender_window_bytes;
  const std::uint64_t bytes = payload.byte_size();
  if (window != 0 && in_flight_bytes_ > 0 &&
      in_flight_bytes_ + bytes > window) {
    ++stats_.send_backpressure_events;
    const sim::Time blocked_from = now();
    while (in_flight_bytes_ > 0 && in_flight_bytes_ + bytes > window) {
      waiting_for_window_ = true;
      process_->suspend();
    }
    stats_.send_backpressure_time += now() - blocked_from;
    vm_.obs_.tracer().complete(id_, "send.window_wait", blocked_from,
                               now() - blocked_from, "bytes",
                               static_cast<std::int64_t>(bytes));
  }
  if (!vm_.post(id_, dst, tag, std::move(payload), std::move(after_delivery))) {
    ++stats_.messages_dropped;
  }
}

void Task::broadcast(int tag, const Packet& payload) {
  for (int dst = 0; dst < vm_.size(); ++dst) {
    if (dst != id_) send(dst, tag, payload);
  }
}

std::optional<std::size_t> Task::find_match(int tag) const noexcept {
  for (std::size_t i = 0; i < mailbox_.size(); ++i) {
    const int t = mailbox_[i].tag;
    const bool match = (tag == kAnyTag) ? (t < kReservedTagBase) : (t == tag);
    if (match) return i;
  }
  return std::nullopt;
}

Message Task::pop_at(std::size_t index) {
  Message msg = std::move(mailbox_[index]);
  mailbox_.erase(mailbox_.begin() + static_cast<std::ptrdiff_t>(index));
  return msg;
}

Message Task::recv(int tag) {
  assert(vm_.engine_.current() == process_ &&
         "recv() must run inside the task's process");
  for (;;) {
    if (auto idx = find_match(tag)) {
      Message msg = pop_at(*idx);
      ++stats_.messages_received;
      compute(vm_.config_.recv_sw_overhead);
      return msg;
    }
    waiting_ = true;
    waiting_tag_ = tag;
    const sim::Time blocked_from = now();
    process_->suspend();
    stats_.blocked_time += now() - blocked_from;
    vm_.obs_.tracer().complete(id_, "recv.wait", blocked_from,
                               now() - blocked_from, "tag", tag);
  }
}

std::optional<Message> Task::try_recv(int tag) {
  assert(vm_.engine_.current() == process_);
  if (auto idx = find_match(tag)) {
    Message msg = pop_at(*idx);
    ++stats_.messages_received;
    compute(vm_.config_.recv_sw_overhead);
    return msg;
  }
  return std::nullopt;
}

bool Task::probe(int tag) const noexcept { return find_match(tag).has_value(); }

void Task::deliver(Message msg) {
  if (msg.src != id_) {
    vm_.warp_.record(id_, msg.src, msg.sent_at, msg.delivered_at);
  }
  vm_.obs_.tracer().instant(id_, "msg.deliver", msg.delivered_at, "src",
                            msg.src, "bytes", msg.payload.byte_size());
  mailbox_.push_back(std::move(msg));
  if (waiting_) {
    const Message& arrived = mailbox_.back();
    const bool match = (waiting_tag_ == kAnyTag)
                           ? (arrived.tag < kReservedTagBase)
                           : (arrived.tag == waiting_tag_);
    if (match) {
      waiting_ = false;
      process_->resume();
    }
  }
}

void Task::barrier() {
  Packet empty;
  if (id_ == 0) {
    for (int i = 1; i < vm_.size(); ++i) {
      (void)recv(kBarrierArriveTag);
    }
    for (int i = 1; i < vm_.size(); ++i) {
      send(i, kBarrierReleaseTag, empty);
    }
  } else {
    send(0, kBarrierArriveTag, empty);
    (void)recv(kBarrierReleaseTag);
  }
}

// ---- VirtualMachine ----------------------------------------------------------

bool VirtualMachine::post(int src, int dst, int tag, Packet payload,
                          std::function<void()> after_delivery) {
  assert(src >= 0 && src < size());
  assert(dst >= 0 && dst < size());

  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.sent_at = engine_.now();

  Task* sender = tasks_.at(src).get();
  const std::uint32_t payload_bytes = msg.payload.byte_size();
  ++sender->stats_.messages_sent;
  sender->stats_.bytes_sent += payload_bytes;
  sender->in_flight_bytes_ += payload_bytes;
  obs_.tracer().instant(src, "msg.send", engine_.now(), "dst", dst, "bytes",
                        payload_bytes);

  // Runs at delivery: releases the sender's transport window and wakes it
  // if it is blocked in send().
  auto release_window = [sender, payload_bytes] {
    sender->in_flight_bytes_ -= payload_bytes;
    if (sender->waiting_for_window_) {
      sender->waiting_for_window_ = false;
      sender->process_->resume();
    }
  };

  Task* receiver = tasks_.at(dst).get();
  if (dst == src) {
    // Local delivery: no wire time, still ordered via an event.
    engine_.schedule(engine_.now(),
                     [receiver, m = std::move(msg), release_window,
                      cb = std::move(after_delivery)]() mutable {
                       m.delivered_at = receiver->vm_.engine_.now();
                       receiver->deliver(std::move(m));
                       release_window();
                       if (cb) cb();
                     });
    return true;
  }

  auto deliver = [receiver, m = std::move(msg), release_window,
                  cb = std::move(after_delivery)](sim::Time delivered_at) mutable {
    m.delivered_at = delivered_at;
    receiver->deliver(std::move(m));
    release_window();
    if (cb) cb();
  };
  if (switch_) {
    switch_->transmit(src, dst, payload_bytes, std::move(deliver));
    return true;
  }
  const bool accepted = bus_.transmit(payload_bytes, std::move(deliver));
  if (!accepted) release_window();  // Tail drop: nothing stays in flight.
  return accepted;
}

double VirtualMachine::network_utilization() const noexcept {
  return switch_ ? switch_->utilization() : bus_.utilization();
}

VirtualMachine::VirtualMachine(MachineConfig config)
    : config_(config), obs_(config.obs), bus_(engine_, config.bus) {
  if (config_.ntasks < 1) {
    throw std::invalid_argument("VirtualMachine needs at least one task");
  }
  if (config_.network == Network::kSp2Switch) {
    switch_ = std::make_unique<net::SwitchFabric>(engine_, config_.ntasks,
                                                  config_.sp2_switch);
  }
  if (obs_.active()) {
    engine_.set_tracer(&obs_.tracer());
    bus_.set_tracer(&obs_.tracer());
    if (switch_) switch_->set_tracer(&obs_.tracer());
    obs_.tracer().set_track_name(obs::kEngineTrack, "engine");
    obs_.tracer().set_track_name(obs::kBusTrack, "bus");

    // Virtual-time series probes (sampled every config.obs.sample_interval).
    obs::Registry& reg = obs_.registry();
    obs::Sampler& sampler = obs_.sampler();
    sampler.add_probe("staleness_mean", [&reg] {
      return reg.histogram("dsm.staleness").mean();
    });
    sampler.add_probe("blocked_readers", [&reg] {
      return reg.gauge("dsm.blocked_readers").value();
    });
    sampler.add_probe("inflight_updates", [&reg] {
      return reg.gauge("dsm.updates_inflight").value();
    });
    sampler.add_probe("warp_mean", [this] {
      return warp_.samples() > 0 ? warp_.overall().mean() : 0.0;
    });
    sampler.add_probe("network_utilization",
                      [this] { return network_utilization(); });
    sampler.add_probe("events_executed", [this] {
      return static_cast<double>(engine_.events_executed());
    });
    engine_.set_sampler(&sampler, config_.obs.sample_interval);
  }
}

void VirtualMachine::flush_stats() {
  obs::Registry& reg = obs_.registry();
  for (const auto& t : tasks_) {
    const TaskStats& s = t->stats_;
    const int pid = t->id();
    reg.counter("rt.messages_sent", pid).inc(s.messages_sent);
    reg.counter("rt.bytes_sent", pid).inc(s.bytes_sent);
    reg.counter("rt.messages_received", pid).inc(s.messages_received);
    reg.counter("rt.messages_dropped", pid).inc(s.messages_dropped);
    reg.counter("rt.backpressure_events", pid).inc(s.send_backpressure_events);
    reg.counter("rt.compute_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.compute_time));
    reg.counter("rt.blocked_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.blocked_time));
    reg.counter("rt.backpressure_time_ns", pid)
        .inc(static_cast<std::uint64_t>(s.send_backpressure_time));
  }
  const net::BusStats& bs = bus_.stats();
  reg.counter("net.frames_sent").inc(bs.frames_sent);
  reg.counter("net.frames_dropped").inc(bs.frames_dropped);
  reg.counter("net.payload_bytes").inc(bs.payload_bytes);
  reg.counter("net.wire_bytes").inc(bs.wire_bytes);
  reg.counter("net.busy_time_ns").inc(static_cast<std::uint64_t>(bs.busy_time));
  if (switch_) {
    const net::SwitchStats& ss = switch_->stats();
    reg.counter("net.switch.messages").inc(ss.messages);
    reg.counter("net.switch.payload_bytes").inc(ss.payload_bytes);
    reg.counter("net.switch.tx_busy_time_ns")
        .inc(static_cast<std::uint64_t>(ss.tx_busy_time));
  }
  reg.gauge("net.utilization").set(network_utilization());
  reg.gauge("warp.mean").set(warp_.samples() > 0 ? warp_.overall().mean()
                                                 : 0.0);
  reg.counter("warp.samples").inc(warp_.samples());
  reg.counter("sim.events_executed").inc(engine_.events_executed());
}

void VirtualMachine::add_task(std::string name,
                              std::function<void(Task&)> body) {
  if (static_cast<int>(bodies_.size()) >= config_.ntasks) {
    throw std::logic_error("more task bodies than configured ntasks");
  }
  bodies_.emplace_back(std::move(name), std::move(body));
}

sim::Time VirtualMachine::run(sim::Time until) {
  if (static_cast<int>(bodies_.size()) != config_.ntasks) {
    throw std::logic_error("not all task bodies registered before run()");
  }
  if (!tasks_.empty()) {
    throw std::logic_error("VirtualMachine::run() may only be called once");
  }

  util::Xoshiro256 root(config_.seed);
  for (int id = 0; id < config_.ntasks; ++id) {
    tasks_.push_back(std::unique_ptr<Task>(
        new Task(*this, id, root.split(static_cast<std::uint64_t>(id)))));
  }
  for (int id = 0; id < config_.ntasks; ++id) {
    Task* task = tasks_[id].get();
    auto body = bodies_[id].second;
    task->process_ = &engine_.spawn(bodies_[id].first,
                                    [task, body](sim::Process&) { body(*task); });
  }
  // Stop once every task body has returned, even if non-task event sources
  // (e.g. a background load generator) would keep the queue non-empty.
  const sim::Time end = engine_.run(until, [this] {
    for (const auto& t : tasks_) {
      if (!t->process_->finished()) return false;
    }
    return true;
  });
  if (obs_.active()) {
    flush_stats();
    obs_.sampler().sample_now(end);  // Final row at the completion time.
    obs_.finalize();
  }
  return end;
}

}  // namespace nscc::rt
