// Reliable-transport policy and bookkeeping for the PVM-like runtime.
//
// The mid-90s PVM daemons ran over UDP and implemented their own
// sequence/ACK/retransmit layer for control traffic; application data could
// ride either that reliable path or raw datagrams.  We model the same split:
// when ReliabilityConfig::enabled is set, control messages (barriers, DSM
// read demands, synchronous-mode updates, application sends) carry per
// (src,dst) sequence numbers, receivers de-duplicate and ACK them, and the
// sender retransmits on an exponential-backoff timer.  Asynchronous DSM
// updates stay best-effort — losing one merely raises staleness, which is
// exactly the data-race tolerance the paper exploits.
//
// The layer is OFF by default: with no FaultPlan the network never drops
// frames, and ACK traffic would perturb the timing of every fault-free
// experiment for nothing.
#pragma once

#include <cstdint>
#include <set>

#include "sim/time.hpp"

namespace nscc::rt {

/// Per-message reliability override for send/post call sites.
enum class Reliability {
  kAuto,        ///< Tag-based policy (see VirtualMachine::reliable_for).
  kReliable,    ///< Sequence + ACK + retransmit (when transport enabled).
  kBestEffort,  ///< Fire and forget, even for control tags.
};

struct ReliabilityConfig {
  /// Master switch.  Off: no sequence numbers, no ACKs, no retransmits —
  /// byte-identical behaviour to the pre-transport runtime.
  bool enabled = false;
  /// Initial retransmission timeout.  PVM-over-UDP on a 10 Mbps Ethernet
  /// saw multi-millisecond RTTs; 100 ms is the classic conservative floor.
  sim::Time ack_timeout = 100 * sim::kMillisecond;
  /// RTO multiplier per failed attempt.
  double backoff = 2.0;
  /// Attempts (first send + retransmits) before the frame is abandoned and
  /// its on_settled callback reports failure.  At 5% loss the chance of ten
  /// straight losses is ~1e-13.
  int max_attempts = 10;
  /// Modelled wire size of an ACK frame (sequence number + header slack).
  std::uint32_t ack_bytes = 8;
  /// CRC-check every frame whose payload the fault plan may have damaged
  /// and drop mismatches as loss (the retransmit/watchdog machinery then
  /// recovers).  The checksum is protocol metadata — it adds no modeled
  /// wire bytes — and is only ever computed when the plan can corrupt, so
  /// this default costs nothing on corruption-free runs.  Turning it off
  /// lets damaged payloads reach the stack (for sanitizer end-to-end
  /// integrity tests).
  bool crc_frames = true;
};

/// Receiver-side duplicate filter for one (src -> me) stream.  Tracks the
/// contiguous prefix of seen sequence numbers plus a sparse set of
/// out-of-order arrivals (retransmits can leapfrog delayed originals).
///
/// Memory is bounded: the sparse set holds at most kMaxAhead entries.  When
/// it would overflow, the cumulative floor advances to the smallest buffered
/// seq, forgetting any gaps below it.  A gap only persists when the sender
/// abandoned that frame (max_attempts exhausted), so nothing that will ever
/// arrive is misclassified; a pathological replay of a forgotten gap seq
/// would be re-delivered, which the age-bounded application layer tolerates
/// by construction.
class SeqTracker {
 public:
  /// Sparse out-of-order entries kept per stream before the floor advances.
  static constexpr std::size_t kMaxAhead = 256;

  /// True the first time `seq` is seen; false for any replay.
  bool fresh(std::uint64_t seq) {
    if (seq <= contiguous_) return false;
    if (seq == contiguous_ + 1) {
      ++contiguous_;
      auto it = ahead_.begin();
      while (it != ahead_.end() && *it == contiguous_ + 1) {
        ++contiguous_;
        it = ahead_.erase(it);
      }
      return true;
    }
    if (!ahead_.insert(seq).second) return false;
    if (ahead_.size() > kMaxAhead) {
      // Advance the floor past the oldest gap and collapse the contiguous
      // run that sat above it.
      auto it = ahead_.begin();
      contiguous_ = *it;
      it = ahead_.erase(it);
      while (it != ahead_.end() && *it == contiguous_ + 1) {
        ++contiguous_;
        it = ahead_.erase(it);
      }
    }
    return true;
  }

  /// Out-of-order seqs currently buffered (regression hook: stays <=
  /// kMaxAhead no matter how many messages flow).
  [[nodiscard]] std::size_t pending() const noexcept { return ahead_.size(); }
  /// All seqs in [1, floor()] count as seen.
  [[nodiscard]] std::uint64_t floor() const noexcept { return contiguous_; }

 private:
  std::uint64_t contiguous_ = 0;  ///< All seqs in [1, contiguous_] seen.
  std::set<std::uint64_t> ahead_;
};

/// Machine-wide transport counters (flushed to the obs registry as rt.*).
struct TransportStats {
  std::uint64_t retransmissions = 0;
  std::uint64_t retx_abandoned = 0;  ///< Frames given up after max_attempts.
  std::uint64_t acks_sent = 0;
  std::uint64_t dup_frames_dropped = 0;  ///< Receiver-side dedup hits.
  std::uint64_t crc_drops = 0;  ///< Damaged frames dropped at the NIC.
  std::uint64_t malformed_frames = 0;  ///< Undetected damage caught parsing.
};

}  // namespace nscc::rt
