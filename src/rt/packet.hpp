// Typed pack/unpack message buffers, after PVM's pvm_pk*/pvm_upk* model.
//
// Senders pack fields in order; receivers unpack in the same order.  The
// buffer knows its byte size, which is what the network model charges for.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/crc32.hpp"

namespace nscc::rt {

class Packet {
 public:
  Packet() = default;

  // ---- packing -----------------------------------------------------------
  Packet& pack_u8(std::uint8_t v) { return append(&v, sizeof v); }
  Packet& pack_i32(std::int32_t v) { return append(&v, sizeof v); }
  Packet& pack_u32(std::uint32_t v) { return append(&v, sizeof v); }
  Packet& pack_i64(std::int64_t v) { return append(&v, sizeof v); }
  Packet& pack_u64(std::uint64_t v) { return append(&v, sizeof v); }
  Packet& pack_double(double v) { return append(&v, sizeof v); }

  Packet& pack_bytes(const void* data, std::size_t n) {
    pack_u64(n);
    return append(data, n);
  }

  Packet& pack_string(const std::string& s) {
    return pack_bytes(s.data(), s.size());
  }

  Packet& pack_u64_vec(const std::vector<std::uint64_t>& v) {
    pack_u64(v.size());
    return append(v.data(), v.size() * sizeof(std::uint64_t));
  }

  Packet& pack_double_vec(const std::vector<double>& v) {
    pack_u64(v.size());
    return append(v.data(), v.size() * sizeof(double));
  }

  /// Embed another packet (its bytes travel nested; unpack with
  /// unpack_packet).  Used by DSM updates that carry opaque app payloads.
  Packet& pack_packet(const Packet& p) {
    pack_u64(p.buf_.size());
    return append(p.buf_.data(), p.buf_.size());
  }

  // ---- unpacking (in packing order) ---------------------------------------
  std::uint8_t unpack_u8() { return take<std::uint8_t>(); }
  std::int32_t unpack_i32() { return take<std::int32_t>(); }
  std::uint32_t unpack_u32() { return take<std::uint32_t>(); }
  std::int64_t unpack_i64() { return take<std::int64_t>(); }
  std::uint64_t unpack_u64() { return take<std::uint64_t>(); }
  double unpack_double() { return take<double>(); }

  std::string unpack_string() {
    const std::uint64_t n = unpack_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + rpos_),
                  static_cast<std::size_t>(n));
    rpos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<std::uint64_t> unpack_u64_vec() { return take_vec<std::uint64_t>(); }
  std::vector<double> unpack_double_vec() { return take_vec<double>(); }

  Packet unpack_packet() {
    const std::uint64_t n = unpack_u64();
    check(n);
    Packet q;
    q.buf_.assign(buf_.begin() + static_cast<std::ptrdiff_t>(rpos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(rpos_ + n));
    rpos_ += static_cast<std::size_t>(n);
    return q;
  }

  // ---- inspection ----------------------------------------------------------
  /// Total serialized payload size in bytes (what the wire model charges).
  [[nodiscard]] std::uint32_t byte_size() const noexcept {
    return static_cast<std::uint32_t>(buf_.size());
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - rpos_;
  }
  [[nodiscard]] bool fully_consumed() const noexcept { return remaining() == 0; }

  /// Reset the read cursor (e.g. to re-read a stored message).
  void rewind() noexcept { rpos_ = 0; }

  /// Copy of this packet cut down to its first `n` bytes (cursor rewound).
  /// Models a truncated frame for robustness tests.
  [[nodiscard]] Packet truncated(std::size_t n) const {
    Packet q;
    q.buf_.assign(buf_.begin(),
                  buf_.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(n, buf_.size())));
    return q;
  }

  /// CRC32 of the full serialized payload, independent of the read cursor.
  /// This is the checksum the transport stamps on frames and the one the
  /// DSM shadow log records per write.
  [[nodiscard]] std::uint32_t crc32() const noexcept {
    return util::crc32(buf_.data(), buf_.size());
  }

  // ---- in-place damage (fault injection only) ------------------------------
  /// Flip one bit; `bit` indexes the payload bit-stream and wraps, so any
  /// corruption seed maps onto a valid position.
  void flip_bit(std::size_t bit) noexcept {
    if (buf_.empty()) return;
    bit %= buf_.size() * 8;
    buf_[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
  }

  /// Drop every byte past the first `n` (models a frame cut short on the
  /// wire).  The read cursor is clamped into the surviving prefix.
  void truncate_to(std::size_t n) {
    if (n >= buf_.size()) return;
    buf_.resize(n);
    rpos_ = std::min(rpos_, n);
  }

 private:
  Packet& append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
    return *this;
  }

  void check(std::uint64_t n) const {
    // rpos_ <= buf_.size() always holds, so the subtraction is safe; the
    // naive `rpos_ + n > size` form would wrap for hostile length prefixes
    // near 2^64 and read out of bounds.
    if (n > buf_.size() - rpos_) {
      throw std::out_of_range("Packet: unpack past end of buffer");
    }
  }

  template <typename T>
  T take() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + rpos_, sizeof(T));
    rpos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> take_vec() {
    const std::uint64_t n = unpack_u64();
    // Divide instead of multiplying: `n * sizeof(T)` overflows for a
    // corrupt length prefix, which would pass check() and then OOB-read.
    if (n > (buf_.size() - rpos_) / sizeof(T)) {
      throw std::out_of_range("Packet: unpack past end of buffer");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), buf_.data() + rpos_, v.size() * sizeof(T));
    rpos_ += v.size() * sizeof(T);
    return v;
  }

  std::vector<std::byte> buf_;
  std::size_t rpos_ = 0;
};

}  // namespace nscc::rt
