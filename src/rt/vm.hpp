// PVM-like message-passing runtime over the simulated shared bus.
//
// A VirtualMachine hosts a fixed set of tasks (one per simulated SP2 node).
// Each task body runs as a simulator process and talks to peers through
// typed point-to-point messages with tags, exactly the programming model the
// paper's user-level DSM macros were built on.  Per-message software
// overheads (PVM pack/send and receive/dispatch CPU costs) are charged as
// virtual compute on the sender and receiver, and wire time is charged by
// the SharedBus; a WarpMeter observes every delivery.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "net/shared_bus.hpp"
#include "net/switch_fabric.hpp"
#include "obs/obs.hpp"
#include "rt/packet.hpp"
#include "rt/transport.hpp"
#include "sanitize/sanitize.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "warp/warp_meter.hpp"

namespace nscc::rt {

/// Matches any application tag (reserved runtime tags are never matched).
inline constexpr int kAnyTag = -1;
/// Tags at or above this value are reserved for the runtime (barrier, DSM).
inline constexpr int kReservedTagBase = 1 << 24;
inline constexpr int kBarrierArriveTag = kReservedTagBase + 1;
inline constexpr int kBarrierReleaseTag = kReservedTagBase + 2;
/// Base tag for DSM update traffic (one tag, locations multiplexed inside).
inline constexpr int kDsmUpdateTag = kReservedTagBase + 3;
/// Tag for DSM read-demand requests (the requesting Global_Read impl).
inline constexpr int kDsmRequestTag = kReservedTagBase + 4;
/// Transport-layer acknowledgement frames (never reach a mailbox).
inline constexpr int kAckTag = kReservedTagBase + 5;
/// Failure-detector heartbeats (recovery::Coordinator; engine-context
/// handled, never mailboxed by application code).
inline constexpr int kHeartbeatTag = kReservedTagBase + 6;

struct Message {
  int src = -1;
  int tag = 0;
  Packet payload;
  /// Transport sequence number; 0 = unsequenced (best-effort frame).
  std::uint64_t seq = 0;
  /// Sender incarnation number: 0 for the original spawn, bumped on every
  /// crash-restart respawn.  Lets receivers tell a rejoined peer from the
  /// one that crashed.
  std::uint64_t epoch = 0;
  /// Causal-flow id (obs::Tracer::new_flow); 0 = untraced.  The DSM stamps
  /// one per propagated update so the exported trace draws the
  /// write → transit → read arrow; it rides the message so transit hops
  /// (delivery, retransmission) can emit flow steps on the right track.
  std::uint64_t flow = 0;
  sim::Time sent_at = 0;       ///< When the sender handed it to the network.
  sim::Time delivered_at = 0;  ///< When it reached the receiver's mailbox.
};

/// Which interconnect carries inter-task traffic.
enum class Network {
  kEthernet,   ///< Shared 10 Mbps bus (the paper's evaluation platform).
  kSp2Switch,  ///< Per-port switched fabric (the SP2's other interconnect).
};

struct MachineConfig {
  int ntasks = 2;
  Network network = Network::kEthernet;
  net::BusConfig bus;
  net::SwitchConfig sp2_switch;
  /// Sender-side CPU cost per message (PVM pack + syscall + protocol;
  /// mid-90s PVM over UDP on AIX was of order a millisecond end to end).
  sim::Time send_sw_overhead = 600 * sim::kMicrosecond;
  /// Receiver-side CPU cost per message consumed.
  sim::Time recv_sw_overhead = 300 * sim::kMicrosecond;
  /// Root seed; per-task streams are split deterministically from it.
  std::uint64_t seed = 1;
  /// Sender-side transport window (PVM-over-TCP socket buffering): a task's
  /// send() blocks while it has more than this many bytes in flight
  /// (queued or on the wire).  This is the backpressure that throttles a
  /// flooding sender once the shared medium falls behind.  0 = unlimited.
  std::uint64_t sender_window_bytes = 64 * 1024;
  /// Observability outputs (tracing, metrics time series); off by default,
  /// in which case every instrumentation site is a single predicted branch.
  obs::Options obs;
  /// Fault plan for the interconnect (empty = perfect network).  When
  /// non-empty the VM owns a deterministic FaultInjector wired into the
  /// active interconnect.
  fault::FaultPlan fault;
  /// Reliable-transport layer (sequence/ACK/retransmit); off by default.
  ReliabilityConfig transport;
  /// Staleness sanitizer (shadow-state audit of every DSM read against the
  /// workload's ToleranceSpec); off by default.  When enabled the VM owns a
  /// sanitize::Sanitizer that dsm::SharedSpace feeds.
  sanitize::Options sanitize;
};

struct TaskStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_dropped = 0;  ///< Tail-dropped by the bus.
  std::uint64_t send_backpressure_events = 0;
  sim::Time compute_time = 0;
  sim::Time blocked_time = 0;
  sim::Time send_backpressure_time = 0;
};

class VirtualMachine;

/// Handle passed to a task body; all members must be called from within the
/// task's own process unless noted.
class Task {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int vm_size() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept;
  [[nodiscard]] sim::Time now() const noexcept;
  [[nodiscard]] util::Xoshiro256& rng() noexcept { return rng_; }
  [[nodiscard]] VirtualMachine& vm() noexcept { return vm_; }
  [[nodiscard]] const TaskStats& stats() const noexcept { return stats_; }
  /// Incarnation number: 0 until the task's first crash-restart.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Charge `dt` of virtual CPU time.
  void compute(sim::Time dt);

  /// Send `payload` to task `dst` with application or runtime tag `tag`.
  /// Charges the sender software overhead, blocks while the transport
  /// window is full, and puts the message on the bus (self-sends are
  /// delivered locally, free of wire time).
  void send(int dst, int tag, Packet payload);

  /// Like send(), with a settlement callback run (engine context) once the
  /// message's fate is known: `on_settled(true)` after first delivery (or
  /// transport ACK when the frame is reliable), `on_settled(false)` when it
  /// was lost / tail-dropped / abandoned after retransmission.  Runs exactly
  /// once.  The DSM uses it to track in-flight updates for coalescing and to
  /// resend the newest pending value after a loss.
  void send_observed(int dst, int tag, Packet payload,
                     std::function<void(bool delivered)> on_settled,
                     Reliability reliability = Reliability::kAuto,
                     std::uint64_t flow = 0);

  /// Send to every other task (PVM mcast over Ethernet = serial sends).
  void broadcast(int tag, const Packet& payload);

  /// Blocking receive of the first queued message matching `tag`
  /// (kAnyTag matches any application tag).  Charges receive overhead.
  Message recv(int tag = kAnyTag);

  /// Like recv() but gives up after `timeout` of virtual time and returns
  /// nullopt.  The DSM starvation watchdog is built on this.
  std::optional<Message> recv_timeout(int tag, sim::Time timeout);

  /// Non-blocking receive; charges receive overhead only on success.
  std::optional<Message> try_recv(int tag = kAnyTag);

  /// True when a matching message is queued (no cost).
  [[nodiscard]] bool probe(int tag = kAnyTag) const noexcept;

  /// Coordinator barrier over real messages (task 0 collects and releases).
  void barrier();

  /// Register an engine-context consumer for a reserved tag: matching
  /// messages are handed to `handler` at delivery time instead of being
  /// mailboxed.  This lets the DSM serve read demands even while the task
  /// body is blocked in a barrier or Global_Read (the mutual-blocking
  /// deadlock a polled mailbox cannot escape).  One handler per tag;
  /// an empty handler unregisters.
  void set_tag_handler(int tag, std::function<void(Message)> handler);

 private:
  friend class VirtualMachine;
  Task(VirtualMachine& vm, int id, util::Xoshiro256 rng)
      : vm_(vm), id_(id), rng_(rng) {}

  [[nodiscard]] std::optional<std::size_t> find_match(int tag) const noexcept;
  Message pop_at(std::size_t index);
  void deliver(Message msg);  // engine context

  VirtualMachine& vm_;
  int id_;
  util::Xoshiro256 rng_;
  std::uint64_t epoch_ = 0;
  sim::Process* process_ = nullptr;
  std::deque<Message> mailbox_;
  bool waiting_ = false;
  int waiting_tag_ = kAnyTag;
  bool timed_out_ = false;
  std::uint64_t in_flight_bytes_ = 0;
  bool waiting_for_window_ = false;
  std::unordered_map<int, std::function<void(Message)>> tag_handlers_;
  std::vector<SeqTracker> rx_seq_;  ///< Per-source duplicate filters.
  TaskStats stats_;
};

class VirtualMachine {
 public:
  explicit VirtualMachine(MachineConfig config);

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  /// Register the body for the next task id (call ntasks times before run).
  void add_task(std::string name, std::function<void(Task&)> body);

  /// Run the simulation until all tasks finish (or deadlock / `until`).
  /// Returns the virtual completion time.
  sim::Time run(sim::Time until = std::numeric_limits<sim::Time>::max());

  /// Low-level message injection: puts `payload` on the wire from `src` to
  /// `dst` without charging sender CPU (usable from engine context; the DSM
  /// "daemon" uses it for deferred coalesced updates).  `on_settled` runs in
  /// engine context exactly once when the message's fate is decided — see
  /// Task::send_observed.  Returns false when the bus tail-dropped the
  /// message and the transport will not retry it.  `flow` stamps the frame
  /// with a causal-flow id (see Message::flow); 0 = untraced.
  bool post(int src, int dst, int tag, Packet payload,
            std::function<void(bool delivered)> on_settled = {},
            Reliability reliability = Reliability::kAuto,
            std::uint64_t flow = 0);

  /// Tear a task's process down mid-run (crash with kStateful semantics):
  /// the fiber unwinds, its mailbox and wait flags are lost.  Transport/NIC
  /// state (sequence trackers, in-flight accounting) survives, as does any
  /// engine-context tag handler registered by external observers.  Engine
  /// context only; no-op when the task already finished.
  void kill_task(int id);

  /// Restart a killed task: the registered body runs again from the top on a
  /// fresh fiber, with the task's epoch bumped.  The body is responsible for
  /// restoring state (see recovery::Coordinator).  Engine context only.
  void respawn_task(int id);

  /// False once the task's process finished — whether by running to
  /// completion or by kill_task().
  [[nodiscard]] bool task_alive(int id) const;

  /// Hook run in engine context right before the first event executes (after
  /// all tasks are spawned).  The recovery coordinator uses it to install
  /// heartbeat handlers and schedule its detector tick.
  void add_start_hook(std::function<void()> hook) {
    start_hooks_.push_back(std::move(hook));
  }

  /// Hook run when run() flushes subsystem counters into the obs registry.
  void add_flush_hook(std::function<void()> hook) {
    flush_hooks_.push_back(std::move(hook));
  }

  /// Called in engine context when the reliable transport exhausts its
  /// retransmit budget on one message — (src, dst) of the abandoned link.
  /// The recovery coordinator registers itself here so a give-up is a
  /// membership signal instead of a silent counter bump.
  void set_link_failure_hook(std::function<void(int, int)> hook) {
    link_failure_hook_ = std::move(hook);
  }

  [[nodiscard]] int size() const noexcept { return config_.ntasks; }
  [[nodiscard]] Task& task(int id) { return *tasks_.at(id); }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::SharedBus& bus() noexcept { return bus_; }
  [[nodiscard]] net::SwitchFabric& sp2_switch() noexcept { return *switch_; }
  /// Utilisation of whichever interconnect is active.
  [[nodiscard]] double network_utilization() const noexcept;
  [[nodiscard]] warp::WarpMeter& warp_meter() noexcept { return warp_; }
  /// Observability hub (metrics registry, tracer, sampler).  run() flushes
  /// every subsystem's counters into the registry and writes the configured
  /// trace/metrics outputs before returning.
  [[nodiscard]] obs::Hub& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::Hub& obs() const noexcept { return obs_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool deadlocked() const noexcept { return engine_.deadlocked(); }
  /// Diagnostic snapshot of blocked tasks (see sim::Engine::blocked_report).
  [[nodiscard]] std::string blocked_report() const {
    return engine_.blocked_report();
  }
  /// The fault injector attached to the interconnect, or nullptr when the
  /// configured FaultPlan is empty.
  [[nodiscard]] fault::FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }
  [[nodiscard]] const TransportStats& transport_stats() const noexcept {
    return transport_stats_;
  }
  /// The machine's staleness sanitizer, or nullptr when --sanitize=off.
  [[nodiscard]] sanitize::Sanitizer* sanitizer() noexcept {
    return sanitizer_.get();
  }

 private:
  friend class Task;

  /// One in-flight frame.  Kept alive (shared with network callbacks and the
  /// retransmit timer) until settled; reliable frames hold the payload for
  /// retransmission.
  struct TxState {
    Message msg;
    int dst = -1;
    std::uint32_t payload_bytes = 0;
    bool reliable = false;
    bool settled = false;
    bool window_released = false;
    int attempts = 1;
    sim::Time rto = 0;
    sim::Engine::WatchdogId retx_timer = 0;
    /// Payload CRC32 stamped at post() time (only when the fault plan can
    /// corrupt frames); the receive path recomputes it after fault damage.
    std::uint32_t crc = 0;
    std::function<void(bool)> on_settled;
  };

  [[nodiscard]] bool reliable_for(int tag, Reliability reliability) const;
  void transmit_frame(const std::shared_ptr<TxState>& st);
  void on_wire_outcome(const std::shared_ptr<TxState>& st, sim::Time at,
                       bool delivered, std::uint64_t corrupt_seed);
  void deliver_frame(const std::shared_ptr<TxState>& st, sim::Time at,
                     std::uint64_t corrupt_seed);
  void settle(const std::shared_ptr<TxState>& st, bool delivered);
  void arm_retx_timer(const std::shared_ptr<TxState>& st);
  void send_ack(int from, int to, std::uint64_t seq);
  void flush_stats();

  MachineConfig config_;
  obs::Hub obs_;
  sim::Engine engine_;
  net::SharedBus bus_;
  std::unique_ptr<net::SwitchFabric> switch_;  ///< Set for kSp2Switch.
  std::unique_ptr<fault::FaultInjector> injector_;  ///< Set iff plan non-empty.
  std::unique_ptr<sanitize::Sanitizer> sanitizer_;  ///< Set iff sanitize on.
  /// True when the fault plan can corrupt frames: gates the per-frame CRC
  /// stamping so corruption-free runs do not pay the checksum cost.
  bool may_corrupt_ = false;
  warp::WarpMeter warp_;
  TransportStats transport_stats_;
  /// Next sequence number per (src,dst) reliable stream (starts at 1).
  std::map<std::pair<int, int>, std::uint64_t> tx_seq_;
  /// Unacked reliable frames, keyed (src, dst, seq).
  std::map<std::tuple<int, int, std::uint64_t>, std::shared_ptr<TxState>>
      pending_tx_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::pair<std::string, std::function<void(Task&)>>> bodies_;
  std::vector<std::function<void()>> start_hooks_;
  std::vector<std::function<void()>> flush_hooks_;
  std::function<void(int, int)> link_failure_hook_;
};

}  // namespace nscc::rt
