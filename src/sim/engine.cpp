#include "sim/engine.hpp"

#include <chrono>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

namespace nscc::sim {

Process::Process(Engine& engine, int id, std::string name,
                 std::function<void()> body, std::size_t stack_bytes)
    : engine_(engine),
      id_(id),
      name_(std::move(name)),
      fiber_(std::move(body), stack_bytes) {}

Time Process::now() const noexcept { return engine_.now(); }

void Process::delay(Time dt) {
  assert(engine_.current() == this && "delay() called from outside the process");
  assert(dt >= 0);
  if (obs::Tracer* tr = engine_.tracer(); tr != nullptr && tr->enabled()) {
    tr->complete(id_, "compute", engine_.now(), dt);
  }
  state_ = State::kBlocked;
  resume_scheduled_ = true;
  Process* self = this;
  engine_.schedule(engine_.now() + dt, obs::EventKind::kProcess,
                   [self] { self->engine_.run_process(*self); });
  fiber_.yield();
}

void Process::suspend() {
  assert(engine_.current() == this &&
         "suspend() called from outside the process");
  state_ = State::kBlocked;
  resume_scheduled_ = false;
  fiber_.yield();
}

void Process::resume_at(Time t) {
  assert(engine_.current() != this && "a running process cannot resume itself");
  assert(state_ == State::kBlocked && "resume of a non-blocked process");
  assert(!resume_scheduled_ && "process already has a pending resume");
  assert(t >= engine_.now());
  resume_scheduled_ = true;
  Process* self = this;
  engine_.schedule(t, obs::EventKind::kProcess,
                   [self] { self->engine_.run_process(*self); });
}

Engine::~Engine() {
  // Fibers are killed (stacks unwound) by Process destruction; make sure no
  // process believes it is still the running one.
  current_ = nullptr;
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       Time start, std::size_t stack_bytes) {
  const int id = static_cast<int>(processes_.size());
  // The fiber body needs the Process*, which does not exist yet; capture via
  // a shared slot filled right after construction.
  auto slot = std::make_shared<Process*>(nullptr);
  auto fiber_body = [slot, fn = std::move(body)] { fn(**slot); };
  processes_.push_back(std::unique_ptr<Process>(
      new Process(*this, id, std::move(name), std::move(fiber_body),
                  stack_bytes)));
  Process& p = *processes_.back();
  *slot = &p;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->set_track_name(id, p.name());
    tracer_->instant(obs::kEngineTrack, "spawn", now_, "pid", id);
  }
  p.resume_scheduled_ = true;
  schedule(start, obs::EventKind::kProcess, [this, &p] { run_process(p); });
  return p;
}

void Engine::schedule(Time t, obs::EventKind kind, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule an event in the virtual past");
  queue_.push(Event{t, next_seq_++, std::move(fn), kind});
  queue_drained_ = false;
  if (profiler_ != nullptr) {
    profiler_->note_queue_depth(queue_.size());
  }
}

Engine::WatchdogId Engine::set_watchdog(Time t, std::function<void()> fn) {
  const WatchdogId id = next_watchdog_++;
  live_watchdogs_.insert(id);
  schedule(t, obs::EventKind::kWatchdog, [this, id, f = std::move(fn)] {
    if (live_watchdogs_.erase(id) != 0) f();
  });
  return id;
}

bool Engine::cancel_watchdog(WatchdogId id) noexcept {
  return live_watchdogs_.erase(id) != 0;
}

std::string Engine::blocked_report() const {
  static constexpr const char* kStateNames[] = {"ready", "running", "blocked",
                                                "finished"};
  std::ostringstream os;
  os << "engine: t=" << now_ << "ns events=" << events_executed_
     << (queue_drained_ ? " queue=drained" : " queue=pending")
     << " live=" << live_processes() << "\n";
  for (const auto& p : processes_) {
    if (p->finished()) continue;
    os << "  process " << p->id() << " '" << p->name() << "' state="
       << kStateNames[static_cast<int>(p->state())]
       << (p->resume_scheduled_ ? " (resume pending)" : " (no pending resume)")
       << "\n";
  }
  return os.str();
}

void Engine::run_process(Process& p) {
  assert(current_ == nullptr && "nested process execution");
  if (p.state_ == Process::State::kFinished) return;
  p.resume_scheduled_ = false;
  p.state_ = Process::State::kRunning;
  current_ = &p;
  p.fiber_.resume();
  current_ = nullptr;
  if (p.fiber_.finished()) {
    p.state_ = Process::State::kFinished;
  }
}

void Engine::kill(Process& p) {
  assert(current_ != &p && "a process cannot kill itself");
  if (p.finished()) return;
  // The fiber unwinds on p's stack; make p the current process so any code
  // running in destructors sees consistent engine state.
  Process* saved = current_;
  current_ = &p;
  p.fiber_.kill();
  current_ = saved;
  p.state_ = Process::State::kFinished;
  p.resume_scheduled_ = false;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->instant(obs::kEngineTrack, "kill", now_, "pid", p.id());
  }
}

Process& Engine::respawn(Process& dead, std::function<void(Process&)> body,
                         Time start) {
  assert(dead.finished() && "respawn of a process that is still alive");
  return spawn(dead.name(), std::move(body), start);
}

Time Engine::run(Time until, const std::function<bool()>& stop_when) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > until) {
      now_ = until;
      return now_;
    }
    // Move the callback out before popping so it survives execution.
    Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).fn),
             top.kind};
    queue_.pop();
    if (sampler_ != nullptr) {
      while (next_sample_at_ <= ev.time) {
        now_ = next_sample_at_;
        sampler_->sample_now(next_sample_at_);
        next_sample_at_ += sampler_interval_;
      }
    }
    now_ = ev.time;
    ++events_executed_;
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete(obs::kEngineTrack, "dispatch", now_, 0, "seq",
                        static_cast<std::int64_t>(ev.seq));
    }
    if (profiler_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      ev.fn();
      const auto t1 = std::chrono::steady_clock::now();
      profiler_->record(
          ev.kind,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
    } else {
      ev.fn();
    }
    if (stop_when && stop_when()) return now_;
  }
  queue_drained_ = true;
  if (live_processes() > 0 && !deadlock_reported_) {
    // Every runnable fiber is blocked and no timers are pending: nothing can
    // ever wake anyone again.  Fail loudly instead of letting the caller
    // spin to its horizon or a test harness hit its TIMEOUT.
    deadlock_reported_ = true;
    std::fprintf(stderr,
                 "sim: DEADLOCK — event queue drained with %zu blocked "
                 "process(es)\n%s",
                 live_processes(), blocked_report().c_str());
  }
  return now_;
}

std::size_t Engine::live_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

bool Engine::deadlocked() const noexcept {
  return queue_drained_ && live_processes() > 0;
}

}  // namespace nscc::sim
