#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>

namespace nscc::sim {

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  getcontext(&context_);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_context_;
  // makecontext only passes ints, so split the `this` pointer in two.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() { kill(); }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const FiberKilled&) {
    // Normal teardown path: the stack has been unwound.
  }
  finished_ = true;
  // uc_link returns control to return_context_ (the engine).
}

void Fiber::resume() {
  assert(!finished_ && "resuming a finished fiber");
  started_ = true;
  swapcontext(&return_context_, &context_);
}

void Fiber::yield() {
  swapcontext(&context_, &return_context_);
  if (killing_) throw FiberKilled{};
}

void Fiber::kill() {
  if (finished_ || !started_) {
    finished_ = true;
    return;
  }
  killing_ = true;
  resume();  // The fiber unwinds via FiberKilled and finishes.
  assert(finished_);
}

}  // namespace nscc::sim
