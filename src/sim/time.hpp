// Virtual time for the discrete-event simulator.
//
// All computation and communication costs in NSCC are charged in virtual
// nanoseconds; a simulated run's "completion time" is the virtual clock at
// termination, playing the role wall-clock time played on the paper's SP2.
#pragma once

#include <cstdint>

namespace nscc::sim {

/// Virtual nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convert virtual time to floating-point seconds (for reporting).
[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Convert floating-point seconds to virtual time (rounds toward zero).
[[nodiscard]] constexpr Time from_seconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

}  // namespace nscc::sim
