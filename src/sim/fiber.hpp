// Cooperative fibers (ucontext-based) for process-oriented simulation.
//
// Each simulated processor runs as a fiber so the event engine can suspend
// it at blocking points (message receive, Global_Read, barrier) and resume
// it at a later virtual time, with a context switch two orders of magnitude
// cheaper than an OS thread handoff.  Exactly one fiber runs at a time,
// which also makes every simulation single-threaded and deterministic.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace nscc::sim {

/// Thrown inside a fiber to unwind its stack when the engine is destroyed
/// before the fiber body has finished.  Fiber bodies must let it propagate.
struct FiberKilled {};

class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfer control from the caller (the engine) into the fiber.  Returns
  /// when the fiber calls yield() or its body finishes.
  void resume();

  /// Transfer control from inside the fiber back to the engine.  Must only
  /// be called from within the fiber body.  Throws FiberKilled if the fiber
  /// is being torn down.
  void yield();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Resume the fiber one last time with the kill flag set, so its stack
  /// unwinds via FiberKilled.  No-op when already finished.
  void kill();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool finished_ = false;
  bool killing_ = false;
};

}  // namespace nscc::sim
