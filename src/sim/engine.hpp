// Discrete-event simulation engine with process-oriented semantics.
//
// The engine owns a virtual clock and an event queue.  Simulated processors
// are Process objects, each backed by a Fiber; exactly one process runs at a
// time and every event execution is ordered by (time, sequence number), so a
// whole simulation is deterministic given its seeds.
//
// Processes interact with virtual time through three verbs:
//   * delay(dt)   — charge dt of computation, then continue;
//   * suspend()   — block until some event calls resume();
//   * finishing the body — the process is done.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace nscc::sim {

class Engine;

class Process {
 public:
  enum class State { kReady, kRunning, kBlocked, kFinished };

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool finished() const noexcept {
    return state_ == State::kFinished;
  }

  /// Current virtual time (engine clock).  Valid from inside or outside.
  [[nodiscard]] Time now() const noexcept;

  /// Charge `dt` of virtual computation.  Must be called from inside the
  /// process.  dt must be >= 0.
  void delay(Time dt);

  /// Block until another event resumes this process.  Must be called from
  /// inside the process.
  void suspend();

  /// Make a blocked process runnable at virtual time `t` (>= now).  Must be
  /// called from engine context (an event handler or another process... any
  /// code outside this process).
  void resume_at(Time t);

  /// Resume at the current virtual time.
  void resume() { resume_at(now()); }

  Engine& engine() noexcept { return engine_; }

 private:
  friend class Engine;
  Process(Engine& engine, int id, std::string name,
          std::function<void()> body, std::size_t stack_bytes);

  Engine& engine_;
  int id_;
  std::string name_;
  State state_ = State::kReady;
  bool resume_scheduled_ = false;
  Fiber fiber_;
};

class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a process whose body starts executing at virtual time `start`.
  Process& spawn(std::string name, std::function<void(Process&)> body,
                 Time start = 0,
                 std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Schedule a plain event callback at virtual time `t` (>= now).
  void schedule(Time t, std::function<void()> fn) {
    schedule(t, obs::EventKind::kGeneric, std::move(fn));
  }
  /// Kind-tagged form: the attached Profiler attributes the event's
  /// wall-clock dispatch cost to `kind` (network delivery, fiber resume,
  /// watchdog, ...).  Identical virtual-time semantics.
  void schedule(Time t, obs::EventKind kind, std::function<void()> fn);

  /// Watchdog-timer API: like schedule(), but cancelable.  A canceled
  /// watchdog's event still occupies the queue until `t` and then does
  /// nothing (so cancellation cannot unblock run()'s termination early, it
  /// only suppresses the callback).  Used for receive timeouts and the DSM
  /// starvation watchdog.
  using WatchdogId = std::uint64_t;
  WatchdogId set_watchdog(Time t, std::function<void()> fn);
  /// Returns true when the watchdog had not fired yet (and now never will).
  bool cancel_watchdog(WatchdogId id) noexcept;

  /// Human-readable diagnostic of every unfinished process (name, id,
  /// state) plus queue/clock status — what you want printed when a run
  /// deadlocks.  Cheap enough to call unconditionally after run().
  [[nodiscard]] std::string blocked_report() const;

  /// Forcibly terminate a process: its fiber is resumed one last time with
  /// the kill flag set so the stack unwinds (destructors run), then the
  /// process is marked finished.  Pending resume events for it become
  /// no-ops.  Must be called from outside the victim (engine context or
  /// another process).  Models a node crash losing all volatile state.
  void kill(Process& p);

  /// Spawn a fresh process reusing a dead process's name (crash-restart).
  /// The new process has a new id; the caller re-wires any pointers held to
  /// the old Process.
  Process& respawn(Process& dead, std::function<void(Process&)> body,
                   Time start);

  /// Run until the event queue drains, the clock passes `until`, or
  /// `stop_when` (checked after every event) returns true.  Returns the
  /// final virtual time.
  Time run(Time until = std::numeric_limits<Time>::max(),
           const std::function<bool()>& stop_when = {});

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Number of spawned processes that have not finished.
  [[nodiscard]] std::size_t live_processes() const noexcept;

  /// True when run() drained the queue but live processes remain blocked —
  /// i.e. the simulation deadlocked (e.g. a Global_Read that can never be
  /// satisfied).
  [[nodiscard]] bool deadlocked() const noexcept;

  /// Total events executed (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  [[nodiscard]] Process* current() noexcept { return current_; }

  /// Attach an event tracer (nullptr detaches).  When attached and enabled,
  /// the engine records a zero-duration dispatch span per executed event on
  /// the engine track, names each spawned process's track, and processes
  /// record their delay() intervals as compute spans.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_; }

  /// Attach a metrics sampler: the run loop calls sampler->sample_now(t) at
  /// every multiple of `interval` the virtual clock crosses (before the
  /// first event at-or-after the boundary executes).  The sampler never
  /// injects events, so it cannot keep a drained queue alive.
  void set_sampler(obs::Sampler* sampler, Time interval) noexcept {
    sampler_ = sampler;
    sampler_interval_ = interval > 0 ? interval : 1;
    next_sample_at_ = now_ + sampler_interval_;
  }

  /// Attach a self-profiler (nullptr detaches).  When attached, the run
  /// loop times every dispatched event with the host's steady clock and
  /// attributes the cost to the event's kind, and schedule() tracks the
  /// queue's high-water mark.  Wall-clock readings never enter virtual
  /// time, so profiled runs stay byte-identical in simulated results.
  void set_profiler(obs::Profiler* profiler) noexcept { profiler_ = profiler; }
  [[nodiscard]] obs::Profiler* profiler() noexcept { return profiler_; }

 private:
  friend class Process;

  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
    obs::EventKind kind = obs::EventKind::kGeneric;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void run_process(Process& p);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  WatchdogId next_watchdog_ = 1;
  std::unordered_set<WatchdogId> live_watchdogs_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;
  bool queue_drained_ = false;
  bool deadlock_reported_ = false;
  obs::Tracer* tracer_ = nullptr;
  obs::Sampler* sampler_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  Time sampler_interval_ = 0;
  Time next_sample_at_ = 0;
};

}  // namespace nscc::sim
