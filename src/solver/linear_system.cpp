#include "solver/linear_system.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nscc::solver {

CsrMatrix CsrMatrix::from_rows(
    int cols, const std::vector<std::vector<std::pair<int, double>>>& rows) {
  CsrMatrix m(static_cast<int>(rows.size()), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    m.row_ptr_[r] = m.values_.size();
    for (const auto& [c, v] : rows[r]) {
      if (c < 0 || c >= cols) throw std::invalid_argument("CsrMatrix: bad column");
      m.col_.push_back(c);
      m.values_.push_back(v);
    }
  }
  m.row_ptr_[rows.size()] = m.values_.size();
  return m;
}

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  assert(static_cast<int>(x.size()) == cols_);
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t i = row_ptr_[static_cast<std::size_t>(r)];
         i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i) {
      sum += values_[i] * x[static_cast<std::size_t>(col_[i])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

double CsrMatrix::row_dot_excluding_diagonal(
    int row, const std::vector<double>& x) const {
  double sum = 0.0;
  for (std::size_t i = row_ptr_[static_cast<std::size_t>(row)];
       i < row_ptr_[static_cast<std::size_t>(row) + 1]; ++i) {
    if (col_[i] != row) sum += values_[i] * x[static_cast<std::size_t>(col_[i])];
  }
  return sum;
}

double CsrMatrix::diagonal(int row) const {
  for (std::size_t i = row_ptr_[static_cast<std::size_t>(row)];
       i < row_ptr_[static_cast<std::size_t>(row) + 1]; ++i) {
    if (col_[i] == row) return values_[i];
  }
  throw std::logic_error("CsrMatrix: missing diagonal entry");
}

double CsrMatrix::residual_inf(const std::vector<double>& x,
                               const std::vector<double>& b) const {
  double worst = 0.0;
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t i = row_ptr_[static_cast<std::size_t>(r)];
         i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i) {
      sum += values_[i] * x[static_cast<std::size_t>(col_[i])];
    }
    worst = std::max(worst, std::fabs(b[static_cast<std::size_t>(r)] - sum));
  }
  return worst;
}

bool CsrMatrix::strictly_diagonally_dominant() const {
  for (int r = 0; r < rows_; ++r) {
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t i = row_ptr_[static_cast<std::size_t>(r)];
         i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i) {
      if (col_[i] == r) {
        diag = std::fabs(values_[i]);
      } else {
        off += std::fabs(values_[i]);
      }
    }
    if (diag <= off) return false;
  }
  return true;
}

std::pair<const int*, const double*> CsrMatrix::row(int r, int& count) const {
  const std::size_t begin = row_ptr_[static_cast<std::size_t>(r)];
  count = static_cast<int>(row_ptr_[static_cast<std::size_t>(r) + 1] - begin);
  return {col_.data() + begin, values_.data() + begin};
}

LinearSystem make_poisson_2d(int n, std::uint64_t seed) {
  const int size = n * n;
  std::vector<std::vector<std::pair<int, double>>> rows(
      static_cast<std::size_t>(size));
  auto id = [n](int i, int j) { return i * n + j; };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      auto& row = rows[static_cast<std::size_t>(id(i, j))];
      // 4.0 + epsilon makes the system strictly dominant so the fully
      // asynchronous iteration is provably convergent [2].
      row.emplace_back(id(i, j), 4.04);
      if (i > 0) row.emplace_back(id(i - 1, j), -1.0);
      if (i + 1 < n) row.emplace_back(id(i + 1, j), -1.0);
      if (j > 0) row.emplace_back(id(i, j - 1), -1.0);
      if (j + 1 < n) row.emplace_back(id(i, j + 1), -1.0);
    }
  }
  LinearSystem sys;
  sys.a = CsrMatrix::from_rows(size, rows);
  util::Xoshiro256 rng(seed);
  sys.x_true.resize(static_cast<std::size_t>(size));
  for (double& v : sys.x_true) v = rng.uniform(-1.0, 1.0);
  sys.a.multiply(sys.x_true, sys.b);
  return sys;
}

LinearSystem make_dominant_random(int size, int nnz_per_row,
                                  double dominance_ratio, std::uint64_t seed) {
  if (dominance_ratio <= 1.0) {
    throw std::invalid_argument("dominance_ratio must exceed 1");
  }
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<std::pair<int, double>>> rows(
      static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    auto& row = rows[static_cast<std::size_t>(r)];
    double off_sum = 0.0;
    for (int k = 0; k < nnz_per_row; ++k) {
      int c = r;
      while (c == r) c = static_cast<int>(rng.below(static_cast<std::uint64_t>(size)));
      const double v = rng.uniform(-1.0, 1.0);
      row.emplace_back(c, v);
      off_sum += std::fabs(v);
    }
    row.emplace_back(r, dominance_ratio * std::max(off_sum, 0.1));
  }
  LinearSystem sys;
  sys.a = CsrMatrix::from_rows(size, rows);
  sys.x_true.resize(static_cast<std::size_t>(size));
  for (double& v : sys.x_true) v = rng.uniform(-1.0, 1.0);
  sys.a.multiply(sys.x_true, sys.b);
  return sys;
}

}  // namespace nscc::solver
