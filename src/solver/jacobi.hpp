// Jacobi iteration, sequential baseline and simulated-parallel versions.
//
// x_i^{t+1} = (b_i - sum_{j != i} a_ij x_j^t) / a_ii.
//
// For strictly diagonally dominant systems the iteration contracts in the
// infinity norm, and — the theoretical backbone of the paper's whole
// programme — it remains convergent under *totally asynchronous* execution
// with arbitrary (finite) staleness of the x_j it reads (Bertsekas &
// Tsitsiklis [2], the paper's reference for partial asynchrony).  The
// parallel version partitions rows in blocks across simulated nodes and
// exchanges boundary values through the shared space in the three styles:
//
//   * kSynchronous  — barrier + Global_Read(age 0) each sweep;
//   * kAsynchronous — plain reads of whatever neighbour values arrived;
//   * kPartialAsync — Global_Read(age): bounded staleness, which both
//     bounds the extra iterations asynchrony costs and licenses update
//     coalescing on a congested network.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/shared_space.hpp"
#include "harness/run_config.hpp"
#include "recovery/recovery.hpp"
#include "rt/vm.hpp"
#include "solver/linear_system.hpp"

namespace nscc::solver {

/// Shared-location id of processor `owner`'s row block.  Public so the
/// harness tolerance contract audits the same locations the blocks share.
[[nodiscard]] inline dsm::LocationId block_loc(int owner) noexcept {
  return 700 + owner;
}

struct JacobiConfig {
  double tolerance = 1e-8;      ///< Converged when ||b - Ax||_inf <= tol.
  int max_sweeps = 20000;
  int check_interval = 10;      ///< Residual checks every this many sweeps.
  /// Virtual cost per nonzero processed (77 MHz-class node).
  sim::Time cost_per_nonzero = 2 * sim::kMicrosecond;
  /// Per-sweep fixed overhead per row block.
  sim::Time sweep_overhead = 200 * sim::kMicrosecond;
  std::uint64_t seed = 1;
};

struct JacobiResult {
  bool converged = false;
  int sweeps = 0;
  double residual = 0.0;
  double error_inf = 0.0;  ///< ||x - x_true||_inf when x_true is known.
  sim::Time completion_time = 0;
  std::vector<double> x;
};

/// Sequential Jacobi with virtual-time accounting.
JacobiResult run_sequential_jacobi(const LinearSystem& sys,
                                   const JacobiConfig& config);

/// Mode, age, seed, and the propagation policy live in the embedded
/// harness::RunConfig (the solver honours the policy's coalesce and
/// read_timeout fields); JacobiConfig::seed is shadowed by the RunConfig one
/// so there is a single seed.
struct ParallelJacobiConfig : JacobiConfig, harness::RunConfig {
  using harness::RunConfig::seed;
  int processors = 4;
  /// OS-load model, as in the other applications.
  double node_speed_spread = 0.15;
  double per_sweep_jitter = 0.10;
};

struct ParallelJacobiResult : JacobiResult {
  std::uint64_t messages_sent = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  double mean_staleness = 0.0;
  double bus_utilization = 0.0;
  bool deadlocked = false;
  std::uint64_t read_escalations = 0;
  /// Crash-recovery diagnostics (zero unless config.recovery was enabled).
  recovery::Stats recovery;
  std::uint64_t degraded_reads = 0;
  /// Damaged DSM frames quarantined (integrity checking enabled only).
  std::uint64_t integrity_dropped = 0;
  /// Consistency-model diagnostics (zero under the default nonstrict
  /// model): updates parked until an acquire, parked updates published at
  /// acquires, and release stamps that arrived out of order.
  std::uint64_t updates_parked = 0;
  std::uint64_t updates_flushed = 0;
  std::uint64_t ooo_updates = 0;
  /// Partition diagnostics (zero unless the fault plan scheduled
  /// partition/blackhole windows).
  std::uint64_t partition_drops = 0;        ///< Frames cut by the split.
  std::uint64_t partition_stale_served = 0; ///< Minority-side stale serves.
  std::uint64_t heal_frames = 0;            ///< Anti-entropy republishes.
  std::uint64_t diverged_locations = 0;     ///< Reader locations diverged.
  std::uint64_t reconciled_locations = 0;   ///< Diverged marks later healed.
  /// Tolerance-contract violations flagged by the staleness sanitizer
  /// (zero when the machine runs with --sanitize=off).
  std::uint64_t sanitize_violations = 0;
};

/// Row-block parallel Jacobi on a fresh simulated machine.
ParallelJacobiResult run_parallel_jacobi(const LinearSystem& sys,
                                         const ParallelJacobiConfig& config,
                                         rt::MachineConfig machine,
                                         double loader_offered_bps = 0.0);

}  // namespace nscc::solver
