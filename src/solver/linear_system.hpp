// Sparse linear systems for the asynchronous iterative solver application.
//
// The paper's opening example of a data-race tolerant application class is
// the "iterative equation solver" (Section 1; Bertsekas & Tsitsiklis [2]).
// This module provides the substrate: compressed-sparse-row matrices,
// generators for the classic test problems (2-D Poisson five-point stencil,
// diagonally dominant random systems), and the Jacobi splitting machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nscc::solver {

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int rows, int cols) : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {}

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Build from per-row (column, value) lists; columns need not be sorted.
  static CsrMatrix from_rows(
      int cols, const std::vector<std::vector<std::pair<int, double>>>& rows);

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Row dot product with x, skipping the diagonal entry.
  [[nodiscard]] double row_dot_excluding_diagonal(
      int row, const std::vector<double>& x) const;

  [[nodiscard]] double diagonal(int row) const;

  /// ||b - A x||_inf.
  [[nodiscard]] double residual_inf(const std::vector<double>& x,
                                    const std::vector<double>& b) const;

  /// True when strictly diagonally dominant (sufficient for asynchronous
  /// Jacobi convergence under arbitrary bounded staleness [2]).
  [[nodiscard]] bool strictly_diagonally_dominant() const;

  // Row access for partition-local iteration.
  [[nodiscard]] std::pair<const int*, const double*> row(int r,
                                                         int& count) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<int> col_;
  std::vector<double> values_;
};

/// Ax = b with a known generating solution (for exact-error checks).
struct LinearSystem {
  CsrMatrix a;
  std::vector<double> b;
  std::vector<double> x_true;

  [[nodiscard]] int size() const noexcept { return a.rows(); }
};

/// Five-point 2-D Poisson problem on an n x n grid (the standard iterative
/// solver benchmark); strictly diagonally dominant after the h^2 scaling.
LinearSystem make_poisson_2d(int n, std::uint64_t seed);

/// Random sparse strictly-diagonally-dominant system: `nnz_per_row`
/// off-diagonals, dominance ratio > 1 controls the Jacobi contraction rate.
LinearSystem make_dominant_random(int size, int nnz_per_row,
                                  double dominance_ratio, std::uint64_t seed);

}  // namespace nscc::solver
