#include "solver/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>

#include "harness/policy.hpp"
#include "net/load_generator.hpp"
#include "recovery/recovery.hpp"

namespace nscc::solver {

namespace {

constexpr int kResidualTag = 800;
constexpr int kDecisionTag = 801;
constexpr int kGatherTag = 802;

/// Contiguous row blocks: owner p holds [starts[p], starts[p+1]).
std::vector<int> block_starts(int size, int parts) {
  std::vector<int> starts(static_cast<std::size_t>(parts) + 1);
  for (int p = 0; p <= parts; ++p) {
    starts[static_cast<std::size_t>(p)] =
        static_cast<int>(static_cast<long long>(size) * p / parts);
  }
  return starts;
}

/// Everything a block task needs to continue from a reduce-round boundary:
/// the sweep counter, its own block, and its view of the full vector.
/// Checkpoints are taken only at reduce boundaries so a restart never
/// replays half a residual collective (the rounds are anonymous counts).
class BlockSnapshot : public recovery::Checkpointable {
 public:
  BlockSnapshot(int& sweep, std::vector<double>& x, std::vector<double>& mine)
      : sweep_(sweep), x_(x), mine_(mine) {}

  rt::Packet checkpoint_state() override {
    rt::Packet p;
    p.pack_i32(sweep_);
    p.pack_double_vec(x_);
    p.pack_double_vec(mine_);
    return p;
  }

  void restore_state(rt::Packet& p) override {
    sweep_ = p.unpack_i32();
    x_ = p.unpack_double_vec();
    mine_ = p.unpack_double_vec();
  }

 private:
  int& sweep_;
  std::vector<double>& x_;
  std::vector<double>& mine_;
};

}  // namespace

JacobiResult run_sequential_jacobi(const LinearSystem& sys,
                                   const JacobiConfig& config) {
  const int n = sys.size();
  JacobiResult result;
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  sim::Time now = 0;
  const auto sweep_cost = static_cast<sim::Time>(sys.a.nonzeros()) *
                              config.cost_per_nonzero +
                          config.sweep_overhead;

  for (int sweep = 1; sweep <= config.max_sweeps; ++sweep) {
    for (int r = 0; r < n; ++r) {
      next[static_cast<std::size_t>(r)] =
          (sys.b[static_cast<std::size_t>(r)] -
           sys.a.row_dot_excluding_diagonal(r, x)) /
          sys.a.diagonal(r);
    }
    x.swap(next);
    now += sweep_cost;
    result.sweeps = sweep;
    if (sweep % config.check_interval == 0) {
      now += sweep_cost / 4;  // Residual evaluation pass.
      result.residual = sys.a.residual_inf(x, sys.b);
      if (result.residual <= config.tolerance) {
        result.converged = true;
        break;
      }
    }
  }
  if (!result.converged) result.residual = sys.a.residual_inf(x, sys.b);
  result.completion_time = now;
  double err = 0.0;
  for (int r = 0; r < n; ++r) {
    err = std::max(err, std::fabs(x[static_cast<std::size_t>(r)] -
                                  sys.x_true[static_cast<std::size_t>(r)]));
  }
  result.error_inf = err;
  result.x = std::move(x);
  return result;
}

ParallelJacobiResult run_parallel_jacobi(const LinearSystem& sys,
                                         const ParallelJacobiConfig& config,
                                         rt::MachineConfig machine,
                                         double loader_offered_bps) {
  const int n = sys.size();
  const int P = config.processors;
  machine.ntasks = P;
  machine.seed = config.seed;
  const auto starts = block_starts(n, P);
  auto owner_of = [&](int row) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), row);
    return static_cast<int>(it - starts.begin()) - 1;
  };

  // Import sets: which owners' blocks each task needs.
  std::vector<std::set<int>> imports(static_cast<std::size_t>(P));
  for (int r = 0; r < n; ++r) {
    const int me = owner_of(r);
    int count = 0;
    const auto [cols, vals] = sys.a.row(r, count);
    (void)vals;
    for (int i = 0; i < count; ++i) {
      const int o = owner_of(cols[i]);
      if (o != me) imports[static_cast<std::size_t>(me)].insert(o);
    }
  }
  // Reader sets are the transpose.
  std::vector<std::vector<int>> readers(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    for (int src : imports[static_cast<std::size_t>(p)]) {
      readers[static_cast<std::size_t>(src)].push_back(p);
    }
  }

  rt::VirtualMachine vm(machine);

  std::unique_ptr<recovery::Coordinator> coord;
  if (config.recovery.enabled()) {
    coord = std::make_unique<recovery::Coordinator>(vm, config.recovery);
  }

  util::Xoshiro256 skew_rng(config.seed ^ 0x5ca1eULL);
  std::vector<double> speed(static_cast<std::size_t>(P));
  for (double& s : speed) {
    s = 1.0 + config.node_speed_spread * skew_rng.uniform01();
  }

  struct Outcome {
    std::vector<double> block;
    int sweeps = 0;
    double residual = 0.0;
    dsm::DsmStats dsm;
  };
  std::vector<Outcome> outcomes(static_cast<std::size_t>(P));

  for (int me = 0; me < P; ++me) {
    vm.add_task("block" + std::to_string(me), [&, me](rt::Task& task) {
      Outcome& out = outcomes[static_cast<std::size_t>(me)];
      util::Xoshiro256 jitter_rng = task.rng().split(0xba5e);
      const double my_speed = speed[static_cast<std::size_t>(me)];
      const int lo = starts[static_cast<std::size_t>(me)];
      const int hi = starts[static_cast<std::size_t>(me) + 1];

      recovery::Coordinator* rc = coord.get();
      dsm::SharedSpace space(
          task, harness::make_policy(
                    config, {.coalesce = true, .recovery = rc, .self = me}));
      space.declare_written(block_loc(me), readers[static_cast<std::size_t>(me)]);
      for (int src : imports[static_cast<std::size_t>(me)]) {
        space.declare_read(block_loc(src), src);
      }

      std::vector<double> x(static_cast<std::size_t>(n), 0.0);
      std::vector<double> mine(static_cast<std::size_t>(hi - lo), 0.0);

      std::size_t my_nnz = 0;
      for (int r = lo; r < hi; ++r) {
        int count = 0;
        (void)sys.a.row(r, count);
        my_nnz += static_cast<std::size_t>(count);
      }
      const auto sweep_cost =
          static_cast<sim::Time>(my_nnz) * config.cost_per_nonzero +
          config.sweep_overhead;

      auto publish = [&](dsm::Iteration sweep) {
        rt::Packet p;
        p.pack_double_vec(mine);
        space.write(block_loc(me), sweep, std::move(p));
      };
      auto absorb = [&](int src) {
        const auto& v = space.read(block_loc(src));
        if (!v.valid) return;
        rt::Packet data = v.data;
        const auto block = data.unpack_double_vec();
        const int slo = starts[static_cast<std::size_t>(src)];
        for (std::size_t i = 0; i < block.size(); ++i) {
          x[static_cast<std::size_t>(slo) + i] = block[i];
        }
      };

      bool done = false;
      int sweep = 0;

      // The residual reduction is an anonymous collective in the legacy
      // format; with recovery enabled each contribution is stamped with its
      // sender and reduce round so the coordinator can skip dead peers and
      // answer a rejoined straggler's replay of an already-finished round.
      auto reduce = [&](double local, int round) {
        if (me == 0) {
          double global = local;
          if (rc == nullptr) {
            for (int i = 1; i < P; ++i) {
              global = std::max(
                  global, task.recv(kResidualTag).payload.unpack_double());
            }
          } else {
            std::vector<bool> got(static_cast<std::size_t>(P), false);
            for (;;) {
              bool need = false;
              for (int i = 1; i < P; ++i) {
                if (!got[static_cast<std::size_t>(i)] && rc->alive(i)) {
                  need = true;
                }
              }
              if (!need) break;
              auto msg = task.recv_timeout(kResidualTag,
                                           rc->config().heartbeat_interval);
              if (!msg) continue;  // Re-evaluate membership.
              rt::Packet pl = msg->payload;
              const int sender = pl.unpack_i32();
              const int r = pl.unpack_i32();
              const double v = pl.unpack_double();
              if (r < round) {
                // A rejoined node catching up through a round everyone else
                // finished: tell it to keep sweeping.
                rt::Packet d;
                d.pack_i32(r);
                d.pack_u8(0);
                task.send(sender, kDecisionTag, d);
                continue;
              }
              global = std::max(global, v);
              got[static_cast<std::size_t>(sender)] = true;
            }
          }
          out.residual = global;
          const bool conv = global <= config.tolerance;
          rt::Packet decision;
          if (rc != nullptr) decision.pack_i32(round);
          decision.pack_u8(conv ? 1 : 0);
          for (int i = 1; i < P; ++i) {
            if (rc == nullptr || rc->alive(i)) {
              task.send(i, kDecisionTag, decision);
            }
          }
          return conv;
        }
        rt::Packet p;
        if (rc != nullptr) {
          p.pack_i32(me);
          p.pack_i32(round);
        }
        p.pack_double(local);
        task.send(0, kResidualTag, std::move(p));
        if (rc == nullptr) {
          return task.recv(kDecisionTag).payload.unpack_u8() == 1;
        }
        // Bounded wait: while we sit here we are not publishing, and a
        // coordinator blocked in Global_Read on *our* stale block never
        // reaches the reduce that would answer us.  Giving up after a
        // patience window and sweeping on breaks that cycle; the abandoned
        // round's residual is answered inline at the coordinator's next
        // reduce and discarded here as stale.
        const int patience = 2 * std::max(1, static_cast<int>(
            rc->config().phi_threshold));
        for (int waits = 0;;) {
          auto msg =
              task.recv_timeout(kDecisionTag, rc->config().heartbeat_interval);
          if (!msg) {
            // The coordinator is gone: no decision is coming.  Keep sweeping
            // toward max_sweeps rather than blocking forever.
            if (!rc->alive(0)) return false;
            if (++waits >= patience) return false;
            continue;
          }
          rt::Packet pl = msg->payload;
          const int r = pl.unpack_i32();
          const bool conv = pl.unpack_u8() == 1;
          // A converged decision ends the run whatever its round: under
          // recovery the stop is tentative anyway, and a straggler that
          // abandoned that round must not sweep past the shutdown.
          if (conv) return true;
          if (r < round) continue;  // A decision queued while we were down.
          return conv;
        }
      };

      BlockSnapshot snapshot(sweep, x, mine);
      const std::int64_t restored =
          rc != nullptr ? rc->restore(task, snapshot) : -1;
      if (restored < 0) {
        publish(0);
        if (rc != nullptr) rc->maybe_checkpoint(task, 0, snapshot);
      } else {
        // Re-announce the restored block: peers with newer copies drop the
        // update as stale; our own local copy must exist to serve demands.
        publish(sweep);
      }

      while (!done && sweep < config.max_sweeps) {
        ++sweep;
        if (config.mode == dsm::Mode::kSynchronous) task.barrier();
        for (int src : imports[static_cast<std::size_t>(me)]) {
          switch (config.mode) {
            case dsm::Mode::kSynchronous:
              (void)space.global_read(block_loc(src), sweep - 1, 0);
              break;
            case dsm::Mode::kPartialAsync:
              (void)space.global_read(block_loc(src), sweep - 1, config.age);
              break;
            case dsm::Mode::kAsynchronous:
              space.poll();
              break;
          }
          absorb(src);
        }

        for (int r = lo; r < hi; ++r) {
          mine[static_cast<std::size_t>(r - lo)] =
              (sys.b[static_cast<std::size_t>(r)] -
               sys.a.row_dot_excluding_diagonal(r, x)) /
              sys.a.diagonal(r);
        }
        for (int r = lo; r < hi; ++r) {
          x[static_cast<std::size_t>(r)] = mine[static_cast<std::size_t>(r - lo)];
        }

        const double jitter =
            1.0 + config.per_sweep_jitter * jitter_rng.uniform(-1.0, 1.0);
        task.compute(static_cast<sim::Time>(
            static_cast<double>(sweep_cost) * my_speed * jitter));
        publish(sweep);
        if (rc != nullptr) rc->note_progress(task, sweep);

        // Distributed convergence test: a loose periodic reduction on the
        // (possibly stale) local views, followed by a verified phase when it
        // tentatively passes.  After a barrier every previously published
        // block has been delivered (FIFO bus), so the verified local views
        // equal the final assembled state and the stop decision is exact.
        if (sweep % config.check_interval == 0) {
          auto local_residual = [&] {
            double local = 0.0;
            for (int r = lo; r < hi; ++r) {
              double sum = 0.0;
              int count = 0;
              const auto [cols, vals] = sys.a.row(r, count);
              for (int i = 0; i < count; ++i) {
                sum += vals[i] * x[static_cast<std::size_t>(cols[i])];
              }
              local = std::max(
                  local, std::fabs(sys.b[static_cast<std::size_t>(r)] - sum));
            }
            task.compute(static_cast<sim::Time>(
                static_cast<double>(static_cast<sim::Time>(my_nnz) *
                                    config.cost_per_nonzero) *
                my_speed / 4.0));
            return local;
          };
          if (reduce(local_residual(), sweep)) {
            if (rc != nullptr) {
              // Recovery mode accepts the tentative decision: the verifying
              // barrier cannot be run while a peer may be dead, so the stop
              // is made on possibly-stale views (part of the degraded-mode
              // quality loss; the driver reports the assembled residual).
              done = true;
            } else {
              // Tentative pass on stale views: verify on flushed, fresh ones.
              task.barrier();
              space.poll();
              for (int src : imports[static_cast<std::size_t>(me)]) {
                absorb(src);
              }
              done = reduce(local_residual(), sweep);
            }
          }
          if (rc != nullptr && !done) {
            // Reduce-round boundary: no collective in flight, safe to snap.
            rc->maybe_checkpoint(task, sweep, snapshot);
          }
        }
      }
      out.sweeps = sweep;
      out.block = mine;
      out.dsm = space.stats();
    });
  }

  net::LoadGenerator loader(vm.engine(), vm.bus(),
                            net::LoadGeneratorConfig{
                                .offered_bps = loader_offered_bps,
                                .frame_payload_bytes = 1024,
                                .poisson = true,
                                .seed = config.seed ^ 0x70adULL,
                            });
  const sim::Time horizon = 24LL * 3600 * sim::kSecond;
  const sim::Time end = vm.run(horizon);
  loader.stop();

  ParallelJacobiResult result;
  result.completion_time = end;
  result.deadlocked = vm.deadlocked() || end >= horizon;
  result.bus_utilization = vm.network_utilization();

  // Assemble the final solution from the per-task blocks.
  result.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int p = 0; p < P; ++p) {
    const Outcome& out = outcomes[static_cast<std::size_t>(p)];
    for (std::size_t i = 0; i < out.block.size(); ++i) {
      result.x[static_cast<std::size_t>(starts[static_cast<std::size_t>(p)]) + i] =
          out.block[i];
    }
    result.sweeps = std::max(result.sweeps, out.sweeps);
    result.global_read_blocks += out.dsm.global_read_blocks;
    result.global_read_block_time += out.dsm.global_read_block_time;
    result.messages_sent += vm.task(p).stats().messages_sent;
    result.read_escalations += out.dsm.read_escalations;
    result.degraded_reads += out.dsm.degraded_reads;
    result.integrity_dropped += out.dsm.integrity_dropped;
    result.partition_stale_served += out.dsm.partition_stale_served;
    result.heal_frames += out.dsm.heal_frames;
    result.diverged_locations += out.dsm.diverged_marks;
    result.reconciled_locations += out.dsm.reconciled_marks;
    result.updates_parked += out.dsm.updates_parked;
    result.updates_flushed += out.dsm.updates_flushed;
    result.ooo_updates += out.dsm.ooo_updates;
  }
  if (vm.fault_injector() != nullptr) {
    result.partition_drops = vm.fault_injector()->stats().partition_drops +
                             vm.fault_injector()->stats().blackhole_drops;
  }
  if (coord != nullptr) result.recovery = coord->stats();
  // The machine-wide staleness histogram is every block's per-task histogram
  // merged at the source (single registry), so its mean IS the run mean.
  result.mean_staleness =
      vm.obs().registry().histogram("dsm.staleness").mean();
  if (vm.sanitizer() != nullptr) {
    result.sanitize_violations = vm.sanitizer()->stats().total_violations();
  }
  result.residual = sys.a.residual_inf(result.x, sys.b);
  result.converged = result.residual <= config.tolerance;
  double err = 0.0;
  for (int r = 0; r < n; ++r) {
    err = std::max(err, std::fabs(result.x[static_cast<std::size_t>(r)] -
                                  sys.x_true[static_cast<std::size_t>(r)]));
  }
  result.error_inf = err;
  return result;
}

}  // namespace nscc::solver
