#include "recovery/recovery.hpp"

#include <algorithm>
#include <cassert>

#include "rt/vm.hpp"

namespace nscc::recovery {

const char* policy_name(Policy p) noexcept {
  switch (p) {
    case Policy::kNone:
      return "none";
    case Policy::kDegraded:
      return "degraded";
    case Policy::kRejoin:
      return "rejoin";
  }
  return "?";
}

std::optional<Policy> policy_from_name(const std::string& name) {
  if (name == "none") return Policy::kNone;
  if (name == "degraded") return Policy::kDegraded;
  if (name == "rejoin") return Policy::kRejoin;
  return std::nullopt;
}

Coordinator::Coordinator(rt::VirtualMachine& vm, Config cfg)
    : vm_(vm), cfg_(cfg) {
  // Per-node membership views whenever split-brain is possible: the quorum
  // gate is on, or the fault plan can actually partition the cluster.
  per_node_ = cfg_.quorum_fraction > 0.0 || vm_.config().fault.partitionable();
  vm_.add_start_hook([this] { on_start(); });
  vm_.add_flush_hook([this] { flush_obs(); });
  vm_.set_link_failure_hook(
      [this](int src, int dst) { on_link_failure(src, dst); });
}

void Coordinator::on_start() {
  const int n = vm_.size();
  const sim::Time now = vm_.engine().now();
  last_seen_.assign(static_cast<std::size_t>(n), now);
  alive_.assign(static_cast<std::size_t>(n), true);
  epochs_.assign(static_cast<std::size_t>(n), 0);
  if (per_node_) {
    views_.assign(static_cast<std::size_t>(n),
                  std::vector<PeerView>(static_cast<std::size_t>(n),
                                        PeerView{now, PeerState::kAlive,
                                                 false}));
    for (int i = 0; i < n; ++i) {
      vm_.task(i).set_tag_handler(
          rt::kHeartbeatTag,
          [this, i](rt::Message m) { on_heartbeat_view(i, m); });
    }
  } else {
    for (int i = 0; i < n; ++i) {
      vm_.task(i).set_tag_handler(
          rt::kHeartbeatTag, [this](rt::Message m) { on_heartbeat(m); });
    }
  }
  // Crash accounting and (under kRejoin) respawn scheduling mirror the VM's
  // own stateful-kill schedule.
  const fault::FaultPlan& plan = vm_.config().fault;
  if (vm_.fault_injector() != nullptr &&
      plan.crash_semantics == fault::CrashSemantics::kStateful) {
    for (const auto& entry : plan.nodes) {
      const int node = entry.first;
      if (node < 0 || node >= n) continue;
      for (const fault::Window& w : entry.second.crashes) {
        vm_.engine().schedule(w.start, [this] { ++stats_.crashes; });
        if (cfg_.policy == Policy::kRejoin) {
          vm_.engine().schedule(w.end, [this, node, w] {
            schedule_respawn(node, w.start);
          });
        }
      }
    }
  }
  if (n > 1 && cfg_.heartbeat_interval > 0) {
    tick_scheduled_ = true;
    vm_.engine().schedule(now + cfg_.heartbeat_interval, [this] { tick(); });
  }
}

void Coordinator::schedule_respawn(int node, sim::Time crash_start) {
  if (vm_.task_alive(node)) return;
  const int n = vm_.size();
  const sim::Time now = vm_.engine().now();
  // A victim may not rejoin into a minority island: it would restore a
  // stale checkpoint and double-write against the majority's epoch.  Wait
  // (re-checking every heartbeat interval) until the scheduled topology
  // lets it reach a quorum of its peers again.
  if (per_node_ && cfg_.quorum_fraction > 0.0) {
    int reachable = 1;  // Self.
    for (int j = 0; j < n; ++j) {
      if (j != node && vm_.config().fault.reachable(node, j, now)) {
        ++reachable;
      }
    }
    if (reachable < quorum_size()) {
      ++stats_.deferred_rejoins;
      vm_.engine().schedule(now + cfg_.heartbeat_interval,
                            [this, node, crash_start] {
                              schedule_respawn(node, crash_start);
                            });
      return;
    }
  }
  vm_.respawn_task(node);
  ++stats_.rejoins;
  stats_.recovery_latency += now - crash_start;
  // Grace period: the detector must not re-suspect the node before its
  // first post-rejoin heartbeat lands.
  last_seen_[static_cast<std::size_t>(node)] = now;
  alive_[static_cast<std::size_t>(node)] = true;
  if (per_node_) {
    for (int i = 0; i < vm_.size(); ++i) {
      PeerView& v = views_[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(node)];
      v.last_seen = now;
      v.state = PeerState::kAlive;
      v.parked = false;
    }
  }
}

void Coordinator::tick() {
  tick_scheduled_ = false;
  const int n = vm_.size();
  const sim::Time now = vm_.engine().now();

  // Progress fingerprint: total virtual compute across all tasks.  The
  // heartbeat machinery itself charges no compute, so a frozen fingerprint
  // means every fiber is blocked; after stall_ticks_limit of those the
  // detector stops rescheduling itself, the event queue can drain, and the
  // engine diagnoses the deadlock instead of heartbeating to the horizon.
  std::uint64_t fp = 0;
  bool any_alive = false;
  for (int i = 0; i < n; ++i) {
    fp += static_cast<std::uint64_t>(vm_.task(i).stats().compute_time);
    if (vm_.task_alive(i)) any_alive = true;
  }
  if (!any_alive) return;
  if (fp == last_fingerprint_) {
    if (++stall_ticks_ >= cfg_.stall_ticks_limit) return;
  } else {
    stall_ticks_ = 0;
    last_fingerprint_ = fp;
  }

  for (int i = 0; i < n; ++i) {
    if (!vm_.task_alive(i)) continue;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      rt::Packet hb;
      hb.pack_u64(vm_.task(i).epoch());
      vm_.post(i, j, rt::kHeartbeatTag, std::move(hb), {},
               rt::Reliability::kReliable);
    }
  }

  if (per_node_) {
    tick_views(now);
  } else {
    tick_global(now);
  }

  tick_scheduled_ = true;
  vm_.engine().schedule(now + cfg_.heartbeat_interval, [this] { tick(); });
}

void Coordinator::tick_global(sim::Time now) {
  const int n = vm_.size();
  const sim::Time silence_limit = suspect_limit();
  for (int i = 0; i < n; ++i) {
    if (!alive_[static_cast<std::size_t>(i)]) continue;
    if (now - last_seen_[static_cast<std::size_t>(i)] <= silence_limit) {
      continue;
    }
    // A live fiber is never silent (heartbeats are engine-context posts),
    // so silence means the process ended.  Without a crash window on
    // record that is normal completion, not a failure.
    if (crash_start_before(i, now) > 0) {
      suspect(i, now);
    } else {
      alive_[static_cast<std::size_t>(i)] = false;
    }
  }
}

void Coordinator::tick_views(sim::Time now) {
  const int n = vm_.size();
  const sim::Time silence_limit = suspect_limit();
  for (int i = 0; i < n; ++i) {
    if (!vm_.task_alive(i)) continue;  // A dead observer judges nobody.
    const bool quorum = in_quorum(i);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      PeerView& v = views_[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
      if (v.state == PeerState::kDead) continue;
      if (now - v.last_seen <= silence_limit) continue;
      // Unlike the global detector, silence here does not prove the
      // process ended: a partition or blackhole silences live fibers
      // too.  The evidence gate accepts either a crash window on record
      // or a scheduled cut between observer and peer; bare silence with
      // neither is normal completion and goes dead without stats.
      const sim::Time crashed = crash_start_before(j, now);
      const bool cut = !vm_.config().fault.reachable(i, j, now);
      if (crashed == 0 && !cut) {
        v.state = PeerState::kDead;
        continue;
      }
      if (v.state == PeerState::kAlive) {
        v.state = PeerState::kSuspect;
        vm_.obs().tracer().instant(i, "recovery.suspect_peer", now, "peer",
                                   static_cast<std::int64_t>(j));
        continue;
      }
      // kSuspect → kDead only while the observer holds a quorum; a
      // minority-side observer parks here and keeps degrading instead of
      // declaring (and possibly double-writing against) the other side.
      if (quorum) {
        declare_dead(i, j, now);
      } else if (!v.parked) {
        v.parked = true;
        ++stats_.quorum_parks;
        vm_.obs().tracer().instant(i, "recovery.quorum_park", now, "peer",
                                   static_cast<std::int64_t>(j));
      }
    }
  }
}

void Coordinator::declare_dead(int observer, int node, sim::Time now) {
  PeerView& v = views_[static_cast<std::size_t>(observer)]
                      [static_cast<std::size_t>(node)];
  v.state = PeerState::kDead;
  v.parked = false;
  ++stats_.suspected;
  // Mutual dead declaration: the peer being declared had already declared
  // the observer dead — the membership has split-brained.  A majority
  // quorum (fraction > 0.5) makes this impossible: at most one side of a
  // split can hold it, and the other parks.
  if (views_[static_cast<std::size_t>(node)]
            [static_cast<std::size_t>(observer)]
                .state == PeerState::kDead) {
    ++stats_.split_brain_declarations;
    vm_.obs().tracer().instant(observer, "recovery.split_brain", now, "peer",
                               static_cast<std::int64_t>(node));
  }
  const sim::Time crashed = crash_start_before(node, now);
  if (crashed > 0) stats_.detection_latency += now - crashed;
  vm_.obs().tracer().instant(observer, "recovery.declare_dead", now, "peer",
                             static_cast<std::int64_t>(node));
}

void Coordinator::on_heartbeat(const rt::Message& msg) {
  const auto src = static_cast<std::size_t>(msg.src);
  last_seen_[src] = std::max(last_seen_[src], vm_.engine().now());
  epochs_[src] = std::max(epochs_[src], msg.epoch);
  if (!alive_[src]) {
    alive_[src] = true;
    vm_.obs().tracer().instant(msg.src, "recovery.rejoin_seen",
                               vm_.engine().now(), "epoch",
                               static_cast<std::int64_t>(msg.epoch));
  }
}

void Coordinator::on_heartbeat_view(int observer, const rt::Message& msg) {
  const auto src = static_cast<std::size_t>(msg.src);
  const sim::Time now = vm_.engine().now();
  last_seen_[src] = std::max(last_seen_[src], now);
  epochs_[src] = std::max(epochs_[src], msg.epoch);
  PeerView& v = views_[static_cast<std::size_t>(observer)][src];
  v.last_seen = std::max(v.last_seen, now);
  v.parked = false;
  if (v.state != PeerState::kAlive) {
    if (v.state == PeerState::kDead) {
      vm_.obs().tracer().instant(msg.src, "recovery.rejoin_seen", now,
                                 "observer",
                                 static_cast<std::int64_t>(observer));
    }
    v.state = PeerState::kAlive;
  }
}

void Coordinator::on_link_failure(int src, int dst) {
  const int n = vm_.size();
  if (src < 0 || dst < 0 || src >= n || dst >= n || src == dst) return;
  const sim::Time now = vm_.engine().now();
  if (per_node_) {
    if (views_.empty()) return;
    // The sender exhausted its retransmit budget on this peer: treat that
    // as a missed-heartbeat-class signal and suspect, never declare —
    // declaring stays quorum-gated in the detector tick.
    PeerView& v = views_[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(dst)];
    if (v.state == PeerState::kAlive) {
      v.state = PeerState::kSuspect;
      vm_.obs().tracer().instant(src, "recovery.suspect_peer", now, "peer",
                                 static_cast<std::int64_t>(dst));
    }
    return;
  }
  if (alive_.empty() || !alive_[static_cast<std::size_t>(dst)]) return;
  // Global view: an abandoned link to a peer with a crash window on record
  // is failure evidence; without one it is normal completion noise (the
  // peer drained its mailbox and exited) and stays un-counted.
  if (crash_start_before(dst, now) > 0) suspect(dst, now);
}

void Coordinator::suspect(int node, sim::Time now) {
  alive_[static_cast<std::size_t>(node)] = false;
  ++stats_.suspected;
  const sim::Time crashed = crash_start_before(node, now);
  if (crashed > 0) stats_.detection_latency += now - crashed;
  vm_.obs().tracer().instant(node, "recovery.suspect", now, "silence_ns",
                             static_cast<std::int64_t>(
                                 now - last_seen_[static_cast<std::size_t>(
                                           node)]));
}

sim::Time Coordinator::suspect_limit() const {
  return cfg_.suspect_timeout > 0
             ? cfg_.suspect_timeout
             : static_cast<sim::Time>(
                   cfg_.phi_threshold *
                   static_cast<double>(cfg_.heartbeat_interval));
}

int Coordinator::quorum_size() const {
  const double want = cfg_.quorum_fraction * static_cast<double>(vm_.size());
  const auto q = static_cast<int>(want);
  return std::max(1, static_cast<double>(q) < want ? q + 1 : q);
}

sim::Time Coordinator::crash_start_before(int node, sim::Time now) const {
  const auto it = vm_.config().fault.nodes.find(node);
  if (it == vm_.config().fault.nodes.end()) return 0;
  sim::Time latest = 0;
  for (const fault::Window& w : it->second.crashes) {
    if (w.start <= now) latest = std::max(latest, w.start);
  }
  return latest;
}

std::int64_t Coordinator::restore(rt::Task& task, Checkpointable& app) {
  if (task.epoch() == 0) return -1;  // Original incarnation: nothing to do.
  const auto it = checkpoints_.find(task.id());
  if (it == checkpoints_.end()) {
    ++stats_.cold_restarts;
    vm_.obs().tracer().instant(task.id(), "recovery.cold_restart", task.now());
    return -1;
  }
  const Checkpoint& ck = it->second;
  const auto cost = static_cast<sim::Time>(
      static_cast<double>(cfg_.checkpoint_fixed_cost) +
      cfg_.checkpoint_cost_per_byte *
          static_cast<double>(ck.state.byte_size()));
  task.compute(cost);
  rt::Packet state = ck.state;  // The stored snapshot stays pristine.
  state.rewind();
  app.restore_state(state);
  ++stats_.restores;
  if (const auto lp = last_progress_.find(task.id());
      lp != last_progress_.end() && lp->second > ck.iteration) {
    stats_.lost_iterations += lp->second - ck.iteration;
  }
  vm_.obs().tracer().instant(task.id(), "recovery.restore", task.now(),
                             "iteration", ck.iteration);
  return ck.iteration;
}

void Coordinator::note_progress(rt::Task& task, std::int64_t iteration) {
  last_progress_[task.id()] = iteration;
}

void Coordinator::maybe_checkpoint(rt::Task& task, std::int64_t iteration,
                                   Checkpointable& app) {
  note_progress(task, iteration);
  if (cfg_.checkpoint_interval <= 0) return;
  sim::Time& next = next_checkpoint_at_[task.id()];
  if (task.now() < next) return;
  next = task.now() + cfg_.checkpoint_interval;
  Checkpoint ck;
  ck.iteration = iteration;
  ck.taken_at = task.now();
  ck.state = app.checkpoint_state();
  const auto bytes = static_cast<std::uint64_t>(ck.state.byte_size());
  const auto cost = static_cast<sim::Time>(
      static_cast<double>(cfg_.checkpoint_fixed_cost) +
      cfg_.checkpoint_cost_per_byte * static_cast<double>(bytes));
  ++stats_.checkpoints_taken;
  stats_.checkpoint_bytes += bytes;
  stats_.checkpoint_cost += cost;
  checkpoints_[task.id()] = std::move(ck);
  vm_.obs().tracer().instant(task.id(), "recovery.checkpoint", task.now(),
                             "iteration", iteration, "bytes",
                             static_cast<std::int64_t>(bytes));
  task.compute(cost);
}

bool Coordinator::alive(int node) const {
  if (per_node_ && !views_.empty()) {
    // Union view: alive while any observer has not declared the node dead.
    for (const auto& view : views_) {
      if (view[static_cast<std::size_t>(node)].state != PeerState::kDead) {
        return true;
      }
    }
    return false;
  }
  return alive_.empty() || alive_[static_cast<std::size_t>(node)];
}

bool Coordinator::alive(int observer, int node) const {
  if (!per_node_ || views_.empty()) return alive(node);
  if (observer == node) return true;
  return views_[static_cast<std::size_t>(observer)]
               [static_cast<std::size_t>(node)]
                   .state != PeerState::kDead;
}

bool Coordinator::in_quorum(int observer) const {
  if (cfg_.quorum_fraction <= 0.0) return true;
  if (!per_node_ || views_.empty()) return true;
  const sim::Time now = vm_.engine().now();
  const sim::Time limit = suspect_limit();
  int heard = 1;  // Self.
  const auto& view = views_[static_cast<std::size_t>(observer)];
  for (int j = 0; j < vm_.size(); ++j) {
    if (j == observer) continue;
    if (now - view[static_cast<std::size_t>(j)].last_seen <= limit) ++heard;
  }
  return heard >= quorum_size();
}

std::uint64_t Coordinator::epoch(int node) const {
  return epochs_.empty() ? 0 : epochs_[static_cast<std::size_t>(node)];
}

void Coordinator::flush_obs() {
  obs::Registry& reg = vm_.obs().registry();
  reg.counter("recovery.crashes").inc(stats_.crashes);
  reg.counter("recovery.checkpoints_taken").inc(stats_.checkpoints_taken);
  reg.counter("recovery.checkpoint_bytes").inc(stats_.checkpoint_bytes);
  reg.counter("recovery.restores").inc(stats_.restores);
  reg.counter("recovery.cold_restarts").inc(stats_.cold_restarts);
  reg.counter("recovery.rejoins").inc(stats_.rejoins);
  reg.counter("recovery.suspected").inc(stats_.suspected);
  if (stats_.quorum_parks > 0) {
    reg.counter("recovery.quorum_parks").inc(stats_.quorum_parks);
  }
  if (stats_.deferred_rejoins > 0) {
    reg.counter("recovery.deferred_rejoins").inc(stats_.deferred_rejoins);
  }
  if (stats_.split_brain_declarations > 0) {
    reg.counter("recovery.split_brain_declarations")
        .inc(stats_.split_brain_declarations);
  }
  reg.counter("recovery.detection_latency_ns")
      .inc(static_cast<std::uint64_t>(stats_.detection_latency));
  reg.counter("recovery.recovery_latency_ns")
      .inc(static_cast<std::uint64_t>(stats_.recovery_latency));
  reg.counter("recovery.checkpoint_cost_ns")
      .inc(static_cast<std::uint64_t>(stats_.checkpoint_cost));
}

}  // namespace nscc::recovery
