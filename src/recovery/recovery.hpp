// Crash-restart recovery: checkpointing, failure detection, and rejoin.
//
// The paper's age-bounded Global_Read treats a slow producer as merely a
// stale one; the strongest corollary is that a *crashed and restarted* node
// is just an extremely stale peer that the same semantics can reintegrate.
// This subsystem demonstrates and measures that story (cf. Regional
// Consistency, arXiv:1301.4490, and GCS, arXiv:2301.02576, which both argue
// relaxed-coherence regions are the natural unit of cheap state capture):
//
//   * Checkpointing — each node periodically snapshots its app-registered
//     state (a Checkpointable: the DSM-visible segment plus fiber-local
//     loop state) into a Packet held by the Coordinator; the serialization
//     cost is charged in virtual time (fixed setup + per-byte write).
//   * Failure detection — every live node emits heartbeats over the rt
//     reliable channel; a simplified phi-accrual detector (fixed expected
//     inter-arrival, threshold measured in intervals of silence) drives an
//     epoch-stamped membership view shared with the DSM so readers stop
//     blocking Global_Read on dead producers and run degraded instead.
//   * Rejoin — with Policy::kRejoin a killed task is respawned at the end
//     of its crash window; its body restores the last checkpoint (restore
//     cost charged), re-announces with a bumped epoch, and catches up
//     through ordinary age-bounded reads.  Peers block on it again only
//     once it is seen alive — rejoin is literally "become less stale".
//
// The Coordinator is deliberately a machine-level observer (one per VM,
// like the WarpMeter): its membership view is the union of what individual
// peers have heard, a modelling simplification that keeps the detector
// deterministic without per-peer view divergence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rt/packet.hpp"
#include "sim/time.hpp"

namespace nscc::rt {
class Task;
class VirtualMachine;
struct Message;
}  // namespace nscc::rt

namespace nscc::recovery {

/// What happens after a stateful crash window destroys a node's state.
enum class Policy {
  kNone,      ///< No detector, no checkpoints: survivors block forever.
  kDegraded,  ///< Detect the death; peers read stale values and keep going.
  kRejoin,    ///< Degraded + the victim restarts from its last checkpoint.
};

[[nodiscard]] const char* policy_name(Policy p) noexcept;
[[nodiscard]] std::optional<Policy> policy_from_name(const std::string& name);

struct Config {
  Policy policy = Policy::kNone;
  /// Virtual time between checkpoints of one node (0 disables snapshots;
  /// detection and degraded reads still work, rejoin restarts cold).
  sim::Time checkpoint_interval = 500 * sim::kMillisecond;
  /// Heartbeat emission period; also the detector's expected inter-arrival.
  sim::Time heartbeat_interval = 50 * sim::kMillisecond;
  /// Intervals of silence before a node is declared dead (simplified
  /// phi-accrual: fixed expected arrival, threshold in units of it).
  double phi_threshold = 4.0;
  /// Explicit silence-before-suspect budget; 0 derives the legacy
  /// phi_threshold × heartbeat_interval limit.
  sim::Time suspect_timeout = 0;
  /// Fraction of the cluster (self included) an observer must have heard
  /// recently before it may *declare* a suspected peer dead — the
  /// split-brain gate.  0 disables the gate (a suspect escalates to dead
  /// immediately, which is exactly the both-sides-declare-each-other-dead
  /// failure mode the acceptance matrix demonstrates).  Any positive
  /// quorum, or a fault plan with partition/blackhole windows, switches
  /// the coordinator from its single global membership view to per-node
  /// views (each node judges peers from the heartbeats *it* received).
  double quorum_fraction = 0.0;
  /// Fixed virtual cost of taking or restoring one snapshot (quiesce +
  /// buffer setup).
  sim::Time checkpoint_fixed_cost = 200 * sim::kMicrosecond;
  /// Additional virtual ns per serialized byte (a local-disk-class 50 MB/s
  /// stream is ~20 ns/byte).
  double checkpoint_cost_per_byte = 20.0;
  /// Consecutive detector ticks with zero global compute progress before
  /// the detector stops rescheduling itself.  This lets a truly wedged
  /// run's event queue drain so sim::Engine can diagnose the deadlock
  /// instead of heartbeating forever.
  int stall_ticks_limit = 200;

  [[nodiscard]] bool enabled() const noexcept { return policy != Policy::kNone; }
};

/// App-registered state capture.  Implementations pack *everything* a fresh
/// incarnation of the task body needs to continue from `iteration`: the
/// node's DSM-visible segment values and all fiber-local loop state.  The
/// pack/unpack field order is the implementation's contract with itself.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual rt::Packet checkpoint_state() = 0;
  virtual void restore_state(rt::Packet& state) = 0;
};

/// Checkpointable over a pair of closures — for task bodies whose state is
/// a web of fiber-local variables rather than one object.
class FnCheckpoint : public Checkpointable {
 public:
  FnCheckpoint(std::function<rt::Packet()> save,
               std::function<void(rt::Packet&)> load)
      : save_(std::move(save)), load_(std::move(load)) {}
  rt::Packet checkpoint_state() override { return save_(); }
  void restore_state(rt::Packet& state) override { load_(state); }

 private:
  std::function<rt::Packet()> save_;
  std::function<void(rt::Packet&)> load_;
};

struct Checkpoint {
  std::int64_t iteration = -1;
  sim::Time taken_at = 0;
  rt::Packet state;
};

struct Stats {
  std::uint64_t crashes = 0;           ///< Stateful crash windows that fired.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t restores = 0;          ///< Restarts that found a checkpoint.
  std::uint64_t cold_restarts = 0;     ///< Restarts that did not.
  std::uint64_t rejoins = 0;           ///< Respawns scheduled at window end.
  std::uint64_t suspected = 0;         ///< Detector declared-dead events.
  std::uint64_t quorum_parks = 0;      ///< Dead declarations deferred for
                                       ///< lack of quorum (minority side).
  std::uint64_t split_brain_declarations = 0;  ///< Mutual dead declarations:
                                       ///< observer declared a peer dead
                                       ///< that had already declared the
                                       ///< observer dead.  Nonzero means
                                       ///< the membership split-brained.
  std::uint64_t deferred_rejoins = 0;  ///< Respawns postponed until the
                                       ///< victim could reach a quorum.
  sim::Time detection_latency = 0;     ///< Sum over suspicions, crash->declared.
  sim::Time recovery_latency = 0;      ///< Sum over rejoins, crash->respawn.
  sim::Time checkpoint_cost = 0;       ///< Virtual time charged for snapshots.
  std::int64_t lost_iterations = 0;    ///< Progress rolled back by restores.
};

/// Machine-level recovery coordinator: failure detector, checkpoint store,
/// and rejoin scheduler.  Construct after the VM (before run()); it hooks
/// the VM start to install heartbeat handlers and its detector tick.
class Coordinator {
 public:
  Coordinator(rt::VirtualMachine& vm, Config cfg);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Task context, at the top of the body.  First incarnation: returns -1.
  /// After a crash-restart: restores the last checkpoint into `app`
  /// (charging the restore cost) and returns its iteration, or -1 when no
  /// checkpoint was ever taken (cold restart).
  std::int64_t restore(rt::Task& task, Checkpointable& app);

  /// Task context, once per iteration: records the node's progress frontier
  /// (used for lost-work accounting) without touching the checkpoint.
  void note_progress(rt::Task& task, std::int64_t iteration);

  /// Task context, at an iteration boundary where a restart is protocol-safe
  /// (for workloads with anonymous collectives that means a point where no
  /// collective round is in flight).  Takes a snapshot when the checkpoint
  /// interval has elapsed, charging its virtual cost.
  void maybe_checkpoint(rt::Task& task, std::int64_t iteration,
                        Checkpointable& app);

  /// Heartbeat-driven membership view.  True until the detector declares
  /// the node dead; flips back on rejoin.  In per-node mode this is the
  /// union view: alive while *any* observer still considers the node not
  /// dead.
  [[nodiscard]] bool alive(int node) const;

  /// Per-node membership: does `observer` consider `node` not dead?  A
  /// suspected-but-not-declared peer is still alive here — minority-side
  /// observers park in that state, so they degrade instead of declaring.
  /// Falls back to the global view outside per-node mode.
  [[nodiscard]] bool alive(int observer, int node) const;

  /// Does `observer` currently hear a quorum of the cluster (self
  /// included)?  Always true when the quorum gate is off.
  [[nodiscard]] bool in_quorum(int observer) const;

  /// True when the coordinator runs per-node membership views (quorum
  /// gate on, or the fault plan schedules partitions/blackholes).
  [[nodiscard]] bool partitioned() const noexcept { return per_node_; }

  /// Transport-level link failure (reliable retransmit exhausted): the
  /// sender stops trusting the link and suspects the peer.  Registered as
  /// the VM's link-failure hook.
  void on_link_failure(int src, int dst);

  /// Latest epoch heard from the node (0 before any restart).
  [[nodiscard]] std::uint64_t epoch(int node) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  /// Two-level per-observer peer state: a silent peer is first suspected
  /// (reads keep blocking / park on the watchdog), and only a
  /// quorum-holding observer escalates suspicion to a dead declaration.
  enum class PeerState { kAlive, kSuspect, kDead };
  struct PeerView {
    sim::Time last_seen = 0;
    PeerState state = PeerState::kAlive;
    bool parked = false;  ///< Counted one quorum_park for this episode.
  };

  void on_start();
  void tick();
  void tick_global(sim::Time now);
  void tick_views(sim::Time now);
  void on_heartbeat(const rt::Message& msg);
  void on_heartbeat_view(int observer, const rt::Message& msg);
  void suspect(int node, sim::Time now);
  void declare_dead(int observer, int node, sim::Time now);
  void schedule_respawn(int node, sim::Time crash_start);
  [[nodiscard]] sim::Time crash_start_before(int node, sim::Time now) const;
  [[nodiscard]] sim::Time suspect_limit() const;
  [[nodiscard]] int quorum_size() const;
  void flush_obs();

  rt::VirtualMachine& vm_;
  Config cfg_;
  Stats stats_;
  bool per_node_ = false;
  std::vector<sim::Time> last_seen_;
  std::vector<bool> alive_;
  std::vector<std::vector<PeerView>> views_;  ///< views_[observer][peer].
  std::vector<std::uint64_t> epochs_;
  std::map<int, Checkpoint> checkpoints_;
  std::map<int, std::int64_t> last_progress_;
  std::map<int, sim::Time> next_checkpoint_at_;
  std::uint64_t last_fingerprint_ = 0;
  int stall_ticks_ = 0;
  bool tick_scheduled_ = false;
};

}  // namespace nscc::recovery
