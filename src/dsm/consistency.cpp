#include "dsm/consistency.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "dsm/shared_space.hpp"

namespace nscc::dsm {

namespace {

/// The paper's model: admit iff the copy is valid and generated no earlier
/// than iteration curr_iter - age.  Stateless, so repeated asks are free;
/// shape() is a no-op, which keeps the harness's mode-derived propagation
/// wiring (and the pre-refactor byte-identical behaviour).
class NonStrictModel final : public ConsistencyModel {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "nonstrict";
  }
  [[nodiscard]] bool admit(LocationId, Iteration curr_iter, Iteration age,
                           const CopyMeta& copy) override {
    return copy.valid && copy.iteration >= curr_iter - age;
  }
};

/// Regional consistency (Ramesh & Ribbens, PAPERS.md), mapped onto the
/// iteration-stamped cache: the task's *region* is every location it has
/// ever Global_Read.  A read at iteration curr first enforces the paper's
/// per-read bound on its own location (so regional is strictly stricter
/// than nonstrict and certifies trivially), then acts as the region's
/// acquire fence: it admits only once EVERY member location satisfies the
/// same bound, after which the whole region is fenced through iteration
/// curr and sibling reads of that iteration admit without re-checking.
///
/// age == 0 degenerates to the per-read rule: a whole-region fresh fence
/// would deadlock mutually-reading peers (each needs the other's full
/// iteration t before publishing its own).  With age >= 1 the fence is
/// deadlock-free by induction: the fence at t needs peers' t - age, which
/// they publish after their own fence at t - age needed our t - 2*age.
class RegionalModel final : public ConsistencyModel {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "regional";
  }

  [[nodiscard]] bool admit(LocationId loc, Iteration curr_iter, Iteration age,
                           const CopyMeta& copy) override {
    members_.insert(loc);
    copies_[loc] = copy;
    if (!copy.valid) return false;
    const Iteration need = curr_iter - age;
    if (copy.iteration < need) return false;
    if (age == 0) return true;
    if (curr_iter <= fence_) return true;
    // Try to advance the fence: the whole region must meet this read's
    // bound.  A member still behind keeps the read blocked; the update
    // that freshens it re-asks through note_copy + the wait loop.
    for (const auto& [member, meta] : copies_) {
      if (!meta.valid || meta.iteration < need) return false;
    }
    fence_ = curr_iter;
    return true;
  }

  void note_copy(LocationId loc, const CopyMeta& copy) override {
    if (members_.count(loc) != 0) copies_[loc] = copy;
  }

 private:
  std::set<LocationId> members_;
  std::map<LocationId, CopyMeta> copies_;
  Iteration fence_ = -1;  ///< Region admitted wholesale through here.
};

/// RACoherence-style release/acquire (SNIPPETS.md,
/// /root/related/snoions__RACoherence): a writer's update is a *release* —
/// stamped with a per-writer sequence number — and becomes visible to a
/// reader only at its next *acquire* point, which in this runtime is any
/// read entry (Global_Read or plain read).  Between acquires, arriving
/// updates park unapplied (SharedSpace holds the log), so a computation
/// phase observes one coherent snapshot however many releases land
/// mid-phase.  Admission itself keeps the paper's per-read bound: after
/// the acquire flush the same staleness contract holds, which is what lets
/// every workload certify under --sanitize=strict unchanged.
class ReleaseAcquireModel final : public ConsistencyModel {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "release-acquire";
  }
  [[nodiscard]] bool admit(LocationId, Iteration curr_iter, Iteration age,
                           const CopyMeta& copy) override {
    return copy.valid && copy.iteration >= curr_iter - age;
  }
  [[nodiscard]] bool visible_on_arrival() const noexcept override {
    return false;
  }
  [[nodiscard]] bool stamps_updates() const noexcept override { return true; }
  std::uint64_t next_stamp() override { return ++release_seq_; }
  bool note_stamp(int src, std::uint64_t stamp) override {
    std::uint64_t& last = last_stamp_[src];
    const bool in_order = stamp >= last;
    if (in_order) last = stamp;
    return in_order;
  }

 private:
  std::uint64_t release_seq_ = 0;           ///< Writer-side release clock.
  std::map<int, std::uint64_t> last_stamp_;  ///< Reader-side vector clock.
};

/// Eventual consistency: no staleness gate at all — a read admits as soon
/// as the location has ANY value (programs unpack the payload, so a
/// never-written location must still wait for its first update).  The
/// model owns propagation outright: updates always coalesce (newest wins
/// on the wire too) and never ride the reliable channel, whatever the
/// harness's mode wiring said.  Under --sanitize=strict this model is
/// *expected* to fail certification on workloads whose contract demands
/// fresh reads (the sync variants of nn.train and bayes.sampling) — that
/// failure is the sanitizer doing its job on an honest model.
class EventualModel final : public ConsistencyModel {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "eventual";
  }
  [[nodiscard]] bool admit(LocationId, Iteration, Iteration,
                           const CopyMeta& copy) override {
    return copy.valid;
  }
  void shape(PropagationPolicy& policy) override {
    policy.coalesce = true;
    policy.reliable_updates = false;
  }
};

}  // namespace

ConsistencyRegistry::ConsistencyRegistry() {
  factories_.emplace_back(
      "nonstrict", [] { return std::make_unique<NonStrictModel>(); });
  factories_.emplace_back(
      "regional", [] { return std::make_unique<RegionalModel>(); });
  factories_.emplace_back("release-acquire", [] {
    return std::make_unique<ReleaseAcquireModel>();
  });
  factories_.emplace_back(
      "eventual", [] { return std::make_unique<EventualModel>(); });
}

ConsistencyRegistry& ConsistencyRegistry::instance() {
  static ConsistencyRegistry registry;
  return registry;
}

void ConsistencyRegistry::add(std::string name, Factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("consistency model registered twice: " + name);
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool ConsistencyRegistry::contains(const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return true;
  }
  return false;
}

std::unique_ptr<ConsistencyModel> ConsistencyRegistry::make(
    const std::string& name) const {
  for (const auto& [n, factory] : factories_) {
    if (n == name) return factory();
  }
  std::string known;
  for (const auto& [n, f] : factories_) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown consistency model '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> ConsistencyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

}  // namespace nscc::dsm
