#include "dsm/shared_space.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace nscc::dsm {

namespace {

/// Marks the enclosing read as an acquire point for a parking model:
/// arriving updates apply immediately while it is in scope (restored on
/// exit, exception-safe).
class AcquireScope {
 public:
  AcquireScope(bool enabled, bool& flag) : flag_(flag), prev_(flag) {
    if (enabled) flag_ = true;
  }
  ~AcquireScope() { flag_ = prev_; }
  AcquireScope(const AcquireScope&) = delete;
  AcquireScope& operator=(const AcquireScope&) = delete;

 private:
  bool& flag_;
  bool prev_;
};

}  // namespace

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::kSynchronous:
      return "sync";
    case Mode::kAsynchronous:
      return "async";
    case Mode::kPartialAsync:
      return "partial";
  }
  return "?";
}

SharedSpace::SharedSpace(rt::Task& task, PropagationPolicy policy)
    : task_(task), policy_(std::move(policy)) {
  // Resolve the consistency model first: its shape() may rewrite the
  // transport-facing policy knobs everything below reads.
  model_ = ConsistencyRegistry::instance().make(policy_.consistency);
  model_->shape(policy_);
  park_updates_ = !model_->visible_on_arrival();
  stamp_updates_ = model_->stamps_updates();
  if (policy_.read_timeout_jitter > 0.0) {
    jitter_rng_.emplace(policy_.jitter_seed ^
                        (0x9E3779B97F4A7C15ULL *
                         static_cast<std::uint64_t>(task.id() + 1)));
  }
  obs::Hub& hub = task.vm().obs();
  // The registry exists whether or not the hub is actively tracing; the
  // staleness histograms are the canonical accounting (DsmStats reads the
  // per-task one), so they are resolved unconditionally.
  staleness_hist_ = &hub.registry().histogram("dsm.staleness");
  staleness_mine_ = &hub.registry().histogram("dsm.staleness", task.id());
  stats_.staleness_on_read = staleness_mine_;
  san_ = task.vm().sanitizer();
  if (hub.active()) {
    obs_ = &hub;
    blocked_readers_ = &hub.registry().gauge("dsm.blocked_readers");
    inflight_updates_ = &hub.registry().gauge("dsm.updates_inflight");
    read_queued_ = &hub.registry().counter("dsm.read.queued");
    read_blocked_ = &hub.registry().counter("dsm.read.blocked");
    read_escalated_ = &hub.registry().counter("dsm.read.escalated");
    read_degraded_ = &hub.registry().counter("dsm.read.degraded");
    read_block_ns_ = &hub.registry().histogram("dsm.read.block_ns");
  }
  // Serve read demands at delivery time, in engine context, so a writer
  // blocked in a barrier or its own Global_Read still answers starved
  // readers (the mailbox-polling drain_requests() below cannot — both
  // sides could otherwise block on each other forever).
  task_.set_tag_handler(rt::kDsmRequestTag, [this](rt::Message m) {
    serve_request(m.payload, m.src);
  });
  // Anti-entropy heal: schedule one republish pass at the end of every
  // scheduled partition/blackhole window.  Engine-context events guarded by
  // the liveness token, so a task body that returns before the window ends
  // leaves only no-ops behind.
  if (policy_.partition_heal) {
    const fault::FaultPlan& plan = task_.vm().config().fault;
    std::vector<sim::Time> ends;
    for (const auto& p : plan.partitions) ends.push_back(p.window.end);
    for (const auto& h : plan.blackholes) ends.push_back(h.window.end);
    std::sort(ends.begin(), ends.end());
    ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
    sim::Engine& eng = task_.vm().engine();
    for (const sim::Time end : ends) {
      if (end <= eng.now()) continue;
      std::weak_ptr<SharedSpace*> weak = alive_;
      eng.schedule(end, [weak] {
        if (auto self = weak.lock()) (*self)->heal_republish();
      });
    }
  }
}

SharedSpace::~SharedSpace() {
  task_.set_tag_handler(rt::kDsmRequestTag, {});
  if (obs_ == nullptr) return;
  obs::Registry& reg = obs_->registry();
  const int pid = task_.id();
  reg.counter("dsm.writes", pid).inc(stats_.writes);
  reg.counter("dsm.updates_sent", pid).inc(stats_.updates_sent);
  reg.counter("dsm.updates_coalesced", pid).inc(stats_.updates_coalesced);
  reg.counter("dsm.updates_applied", pid).inc(stats_.updates_applied);
  reg.counter("dsm.updates_stale_dropped", pid)
      .inc(stats_.updates_stale_dropped);
  reg.counter("dsm.global_reads", pid).inc(stats_.global_reads);
  reg.counter("dsm.global_read_blocks", pid).inc(stats_.global_read_blocks);
  reg.counter("dsm.global_read_block_time_ns", pid)
      .inc(static_cast<std::uint64_t>(stats_.global_read_block_time));
  reg.counter("dsm.requests_sent", pid).inc(stats_.requests_sent);
  reg.counter("dsm.hints_received", pid).inc(stats_.hints_received);
  reg.counter("dsm.request_replies", pid).inc(stats_.request_replies);
  reg.counter("dsm.read_escalations", pid).inc(stats_.read_escalations);
  reg.counter("dsm.degraded_reads", pid).inc(stats_.degraded_reads);
  reg.counter("dsm.integrity_dropped", pid).inc(stats_.integrity_dropped);
  // Partition counters only when the machinery actually fired, so runs
  // without partitions keep an unchanged metrics footprint.
  if (stats_.partition_stale_served > 0) {
    reg.counter("dsm.partition.stale_served", pid)
        .inc(stats_.partition_stale_served);
  }
  if (stats_.heal_frames > 0) {
    reg.counter("dsm.partition.heal_frames", pid).inc(stats_.heal_frames);
  }
  if (stats_.diverged_marks > 0) {
    reg.counter("dsm.partition.diverged_locations", pid)
        .inc(stats_.diverged_marks);
    reg.counter("dsm.partition.reconciled_locations", pid)
        .inc(stats_.reconciled_marks);
  }
  if (stats_.merges > 0) {
    reg.counter("dsm.partition.merges", pid).inc(stats_.merges);
  }
  // Consistency-model counters only when the model actually engaged them,
  // so nonstrict runs keep an unchanged metrics footprint.
  if (stats_.updates_parked > 0) {
    reg.counter("dsm.consistency.updates_parked", pid)
        .inc(stats_.updates_parked);
    reg.counter("dsm.consistency.updates_flushed", pid)
        .inc(stats_.updates_flushed);
  }
  if (stats_.ooo_updates > 0) {
    reg.counter("dsm.consistency.ooo_updates", pid).inc(stats_.ooo_updates);
  }
}

void SharedSpace::declare_written(LocationId loc, std::vector<int> readers) {
  if (written_.count(loc) != 0 || read_from_.count(loc) != 0) {
    throw std::logic_error("SharedSpace: location declared twice");
  }
  WriterState ws;
  ws.readers = std::move(readers);
  for (int r : ws.readers) ws.per_reader.emplace(r, WriterState::PerReader{});
  written_.emplace(loc, std::move(ws));
  local_.emplace(loc, Value{});
}

void SharedSpace::declare_read(LocationId loc, int writer) {
  if (written_.count(loc) != 0 || read_from_.count(loc) != 0) {
    throw std::logic_error("SharedSpace: location declared twice");
  }
  read_from_.emplace(loc, writer);
  local_.emplace(loc, Value{});
}

void SharedSpace::send_update(LocationId loc, int reader, Iteration iteration,
                              const rt::Packet& value, bool charge_cpu,
                              rt::Reliability reliability,
                              std::uint64_t flow) {
  rt::Packet payload;
  payload.pack_i32(loc);
  payload.pack_i64(iteration);
  payload.pack_packet(value);
  if (policy_.integrity) payload.pack_u32(value.crc32());
  // Ordering metadata last: a release-stamping model sequences every send
  // (organic writes, demand replies, heal republishes alike).
  if (stamp_updates_) payload.pack_u64(model_->next_stamp());

  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.update.send", task_.now(), "loc",
                           loc, "reader", reader);
    inflight_updates_->add(1.0);
  }
  if (policy_.reliable_updates && reliability == rt::Reliability::kAuto) {
    reliability = rt::Reliability::kReliable;
  }

  std::function<void(bool)> on_settled;
  if (policy_.coalesce || obs_ != nullptr) {
    // The follow-up hop must not touch a SharedSpace that has already been
    // destroyed (its task body may finish while updates are on the wire);
    // the hub and engine belong to the VirtualMachine and outlive delivery.
    std::weak_ptr<SharedSpace*> weak = alive_;
    obs::Hub* hub = obs_;
    obs::Gauge* inflight = inflight_updates_;
    sim::Engine* eng = &task_.vm().engine();
    const bool coalesce = policy_.coalesce;
    on_settled = [weak, hub, inflight, eng, coalesce, loc,
                  reader](bool delivered) {
      if (hub != nullptr) {
        inflight->add(-1.0);
        hub->tracer().instant(reader,
                              delivered ? "dsm.update.deliver"
                                        : "dsm.update.lost",
                              eng->now(), "loc", loc);
      }
      if (coalesce) {
        if (auto self = weak.lock()) {
          (*self)->on_update_settled(loc, reader, delivered);
        }
      }
    };
  }
  if (charge_cpu) {
    // Process context: full send path (CPU overhead + transport window).
    task_.send_observed(reader, rt::kDsmUpdateTag, std::move(payload),
                        std::move(on_settled), reliability, flow);
  } else {
    // Engine context (DSM daemon forwarding a coalesced update): inject
    // without charging or blocking the application task.
    task_.vm().post(task_.id(), reader, rt::kDsmUpdateTag, std::move(payload),
                    std::move(on_settled), reliability, flow);
  }
  ++stats_.updates_sent;
}

void SharedSpace::on_update_settled(LocationId loc, int reader,
                                    bool delivered) {
  // Whether the update landed or died on the wire, it is no longer in
  // flight; forward the newest pending value if one accumulated.  Under
  // loss this is what makes coalescing self-healing: the *next* write (or
  // the stashed pending one) re-propagates the location.
  (void)delivered;
  auto& pr = written_.at(loc).per_reader.at(reader);
  pr.in_flight = false;
  if (pr.has_pending) {
    pr.has_pending = false;
    pr.in_flight = true;
    const std::uint64_t flow = pr.pending_flow;
    pr.pending_flow = 0;
    send_update(loc, reader, pr.pending_iteration, pr.pending_value,
                /*charge_cpu=*/false, rt::Reliability::kAuto, flow);
  }
}

std::uint64_t SharedSpace::begin_flow(LocationId loc, Iteration iteration) {
  const std::uint64_t id = obs_->tracer().new_flow();
  obs_->tracer().flow_begin(task_.id(), "dsm.flow", task_.now(), id, "loc",
                            loc, "iter", iteration);
  return id;
}

void SharedSpace::write(LocationId loc, Iteration iteration, rt::Packet value) {
  auto it = written_.find(loc);
  if (it == written_.end()) {
    throw std::logic_error("SharedSpace: write to a location not declared_written");
  }
  ++stats_.writes;
  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.write", task_.now(), "loc", loc,
                           "iter", iteration);
  }
  // Any DSM entry point services pending read demands (user-level macros
  // share the process with the "daemon").
  drain_requests();

  Value& mine = local_.at(loc);
  mine.iteration = iteration;
  mine.valid = true;
  mine.data = value;
  mine.epoch = task_.epoch();
  if (san_ != nullptr) {
    san_->record_write(task_.id(), loc, iteration, mine.data.crc32(),
                       mine.data.byte_size(), task_.now());
  }

  for (int reader : it->second.readers) {
    if (reader == task_.id()) continue;  // The local store is the update.
    auto& pr = it->second.per_reader.at(reader);
    // One causal flow per (write, reader): begun here on the producer's
    // track so the arrow starts at the write even when coalescing defers
    // (or replaces) the actual send.
    const std::uint64_t flow = flows_on() ? begin_flow(loc, iteration) : 0;
    if (policy_.coalesce && pr.in_flight) {
      if (pr.has_pending) {
        ++stats_.updates_coalesced;
        if (obs_ != nullptr) {
          obs_->tracer().instant(task_.id(), "dsm.update.coalesce",
                                 task_.now(), "loc", loc, "reader", reader);
        }
      }
      pr.has_pending = true;
      pr.pending_iteration = iteration;
      pr.pending_value = value;
      pr.pending_flow = flow;
      continue;
    }
    if (policy_.coalesce) pr.in_flight = true;
    send_update(loc, reader, iteration, value, /*charge_cpu=*/true,
                rt::Reliability::kAuto, flow);
  }
}

void SharedSpace::apply_update(rt::Message& msg) {
  // Release/acquire visibility: between acquire points an arriving update
  // is parked in wire form — the release log — and published only when the
  // reader next acquires.  Inside an acquire (including a blocked
  // Global_Read, which IS the acquire), updates apply immediately.
  if (park_updates_ && !acquiring_) {
    ++stats_.updates_parked;
    if (obs_ != nullptr) {
      obs_->tracer().instant(task_.id(), "dsm.update.park", task_.now(),
                             "src", msg.src);
    }
    parked_.push_back({peek_stamp(msg.payload), std::move(msg)});
    return;
  }
  // Parse defensively: with the transport's frame check disabled (or
  // corruption the CRC missed), the bytes on the mailbox can be garbage.
  // A frame that cannot be decoded, or whose payload checksum disagrees
  // with the writer's stamp, is quarantined — never applied, never shown
  // to the observer — and, when we actually read the location, a reliable
  // demand re-fetches a clean copy from the writer.
  rt::Packet& payload = msg.payload;
  LocationId loc = 0;
  Iteration iteration = 0;
  rt::Packet data;
  std::uint64_t stamp = 0;
  bool parsed = false;
  bool intact = true;
  try {
    loc = payload.unpack_i32();
    iteration = payload.unpack_i64();
    data = payload.unpack_packet();
    if (policy_.integrity) {
      intact = payload.unpack_u32() == data.crc32();
    }
    if (stamp_updates_) stamp = payload.unpack_u64();
    parsed = true;
  } catch (const std::out_of_range&) {
  }
  if (!parsed || !intact) {
    ++stats_.integrity_dropped;
    if (obs_ != nullptr) {
      obs_->tracer().instant(task_.id(), "dsm.update.quarantine", task_.now(),
                             "loc", loc, "iter", iteration);
    }
    if (parsed && read_from_.count(loc) != 0) send_demand(loc, iteration);
    return;
  }

  auto it = local_.find(loc);
  if (it == local_.end() || read_from_.count(loc) == 0) {
    throw std::logic_error(
        "SharedSpace: update received for a location not declared_read");
  }
  // Release-order accounting: newest-wins below still decides what is
  // applied; the stamp check only measures how often the wire reordered
  // releases (reliable resends overtaking best-effort ones).
  if (stamp_updates_ && !model_->note_stamp(msg.src, stamp)) {
    ++stats_.ooo_updates;
  }
  if (observer_) {
    data.rewind();
    observer_(loc, iteration, data);
    data.rewind();
  }

  Value& v = it->second;
  if (iteration > v.iteration) {
    v.iteration = iteration;
    v.valid = true;
    v.degraded = false;
    v.data = std::move(data);
    // The applied copy carries its update's flow; a superseded copy's
    // unconsumed flow simply ends nowhere (the value was never read).
    v.flow = msg.flow;
    v.epoch = msg.epoch;
    ++stats_.updates_applied;
    if (obs_ != nullptr) {
      obs_->tracer().instant(task_.id(), "dsm.update.apply", task_.now(),
                             "loc", loc, "iter", iteration);
      if (msg.flow != 0) {
        // Apply-time hop: the gap back to the delivery-time step is the
        // update's mailbox-queued latency.
        obs_->tracer().flow_step(task_.id(), "dsm.flow.apply", task_.now(),
                                 msg.flow, "loc", loc, "iter", iteration);
      }
    }
    maybe_reconcile(loc, iteration);
    model_->note_copy(loc, meta_of(v));
  } else if (policy_.merge && v.valid && iteration == v.iteration) {
    // Concurrent copies of the same iteration (both sides of a split wrote
    // it independently): the workload's commutative merge composes them
    // instead of newest-wins dropping one side's contribution.
    data.rewind();
    v.data.rewind();
    v.data = policy_.merge(loc, v.data, data);
    v.epoch = std::max(v.epoch, msg.epoch);
    ++stats_.merges;
    if (obs_ != nullptr) {
      obs_->tracer().instant(task_.id(), "dsm.update.merge", task_.now(),
                             "loc", loc, "iter", iteration);
    }
    maybe_reconcile(loc, iteration);
    model_->note_copy(loc, meta_of(v));
  } else {
    ++stats_.updates_stale_dropped;
    if (obs_ != nullptr) {
      obs_->tracer().instant(task_.id(), "dsm.update.stale", task_.now(),
                             "loc", loc, "iter", iteration);
    }
  }
}

std::uint64_t SharedSpace::peek_stamp(rt::Packet& payload) const {
  if (!stamp_updates_) return 0;
  std::uint64_t stamp = 0;
  try {
    (void)payload.unpack_i32();
    (void)payload.unpack_i64();
    (void)payload.unpack_packet();
    if (policy_.integrity) (void)payload.unpack_u32();
    stamp = payload.unpack_u64();
  } catch (const std::out_of_range&) {
    // A garbled frame sorts first (stamp 0) and is quarantined when the
    // flush actually applies it.
  }
  payload.rewind();
  return stamp;
}

void SharedSpace::flush_parked() {
  if (parked_.empty()) return;
  // Publish the release log in (writer, release-stamp) order so each
  // writer's updates become visible in the order they were released,
  // whatever the wire interleaved.
  std::stable_sort(parked_.begin(), parked_.end(),
                   [](const ParkedUpdate& a, const ParkedUpdate& b) {
                     return a.msg.src != b.msg.src ? a.msg.src < b.msg.src
                                                   : a.stamp < b.stamp;
                   });
  // Swap out first: an apply below may re-enter (observer hooks), and a
  // fresh arrival mid-flush applies directly (acquiring_ is set).
  std::vector<ParkedUpdate> batch;
  batch.swap(parked_);
  stats_.updates_flushed += batch.size();
  for (ParkedUpdate& p : batch) apply_update(p.msg);
}

void SharedSpace::mark_diverged(LocationId loc, Iteration need) {
  const auto [it, inserted] = diverged_.emplace(loc, need);
  if (inserted) {
    ++stats_.diverged_marks;
  } else {
    it->second = std::max(it->second, need);
  }
}

void SharedSpace::maybe_reconcile(LocationId loc, Iteration iteration) {
  const auto it = diverged_.find(loc);
  if (it == diverged_.end() || iteration < it->second) return;
  diverged_.erase(it);
  ++stats_.reconciled_marks;
  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.partition.reconcile", task_.now(),
                           "loc", loc, "iter", iteration);
  }
}

void SharedSpace::heal_republish() {
  // Engine context, at a partition-window end: push every valid written
  // location to all its readers over the reliable channel.  Readers apply
  // with the normal newest-wins rule (or the merge hook), so copies that
  // diverged behind the cut catch up without waiting for the writer's next
  // organic write.  Daemon-style posts: no CPU charge, no flow arrows.
  for (auto& [loc, ws] : written_) {
    const Value& mine = local_.at(loc);
    if (!mine.valid) continue;
    for (const int reader : ws.readers) {
      if (reader == task_.id()) continue;
      send_update(loc, reader, mine.iteration, mine.data,
                  /*charge_cpu=*/false, rt::Reliability::kReliable);
      ++stats_.heal_frames;
    }
  }
  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.partition.heal", task_.now(),
                           "locations",
                           static_cast<std::int64_t>(written_.size()));
  }
}

void SharedSpace::serve_request(rt::Packet& payload, int from) {
  LocationId loc = 0;
  Iteration need = 0;
  try {
    loc = payload.unpack_i32();
    need = payload.unpack_i64();
  } catch (const std::out_of_range&) {
    // A demand that cannot be decoded is dropped; the starved reader's
    // escalation watchdog re-demands on its own timer.
    ++stats_.integrity_dropped;
    return;
  }
  ++stats_.hints_received;
  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.request.serve", task_.now(),
                           "loc", loc, "from", from);
  }
  auto it = written_.find(loc);
  if (it == written_.end()) return;  // Stale request for a location we lost.
  const Value& mine = local_.at(loc);
  if (mine.valid && mine.iteration >= need) {
    // Demand-driven resend of the current copy (the normal write path will
    // cover the demand otherwise, since writes propagate to every reader).
    // Served in engine context (the tag handler fires at delivery), so the
    // reply is posted daemon-style — no CPU charge, no window — and rides
    // the reliable channel: a demanded value is load-bearing by definition.
    // The resend is a fresh causal flow: its arrow starts at the serve, not
    // at the (possibly long-past) original write.
    const std::uint64_t flow =
        flows_on() ? begin_flow(loc, mine.iteration) : 0;
    send_update(loc, from, mine.iteration, mine.data, /*charge_cpu=*/false,
                rt::Reliability::kReliable, flow);
    ++stats_.request_replies;
  }
}

void SharedSpace::send_demand(LocationId loc, Iteration need) {
  // Actively demand a fresh-enough copy from the writer (also a hint that
  // this reader is running behind the producer).  Demands are control
  // traffic and ride the reliable channel when the machine has one.
  rt::Packet req;
  req.pack_i32(loc);
  req.pack_i64(need);
  if (obs_ != nullptr) {
    obs_->tracer().instant(task_.id(), "dsm.request", task_.now(), "loc", loc,
                           "need", need);
  }
  task_.send_observed(read_from_.at(loc), rt::kDsmRequestTag, std::move(req),
                      {}, rt::Reliability::kReliable);
  ++stats_.requests_sent;
}

void SharedSpace::drain_requests() {
  while (auto msg = task_.try_recv(rt::kDsmRequestTag)) {
    serve_request(msg->payload, msg->src);
  }
}

void SharedSpace::poll() {
  while (auto msg = task_.try_recv(rt::kDsmUpdateTag)) {
    apply_update(*msg);
  }
  drain_requests();
}

const SharedSpace::Value& SharedSpace::read(LocationId loc) {
  // Every read entry is an acquire point under a parking model: the
  // release log publishes before the freshest copy is chosen.  poll() on
  // its own is NOT an acquire — it only drains the mailbox into the log.
  AcquireScope acquire(park_updates_, acquiring_);
  if (park_updates_) flush_parked();
  poll();
  auto it = local_.find(loc);
  if (it == local_.end()) {
    throw std::logic_error("SharedSpace: read of an undeclared location");
  }
  Value& v = it->second;
  if (san_ != nullptr) {
    // Plain reads declare no age bound (-1): the audit checks the location's
    // tolerance contract (an age-0-intolerant location read this way is a
    // violation) and the shadow checksum, but no staleness arithmetic.
    san_->audit_read(task_.id(), loc, v.iteration, /*declared_age=*/-1,
                     v.valid, v.degraded, v.iteration,
                     v.valid ? v.data.crc32() : 0, task_.now());
  }
  v.data.rewind();
  return v;
}

const SharedSpace::Value& SharedSpace::global_read(LocationId loc,
                                                   Iteration curr_iter,
                                                   Iteration age) {
  auto it = local_.find(loc);
  if (it == local_.end()) {
    throw std::logic_error("SharedSpace: global_read of an undeclared location");
  }
  ++stats_.global_reads;
  const Iteration need = curr_iter - age;
  Value& v = it->second;
  const bool was_fresh = v.valid && v.iteration >= need;
  // Global_Read is THE acquire point: a parking model's release log
  // publishes here (and a blocked wait below keeps applying arrivals
  // directly — the acquire is in progress).
  AcquireScope acquire(park_updates_, acquiring_);
  if (park_updates_) flush_parked();
  poll();

  if (!model_->admit(loc, curr_iter, age, meta_of(v))) {
    ++stats_.global_read_blocks;
    if (read_blocked_ != nullptr) read_blocked_->inc();
    bool escalated = false;
    bool degraded_here = false;
    if (policy_.read_impl == GlobalReadImpl::kRequest) {
      send_demand(loc, need);
    }
    const sim::Time blocked_from = task_.now();
    if (obs_ != nullptr) blocked_readers_->add(1.0);
    // Wait for DSM updates (to any location we read); each arrival may
    // freshen our copy.  This is the paper's "just wait until the required
    // update arrives" implementation.  A never-written location blocks
    // until its first value arrives, whatever the age bound.
    //
    // Starvation watchdog: with a read_timeout budget, a wait that outlives
    // it (e.g. the satisfying update was dropped by a lossy network)
    // escalates to an explicit demand — the kRequest impl on demand — then
    // waits again with an exponentially larger (capped, jittered) budget.
    // As long as the writer keeps iterating (or can serve the demand), the
    // read terminates with probability 1 at any loss rate < 1.
    //
    // Membership-aware wait: with a writer_alive probe installed, the wait
    // is subdivided into liveness_poll quanta so a writer declared dead
    // unblocks the reader with the freshest local copy, flagged degraded.
    const bool degradable = static_cast<bool>(policy_.writer_alive);
    const bool quorum_gated = static_cast<bool>(policy_.in_quorum);
    const sim::Time degrade_after = policy_.partition_degrade_after > 0
                                        ? policy_.partition_degrade_after
                                        : policy_.liveness_poll;
    sim::Time no_quorum_since = 0;  // 0 = currently in quorum.
    const auto writer_it = read_from_.find(loc);
    const int writer = writer_it != read_from_.end() ? writer_it->second : -1;
    sim::Time budget = policy_.read_timeout;
    sim::Time remaining = budget;
    while (!model_->admit(loc, curr_iter, age, meta_of(v))) {
      if (degradable && writer >= 0 && !policy_.writer_alive(writer)) {
        v.degraded = true;
        degraded_here = true;
        ++stats_.degraded_reads;
        if (tracks_divergence() && v.valid) mark_diverged(loc, need);
        if (obs_ != nullptr) {
          obs_->tracer().instant(task_.id(), "dsm.read.degraded", task_.now(),
                                 "loc", loc, "need", need);
        }
        break;
      }
      // Minority-side divergence bound: out of quorum the writer is only
      // *suspected* (never declared dead), so the probe above stays true
      // and the read would otherwise block to the horizon.  After
      // degrade_after of continuous quorum loss, serve the freshest valid
      // copy stale instead — bounded divergence rather than stalling the
      // whole minority island.
      if (quorum_gated && v.valid && !policy_.in_quorum()) {
        if (no_quorum_since == 0) {
          no_quorum_since = task_.now();
        } else if (task_.now() - no_quorum_since >= degrade_after) {
          v.degraded = true;
          degraded_here = true;
          ++stats_.partition_stale_served;
          mark_diverged(loc, need);
          if (obs_ != nullptr) {
            obs_->tracer().instant(task_.id(), "dsm.read.stale_served",
                                   task_.now(), "loc", loc, "need", need);
          }
          break;
        }
      } else {
        no_quorum_since = 0;
      }
      sim::Time quantum = remaining;
      if (degradable || quorum_gated) {
        quantum = quantum > 0 ? std::min(quantum, policy_.liveness_poll)
                              : policy_.liveness_poll;
      }
      if (quantum <= 0) {
        rt::Message msg = task_.recv(rt::kDsmUpdateTag);
        apply_update(msg);
        continue;
      }
      auto msg = task_.recv_timeout(rt::kDsmUpdateTag, quantum);
      if (msg) {
        apply_update(*msg);
        continue;
      }
      if (budget <= 0) continue;  // Liveness poll only, no watchdog armed.
      remaining -= quantum;
      if (remaining > 0) continue;
      ++stats_.read_escalations;
      escalated = true;
      if (obs_ != nullptr) {
        obs_->tracer().instant(task_.id(), "dsm.read.escalate", task_.now(),
                               "loc", loc, "need", need);
      }
      send_demand(loc, need);
      budget = next_backoff(budget);
      remaining = budget;
    }
    stats_.global_read_block_time += task_.now() - blocked_from;
    if (obs_ != nullptr) {
      blocked_readers_->add(-1.0);
      obs_->tracer().complete(task_.id(), "Global_Read", blocked_from,
                              task_.now() - blocked_from, "loc", loc, "need",
                              need);
      read_block_ns_->observe(
          static_cast<double>(task_.now() - blocked_from));
      if (escalated) read_escalated_->inc();
      if (degraded_here) read_degraded_->inc();
    }
  } else if (!was_fresh && read_queued_ != nullptr) {
    // Served without blocking, but only because poll() drained an update
    // already queued in the mailbox — the "queued" slice of read latency.
    read_queued_->inc();
  }
  if (v.valid && v.iteration >= need) v.degraded = false;
  const auto staleness = static_cast<double>(curr_iter - v.iteration);
  staleness_mine_->observe(staleness);
  staleness_hist_->observe(staleness);
  if (v.flow != 0 && obs_ != nullptr) {
    // Terminate the causal arrow at the consuming read: bind-enclosing 'f'
    // on this task's track, carrying the read's observed age so the trace
    // can be cross-checked against the DSM's own staleness accounting.
    // One read consumes the arrow; later re-reads of the same copy add no
    // flow events.
    obs_->tracer().flow_end(task_.id(), "dsm.flow", task_.now(), v.flow,
                            "age", curr_iter - v.iteration, "iter",
                            v.iteration);
    v.flow = 0;
  }
  if (san_ != nullptr) {
    san_->audit_read(task_.id(), loc, curr_iter, age, v.valid, v.degraded,
                     v.iteration, v.valid ? v.data.crc32() : 0, task_.now());
  }
  v.data.rewind();
  return v;
}

sim::Time SharedSpace::next_backoff(sim::Time budget) {
  auto next = std::max<sim::Time>(
      1, static_cast<sim::Time>(static_cast<double>(budget) *
                                policy_.read_timeout_backoff));
  if (policy_.read_timeout_cap > 0) {
    next = std::min(next, policy_.read_timeout_cap);
  }
  if (jitter_rng_.has_value()) {
    const double j = policy_.read_timeout_jitter;
    const double scale = jitter_rng_->uniform(1.0 - j, 1.0 + j);
    next = std::max<sim::Time>(
        1, static_cast<sim::Time>(static_cast<double>(next) * scale));
  }
  return next;
}

Iteration SharedSpace::local_iteration(LocationId loc) const {
  auto it = local_.find(loc);
  return it == local_.end() ? -1 : it->second.iteration;
}

}  // namespace nscc::dsm
