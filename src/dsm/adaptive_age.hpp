// Dynamic (runtime) setting of the tolerable staleness — the paper's
// Section 6 future work: "we are experimenting with dynamic (runtime)
// setting of tolerable age (staleness) levels when using Global_Read".
//
// A simple AIMD-flavoured controller per reading process: when recent
// Global_Reads spend too large a fraction of the process's time blocked
// (the network/peers cannot sustain the current freshness demand), the age
// is raised; when reads never block and the observed staleness sits well
// inside the budget (freshness is cheap right now), the age is lowered
// toward better convergence quality.
#pragma once

#include <algorithm>
#include <cstdint>

#include "dsm/shared_space.hpp"
#include "sim/time.hpp"

namespace nscc::dsm {

class AdaptiveAgeController {
 public:
  struct Config {
    Iteration min_age = 0;
    Iteration max_age = 50;
    Iteration increase_step = 4;  ///< Additive increase when starved.
    Iteration decrease_step = 1;  ///< Gentle decrease when comfortable.
    /// Raise the age when blocked time exceeds this fraction of the
    /// observation interval.
    double block_fraction_hi = 0.05;
    /// Lower the age when (a) nothing blocked and (b) observed staleness
    /// stays below this fraction of the current age.
    double staleness_slack = 0.5;
    Iteration initial_age = 10;
  };

  AdaptiveAgeController();  // Defaults (defined below the class).
  explicit AdaptiveAgeController(const Config& config)
      : config_(config), age_(std::clamp(config.initial_age, config.min_age,
                                         config.max_age)) {}

  [[nodiscard]] Iteration age() const noexcept { return age_; }
  [[nodiscard]] std::uint64_t increases() const noexcept { return increases_; }
  [[nodiscard]] std::uint64_t decreases() const noexcept { return decreases_; }

  /// Feed one observation interval (e.g. one generation): how long the
  /// interval lasted, how much of it was spent blocked in Global_Read, and
  /// the freshest-observed staleness (in iterations) during it.
  void observe(sim::Time interval, sim::Time blocked, double max_staleness) {
    if (interval <= 0) return;
    const double frac =
        static_cast<double>(blocked) / static_cast<double>(interval);
    if (frac > config_.block_fraction_hi) {
      const Iteration next = std::min(config_.max_age,
                                      age_ + config_.increase_step);
      if (next != age_) ++increases_;
      age_ = next;
    } else if (blocked == 0 &&
               max_staleness <
                   config_.staleness_slack * static_cast<double>(age_)) {
      const Iteration next = std::max(config_.min_age,
                                      age_ - config_.decrease_step);
      if (next != age_) ++decreases_;
      age_ = next;
    }
  }

 private:
  Config config_;
  Iteration age_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

inline AdaptiveAgeController::AdaptiveAgeController()
    : AdaptiveAgeController(Config()) {}

}  // namespace nscc::dsm
