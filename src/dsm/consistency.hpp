// Pluggable consistency models (ROADMAP item 5): the consistency semantics
// that used to be hard-coded into SharedSpace's Global_Read predicate and
// the per-app Mode → PropagationPolicy mappings, extracted behind one
// interface so the paper's design point becomes one row of a matrix.
//
// A ConsistencyModel owns three decisions:
//
//   * read admission — admit() is the Global_Read gate: given the local
//     copy's metadata and the read's (curr_iter, age) declaration, may the
//     read return now or must it keep waiting?  The paper's non-strict
//     model admits iff the copy is valid and no older than curr_iter - age;
//     other models widen (eventual) or narrow (regional fences) that rule.
//   * propagation — shape() runs once per SharedSpace construction and may
//     override the policy's transport-facing knobs (coalescing, reliable
//     updates), so a model can own how its updates travel, not just when
//     they become readable.
//   * ordering metadata — a model that stamps updates (stamps_updates())
//     appends a per-writer release sequence number to every propagated
//     update (next_stamp() on the writer, note_stamp() on the reader), and
//     may defer visibility: visible_on_arrival() == false parks arriving
//     updates until the reader's next acquire point (any Global_Read or
//     plain read), RACoherence-style.
//
// Models are instantiated per SharedSpace through a lazily-populated
// registry keyed by name; PropagationPolicy::consistency selects one and
// defaults to "nonstrict", which is bit-for-bit the pre-refactor
// behaviour.  The four built-ins:
//
//   nonstrict        the paper: per-read bounded staleness (default)
//   regional         region-scoped acquire fences: a read of ANY member
//                    location admits only once EVERY location the task has
//                    read (its region) satisfies the bound, then the whole
//                    region is fenced until the next iteration
//   release-acquire  updates invisible until an acquire point; per-writer
//                    release sequence numbers detect reordering
//   eventual         no admission blocking beyond first-value validity;
//                    newest-wins propagation with forced coalescing
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace nscc::dsm {

using LocationId = std::int32_t;
using Iteration = std::int64_t;

struct PropagationPolicy;

/// Reader-side snapshot of a local copy, as the admission decision sees it.
struct CopyMeta {
  Iteration iteration = -1;  ///< Writer iteration that generated the copy.
  bool valid = false;        ///< False until the first update/write lands.
  bool degraded = false;     ///< Last served because the writer was gone.
  std::uint64_t epoch = 0;   ///< Writer incarnation that produced it.
};

class ConsistencyModel {
 public:
  virtual ~ConsistencyModel() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// The Global_Read admission gate.  Called at least once before the read
  /// considers blocking and again after every applied update while it
  /// waits, so implementations may keep state (fences, region membership)
  /// but must be monotone within one read: once true for a given copy, a
  /// re-ask with the same or a fresher copy stays true.  Recovery's escape
  /// hatches (dead-writer degradation, quorum-less stale serves) bypass
  /// this gate by design — they are liveness valves, not consistency.
  [[nodiscard]] virtual bool admit(LocationId loc, Iteration curr_iter,
                                   Iteration age, const CopyMeta& copy) = 0;

  /// Propagation ownership: invoked once, at SharedSpace construction, on
  /// the policy the space will use.  The default keeps the harness's
  /// mode-derived wiring (the paper's mapping: coalesce iff partial).
  virtual void shape(PropagationPolicy& policy) { (void)policy; }

  /// False parks arriving updates until the next acquire point instead of
  /// applying them at delivery (release-acquire visibility).
  [[nodiscard]] virtual bool visible_on_arrival() const noexcept {
    return true;
  }

  /// True appends a u64 ordering stamp to every update's wire format.
  /// Every task in a run shares one model name, so writer and reader
  /// always agree on the format.
  [[nodiscard]] virtual bool stamps_updates() const noexcept { return false; }

  /// Writer side: the stamp for the next outgoing update (only consulted
  /// when stamps_updates()).
  virtual std::uint64_t next_stamp() { return 0; }

  /// Reader side: account an incoming stamp from writer task `src`.
  /// Returns false when it arrived out of release order (the caller counts
  /// it; newest-wins still decides what is applied).
  virtual bool note_stamp(int src, std::uint64_t stamp) {
    (void)src;
    (void)stamp;
    return true;
  }

  /// Bookkeeping hook: the reader's copy of `loc` changed (update applied
  /// or merged).  Lets stateful models track non-read locations' freshness
  /// without owning the cache.
  virtual void note_copy(LocationId loc, const CopyMeta& copy) {
    (void)loc;
    (void)copy;
  }
};

/// Name → factory registry, populated lazily with the four built-ins on
/// first use; extensions (sharded directories, a native backend) register
/// additional models the same way.
class ConsistencyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ConsistencyModel>()>;

  static ConsistencyRegistry& instance();

  /// Throws std::invalid_argument on a duplicate name.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Throws std::invalid_argument for an unknown name.
  [[nodiscard]] std::unique_ptr<ConsistencyModel> make(
      const std::string& name) const;

  /// Registered names, in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  ConsistencyRegistry();
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace nscc::dsm
