// Non-strict cache coherence: the shared-memory abstraction and the
// Global_Read primitive (the paper's primary contribution, Sections 2, 4.1).
//
// Model (exactly the paper's): every shared location has a single writer
// whose readers are known up front, so writes are implemented as direct
// sends and reads as receives, layered over the PVM-like runtime.  Each
// local copy carries the *iteration number* at which the writer generated
// it.  The blocking primitive
//
//     Global_Read(locn, curr_iter, age)
//
// returns a value of locn generated no earlier than iteration
// (curr_iter - age) of the producing process; if the local copy is older the
// reading process blocks until a suitable update arrives (the paper's
// "simple blocking implementation" that waits rather than requesting).
// age = 0 removes all asynchrony tolerance; larger ages admit staler data
// and act as receiver-driven flow control for the whole computation.
//
// Propagation is write-through to all registered readers.  An optional
// sender-side coalescing policy keeps at most one update per
// (location, reader) in flight and merges bursts of writes into the latest
// value — the buffering freedom the paper attributes to asynchronous DSMs
// (Section 1, Mermera discussion).
//
// The admission rule above is one ConsistencyModel (dsm/consistency.hpp);
// PropagationPolicy::consistency selects among the registered models
// (regional fences, release/acquire visibility, eventual) with "nonstrict"
// — the paper's rule — as the byte-identical default.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsm/consistency.hpp"
#include "obs/obs.hpp"
#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sanitize/sanitize.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nscc::dsm {

// LocationId / Iteration live in dsm/consistency.hpp (the model interface
// is the lower layer; this header builds the cache on top of it).

/// How a program uses the shared space each iteration; apps map this to
/// barrier()+fresh reads, plain reads, or global_read with an age bound.
enum class Mode { kSynchronous, kAsynchronous, kPartialAsync };

[[nodiscard]] const char* mode_name(Mode m) noexcept;

/// How a blocked Global_Read obtains its value (paper Section 2): the
/// simple implementation just waits for the writer's next propagation; the
/// requesting implementation additionally sends the writer an explicit
/// request, which doubles as a "reader is starved" hint the writer could
/// use for scheduling priority.  The paper argues (and the A4 ablation
/// shows) that waiting generates fewer messages.
enum class GlobalReadImpl { kWait, kRequest };

struct PropagationPolicy {
  /// When true, at most one update per (location, reader) is in flight;
  /// writes that arrive meanwhile replace the pending value (newest wins).
  bool coalesce = false;
  GlobalReadImpl read_impl = GlobalReadImpl::kWait;
  /// Starvation watchdog for blocked Global_Reads: after this much virtual
  /// time without a satisfying update, the reader escalates from passively
  /// waiting to an explicit (reliable) kRequest demand to the writer, then
  /// backs off exponentially and demands again.  0 disables the watchdog —
  /// the default, because an *unsatisfiable* read (writer never reaches the
  /// needed iteration) must still be allowed to block forever and surface
  /// as a detectable deadlock.  Under a lossy network a finite budget makes
  /// Global_Read loss-proof as long as the writer keeps iterating.
  sim::Time read_timeout = 0;
  /// Multiplier applied to the budget after each escalation.
  double read_timeout_backoff = 2.0;
  /// Upper bound on the escalation budget (0 = uncapped).  Without a cap
  /// the exponential backoff can grow past the writer's whole lifetime and
  /// a single unlucky loss starves the reader for the rest of the run.
  sim::Time read_timeout_cap = 0;
  /// Deterministic jitter applied to each post-escalation budget: the next
  /// budget is scaled by a factor uniform in [1-j, 1+j] drawn from a stream
  /// seeded by (jitter_seed ^ task id), so simultaneously starved readers
  /// stop demanding in lockstep bursts.  0 disables (byte-identical to the
  /// unjittered watchdog).
  double read_timeout_jitter = 0.0;
  /// Seed for the jitter stream (conventionally the machine's fault seed).
  std::uint64_t jitter_seed = 0;
  /// Send DSM updates over the reliable transport channel (when the machine
  /// has one enabled).  Synchronous-mode drivers set this: age-0 reads make
  /// every update semantically load-bearing.  Asynchronous modes leave it
  /// off and lean on staleness tolerance instead.
  bool reliable_updates = false;
  /// Membership probe from the recovery subsystem's failure detector.  When
  /// set, a blocked Global_Read polls it (every liveness_poll of wait) and,
  /// if the location's writer has been declared dead, gives up waiting and
  /// returns the freshest local copy with Value::degraded set — the paper's
  /// kWait escalated to "last known value + staleness flag" so survivors
  /// run in degraded mode instead of blocking on a corpse.  Null (default)
  /// = everyone is presumed alive, byte-identical to the pre-recovery wait.
  std::function<bool(int)> writer_alive;
  /// How often a blocked read re-checks writer_alive.
  sim::Time liveness_poll = 10 * sim::kMillisecond;
  /// Quorum probe from the recovery subsystem for THIS node's membership
  /// view.  When set and returning false, the node sits on the minority
  /// side of a partition: a blocked Global_Read that stays out of quorum
  /// for partition_degrade_after serves the freshest *valid* local copy
  /// with Value::degraded set (counted as partition_stale_served) instead
  /// of blocking to the horizon — the paper's age knob acting as a
  /// divergence bound during the split.  Null = always in quorum.
  /// Setting this (or partition_heal) also turns on divergence tracking:
  /// every degraded serve marks its location diverged until an update
  /// reaching the needed iteration reconciles it.
  std::function<bool()> in_quorum;
  /// Patience before a quorum-less blocked read serves stale (0 = one
  /// liveness_poll).
  sim::Time partition_degrade_after = 0;
  /// Anti-entropy heal: at the end of every scheduled partition/blackhole
  /// window in the machine's fault plan, re-publish each valid written
  /// location to all its readers over the reliable channel (engine
  /// context, no CPU charge).  Newest-version-wins is the cache's normal
  /// apply rule, so healed copies reconcile diverged readers; frames sent
  /// are counted in DsmStats::heal_frames.
  bool partition_heal = false;
  /// Commutative-merge hook for workloads whose divergent copies compose:
  /// invoked when an incoming update carries the SAME iteration as the
  /// valid local copy (which newest-wins would otherwise stale-drop);
  /// returns the merged payload to install.  Null = drop-as-stale.
  std::function<rt::Packet(LocationId, const rt::Packet& local,
                           const rt::Packet& incoming)>
      merge;
  /// End-to-end data integrity: stamp every propagated update with a CRC32
  /// of its payload and verify it at apply time.  A mismatch (damage the
  /// transport's frame check missed, or a frame check disabled for testing)
  /// quarantines the update — it is dropped unapplied, counted in
  /// DsmStats::integrity_dropped, and if this task reads the location a
  /// reliable demand re-fetches a clean copy from the writer.  Off by
  /// default: the checksum changes the update wire format (4 bytes), so
  /// corruption-free baselines stay byte-identical.
  bool integrity = false;
  /// Which ConsistencyModel (dsm/consistency.hpp) governs this space: the
  /// read-admission rule, the update-visibility rule, and any ordering
  /// metadata on the wire.  Resolved against the ConsistencyRegistry at
  /// SharedSpace construction (unknown names throw); the model's shape()
  /// may override the transport knobs above.  "nonstrict" is the paper's
  /// per-read bounded-staleness rule and changes nothing.
  std::string consistency = "nonstrict";
};

struct DsmStats {
  std::uint64_t writes = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_coalesced = 0;  ///< Writes merged into a pending one.
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_stale_dropped = 0;  ///< Arrived older than local copy.
  std::uint64_t global_reads = 0;
  std::uint64_t global_read_blocks = 0;
  sim::Time global_read_block_time = 0;
  std::uint64_t requests_sent = 0;      ///< kRequest impl: demands issued.
  std::uint64_t hints_received = 0;     ///< Writer side: starved readers seen.
  std::uint64_t request_replies = 0;    ///< Writer side: demand-driven resends.
  std::uint64_t read_escalations = 0;   ///< Watchdog-triggered demands.
  std::uint64_t degraded_reads = 0;     ///< Reads unblocked by a dead writer.
  std::uint64_t integrity_dropped = 0;  ///< Damaged/garbled frames quarantined.
  std::uint64_t partition_stale_served = 0;  ///< Quorum-less stale serves.
  std::uint64_t heal_frames = 0;        ///< Anti-entropy republish frames.
  std::uint64_t diverged_marks = 0;     ///< Locations that served diverged.
  std::uint64_t reconciled_marks = 0;   ///< Diverged marks later healed.
  std::uint64_t merges = 0;             ///< Commutative-merge applications.
  std::uint64_t updates_parked = 0;   ///< Arrivals deferred to an acquire.
  std::uint64_t updates_flushed = 0;  ///< Parked updates applied at acquires.
  std::uint64_t ooo_updates = 0;      ///< Stamps that arrived out of order.
  /// Staleness (curr_iter - value iteration) of every global_read, as this
  /// task's "dsm.staleness" histogram in the machine's metrics registry.
  /// The registry is the single source of truth — the machine-wide
  /// "dsm.staleness" histogram receives the same observations, so the two
  /// views can never disagree.  Valid for the owning VirtualMachine's
  /// lifetime; never null after SharedSpace construction.
  const obs::Histogram* staleness_on_read = nullptr;
};

/// Per-task view of the shared space.  All tasks must make matching
/// declarations (same writer/readers per location) before use.
class SharedSpace {
 public:
  explicit SharedSpace(rt::Task& task, PropagationPolicy policy = {});
  /// Flushes DsmStats into the machine's metrics registry (labelled with
  /// this task's id) when observability is active.
  ~SharedSpace();

  SharedSpace(const SharedSpace&) = delete;
  SharedSpace& operator=(const SharedSpace&) = delete;

  /// Declare a location this task writes, and who reads it.
  void declare_written(LocationId loc, std::vector<int> readers);

  /// Declare a location this task reads and which task writes it.
  void declare_read(LocationId loc, int writer);

  /// A local copy of a shared location.
  struct Value {
    Iteration iteration = -1;  ///< Writer iteration that generated it.
    rt::Packet data;           ///< Opaque payload (rewound before return).
    bool valid = false;        ///< False until the first update/write lands.
    /// True when the last global_read returned this copy because the writer
    /// is dead (membership said so), not because it met the age bound.  A
    /// never-written location can come back degraded AND !valid — callers
    /// must still check valid.
    bool degraded = false;
    /// Causal-flow id of the update that produced this copy (0 = none /
    /// locally written / already consumed).  The first global_read that
    /// returns the copy emits the flow's 'f' end and clears it, so each
    /// write → read arrow terminates at exactly one read.
    std::uint64_t flow = 0;
    /// Membership epoch of the incarnation that produced this copy (the
    /// writer's task epoch, carried on every update).  A copy surviving a
    /// split carries the pre-split epoch until heal republishes it.
    std::uint64_t epoch = 0;
  };

  /// Writer side: store locally with the iteration stamp and propagate to
  /// every registered reader (charging per-send software overhead, like the
  /// paper's user-level macros doing direct sends).
  void write(LocationId loc, Iteration iteration, rt::Packet value);

  /// Plain read: drain any pending updates, then return the freshest local
  /// copy, however stale (slow-memory semantics; the fully asynchronous
  /// programs use this).
  const Value& read(LocationId loc);

  /// The Global_Read primitive.  Blocks until the consistency model admits
  /// the local copy of `loc`; under the default nonstrict model that means
  /// valid AND generated at iteration >= curr_iter - age (a location never
  /// written blocks until its first value arrives, whatever the age).
  /// Also the acquire point for models that defer update visibility.
  const Value& global_read(LocationId loc, Iteration curr_iter, Iteration age);

  /// Drain pending DSM update messages without blocking (asynchronous
  /// incorporation "as and when they arrive").
  void poll();

  /// Observer invoked for EVERY arriving update (even ones older than the
  /// local copy, which the cache itself drops).  Applications that need the
  /// full update stream — e.g. the rollback-based logic sampler, which must
  /// see corrections for past iterations — register here.  The packet's
  /// read cursor is rewound before each call.
  using UpdateObserver =
      std::function<void(LocationId, Iteration, rt::Packet&)>;
  void set_update_observer(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] const DsmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] rt::Task& task() noexcept { return task_; }

  /// Iteration stamp of the freshest local copy (-1 when none), without
  /// draining pending messages.  Mostly for tests and diagnostics.
  [[nodiscard]] Iteration local_iteration(LocationId loc) const;

 private:
  struct WriterState {
    std::vector<int> readers;
    // Per reader: is an update in flight, and the newest stashed value to
    // forward once it lands (coalescing policy only).
    struct PerReader {
      bool in_flight = false;
      bool has_pending = false;
      Iteration pending_iteration = -1;
      rt::Packet pending_value;
      /// Flow id of the stashed pending value (coalescing): the arrow begun
      /// at the write travels with whichever value is eventually forwarded.
      std::uint64_t pending_flow = 0;
    };
    std::map<int, PerReader> per_reader;
  };

  void apply_update(rt::Message& msg);
  /// Release/acquire visibility: apply every parked update, ordered by
  /// (writer, release stamp).  Runs at acquire points with acquiring_ set
  /// so the re-entrant apply_update calls go through instead of re-parking.
  void flush_parked();
  /// Non-destructively extract the ordering stamp from an update payload
  /// (0 when stamping is off or the frame is garbled); rewinds the cursor.
  [[nodiscard]] std::uint64_t peek_stamp(rt::Packet& payload) const;
  /// The local copy's metadata as the consistency model sees it.
  [[nodiscard]] static CopyMeta meta_of(const Value& v) noexcept {
    return CopyMeta{v.iteration, v.valid, v.degraded, v.epoch};
  }
  void serve_request(rt::Packet& payload, int from);
  void drain_requests();
  void send_update(LocationId loc, int reader, Iteration iteration,
                   const rt::Packet& value, bool charge_cpu,
                   rt::Reliability reliability = rt::Reliability::kAuto,
                   std::uint64_t flow = 0);
  void on_update_settled(LocationId loc, int reader, bool delivered);
  void send_demand(LocationId loc, Iteration need);
  /// Divergence bookkeeping: active when the policy carries a quorum probe
  /// or partition healing (i.e. the run can actually split).
  [[nodiscard]] bool tracks_divergence() const noexcept {
    return policy_.partition_heal || static_cast<bool>(policy_.in_quorum);
  }
  void mark_diverged(LocationId loc, Iteration need);
  void maybe_reconcile(LocationId loc, Iteration iteration);
  /// Engine-context anti-entropy pass at a partition-window end: republish
  /// every valid written location to all its readers, reliably.
  void heal_republish();
  [[nodiscard]] sim::Time next_backoff(sim::Time budget);
  /// True when causal-flow tracing is on for this machine (--flow-trace):
  /// gates flow-id allocation so untraced runs never touch the id counter.
  [[nodiscard]] bool flows_on() const noexcept {
    return obs_ != nullptr && obs_->tracer().flows_enabled();
  }
  /// Begin a new write → read flow on this task's track; returns the id.
  [[nodiscard]] std::uint64_t begin_flow(LocationId loc, Iteration iteration);

  rt::Task& task_;
  PropagationPolicy policy_;
  /// The consistency model governing this space (never null): admission,
  /// visibility, and ordering are delegated here; policy_.consistency
  /// names it and the registry built it.
  std::unique_ptr<ConsistencyModel> model_;
  /// Cached model capabilities (hot-path: one bool test, no virtual call).
  bool park_updates_ = false;   ///< !model_->visible_on_arrival()
  bool stamp_updates_ = false;  ///< model_->stamps_updates()
  /// True while inside an acquire point (any read entry): arriving updates
  /// apply immediately instead of parking.
  bool acquiring_ = false;
  /// The release log: updates that arrived between acquires, still in wire
  /// form, waiting for the next acquire to publish them.
  struct ParkedUpdate {
    std::uint64_t stamp = 0;
    rt::Message msg;
  };
  std::vector<ParkedUpdate> parked_;
  UpdateObserver observer_;
  /// Observability handles, resolved once at construction; null when the
  /// machine's hub is inactive so every hot-path guard is one branch.
  obs::Hub* obs_ = nullptr;
  obs::Gauge* blocked_readers_ = nullptr;
  obs::Gauge* inflight_updates_ = nullptr;
  /// Per-read outcome breakdown (machine-wide; the trace has the per-task
  /// detail): how each global_read was served — from updates already queued
  /// in the mailbox, after blocking, after a watchdog escalation, or
  /// degraded by a dead writer — plus the blocked-wait duration histogram.
  obs::Counter* read_queued_ = nullptr;
  obs::Counter* read_blocked_ = nullptr;
  obs::Counter* read_escalated_ = nullptr;
  obs::Counter* read_degraded_ = nullptr;
  obs::Histogram* read_block_ns_ = nullptr;
  /// Staleness histograms live in the registry unconditionally (the hub's
  /// registry always exists; only tracing is gated on activity) — they ARE
  /// the DsmStats accounting, not a parallel copy of it.
  obs::Histogram* staleness_hist_ = nullptr;  ///< Machine-wide staleness.
  obs::Histogram* staleness_mine_ = nullptr;  ///< This task's staleness.
  /// Staleness sanitizer owned by the VirtualMachine; null when
  /// --sanitize=off.  Fed every write (shadow log) and every read (audit).
  sanitize::Sanitizer* san_ = nullptr;
  /// Liveness token: deferred-delivery callbacks hold a weak_ptr so they
  /// become no-ops once this SharedSpace is destroyed (e.g. its task body
  /// returned while updates were still on the wire).
  std::shared_ptr<SharedSpace*> alive_ =
      std::make_shared<SharedSpace*>(this);
  std::map<LocationId, Value> local_;          // Locations we read or wrote.
  std::map<LocationId, WriterState> written_;  // Locations we write.
  std::map<LocationId, int> read_from_;        // Location -> writer task.
  /// Locations this reader served diverged (value older than the read's
  /// need), keyed to the highest iteration still owed.  An applied or
  /// merged update reaching the owed iteration reconciles the mark; marks
  /// still present at destruction are unreconciled divergence.
  std::map<LocationId, Iteration> diverged_;
  /// Jitter stream for the watchdog backoff; engaged only when the policy
  /// asks for jitter, so default runs draw nothing and stay byte-identical.
  std::optional<util::Xoshiro256> jitter_rng_;
  DsmStats stats_;
};

}  // namespace nscc::dsm
