// CRC32 (IEEE 802.3 polynomial, reflected) over arbitrary byte ranges.
//
// The simulator models frame payloads as real bytes, so end-to-end
// integrity can be modeled honestly: the transport stamps each frame with
// the checksum of its payload (rt::Packet::crc32) and the receiver
// recomputes it after fault injection has had its chance to flip bits or
// truncate the frame.  The checksum itself is treated as protocol
// metadata — it occupies no modeled wire bytes, exactly like the
// seq/ack/tag headers — so enabling it never perturbs simulated time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace nscc::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental form: feed `crc32_update` successive chunks starting from
/// crc32_init(), then finalize.  The one-shot crc32() below is the common
/// entry point.
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept {
  return 0xFFFFFFFFU;
}

[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFU;
}

/// CRC32 of a contiguous byte range (IEEE; crc32("123456789") == 0xCBF43926).
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t len) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace nscc::util
