#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace nscc::util {

Flags& Flags::add(const std::string& name, Kind kind, std::string def,
                  const std::string& help) {
  auto [it, inserted] = entries_.emplace(name, Entry{kind, std::move(def), help});
  if (inserted) order_.push_back(name);
  return *this;
}

Flags& Flags::add_int(const std::string& name, std::int64_t def,
                      const std::string& help) {
  return add(name, Kind::kInt, std::to_string(def), help);
}

Flags& Flags::add_double(const std::string& name, double def,
                         const std::string& help) {
  // std::to_string truncates to 6 fixed decimals (1e-7 -> "0.000000");
  // round-trip via %g with full precision instead.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", def);
  return add(name, Kind::kDouble, buf, help);
}

Flags& Flags::add_bool(const std::string& name, bool def,
                       const std::string& help) {
  return add(name, Kind::kBool, def ? "true" : "false", help);
}

Flags& Flags::add_string(const std::string& name, const std::string& def,
                         const std::string& help) {
  return add(name, Kind::kString, def, help);
}

bool Flags::set(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  switch (it->second.kind) {
    case Kind::kInt:
      try {
        (void)std::stoll(value);
      } catch (const std::exception&) {
        return false;
      }
      break;
    case Kind::kDouble:
      try {
        (void)std::stod(value);
      } catch (const std::exception&) {
        return false;
      }
      break;
    case Kind::kBool:
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        return false;
      }
      break;
    case Kind::kString:
      break;
  }
  it->second.value = value;
  return true;
}

void Flags::apply_env_overrides() {
  for (const auto& name : order_) {
    std::string env = "NSCC_";
    for (char c : name) {
      env += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
    }
    if (const char* v = std::getenv(env.c_str())) {
      set(name, v);
    }
  }
}

bool Flags::parse(int argc, char** argv) {
  apply_env_overrides();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << arg << '\n';
      print_usage(argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      if (it != entries_.end() && it->second.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "missing value for --" << name << '\n';
        return false;
      }
    }
    if (!set(name, value)) {
      std::cerr << "unknown or ill-formed flag: --" << name << "=" << value
                << '\n';
      print_usage(argv[0]);
      return false;
    }
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::stoll(entries_.at(name).value);
}

double Flags::get_double(const std::string& name) const {
  return std::stod(entries_.at(name).value);
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = entries_.at(name).value;
  return v == "true" || v == "1";
}

const std::string& Flags::get_string(const std::string& name) const {
  return entries_.at(name).value;
}

void Flags::print_usage(const std::string& program) const {
  std::cerr << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    std::cerr << "  --" << name << " (default: " << e.value << ")  " << e.help
              << '\n';
  }
}

}  // namespace nscc::util
