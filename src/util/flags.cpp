#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace nscc::util {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = csv.find(',', pos);
    out.push_back(csv.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

namespace {

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

}  // namespace

Flags& Flags::add(const std::string& name, Kind kind, std::string def,
                  const std::string& help, std::vector<std::string> allowed,
                  bool is_list) {
  auto [it, inserted] = entries_.emplace(
      name, Entry{kind, std::move(def), help, std::move(allowed), is_list});
  if (inserted) order_.push_back(name);
  return *this;
}

Flags& Flags::add_int(const std::string& name, std::int64_t def,
                      const std::string& help) {
  return add(name, Kind::kInt, std::to_string(def), help);
}

Flags& Flags::add_double(const std::string& name, double def,
                         const std::string& help) {
  // std::to_string truncates to 6 fixed decimals (1e-7 -> "0.000000");
  // round-trip via %g with full precision instead.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", def);
  return add(name, Kind::kDouble, buf, help);
}

Flags& Flags::add_bool(const std::string& name, bool def,
                       const std::string& help) {
  return add(name, Kind::kBool, def ? "true" : "false", help);
}

Flags& Flags::add_string(const std::string& name, const std::string& def,
                         const std::string& help) {
  return add(name, Kind::kString, def, help);
}

Flags& Flags::add_enum(const std::string& name, const std::string& def,
                       std::vector<std::string> allowed,
                       const std::string& help) {
  return add(name, Kind::kString, def, help, std::move(allowed), false);
}

Flags& Flags::add_enum_list(const std::string& name, const std::string& def,
                            std::vector<std::string> allowed,
                            const std::string& help) {
  return add(name, Kind::kString, def, help, std::move(allowed), true);
}

std::string Flags::set(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return "unknown flag --" + name;
  const Entry& e = it->second;
  switch (e.kind) {
    case Kind::kInt:
      try {
        std::size_t used = 0;
        (void)std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        return "--" + name + " expects an integer, got '" + value + "'";
      }
      break;
    case Kind::kDouble:
      try {
        std::size_t used = 0;
        (void)std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        return "--" + name + " expects a number, got '" + value + "'";
      }
      break;
    case Kind::kBool:
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        return "--" + name + " expects true/false, got '" + value + "'";
      }
      break;
    case Kind::kString:
      if (!e.allowed.empty()) {
        const auto ok = [&](const std::string& v) {
          return std::find(e.allowed.begin(), e.allowed.end(), v) !=
                 e.allowed.end();
        };
        if (e.is_list) {
          const auto parts = split_csv(value);
          std::vector<std::string> seen;
          for (const auto& part : parts) {
            if (part.empty() || !ok(part)) {
              return "--" + name + ": '" + part + "' is not one of " +
                     join(e.allowed, "|");
            }
            if (std::find(seen.begin(), seen.end(), part) != seen.end()) {
              return "--" + name + ": '" + part + "' given twice";
            }
            seen.push_back(part);
          }
          if (parts.empty()) return "--" + name + " needs at least one value";
        } else if (!ok(value)) {
          return "--" + name + " must be one of " + join(e.allowed, "|") +
                 ", got '" + value + "'";
        }
      }
      break;
  }
  it->second.value = value;
  return {};
}

bool Flags::set_default(const std::string& name, const std::string& value) {
  const std::string err = set(name, value);
  if (!err.empty()) {
    std::cerr << "bad flag default: " << err << '\n';
    return false;
  }
  return true;
}

void Flags::apply_env_overrides() {
  for (const auto& name : order_) {
    std::string env = "NSCC_";
    for (char c : name) {
      env += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
    }
    if (const char* v = std::getenv(env.c_str())) {
      const std::string err = set(name, v);
      // An ill-formed env override is a configuration bug; flag it loudly
      // instead of silently keeping the default.
      if (!err.empty()) std::cerr << "ignoring " << env << ": " << err << '\n';
    }
  }
}

bool Flags::parse(int argc, char** argv) {
  apply_env_overrides();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << arg << '\n';
      print_usage(argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        std::cerr << "unknown flag --" << name << '\n';
        print_usage(argv[0]);
        return false;
      }
      if (it->second.kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "missing value for --" << name << '\n';
        return false;
      }
    }
    const std::string err = set(name, value);
    if (!err.empty()) {
      std::cerr << err << '\n';
      print_usage(argv[0]);
      return false;
    }
  }
  return true;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::stoll(entries_.at(name).value);
}

double Flags::get_double(const std::string& name) const {
  return std::stod(entries_.at(name).value);
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = entries_.at(name).value;
  return v == "true" || v == "1";
}

const std::string& Flags::get_string(const std::string& name) const {
  return entries_.at(name).value;
}

std::vector<std::string> Flags::get_list(const std::string& name) const {
  return split_csv(entries_.at(name).value);
}

void Flags::print_usage(const std::string& program) const {
  std::cerr << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    std::cerr << "  --" << name << " (default: " << e.value;
    if (!e.allowed.empty()) {
      std::cerr << "; " << (e.is_list ? "subset of " : "one of ")
                << join(e.allowed, "|");
    }
    std::cerr << ")  " << e.help << '\n';
  }
}

}  // namespace nscc::util
