#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace nscc::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double normal_quantile(double p) noexcept {
  // Peter Acklam's inverse normal CDF approximation.
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};

  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double q = 0.0;
  double r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double z_for_confidence(double confidence) noexcept {
  return normal_quantile(0.5 + confidence / 2.0);
}

ConfidenceInterval mean_ci(const RunningStats& s, double confidence) noexcept {
  const double z = z_for_confidence(confidence);
  const double h = z * s.sem();
  return {s.mean() - h, s.mean() + h};
}

ConfidenceInterval proportion_ci(std::uint64_t successes, std::uint64_t trials,
                                 double confidence) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double p =
      static_cast<double>(successes) / static_cast<double>(trials);
  const double z = z_for_confidence(confidence);
  const double h = z * std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
  return {std::max(0.0, p - h), std::min(1.0, p + h)};
}

std::uint64_t samples_for_proportion(double precision, double confidence,
                                     double p) noexcept {
  const double z = z_for_confidence(confidence);
  const double n = z * z * p * (1.0 - p) / (precision * precision);
  return static_cast<std::uint64_t>(std::ceil(n));
}

}  // namespace nscc::util
