// Minimal command-line flag parsing for the bench/example binaries.
//
// Flags may be given as --name=value or --name value; bools accept bare
// --name.  Each flag also honours an environment override NSCC_<NAME>
// (upper-cased, dashes become underscores) so the whole bench suite can be
// switched to the paper-scale protocol with a single env var.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nscc::util {

class Flags {
 public:
  Flags& add_int(const std::string& name, std::int64_t def,
                 const std::string& help);
  Flags& add_double(const std::string& name, double def,
                    const std::string& help);
  Flags& add_bool(const std::string& name, bool def, const std::string& help);
  Flags& add_string(const std::string& name, const std::string& def,
                    const std::string& help);

  /// Parse argv; returns false (after printing usage) on --help or on an
  /// unknown/ill-formed flag.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  void print_usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Entry {
    Kind kind;
    std::string value;
    std::string help;
  };

  Flags& add(const std::string& name, Kind kind, std::string def,
             const std::string& help);
  bool set(const std::string& name, const std::string& value);
  void apply_env_overrides();

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace nscc::util
