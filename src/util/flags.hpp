// Minimal command-line flag parsing for the bench/example binaries.
//
// Flags may be given as --name=value or --name value; bools accept bare
// --name.  Each flag also honours an environment override NSCC_<NAME>
// (upper-cased, dashes become underscores) so the whole bench suite can be
// switched to the paper-scale protocol with a single env var.
//
// Unknown flags, ill-formed values, and enum values outside the allowed set
// are rejected: parse() prints a pointed error plus the usage text and
// returns false, and every driver turns that into a nonzero exit.  A typo
// never silently falls through to a default.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nscc::util {

class Flags {
 public:
  Flags& add_int(const std::string& name, std::int64_t def,
                 const std::string& help);
  Flags& add_double(const std::string& name, double def,
                    const std::string& help);
  Flags& add_bool(const std::string& name, bool def, const std::string& help);
  Flags& add_string(const std::string& name, const std::string& def,
                    const std::string& help);
  /// String flag restricted to one of `allowed` (e.g. --network=ethernet|sp2).
  Flags& add_enum(const std::string& name, const std::string& def,
                  std::vector<std::string> allowed, const std::string& help);
  /// Comma-separated, duplicate-free, non-empty subset of `allowed`
  /// (e.g. --variants=sync,partial).
  Flags& add_enum_list(const std::string& name, const std::string& def,
                       std::vector<std::string> allowed,
                       const std::string& help);

  /// Parse argv; returns false (after printing usage) on --help or on an
  /// unknown flag or ill-formed value.  Callers must exit nonzero on false.
  bool parse(int argc, char** argv);

  /// Override a flag's default before parse() (per-driver defaults on a
  /// shared flag set).  Returns false when the flag is unknown or the value
  /// does not validate.
  bool set_default(const std::string& name, const std::string& value);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  /// An enum-list flag's value split on commas.
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name) const;

  void print_usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Entry {
    Kind kind;
    std::string value;
    std::string help;
    std::vector<std::string> allowed;  ///< Non-empty = validated enum.
    bool is_list = false;              ///< Comma-separated enum subset.
  };

  Flags& add(const std::string& name, Kind kind, std::string def,
             const std::string& help, std::vector<std::string> allowed = {},
             bool is_list = false);
  /// Empty return = accepted; otherwise a human-readable reason.
  std::string set(const std::string& name, const std::string& value);
  void apply_env_overrides();

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

/// Split a comma-separated list into its (possibly empty) tokens.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv);

}  // namespace nscc::util
