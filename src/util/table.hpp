// ASCII / CSV table rendering for the benchmark harnesses.
//
// Every bench binary regenerating a paper table or figure prints its rows
// through this class so output is uniform and machine-readable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nscc::util {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(double v, int precision = 3);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with aligned columns and a rule under the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed precision without trailing garbage.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace nscc::util
