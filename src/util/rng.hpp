// Deterministic pseudo-random number generation for the NSCC simulator.
//
// Every stochastic component in the repository (GA operators, belief-network
// sampling, network load generators, experiment repetitions) draws from an
// explicitly seeded Xoshiro256** stream so that a run is a pure function of
// its seed, as required for reproducible discrete-event simulation.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace nscc::util {

/// SplitMix64: used only to expand a single 64-bit seed into the 256-bit
/// Xoshiro state (the construction recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG.  Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
    have_spare_normal_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // 128-bit multiply-shift rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Marsaglia's polar method (caches the spare value).
  double normal() noexcept {
    if (have_spare_normal_) {
      have_spare_normal_ = false;
      return spare_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    have_spare_normal_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) noexcept {
    return -std::log1p(-uniform01()) / rate;
  }

  /// Derive an independent child stream (for per-task / per-rep seeding).
  Xoshiro256 split(std::uint64_t salt) noexcept {
    SplitMix64 sm(s_[0] ^ (salt * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL));
    return Xoshiro256(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool have_spare_normal_ = false;
};

}  // namespace nscc::util
