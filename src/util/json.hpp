// Minimal JSON reader for the bench toolchain (nscc-bench-compare, run
// reports): a recursive-descent parser producing a plain value tree.  This
// is a *reader* for documents the repo itself emits (bench/schema.md) — it
// accepts standard JSON (RFC 8259) but does not chase spec corners the
// writers never produce (no \uXXXX surrogate-pair decoding: escapes are
// preserved verbatim in the string value).  Writers stay hand-rolled
// (harness/sweep.cpp) so emission never allocates a tree.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace nscc::util::json {

/// One parsed JSON value.  A tagged aggregate rather than a std::variant so
/// call sites read flat (`v.number`, `v.object`), at the cost of a little
/// unused storage per node — fine for bench-result sized documents.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Members in document order (duplicate keys keep every occurrence;
  /// find() returns the first, matching common parser behaviour).
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }

  /// First member named `key`, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Value* find(const std::string& key) const noexcept;

  /// Member lookup that tolerates missing keys: returns the member's string
  /// (resp. number) or the fallback when absent / wrong type.
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const noexcept;
};

/// Parse a complete JSON document.  Trailing whitespace is allowed, trailing
/// garbage is an error.  On failure returns nullopt and, when `error` is
/// non-null, stores a one-line message with the byte offset.
std::optional<Value> parse(const std::string& text,
                           std::string* error = nullptr);

}  // namespace nscc::util::json
