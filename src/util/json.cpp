#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace nscc::util::json {

const Value* Value::find(const std::string& key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::move(fallback);
}

double Value::number_or(const std::string& key,
                        double fallback) const noexcept {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

namespace {

/// Recursive-descent state over the whole input; depth-capped so a
/// pathological document cannot blow the parser's own stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v)) {
      emit_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      emit_error(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_what_ == nullptr) {  // Keep the innermost (first) failure.
      error_what_ = what;
      error_pos_ = pos_;
    }
    return false;
  }

  void emit_error(std::string* error) const {
    if (error == nullptr) return;
    char buf[160];
    std::snprintf(buf, sizeof buf, "json: %s at byte %zu",
                  error_what_ != nullptr ? error_what_ : "parse error",
                  error_pos_);
    *error = buf;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // Opening quote.
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // Preserved verbatim — the repo's writers only emit \u00XX for
            // control bytes, which never appear in keys we compare on.
            out += "\\u";
            break;
          default:
            return fail("unknown escape");
        }
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("invalid number");
    pos_ += static_cast<std::size_t>(end - start);
    out.type = Value::Type::kNumber;
    return true;
  }

  bool parse_value(Value& out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null", 4);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  const char* error_what_ = nullptr;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace nscc::util::json
