// Streaming statistics and confidence intervals.
//
// The paper's stopping rule for probabilistic inference ("90% confidence
// interval to a precision of +/-0.01") and its 25-run GA averaging both live
// on top of these helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace nscc::util {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// True running sum (accumulated directly, not reconstructed as mean * n,
  /// which loses precision once n is large).
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Closed interval [lo, hi].
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
  [[nodiscard]] double center() const noexcept { return (hi + lo) / 2.0; }
  [[nodiscard]] bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation; |relative error| < 1.15e-9 over (0,1)).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// Two-sided z value for the given confidence level, e.g. 0.90 -> 1.6449.
[[nodiscard]] double z_for_confidence(double confidence) noexcept;

/// Normal-approximation CI for a mean given sample stats.
[[nodiscard]] ConfidenceInterval mean_ci(const RunningStats& s,
                                         double confidence) noexcept;

/// Normal-approximation (Wald) CI for a binomial proportion.
[[nodiscard]] ConfidenceInterval proportion_ci(std::uint64_t successes,
                                               std::uint64_t trials,
                                               double confidence) noexcept;

/// Number of Bernoulli samples needed so that the Wald CI at `confidence`
/// has half-width <= `precision`, for worst-case p (or a given p estimate).
[[nodiscard]] std::uint64_t samples_for_proportion(double precision,
                                                   double confidence,
                                                   double p = 0.5) noexcept;

}  // namespace nscc::util
