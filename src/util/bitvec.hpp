// Compact bit vector used for GA chromosomes.
//
// Supports the operations the GA needs: random fill, point mutation,
// one-point crossover splicing, hashing (for the sequential GA's software
// fitness cache [19]), and sliced decoding to integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nscc::util {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }
  [[nodiscard]] bool empty() const noexcept { return nbits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(std::size_t i) noexcept { words_[i >> 6] ^= 1ULL << (i & 63); }

  [[nodiscard]] std::size_t popcount() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  void randomize(Xoshiro256& rng) noexcept {
    for (auto& w : words_) w = rng();
    mask_tail();
  }

  /// Extract `count` bits starting at `offset` as an unsigned integer
  /// (bit `offset` is the least significant). count <= 64.
  [[nodiscard]] std::uint64_t extract(std::size_t offset,
                                      std::size_t count) const noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < count; ++i) {
      v |= static_cast<std::uint64_t>(get(offset + i)) << i;
    }
    return v;
  }

  /// One-point crossover: children get [0,point) from one parent and
  /// [point,n) from the other.
  static void crossover(const BitVec& a, const BitVec& b, std::size_t point,
                        BitVec& child_a, BitVec& child_b) {
    child_a = a;
    child_b = b;
    for (std::size_t i = point; i < a.size(); ++i) {
      child_a.set(i, b.get(i));
      child_b.set(i, a.get(i));
    }
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    // FNV-1a over the words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    h ^= nbits_;
    h *= 0x100000001b3ULL;
    return h;
  }

  friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Serialized size in bytes (whole words, plus the bit count).
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return words_.size() * sizeof(std::uint64_t) + sizeof(std::uint64_t);
  }

  /// Rebuild from raw words (used by message deserialization).
  static BitVec from_words(std::size_t nbits, std::vector<std::uint64_t> words) {
    BitVec v;
    v.nbits_ = nbits;
    v.words_ = std::move(words);
    v.words_.resize((nbits + 63) / 64, 0);
    v.mask_tail();
    return v;
  }

 private:
  void mask_tail() noexcept {
    const std::size_t rem = nbits_ & 63;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (1ULL << rem) - 1;
    }
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nscc::util
