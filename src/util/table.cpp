#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace nscc::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table& Table::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "" : "  ");
      os << v;
      for (std::size_t pad = v.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace nscc::util
