// Shared append-style JSON emission helpers for the bench/report writers
// (harness/sweep.cpp, harness/report.cpp).  Writers stay hand-rolled — a
// document is built by appending to one std::string — so emitting results
// never allocates a value tree; these helpers only centralise the escaping
// and number-formatting rules so every writer round-trips identically
// through util::json::parse.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nscc::util::jsonw {

inline void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// %.17g: doubles round-trip exactly through strtod, so a reader comparing
/// two emitted documents can default to exact equality.
inline void append_number(std::string& out, double v) {
  // JSON has no NaN/Inf; a diverged metric serialises as null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

inline void append_object(
    std::string& out,
    const std::vector<std::pair<std::string, double>>& fields) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_number(out, value);
  }
  out += '}';
}

}  // namespace nscc::util::jsonw
