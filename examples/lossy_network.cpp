// Example: non-strict coherence on a lossy network.
//
// The loaded-network example stresses the medium with traffic; this one
// corrupts it.  An island GA runs over a shared Ethernet whose frames are
// dropped at random with a seeded, reproducible fault plan.  The reliable
// transport retransmits the control traffic the program cannot lose
// (barriers, Global_Read demands), while DSM updates stay best-effort and
// lean on the Global_Read starvation watchdog: a reader whose update was
// lost escalates to an explicit demand instead of waiting forever.
//
// Watch the synchronous variant's completion time climb with the loss rate
// (every lost barrier or update stalls the whole lockstep machine until a
// retransmission lands) while the Global_Read variant stays nearly flat —
// bounded staleness means a lost update usually doesn't matter, and the
// watchdog recovers the rare read that would otherwise starve.
//
//   $ ./examples/lossy_network [--loss-rate 0.02] [--fault-seed 99]
//
// With --loss-rate > 0 the sweep is {0, that rate}; otherwise a default
// ladder of loss rates is swept.  --read-timeout-ms overrides the
// starvation watchdog budget (default here: 50 ms).
#include <cstdio>
#include <iostream>
#include <vector>

#include "fault/fault.hpp"
#include "ga/island.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("generations", 120, "generations per deme")
      .add_int("demes", 4, "GA nodes")
      .add_int("age", 10, "staleness bound for the Global_Read variant")
      .add_int("seed", 3, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);

  std::vector<double> losses = {0.0, 0.001, 0.01, 0.05};
  if (flags.get_double("loss-rate") > 0.0) {
    losses = {0.0, flags.get_double("loss-rate")};
  }
  // The watchdog is the point of this example: default it on.
  sim::Time read_timeout = fault::read_timeout_from_flags(flags);
  if (read_timeout == 0) read_timeout = 50 * sim::kMillisecond;

  util::Table table("Island GA (f1) vs frame loss");
  table.columns({"loss", "variant", "completion s", "frames lost", "retx",
                 "escalations", "gr block s"});

  for (double loss : losses) {
    fault::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
    plan.link.loss_prob = loss;

    for (auto [label, mode, age] :
         {std::tuple{"sync", dsm::Mode::kSynchronous, 0L},
          {"Global_Read", dsm::Mode::kPartialAsync, flags.get_int("age")}}) {
      ga::IslandConfig cfg;
      cfg.function_id = 1;
      cfg.mode = mode;
      cfg.age = age;
      cfg.ndemes = static_cast<int>(flags.get_int("demes"));
      cfg.generations = static_cast<int>(flags.get_int("generations"));
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cfg.propagation.coalesce = mode == dsm::Mode::kPartialAsync;
      cfg.propagation.read_timeout = read_timeout;
      rt::MachineConfig machine;
      machine.fault = plan;
      machine.transport.enabled = !plan.empty();
      // The surviving trace/metrics files describe the Global_Read run
      // under the heaviest loss — the one where the recovery machinery
      // actually fires.
      if (mode == dsm::Mode::kPartialAsync && loss == losses.back()) {
        machine.obs = obs_options;
      }
      const auto r = ga::run_island_ga(cfg, machine);
      table.row()
          .cell(util::format_double(loss * 100.0, 1) + " %")
          .cell(label)
          .cell(sim::to_seconds(r.completion_time), 2)
          .cell(r.frames_lost)
          .cell(r.retransmissions)
          .cell(r.read_escalations)
          .cell(sim::to_seconds(r.global_read_block_time), 2);
    }
  }
  table.print(std::cout);
  std::printf("\nLost frames cost the synchronous variant a retransmission\n"
              "round-trip on the critical path; the Global_Read variant\n"
              "absorbs most losses inside its staleness budget and the\n"
              "watchdog demands the few copies a reader truly needs.\n");
  return 0;
}
