// Example: non-strict coherence on a lossy network.
//
// The loaded-network example stresses the medium with traffic; this one
// corrupts it.  An island GA runs over a shared Ethernet whose frames are
// dropped at random with a seeded, reproducible fault plan.  The reliable
// transport retransmits the control traffic the program cannot lose
// (barriers, Global_Read demands), while DSM updates stay best-effort and
// lean on the Global_Read starvation watchdog: a reader whose update was
// lost escalates to an explicit demand instead of waiting forever.
//
// Watch the synchronous variant's completion time climb with the loss rate
// (every lost barrier or update stalls the whole lockstep machine until a
// retransmission lands) while the Global_Read variant stays nearly flat —
// bounded staleness means a lost update usually doesn't matter, and the
// watchdog recovers the rare read that would otherwise starve.
//
//   $ ./examples/lossy_network [--loss-rate=0.02] [--fault-seed=99]
//
// With --loss-rate > 0 the sweep is {0, that rate}; otherwise a default
// ladder of loss rates is swept.  --read-timeout-ms overrides the
// starvation watchdog budget (default here: 50 ms).
#include "fault/fault.hpp"
#include "harness/driver.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nscc;
  harness::DriveOptions options;
  options.workload = "ga.island";
  options.title = "Island GA (f1) vs frame loss";
  options.default_variants = "sync,partial";
  options.flag_defaults = {{"function", "1"},
                           {"demes", "4"},
                           {"generations", "120"},
                           {"seed", "3"},
                           {"read-timeout-ms", "50"}};
  options.scenario_column = "loss";
  options.scenarios = [](const util::Flags& flags) {
    std::vector<double> losses = {0.0, 0.001, 0.01, 0.05};
    if (flags.get_double("loss-rate") > 0.0) {
      losses = {0.0, flags.get_double("loss-rate")};
    }
    std::vector<harness::Scenario> scenarios;
    for (double loss : losses) {
      harness::Scenario s;
      s.label = util::format_double(loss * 100.0, 1) + " %";
      s.has_fault = true;
      s.fault.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
      s.fault.link.loss_prob = loss;
      scenarios.push_back(s);
    }
    return scenarios;
  };
  options.epilogue =
      "Lost frames cost the synchronous variant a retransmission\n"
      "round-trip on the critical path; the Global_Read variant absorbs\n"
      "most losses inside its staleness budget and the watchdog demands\n"
      "the few copies a reader truly needs.";
  return harness::drive(argc, argv, options);
}
