// Example: non-strict coherence under network load.
//
// Reproduces the paper's loaded-network scenario in miniature: an island GA
// on four simulated nodes shares the 10 Mbps Ethernet with a background
// load generator.  As the offered load rises, watch the synchronous
// variant's completion time climb while the Global_Read variant holds.
//
//   $ ./examples/loaded_network [--generations=120] [--variants=sync,partial]
#include "harness/driver.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nscc;
  harness::DriveOptions options;
  options.workload = "ga.island";
  options.title = "Island GA (f1) vs background Ethernet load";
  options.default_age = 20;
  options.flag_defaults = {{"function", "1"},
                           {"demes", "4"},
                           {"generations", "120"},
                           {"seed", "3"}};
  options.scenario_column = "load Mbps";
  options.scenarios = [](const util::Flags&) {
    std::vector<harness::Scenario> scenarios;
    for (double load_mbps : {0.0, 2.0, 4.0, 6.0}) {
      harness::Scenario s;
      s.label = util::format_double(load_mbps, 1);
      s.loader_offered_bps = load_mbps * 1e6;
      scenarios.push_back(s);
    }
    return scenarios;
  };
  options.epilogue =
      "The receiver-driven flow control of Global_Read prevents the\n"
      "initial onset of congestion instead of reacting to it (the paper's\n"
      "closing argument against Warp-style control).";
  return harness::drive(argc, argv, options);
}
