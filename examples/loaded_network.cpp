// Example: non-strict coherence under network load.
//
// Reproduces the paper's loaded-network scenario in miniature: an island GA
// on four simulated nodes shares the 10 Mbps Ethernet with a background
// load generator.  As the offered load rises, watch the synchronous
// variant's completion time climb while the Global_Read variant holds —
// and watch the warp metric report the rising load.
//
//   $ ./examples/loaded_network [--generations 120]
#include <cstdio>
#include <iostream>

#include "fault/fault.hpp"
#include "ga/island.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("generations", 120, "generations per deme")
      .add_int("demes", 4, "GA nodes (the paper used 4 + 2 loader nodes)")
      .add_int("seed", 3, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);
  const fault::FaultPlan fault_plan = fault::plan_from_flags(flags);

  util::Table table("Island GA (f1) vs background Ethernet load");
  table.columns({"load Mbps", "variant", "completion s", "bus util",
                 "mean warp", "gr block s"});

  for (double load_mbps : {0.0, 2.0, 4.0, 6.0}) {
    for (auto [label, mode, age] :
         {std::tuple{"sync", dsm::Mode::kSynchronous, 0L},
          {"async", dsm::Mode::kAsynchronous, 0L},
          {"age20", dsm::Mode::kPartialAsync, 20L}}) {
      ga::IslandConfig cfg;
      cfg.function_id = 1;
      cfg.mode = mode;
      cfg.age = age;
      cfg.ndemes = static_cast<int>(flags.get_int("demes"));
      cfg.generations = static_cast<int>(flags.get_int("generations"));
      cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      cfg.propagation.coalesce = mode == dsm::Mode::kPartialAsync;
      cfg.propagation.read_timeout = fault::read_timeout_from_flags(flags);
      rt::MachineConfig machine;
      machine.fault = fault_plan;
      machine.transport.enabled = !fault_plan.empty();
      // Each traced run overwrites the output files, so what remains is the
      // Global_Read run under the heaviest load — the interesting one.
      if (mode == dsm::Mode::kPartialAsync) machine.obs = obs_options;
      const auto r = ga::run_island_ga(cfg, machine, load_mbps * 1e6);
      table.row()
          .cell(load_mbps, 1)
          .cell(label)
          .cell(sim::to_seconds(r.completion_time), 2)
          .cell(r.bus_utilization, 2)
          .cell(r.mean_warp, 3)
          .cell(sim::to_seconds(r.global_read_block_time), 2);
    }
  }
  table.print(std::cout);
  std::printf("\nThe receiver-driven flow control of Global_Read prevents\n"
              "the initial onset of congestion instead of reacting to it\n"
              "(the paper's closing argument against Warp-style control).\n");
  return 0;
}
