// Example: parallel probabilistic inference with rollback.
//
// Builds the paper's Figure 1 belief network (the medical-diagnosis
// example), runs sequential logic sampling for reference, then distributes
// the network over two simulated nodes and runs the speculative
// (default-value + rollback) sampler under a Global_Read staleness bound.
// All modes converge to the same posteriors; the table shows what each one
// pays to get there.
//
//   $ ./examples/bayes_inference [--age 10] [--iterations 6000]
#include <cstdio>
#include <iostream>

#include "bayes/logic_sampling.hpp"
#include "bayes/parallel_sampling.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

namespace {

/// The paper's Figure 1: A -> {B, C}; {B, C} -> D; C -> E.
bayes::BeliefNetwork figure1() {
  bayes::BeliefNetwork net;
  const auto a = net.add_node("metastatic-cancer", 2);
  const auto b = net.add_node("serum-calcium", 2);
  const auto c = net.add_node("brain-tumor", 2);
  const auto d = net.add_node("coma", 2);
  const auto e = net.add_node("headache", 2);
  net.set_parents(b, {a});
  net.set_parents(c, {a});
  net.set_parents(d, {b, c});
  net.set_parents(e, {c});
  net.set_cpt(a, {0.80, 0.20});
  net.set_cpt(b, {0.80, 0.20, 0.20, 0.80});
  net.set_cpt(c, {0.95, 0.05, 0.20, 0.80});
  net.set_cpt(d, {0.95, 0.05, 0.40, 0.60, 0.30, 0.70, 0.20, 0.80});
  net.set_cpt(e, {0.90, 0.10, 0.30, 0.70});
  net.validate();
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("age", 10, "Global_Read staleness bound")
      .add_int("iterations", 6000, "sampling iterations for parallel runs")
      .add_int("seed", 11, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);
  const fault::FaultPlan fault_plan = fault::plan_from_flags(flags);

  const auto net = figure1();
  // Query: P(coma = true | metastatic-cancer = true).
  const std::vector<bayes::Evidence> evidence = {{0, 1}};
  const std::vector<bayes::Query> queries = {{3, 1}, {4, 1}};

  bayes::InferenceConfig serial_cfg;
  serial_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto serial = bayes::run_logic_sampling(net, evidence, queries, serial_cfg);
  std::printf("sequential logic sampling: %llu runs (%llu evidence-consistent), "
              "%.2fs virtual\n",
              static_cast<unsigned long long>(serial.samples_drawn),
              static_cast<unsigned long long>(serial.samples_used),
              sim::to_seconds(serial.completion_time));

  util::Table table("P(coma | cancer) and P(headache | cancer), 2 nodes");
  table.columns({"variant", "P(coma)", "P(headache)", "time s", "rollbacks",
                 "nodes resampled", "messages"});
  table.row()
      .cell("sequential")
      .cell(serial.estimates[0].probability, 3)
      .cell(serial.estimates[1].probability, 3)
      .cell(sim::to_seconds(serial.completion_time), 2)
      .cell("-")
      .cell("-")
      .cell("-");

  for (auto [label, mode, age] :
       {std::tuple{"synchronous", dsm::Mode::kSynchronous, 0L},
        {"asynchronous", dsm::Mode::kAsynchronous, 0L},
        {"Global_Read", dsm::Mode::kPartialAsync, flags.get_int("age")}}) {
    bayes::ParallelInferenceConfig cfg;
    cfg.mode = mode;
    cfg.age = age;
    cfg.iterations = static_cast<std::uint64_t>(flags.get_int("iterations"));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.read_timeout = fault::read_timeout_from_flags(flags);
    rt::MachineConfig machine;
    machine.fault = fault_plan;
    machine.transport.enabled = !fault_plan.empty();
    // Trace/sample only the Global_Read variant (rollback instants show up
    // on the per-node tracks).
    if (mode == dsm::Mode::kPartialAsync) machine.obs = obs_options;
    const auto r =
        bayes::run_parallel_logic_sampling(net, evidence, queries, cfg, machine);
    table.row()
        .cell(label)
        .cell(r.estimates[0].probability, 3)
        .cell(r.estimates[1].probability, 3)
        .cell(sim::to_seconds(r.completion_time), 2)
        .cell(r.rollbacks)
        .cell(r.nodes_resampled)
        .cell(r.messages_sent);
  }
  table.print(std::cout);
  std::printf("\nAll parallel variants converge to identical validated\n"
              "posteriors (counter-based randomness); they differ only in\n"
              "time, messages, and rollback work.\n");
  return 0;
}
