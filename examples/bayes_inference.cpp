// Example: parallel probabilistic inference with rollback.
//
// Builds the paper's Figure 1 belief network (the medical-diagnosis
// example), runs sequential logic sampling for reference, then distributes
// the network over two simulated nodes and runs the speculative
// (default-value + rollback) sampler under a Global_Read staleness bound.
// All modes converge to the same posteriors; the table shows what each one
// pays to get there.
//
//   $ ./examples/bayes_inference [--age=10] [--iterations=6000]
//                                [--variants=sync,async,partial]
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  nscc::harness::DriveOptions options;
  options.workload = "bayes.sampling";
  options.flag_defaults = {{"seed", "11"}};
  options.epilogue =
      "All parallel variants converge to identical validated posteriors\n"
      "(counter-based randomness); they differ only in time, messages, and\n"
      "rollback work.";
  return nscc::harness::drive(argc, argv, options);
}
