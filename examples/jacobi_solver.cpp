// Example: asynchronous iterative equation solving — the paper's opening
// example of a data-race tolerant application (Section 1, Bertsekas &
// Tsitsiklis [2]).
//
// Solves a 2-D Poisson system with row blocks distributed over simulated
// nodes and boundary values exchanged through the shared space.  The
// asynchronous-convergence theorem in action: every consistency mode
// reaches the solution; they differ in sweeps and time.
//
//   $ ./examples/jacobi_solver [--grid=16] [--processors=4] [--age=10]
//                              [--variants=sync,async,partial]
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  nscc::harness::DriveOptions options;
  options.workload = "solver.jacobi";
  options.flag_defaults = {{"seed", "5"}};
  options.epilogue =
      "Bounded staleness licenses coalescing of boundary updates; the\n"
      "asynchronous variants pay extra sweeps but win wall-clock time.";
  return nscc::harness::drive(argc, argv, options);
}
