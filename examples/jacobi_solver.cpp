// Example: asynchronous iterative equation solving — the paper's opening
// example of a data-race tolerant application (Section 1, Bertsekas &
// Tsitsiklis [2]).
//
// Solves a 2-D Poisson system with row blocks distributed over simulated
// nodes and boundary values exchanged through the shared space.  The
// asynchronous-convergence theorem in action: every consistency mode
// reaches the solution; they differ in sweeps and time.
//
//   $ ./examples/jacobi_solver [--grid 16] [--processors 4] [--age 10]
#include <cstdio>
#include <iostream>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "solver/jacobi.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("grid", 16, "Poisson grid side (n x n unknowns)")
      .add_int("processors", 4, "simulated nodes")
      .add_int("age", 10, "Global_Read staleness bound")
      .add_double("tolerance", 1e-7, "residual tolerance")
      .add_int("seed", 5, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);
  const fault::FaultPlan fault_plan = fault::plan_from_flags(flags);

  const auto sys = solver::make_poisson_2d(
      static_cast<int>(flags.get_int("grid")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  std::printf("system: %d unknowns, %zu nonzeros, strictly dominant: %s\n",
              sys.size(), sys.a.nonzeros(),
              sys.a.strictly_diagonally_dominant() ? "yes" : "no");

  solver::JacobiConfig seq_cfg;
  seq_cfg.tolerance = flags.get_double("tolerance");
  const auto serial = solver::run_sequential_jacobi(sys, seq_cfg);
  std::printf("sequential: %d sweeps, %.2fs virtual, residual %.2e\n\n",
              serial.sweeps, sim::to_seconds(serial.completion_time),
              serial.residual);

  util::Table table("Parallel Jacobi, P=" +
                    std::to_string(flags.get_int("processors")));
  table.columns({"variant", "sweeps", "time s", "speedup", "residual",
                 "error", "gr blocks"});
  for (auto [label, mode, age] :
       {std::tuple{"synchronous", dsm::Mode::kSynchronous, 0L},
        {"asynchronous", dsm::Mode::kAsynchronous, 0L},
        {"Global_Read", dsm::Mode::kPartialAsync, flags.get_int("age")}}) {
    solver::ParallelJacobiConfig cfg;
    cfg.mode = mode;
    cfg.age = age;
    cfg.processors = static_cast<int>(flags.get_int("processors"));
    cfg.tolerance = flags.get_double("tolerance");
    cfg.check_interval = 25;
    cfg.coalesce = mode == dsm::Mode::kPartialAsync;
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.read_timeout = fault::read_timeout_from_flags(flags);
    rt::MachineConfig machine;
    machine.fault = fault_plan;
    machine.transport.enabled = !fault_plan.empty();
    // Trace/sample only the Global_Read variant.
    if (mode == dsm::Mode::kPartialAsync) machine.obs = obs_options;
    const auto r = solver::run_parallel_jacobi(sys, cfg, machine);
    char residual[32];
    char error[32];
    std::snprintf(residual, sizeof residual, "%.2e", r.residual);
    std::snprintf(error, sizeof error, "%.2e", r.error_inf);
    table.row()
        .cell(label)
        .cell(static_cast<std::int64_t>(r.sweeps))
        .cell(sim::to_seconds(r.completion_time), 2)
        .cell(static_cast<double>(serial.completion_time) /
                  static_cast<double>(r.completion_time),
              2)
        .cell(residual)
        .cell(error)
        .cell(r.global_read_blocks);
  }
  table.print(std::cout);
  return 0;
}
