// Example: bounded-staleness neural-network training (the paper's named
// future-work application).  Four workers and a parameter server train a
// small MLP on the two-spirals task over an SP2 switch; Global_Read bounds
// how stale the parameters any worker computes gradients against can be.
//
//   $ ./examples/neural_training [--age=2] [--steps=500] [--workers=4]
//                                [--variants=sync,async,partial]
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  nscc::harness::DriveOptions options;
  options.workload = "nn.train";
  options.default_age = 2;
  options.default_network = nscc::rt::Network::kSp2Switch;
  options.flag_defaults = {{"seed", "7"}};
  options.epilogue =
      "Stale-gradient SGD tolerates *bounded* staleness; the uncontrolled\n"
      "run's parameters drift hundreds of rounds stale on a skewed cluster\n"
      "and the model pays for it.";
  return nscc::harness::drive(argc, argv, options);
}
