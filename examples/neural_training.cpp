// Example: bounded-staleness neural-network training (the paper's named
// future-work application).  Four workers and a parameter server train a
// small MLP on the two-spirals task; Global_Read bounds how stale the
// parameters any worker computes gradients against can be.
//
//   $ ./examples/neural_training [--age 2] [--steps 500]
#include <cstdio>
#include <iostream>

#include "fault/fault.hpp"
#include "nn/train.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("age", 2, "staleness bound (rounds) for Global_Read")
      .add_int("steps", 500, "mini-batch steps per worker")
      .add_int("workers", 4, "worker nodes")
      .add_int("seed", 7, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);
  const fault::FaultPlan fault_plan = fault::plan_from_flags(flags);

  const auto data = nn::make_two_spirals(60, 0.02,
                                         static_cast<std::uint64_t>(
                                             flags.get_int("seed")));
  nn::TrainConfig cfg;
  cfg.steps = static_cast<int>(flags.get_int("steps"));
  cfg.workers = static_cast<int>(flags.get_int("workers"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.read_timeout = fault::read_timeout_from_flags(flags);

  const auto serial = nn::train_sequential(data, cfg);
  std::printf("serial: loss %.4f, accuracy %.2f, %.2fs virtual\n",
              serial.final_loss, serial.final_accuracy,
              sim::to_seconds(serial.completion_time));

  rt::MachineConfig machine;
  machine.network = rt::Network::kSp2Switch;
  machine.fault = fault_plan;
  machine.transport.enabled = !fault_plan.empty();

  util::Table table("Two-spirals MLP, " +
                    std::to_string(flags.get_int("workers")) +
                    " workers + parameter server (SP2 switch)");
  table.columns({"variant", "loss", "accuracy", "time s", "staleness",
                 "gr blocks"});
  for (auto [label, mode, age] :
       {std::tuple{"synchronous SGD", dsm::Mode::kSynchronous, 0L},
        {"uncontrolled async", dsm::Mode::kAsynchronous, 0L},
        {"Global_Read SGD", dsm::Mode::kPartialAsync, flags.get_int("age")}}) {
    cfg.mode = mode;
    cfg.age = age;
    // Trace/sample only the Global_Read variant.
    machine.obs = mode == dsm::Mode::kPartialAsync ? obs_options : obs::Options{};
    const auto r = nn::train_parallel(data, cfg, machine);
    table.row()
        .cell(label)
        .cell(r.final_loss, 4)
        .cell(r.final_accuracy, 2)
        .cell(sim::to_seconds(r.completion_time), 2)
        .cell(r.mean_staleness, 1)
        .cell(r.global_read_blocks);
  }
  table.print(std::cout);
  std::printf("\nStale-gradient SGD tolerates *bounded* staleness; the\n"
              "uncontrolled run's parameters drift hundreds of rounds stale\n"
              "on a skewed cluster and the model pays for it.\n");
  return 0;
}
