// Quickstart: the Global_Read primitive in 60 lines.
//
// A producer task runs an iterative computation and writes a shared
// location once per iteration; a fast consumer reads it with a bounded
// staleness of 3 iterations.  Watch the consumer block (receiver-driven
// flow control) whenever it gets more than 3 iterations ahead.
//
//   $ ./examples/quickstart [--trace-out=trace.json] [--metrics-out=m.csv]
#include <cstdio>
#include <iostream>

#include "dsm/shared_space.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "rt/vm.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  rt::MachineConfig machine;
  machine.ntasks = 2;
  machine.obs = obs::options_from_flags(flags);
  machine.obs.enable = true;  // Always collect; the summary table reads it.
  machine.fault = fault::plan_from_flags(flags);
  machine.transport.enabled = !machine.fault.empty();
  dsm::PropagationPolicy reader_policy;
  reader_policy.read_timeout = fault::read_timeout_from_flags(flags);
  rt::VirtualMachine vm(machine);

  constexpr dsm::LocationId kTemperature = 1;
  constexpr dsm::Iteration kIterations = 12;
  constexpr dsm::Iteration kAge = 3;

  vm.add_task("producer", [](rt::Task& task) {
    dsm::SharedSpace space(task);
    space.declare_written(kTemperature, {1});
    double value = 100.0;
    for (dsm::Iteration iter = 0; iter < kIterations; ++iter) {
      task.compute(20 * sim::kMillisecond);  // Slow iterative solver step.
      value *= 0.9;
      rt::Packet p;
      p.pack_double(value);
      space.write(kTemperature, iter, std::move(p));
    }
  });

  vm.add_task("consumer", [reader_policy](rt::Task& task) {
    dsm::SharedSpace space(task, reader_policy);
    space.declare_read(kTemperature, 0);
    for (dsm::Iteration iter = 0; iter < kIterations; ++iter) {
      // Global_Read(locn, curr_iter, age): returns a value generated no
      // earlier than iteration curr_iter - age, blocking if necessary.
      const auto& v = space.global_read(kTemperature, iter, kAge);
      rt::Packet data = v.data;  // Copy before unpacking.
      std::printf("consumer iter %2lld: temperature=%6.2f (from producer "
                  "iteration %lld, staleness %lld) at t=%.3fs\n",
                  static_cast<long long>(iter), data.unpack_double(),
                  static_cast<long long>(v.iteration),
                  static_cast<long long>(iter - v.iteration),
                  sim::to_seconds(task.now()));
      task.compute(2 * sim::kMillisecond);  // Fast consumer.
    }
    const auto& stats = space.stats();
    std::printf("consumer blocked %llu times for %.3fs total\n",
                static_cast<unsigned long long>(stats.global_read_blocks),
                sim::to_seconds(stats.global_read_block_time));
  });

  const sim::Time end = vm.run();
  std::printf("simulation finished at t=%.3fs (deadlocked: %s)\n\n",
              sim::to_seconds(end), vm.deadlocked() ? "yes" : "no");

  // End-of-run summary straight from the metrics registry: every layer
  // published into it, so one table covers DSM, runtime, and network.
  const obs::Registry& reg = vm.obs().registry();
  const obs::Histogram* staleness = reg.find_histogram("dsm.staleness");
  util::Table summary("Run metrics (from obs::Registry)");
  summary.columns({"writes", "updates applied", "gr blocks", "block time s",
                   "staleness mean", "msgs sent", "bus util"});
  summary.row()
      .cell(reg.counter_value("dsm.writes", 0))
      .cell(reg.counter_value("dsm.updates_applied", 1))
      .cell(reg.counter_value("dsm.global_read_blocks", 1))
      .cell(static_cast<double>(
                reg.counter_value("dsm.global_read_block_time_ns", 1)) /
                1e9,
            3)
      .cell(staleness != nullptr ? staleness->mean() : 0.0, 2)
      .cell(reg.counter_value("rt.messages_sent", 0) +
            reg.counter_value("rt.messages_sent", 1))
      .cell(reg.gauge_value("net.utilization"), 3);
  summary.print(std::cout);
  return 0;
}
