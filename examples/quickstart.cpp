// Quickstart: the Global_Read primitive in 60 lines.
//
// A producer task runs an iterative computation and writes a shared
// location once per iteration; a fast consumer reads it with a bounded
// staleness of 3 iterations.  Watch the consumer block (receiver-driven
// flow control) whenever it gets more than 3 iterations ahead.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "dsm/shared_space.hpp"
#include "rt/vm.hpp"

using namespace nscc;

int main() {
  rt::MachineConfig machine;
  machine.ntasks = 2;
  rt::VirtualMachine vm(machine);

  constexpr dsm::LocationId kTemperature = 1;
  constexpr dsm::Iteration kIterations = 12;
  constexpr dsm::Iteration kAge = 3;

  vm.add_task("producer", [](rt::Task& task) {
    dsm::SharedSpace space(task);
    space.declare_written(kTemperature, {1});
    double value = 100.0;
    for (dsm::Iteration iter = 0; iter < kIterations; ++iter) {
      task.compute(20 * sim::kMillisecond);  // Slow iterative solver step.
      value *= 0.9;
      rt::Packet p;
      p.pack_double(value);
      space.write(kTemperature, iter, std::move(p));
    }
  });

  vm.add_task("consumer", [](rt::Task& task) {
    dsm::SharedSpace space(task);
    space.declare_read(kTemperature, 0);
    for (dsm::Iteration iter = 0; iter < kIterations; ++iter) {
      // Global_Read(locn, curr_iter, age): returns a value generated no
      // earlier than iteration curr_iter - age, blocking if necessary.
      const auto& v = space.global_read(kTemperature, iter, kAge);
      rt::Packet data = v.data;  // Copy before unpacking.
      std::printf("consumer iter %2lld: temperature=%6.2f (from producer "
                  "iteration %lld, staleness %lld) at t=%.3fs\n",
                  static_cast<long long>(iter), data.unpack_double(),
                  static_cast<long long>(v.iteration),
                  static_cast<long long>(iter - v.iteration),
                  sim::to_seconds(task.now()));
      task.compute(2 * sim::kMillisecond);  // Fast consumer.
    }
    const auto& stats = space.stats();
    std::printf("consumer blocked %llu times for %.3fs total\n",
                static_cast<unsigned long long>(stats.global_read_blocks),
                sim::to_seconds(stats.global_read_block_time));
  });

  const sim::Time end = vm.run();
  std::printf("simulation finished at t=%.3fs (deadlocked: %s)\n",
              sim::to_seconds(end), vm.deadlocked() ? "yes" : "no");
  return 0;
}
