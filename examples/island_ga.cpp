// Example: partially asynchronous island GA on Rastrigin (function 6).
//
// Runs the same workload in the three implementation styles the paper
// compares — synchronous, fully asynchronous, and Global_Read with an age
// bound — and prints completion time, solution quality, and the mechanism
// counters that explain the differences.
//
//   $ ./examples/island_ga [--demes 8] [--generations 150] [--age 10]
//
// With --trace-out=trace.json / --metrics-out=metrics.csv the Global_Read
// variant's run is traced (load trace.json in Perfetto / chrome://tracing)
// and sampled into a virtual-time series.
#include <cstdio>
#include <iostream>

#include "fault/fault.hpp"
#include "ga/island.hpp"
#include "obs/obs.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace nscc;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.add_int("demes", 8, "number of islands (simulated nodes)")
      .add_int("generations", 150, "generations per deme")
      .add_int("function", 6, "test function 1..8 (6 = Rastrigin)")
      .add_int("age", 10, "staleness bound for the Global_Read variant")
      .add_int("seed", 7, "random seed");
  obs::add_flags(flags);
  fault::add_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const obs::Options obs_options = obs::options_from_flags(flags);
  const fault::FaultPlan fault_plan = fault::plan_from_flags(flags);

  util::Table table("Island GA on " +
                    ga::test_function(static_cast<int>(flags.get_int("function")))
                        .name);
  table.columns({"variant", "completion s", "best fitness", "avg fitness",
                 "messages", "gr blocks", "block time s", "bus util"});

  for (auto [label, mode, age] :
       {std::tuple{"synchronous", dsm::Mode::kSynchronous, 0L},
        {"asynchronous", dsm::Mode::kAsynchronous, 0L},
        {"Global_Read", dsm::Mode::kPartialAsync, flags.get_int("age")}}) {
    ga::IslandConfig cfg;
    cfg.function_id = static_cast<int>(flags.get_int("function"));
    cfg.mode = mode;
    cfg.age = age;
    cfg.ndemes = static_cast<int>(flags.get_int("demes"));
    cfg.generations = static_cast<int>(flags.get_int("generations"));
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.propagation.coalesce = mode == dsm::Mode::kPartialAsync;
    cfg.propagation.read_timeout = fault::read_timeout_from_flags(flags);
    rt::MachineConfig machine;
    machine.fault = fault_plan;
    machine.transport.enabled = !fault_plan.empty();
    // Observe only the Global_Read variant so --trace-out / --metrics-out
    // capture exactly one run (the one the paper's mechanism is about).
    if (mode == dsm::Mode::kPartialAsync) machine.obs = obs_options;
    const auto r = ga::run_island_ga(cfg, machine);
    table.row()
        .cell(label)
        .cell(sim::to_seconds(r.completion_time), 2)
        .cell(r.best_fitness, 4)
        .cell(r.final_average, 4)
        .cell(r.messages_sent)
        .cell(r.global_read_blocks)
        .cell(sim::to_seconds(r.global_read_block_time), 2)
        .cell(r.bus_utilization, 2);
  }
  table.print(std::cout);
  std::printf(
      "\nThe Global_Read variant trades bounded staleness (age=%lld) for\n"
      "overlap of communication with computation; the synchronous variant\n"
      "pays a barrier plus fresh-data waits every generation.\n",
      static_cast<long long>(flags.get_int("age")));
  return 0;
}
