// Example: partially asynchronous island GA on Rastrigin (function 6).
//
// Runs the same workload in the three implementation styles the paper
// compares — synchronous, fully asynchronous, and Global_Read with an age
// bound — and prints completion time, solution quality, and the mechanism
// counters that explain the differences.
//
//   $ ./examples/island_ga [--demes=8] [--generations=150] [--age=10]
//                          [--variants=sync,async,partial] [--network=sp2]
//
// With --trace-out=trace.json / --metrics-out=metrics.csv the Global_Read
// variant's run is traced (load trace.json in Perfetto / chrome://tracing)
// and sampled into a virtual-time series.
#include "harness/driver.hpp"

int main(int argc, char** argv) {
  nscc::harness::DriveOptions options;
  options.workload = "ga.island";
  options.flag_defaults = {{"seed", "7"}};
  options.epilogue =
      "The Global_Read variant trades bounded staleness for overlap of\n"
      "communication with computation; the synchronous variant pays a\n"
      "barrier plus fresh-data waits every generation.";
  return nscc::harness::drive(argc, argv, options);
}
