// Tests for the PVM-like runtime: packet round-trips, send/recv semantics,
// tag matching, blocking behaviour and timing, barrier correctness, warp
// instrumentation, broadcast, and per-task statistics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sim/time.hpp"

namespace {

using nscc::rt::kAnyTag;
using nscc::rt::MachineConfig;
using nscc::rt::Message;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::Time;
using nscc::sim::kMillisecond;

MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

TEST(Packet, RoundTripsAllTypes) {
  Packet p;
  p.pack_u8(7)
      .pack_i32(-5)
      .pack_u32(123u)
      .pack_i64(-1234567890123LL)
      .pack_u64(987654321ULL)
      .pack_double(3.25)
      .pack_string("hello")
      .pack_u64_vec({1, 2, 3})
      .pack_double_vec({0.5, -0.5});
  EXPECT_EQ(p.unpack_u8(), 7);
  EXPECT_EQ(p.unpack_i32(), -5);
  EXPECT_EQ(p.unpack_u32(), 123u);
  EXPECT_EQ(p.unpack_i64(), -1234567890123LL);
  EXPECT_EQ(p.unpack_u64(), 987654321ULL);
  EXPECT_DOUBLE_EQ(p.unpack_double(), 3.25);
  EXPECT_EQ(p.unpack_string(), "hello");
  EXPECT_EQ(p.unpack_u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(p.unpack_double_vec(), (std::vector<double>{0.5, -0.5}));
  EXPECT_TRUE(p.fully_consumed());
}

TEST(Packet, OverrunThrows) {
  Packet p;
  p.pack_i32(1);
  (void)p.unpack_i32();
  EXPECT_THROW((void)p.unpack_i32(), std::out_of_range);
}

TEST(Packet, RewindRereads) {
  Packet p;
  p.pack_i32(42);
  EXPECT_EQ(p.unpack_i32(), 42);
  p.rewind();
  EXPECT_EQ(p.unpack_i32(), 42);
}

TEST(Packet, ByteSizeCountsPayload) {
  Packet p;
  p.pack_double(1.0);
  p.pack_i32(2);
  EXPECT_EQ(p.byte_size(), 12u);
}

TEST(Vm, PingPongDeliversPayload) {
  VirtualMachine vm(fast_config(2));
  std::string got;
  vm.add_task("ping", [](Task& t) {
    Packet p;
    p.pack_string("marco");
    t.send(1, 5, std::move(p));
    Message reply = t.recv(6);
    EXPECT_EQ(reply.payload.unpack_string(), "polo");
  });
  vm.add_task("pong", [&](Task& t) {
    Message m = t.recv(5);
    got = m.payload.unpack_string();
    EXPECT_EQ(m.src, 0);
    Packet p;
    p.pack_string("polo");
    t.send(0, 6, std::move(p));
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(got, "marco");
}

TEST(Vm, RecvBlocksUntilMessageArrives) {
  auto cfg = fast_config(2);
  Time recv_time = -1;
  VirtualMachine vm(cfg);
  vm.add_task("receiver", [&](Task& t) {
    (void)t.recv(1);
    recv_time = t.now();
  });
  vm.add_task("sender", [](Task& t) {
    t.compute(10 * kMillisecond);
    t.send(0, 1, Packet{});
  });
  vm.run();
  // Blocked for the sender's compute plus the (zero-overhead) wire time.
  EXPECT_GE(recv_time, 10 * kMillisecond);
  EXPECT_EQ(vm.task(0).stats().blocked_time, recv_time);
}

TEST(Vm, TagMatchingIsSelective) {
  VirtualMachine vm(fast_config(2));
  std::vector<int> order;
  vm.add_task("receiver", [&](Task& t) {
    Message b = t.recv(2);  // Skips the queued tag-1 message.
    order.push_back(b.tag);
    Message a = t.recv(1);
    order.push_back(a.tag);
  });
  vm.add_task("sender", [](Task& t) {
    t.send(0, 1, Packet{});
    t.send(0, 2, Packet{});
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Vm, AnyTagReceivesInArrivalOrder) {
  VirtualMachine vm(fast_config(2));
  std::vector<int> tags;
  vm.add_task("receiver", [&](Task& t) {
    for (int i = 0; i < 3; ++i) tags.push_back(t.recv(kAnyTag).tag);
  });
  vm.add_task("sender", [](Task& t) {
    for (int tag : {7, 9, 8}) t.send(0, tag, Packet{});
  });
  vm.run();
  EXPECT_EQ(tags, (std::vector<int>{7, 9, 8}));
}

TEST(Vm, TryRecvDoesNotBlock) {
  VirtualMachine vm(fast_config(2));
  bool first_empty = false;
  bool later_full = false;
  vm.add_task("receiver", [&](Task& t) {
    first_empty = !t.try_recv(1).has_value();
    t.compute(20 * kMillisecond);
    later_full = t.try_recv(1).has_value();
  });
  vm.add_task("sender", [](Task& t) { t.send(0, 1, Packet{}); });
  vm.run();
  EXPECT_TRUE(first_empty);
  EXPECT_TRUE(later_full);
}

TEST(Vm, ProbeSeesQueuedMessage) {
  VirtualMachine vm(fast_config(2));
  bool probed = false;
  vm.add_task("receiver", [&](Task& t) {
    t.compute(5 * kMillisecond);
    probed = t.probe(3);
    (void)t.recv(3);
  });
  vm.add_task("sender", [](Task& t) { t.send(0, 3, Packet{}); });
  vm.run();
  EXPECT_TRUE(probed);
}

TEST(Vm, SelfSendDeliversLocally) {
  VirtualMachine vm(fast_config(1));
  int got = 0;
  vm.add_task("solo", [&](Task& t) {
    Packet p;
    p.pack_i32(11);
    t.send(0, 1, std::move(p));
    got = t.recv(1).payload.unpack_i32();
  });
  vm.run();
  EXPECT_EQ(got, 11);
  EXPECT_EQ(vm.bus().stats().frames_sent, 0u);  // No wire traffic.
}

TEST(Vm, BarrierSynchronisesAllTasks) {
  auto cfg = fast_config(4);
  VirtualMachine vm(cfg);
  std::vector<Time> after(4);
  for (int i = 0; i < 4; ++i) {
    vm.add_task("t" + std::to_string(i), [&after, i](Task& t) {
      t.compute((i + 1) * 10 * kMillisecond);  // Skewed arrival.
      t.barrier();
      after[static_cast<std::size_t>(i)] = t.now();
    });
  }
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  // Nobody may pass the barrier before the slowest task arrived.
  for (int i = 0; i < 4; ++i) EXPECT_GE(after[static_cast<std::size_t>(i)], 40 * kMillisecond);
}

TEST(Vm, BarrierCostsMessages) {
  auto cfg = fast_config(3);
  VirtualMachine vm(cfg);
  for (int i = 0; i < 3; ++i) {
    vm.add_task("t" + std::to_string(i), [](Task& t) { t.barrier(); });
  }
  vm.run();
  // 2 arrive + 2 release messages on the wire.
  EXPECT_EQ(vm.bus().stats().frames_sent, 4u);
}

TEST(Vm, BroadcastReachesEveryoneElse) {
  VirtualMachine vm(fast_config(4));
  std::vector<int> received(4, 0);
  vm.add_task("root", [](Task& t) {
    Packet p;
    p.pack_i32(99);
    t.broadcast(4, p);
  });
  for (int i = 1; i < 4; ++i) {
    vm.add_task("leaf" + std::to_string(i), [&received, i](Task& t) {
      received[static_cast<std::size_t>(i)] = t.recv(4).payload.unpack_i32();
    });
  }
  vm.run();
  for (int i = 1; i < 4; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], 99);
}

TEST(Vm, SoftwareOverheadsAreCharged) {
  auto cfg = fast_config(2);
  cfg.send_sw_overhead = 3 * kMillisecond;
  cfg.recv_sw_overhead = 2 * kMillisecond;
  VirtualMachine vm(cfg);
  Time sender_done = -1;
  Time receiver_done = -1;
  vm.add_task("receiver", [&](Task& t) {
    (void)t.recv(1);
    receiver_done = t.now();
  });
  vm.add_task("sender", [&](Task& t) {
    t.send(0, 1, Packet{});
    sender_done = t.now();
  });
  vm.run();
  EXPECT_EQ(sender_done, 3 * kMillisecond);
  // Wire time zero bytes/overhead -> delivery at 3ms; +2ms recv overhead.
  EXPECT_EQ(receiver_done, 5 * kMillisecond);
}

TEST(Vm, WarpMeterObservesSteadyTrafficAsUnity) {
  auto cfg = fast_config(2);
  VirtualMachine vm(cfg);
  vm.add_task("receiver", [](Task& t) {
    for (int i = 0; i < 10; ++i) (void)t.recv(1);
  });
  vm.add_task("sender", [](Task& t) {
    for (int i = 0; i < 10; ++i) {
      t.compute(10 * kMillisecond);
      t.send(0, 1, Packet{});
    }
  });
  vm.run();
  ASSERT_GE(vm.warp_meter().samples(), 9u);
  EXPECT_NEAR(vm.warp_meter().overall().mean(), 1.0, 1e-6);
}

TEST(Vm, StatsCountTraffic) {
  VirtualMachine vm(fast_config(2));
  vm.add_task("receiver", [](Task& t) { (void)t.recv(1); });
  vm.add_task("sender", [](Task& t) {
    Packet p;
    p.pack_double_vec(std::vector<double>(10, 1.0));
    t.send(0, 1, std::move(p));
  });
  vm.run();
  EXPECT_EQ(vm.task(1).stats().messages_sent, 1u);
  EXPECT_EQ(vm.task(1).stats().bytes_sent, 88u);
  EXPECT_EQ(vm.task(0).stats().messages_received, 1u);
}

TEST(Vm, DeadlockDetectedWhenRecvNeverSatisfied) {
  VirtualMachine vm(fast_config(2));
  vm.add_task("stuck", [](Task& t) { (void)t.recv(42); });
  vm.add_task("quiet", [](Task&) {});
  vm.run();
  EXPECT_TRUE(vm.deadlocked());
}

TEST(Vm, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto cfg = fast_config(3);
    cfg.seed = 77;
    VirtualMachine vm(cfg);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 3; ++i) {
      vm.add_task("t" + std::to_string(i), [&draws](Task& t) {
        t.compute(static_cast<Time>(t.rng().below(1000)) * kMillisecond);
        t.barrier();
        draws.push_back(t.rng()());
      });
    }
    vm.run();
    return draws;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
