// Tests for the crash-restart recovery stack: stateful crash windows that
// destroy process state (vs the lossy NIC-failure model), periodic
// checkpointing charged in virtual time, heartbeat failure detection with
// degraded reads, and the rejoin protocol — exercised end-to-end through all
// four workloads plus targeted VM- and transport-level checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "harness/run_config.hpp"
#include "harness/workloads.hpp"
#include "recovery/recovery.hpp"
#include "rt/packet.hpp"
#include "rt/transport.hpp"
#include "rt/vm.hpp"
#include "sim/time.hpp"

namespace {

using nscc::fault::CrashSemantics;
using nscc::fault::FaultPlan;
using nscc::fault::Window;
using nscc::harness::RunConfig;
using nscc::harness::RunStats;
using nscc::recovery::Policy;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::SeqTracker;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::kMillisecond;
using nscc::sim::kSecond;
using nscc::sim::Time;

Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// A stateful crash of `node` over [at, at+dur) on a 1%-lossy network —
/// the acceptance scenario from the issue.
FaultPlan crash_plan(double at_s, double dur_s, int node,
                     double loss = 0.01) {
  FaultPlan plan;
  plan.link.loss_prob = loss;
  plan.nodes[node].crashes.push_back(
      Window{seconds(at_s), seconds(at_s + dur_s)});
  plan.crash_semantics = CrashSemantics::kStateful;
  return plan;
}

RunConfig recovery_run(Policy policy, int age, std::uint64_t seed,
                       double checkpoint_s) {
  RunConfig run;
  run.mode = nscc::dsm::Mode::kPartialAsync;
  run.age = static_cast<nscc::dsm::Iteration>(age);
  run.seed = seed;
  run.propagation.coalesce = true;
  run.recovery.policy = policy;
  run.recovery.checkpoint_interval = seconds(checkpoint_s);
  return run;
}

MachineConfig machine_for(const FaultPlan& plan,
                          const RunConfig& run) {
  MachineConfig machine;
  machine.fault = plan;
  machine.transport.enabled = !plan.empty() || run.recovery.enabled();
  return machine;
}

nscc::harness::GaIslandWorkload small_ga() {
  nscc::harness::GaIslandWorkload ga;
  ga.function_id = 1;
  ga.demes = 4;
  ga.generations = 40;
  return ga;
}

nscc::harness::JacobiWorkload small_jacobi() {
  nscc::harness::JacobiWorkload jacobi;
  jacobi.grid = 24;
  jacobi.processors = 4;
  jacobi.tolerance = 1e-7;
  return jacobi;
}

// ---------------------------------------------------------------------------
// Acceptance matrix: GA island model
// ---------------------------------------------------------------------------

TEST(Recovery, GaCrashWithoutRecoveryDeadlocks) {
  auto ga = small_ga();
  const RunConfig run = recovery_run(Policy::kNone, 10, 7, 0.1);
  const FaultPlan plan = crash_plan(0.4, 0.08, 1);
  const RunStats stats = ga.run(run, machine_for(plan, run));
  EXPECT_TRUE(stats.deadlocked)
      << "a mid-run stateful crash with no recovery must wedge the run";
  // No coordinator is attached under kNone, so recovery counters stay zero
  // even though the VM tore the task down.
  EXPECT_EQ(stats.restores, 0u);
  EXPECT_EQ(stats.rejoins, 0u);
}

TEST(Recovery, GaDegradedReadsSurviveTheCrash) {
  auto ga = small_ga();
  const RunConfig run = recovery_run(Policy::kDegraded, 10, 7, 0.1);
  const FaultPlan plan = crash_plan(0.4, 0.08, 1);
  const RunStats stats = ga.run(run, machine_for(plan, run));
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.rejoins, 0u);
  EXPECT_GT(stats.degraded_reads, 0u)
      << "survivors must have read past the dead producer";
}

TEST(Recovery, GaRejoinCompletesWithin15PercentOfCrashFree) {
  auto ga = small_ga();
  const RunConfig run = recovery_run(Policy::kRejoin, 10, 7, 0.1);
  const RunStats base = ga.run(run, machine_for(FaultPlan{}, run));
  ASSERT_FALSE(base.deadlocked);
  EXPECT_EQ(base.crashes, 0u);

  const FaultPlan plan = crash_plan(0.4, 0.08, 1);
  const RunStats crashed = ga.run(run, machine_for(plan, run));
  ASSERT_FALSE(crashed.deadlocked);
  EXPECT_EQ(crashed.crashes, 1u);
  EXPECT_EQ(crashed.restores, 1u);
  EXPECT_EQ(crashed.rejoins, 1u);
  EXPECT_GT(crashed.checkpoints_taken, 0u);
  EXPECT_LE(nscc::sim::to_seconds(crashed.completion_time),
            1.15 * nscc::sim::to_seconds(base.completion_time))
      << "rejoin at age 10 must land within 15% of crash-free completion";
}

// ---------------------------------------------------------------------------
// Acceptance matrix: Jacobi solver (the quality-loss story is sharpest here:
// the residual is a direct measure of what degraded mode gave up)
// ---------------------------------------------------------------------------

TEST(Recovery, JacobiCrashWithoutRecoveryDeadlocks) {
  auto jacobi = small_jacobi();
  const RunConfig run = recovery_run(Policy::kNone, 10, 5, 0.1);
  const FaultPlan plan = crash_plan(1.0, 0.1, 1);
  const RunStats stats = jacobi.run(run, machine_for(plan, run));
  EXPECT_TRUE(stats.deadlocked);
}

TEST(Recovery, JacobiDegradedCompletesWithQualityLoss) {
  auto jacobi = small_jacobi();
  const RunConfig run = recovery_run(Policy::kDegraded, 10, 5, 0.1);
  const FaultPlan plan = crash_plan(1.0, 0.1, 1);
  const RunStats stats = jacobi.run(run, machine_for(plan, run));
  ASSERT_FALSE(stats.deadlocked);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_GT(stats.degraded_reads, 0u);
  // The dead block never converges, so the final residual is orders of
  // magnitude above tolerance: the run completes but pays in quality.
  EXPECT_GT(stats.quality, 1e-3);
}

TEST(Recovery, JacobiRejoinRecoversBothTimeAndQuality) {
  auto jacobi = small_jacobi();
  const RunConfig run = recovery_run(Policy::kRejoin, 10, 5, 0.1);
  const RunStats base = jacobi.run(run, machine_for(FaultPlan{}, run));
  ASSERT_FALSE(base.deadlocked);

  const FaultPlan plan = crash_plan(1.0, 0.1, 1);
  const RunStats crashed = jacobi.run(run, machine_for(plan, run));
  ASSERT_FALSE(crashed.deadlocked);
  EXPECT_EQ(crashed.crashes, 1u);
  EXPECT_EQ(crashed.restores, 1u);
  EXPECT_EQ(crashed.rejoins, 1u);
  EXPECT_LE(nscc::sim::to_seconds(crashed.completion_time),
            1.15 * nscc::sim::to_seconds(base.completion_time));
  // Unlike degraded mode, the rejoined node finishes its block: the
  // residual comes back down to the crash-free ballpark.
  EXPECT_LT(crashed.quality, 1e-5);
}

// ---------------------------------------------------------------------------
// Acceptance matrix: NN training and Bayes sampling (smoke-level — the
// detailed numbers live in EXPERIMENTS.md)
// ---------------------------------------------------------------------------

TEST(Recovery, NnTrainingSurvivesWorkerCrash) {
  nscc::harness::NnTrainWorkload nn;  // 4 workers, 500 steps.
  const FaultPlan plan = crash_plan(0.8, 0.1, 2);

  const RunConfig degraded = recovery_run(Policy::kDegraded, 2, 7, 0.2);
  const RunStats d = nn.run(degraded, machine_for(plan, degraded));
  EXPECT_FALSE(d.deadlocked);
  EXPECT_EQ(d.crashes, 1u);

  const RunConfig rejoin = recovery_run(Policy::kRejoin, 2, 7, 0.2);
  const RunStats r = nn.run(rejoin, machine_for(plan, rejoin));
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.rejoins, 1u);
}

TEST(Recovery, BayesRejoinMatchesCrashFreeQuality) {
  nscc::harness::BayesSamplingWorkload bayes;  // 2 parts, 6000 iterations.
  const RunConfig run = recovery_run(Policy::kRejoin, 10, 11, 0.2);
  // Crash-free baseline on the *same* lossy network: loss alone already
  // perturbs the chain, so only the crash window may differ.
  FaultPlan loss_only;
  loss_only.link.loss_prob = 0.01;
  const RunStats base = bayes.run(run, machine_for(loss_only, run));
  ASSERT_FALSE(base.deadlocked);

  const FaultPlan plan = crash_plan(2.0, 0.2, 1);
  const RunStats crashed = bayes.run(run, machine_for(plan, run));
  ASSERT_FALSE(crashed.deadlocked);
  EXPECT_EQ(crashed.crashes, 1u);
  EXPECT_EQ(crashed.rejoins, 1u);
  // The restored checkpoint replays the exact sampler state, so the chain
  // statistic is unchanged by the crash.
  EXPECT_NEAR(crashed.quality, base.quality, 1e-6);
}

// ---------------------------------------------------------------------------
// Checkpoint cost accounting and determinism
// ---------------------------------------------------------------------------

TEST(Recovery, CheckpointCostIsChargedInVirtualTime) {
  MachineConfig config;
  config.ntasks = 2;
  config.transport.enabled = true;
  VirtualMachine vm(config);
  nscc::recovery::Config cfg;
  cfg.policy = Policy::kRejoin;
  cfg.checkpoint_interval = 100 * kMillisecond;
  nscc::recovery::Coordinator coord(vm, cfg);
  for (int id = 0; id < 2; ++id) {
    vm.add_task("worker", [&](Task& task) {
      nscc::recovery::FnCheckpoint state(
          [] {
            Packet p;
            p.pack_u64(0xC0FFEEu);
            return p;
          },
          [](Packet&) {});
      for (int i = 1; i <= 10; ++i) {
        task.compute(50 * kMillisecond);
        coord.maybe_checkpoint(task, i, state);
      }
    });
  }
  vm.run();
  EXPECT_GT(coord.stats().checkpoints_taken, 0u);
  EXPECT_GT(coord.stats().checkpoint_cost, 0);
  // The snapshot cost lands on the checkpointing task's own virtual clock:
  // total compute equals the loop work plus exactly the charged cost.
  const Time loop_work = 2 * 10 * 50 * kMillisecond;
  const Time total = vm.task(0).stats().compute_time +
                     vm.task(1).stats().compute_time;
  EXPECT_EQ(total, loop_work + coord.stats().checkpoint_cost);
}

TEST(Recovery, CrashRecoveryRunsAreDeterministic) {
  const RunConfig run = recovery_run(Policy::kRejoin, 10, 5, 0.1);
  const FaultPlan plan = crash_plan(1.0, 0.1, 1);
  auto a_wl = small_jacobi();
  const RunStats a = a_wl.run(run, machine_for(plan, run));
  auto b_wl = small_jacobi();
  const RunStats b = b_wl.run(run, machine_for(plan, run));
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
}

// ---------------------------------------------------------------------------
// kLossy crash windows (the pre-recovery model) stay untouched by the
// recovery machinery: no kills, no checkpoints, and the run is reproducible
// — the golden guarantee that in-code fault plans from earlier experiments
// keep their exact behaviour.
// ---------------------------------------------------------------------------

TEST(Recovery, LossyCrashWindowsNeverEngageRecoveryMachinery) {
  auto ga = small_ga();
  RunConfig run = recovery_run(Policy::kNone, 10, 7, 0.0);
  FaultPlan plan;
  plan.link.loss_prob = 0.01;
  plan.nodes[1].crashes.push_back(Window{seconds(0.4), seconds(0.48)});
  ASSERT_EQ(plan.crash_semantics, CrashSemantics::kLossy)
      << "in-code plans must default to the lossy (PR 3) semantics";

  const RunStats a = ga.run(run, machine_for(plan, run));
  EXPECT_FALSE(a.deadlocked);
  EXPECT_EQ(a.crashes, 0u);
  EXPECT_EQ(a.checkpoints_taken, 0u);
  EXPECT_EQ(a.restores, 0u);
  EXPECT_EQ(a.degraded_reads, 0u);

  auto ga2 = small_ga();
  const RunStats b = ga2.run(run, machine_for(plan, run));
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.quality, b.quality);
}

// ---------------------------------------------------------------------------
// SwitchFabric: crash + whole-medium outage on the SP2 switch
// ---------------------------------------------------------------------------

TEST(Recovery, SwitchFabricSurvivesCrashDuringOutage) {
  auto ga = small_ga();
  const RunConfig run = recovery_run(Policy::kRejoin, 10, 7, 0.1);
  FaultPlan plan = crash_plan(0.4, 0.08, 1, 0.005);
  plan.outages.push_back(Window{seconds(0.25), seconds(0.3)});
  MachineConfig machine = machine_for(plan, run);
  machine.network = nscc::rt::Network::kSp2Switch;
  const RunStats stats = ga.run(run, machine);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.rejoins, 1u);
  EXPECT_GT(stats.frames_lost, 0u)
      << "the outage window and crash must both drop frames on the fabric";
}

// ---------------------------------------------------------------------------
// VM-level mechanics: kill/respawn epochs and crash semantics
// ---------------------------------------------------------------------------

TEST(Recovery, KillRespawnBumpsEpochAndStampsMessages) {
  MachineConfig config;
  config.ntasks = 2;
  VirtualMachine vm(config);
  std::vector<std::uint64_t> epochs_seen;
  vm.add_task("receiver", [&](Task& task) {
    while (auto msg = task.recv_timeout(1, 2 * kSecond)) {
      epochs_seen.push_back(msg->epoch);
    }
  });
  vm.add_task("sender", [&](Task& task) {
    for (int i = 0; i < 8; ++i) {
      task.compute(50 * kMillisecond);
      Packet p;
      p.pack_i32(i);
      task.send(0, 1, std::move(p));
    }
  });
  vm.add_start_hook([&] {
    vm.engine().schedule(120 * kMillisecond, [&] { vm.kill_task(1); });
    vm.engine().schedule(200 * kMillisecond, [&] { vm.respawn_task(1); });
  });
  vm.run();
  ASSERT_FALSE(epochs_seen.empty());
  EXPECT_EQ(epochs_seen.front(), 0u) << "pre-crash messages carry epoch 0";
  EXPECT_EQ(epochs_seen.back(), 1u) << "post-respawn messages carry epoch 1";
  EXPECT_EQ(vm.task(1).epoch(), 1u);
}

TEST(Recovery, LossyCrashKeepsComputingStatefulCrashTearsDown) {
  for (const auto semantics :
       {CrashSemantics::kLossy, CrashSemantics::kStateful}) {
    MachineConfig config;
    config.ntasks = 2;
    config.fault.nodes[1].crashes.push_back(
        Window{seconds(0.5), seconds(1.0)});
    config.fault.crash_semantics = semantics;
    VirtualMachine vm(config);
    int completed = 0;
    for (int id = 0; id < 2; ++id) {
      vm.add_task("worker", [&](Task& task) {
        for (int i = 0; i < 20; ++i) task.compute(100 * kMillisecond);
        ++completed;
      });
    }
    vm.run();
    if (semantics == CrashSemantics::kLossy) {
      EXPECT_EQ(completed, 2) << "a lossy window only drops frames";
      EXPECT_EQ(vm.task(1).epoch(), 0u);
    } else {
      EXPECT_EQ(completed, 1)
          << "a stateful window unwinds the victim's fiber";
    }
  }
}

// ---------------------------------------------------------------------------
// SeqTracker memory bound (satellite S1): flat memory across 10k messages
// with permanently-lost sequence numbers punching holes in the stream
// ---------------------------------------------------------------------------

TEST(SeqTracker, MemoryStaysFlatAcrossTenThousandMessages) {
  SeqTracker tracker;
  std::size_t peak = 0;
  for (std::uint64_t seq = 1; seq <= 10000; ++seq) {
    if (seq % 97 == 0) continue;  // Abandoned frame: a hole that never fills.
    EXPECT_TRUE(tracker.fresh(seq));
    peak = std::max(peak, tracker.pending());
    ASSERT_LE(tracker.pending(), SeqTracker::kMaxAhead)
        << "sparse set must stay bounded at seq " << seq;
  }
  EXPECT_GT(peak, 0u);
  EXPECT_GT(tracker.floor(), 9000u)
      << "the contiguous floor must advance past forgotten holes";
  // Recently-seen sequence numbers still deduplicate.
  EXPECT_FALSE(tracker.fresh(10000));
  EXPECT_FALSE(tracker.fresh(9999));
}

TEST(SeqTracker, OutOfOrderWindowDeduplicatesExactly) {
  SeqTracker tracker;
  // Deliver a shuffled window, then replay all of it.
  const std::vector<std::uint64_t> window = {3, 1, 5, 2, 8, 4, 7, 6};
  for (const auto seq : window) EXPECT_TRUE(tracker.fresh(seq));
  for (const auto seq : window) EXPECT_FALSE(tracker.fresh(seq));
  EXPECT_EQ(tracker.floor(), 8u);
  EXPECT_EQ(tracker.pending(), 0u);
}

}  // namespace
