// Parameterized property tests: invariants swept across the whole parameter
// space — every test function, every consistency mode, a range of ages,
// seeds, and network configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bayes/generators.hpp"
#include "bayes/parallel_sampling.hpp"
#include "bayes/partitioner.hpp"
#include "dsm/shared_space.hpp"
#include "ga/chromosome.hpp"
#include "ga/deme.hpp"
#include "ga/island.hpp"
#include "net/shared_bus.hpp"

namespace {

using nscc::dsm::Mode;

// ---- per-test-function properties -------------------------------------------

class EveryFunction : public ::testing::TestWithParam<int> {};

TEST_P(EveryFunction, DecodeStaysWithinLimits) {
  const auto& fn = nscc::ga::test_function(GetParam());
  nscc::util::Xoshiro256 rng(11 + GetParam());
  for (int rep = 0; rep < 50; ++rep) {
    nscc::util::BitVec genome(static_cast<std::size_t>(fn.genome_bits()));
    genome.randomize(rng);
    const auto x = nscc::ga::decode(genome, fn);
    ASSERT_EQ(static_cast<int>(x.size()), fn.nvars);
    for (double v : x) {
      EXPECT_GE(v, fn.lo);
      EXPECT_LE(v, fn.hi);
    }
  }
}

TEST_P(EveryFunction, EvaluationIsFiniteAndAboveMinimum) {
  const auto& fn = nscc::ga::test_function(GetParam());
  nscc::util::Xoshiro256 rng(23 + GetParam());
  for (int rep = 0; rep < 200; ++rep) {
    nscc::util::BitVec genome(static_cast<std::size_t>(fn.genome_bits()));
    genome.randomize(rng);
    const double f = fn.eval(nscc::ga::decode(genome, fn), rng);
    ASSERT_TRUE(std::isfinite(f));
    if (!fn.noisy) {
      EXPECT_GE(f, fn.global_min - 1e-6);
    }
  }
}

TEST_P(EveryFunction, MigrantSerializationRoundTrips) {
  const auto& fn = nscc::ga::test_function(GetParam());
  nscc::util::Xoshiro256 rng(31 + GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    nscc::ga::Individual ind;
    ind.genome = nscc::util::BitVec(static_cast<std::size_t>(fn.genome_bits()));
    ind.genome.randomize(rng);
    ind.fitness = rng.normal(0, 1000);
    nscc::rt::Packet p;
    nscc::ga::pack_individual(p, ind, fn);
    EXPECT_EQ(p.byte_size(), nscc::ga::migrant_bytes(fn));
    const auto back = nscc::ga::unpack_individual(p, fn);
    EXPECT_EQ(back.genome, ind.genome);
    EXPECT_DOUBLE_EQ(back.fitness, ind.fitness);
  }
}

TEST_P(EveryFunction, ElitistDemeNeverRegresses) {
  const auto& fn = nscc::ga::test_function(GetParam());
  if (fn.noisy) GTEST_SKIP() << "elitism under noisy fitness is not monotone";
  nscc::ga::Deme deme(fn, {}, nscc::util::Xoshiro256(41 + GetParam()));
  deme.initialize();
  double best = deme.best().fitness;
  for (int g = 0; g < 25; ++g) {
    deme.step();
    ASSERT_LE(deme.best().fitness, best + 1e-12);
    best = deme.best().fitness;
  }
  EXPECT_GE(best, fn.global_min - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllEight, EveryFunction, ::testing::Range(1, 9));

// ---- staleness bound across ages ---------------------------------------------

class EveryAge : public ::testing::TestWithParam<long> {};

TEST_P(EveryAge, ObservedStalenessNeverExceedsBound) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = GetParam();
  cfg.ndemes = 4;
  cfg.generations = 30;
  cfg.seed = 51;
  cfg.compute.node_speed_spread = 0.35;
  const auto r = nscc::ga::run_island_ga(cfg, {});
  EXPECT_FALSE(r.deadlocked);
  // Satisfied Global_Reads can only return values at least as fresh as the
  // bound requires.
  EXPECT_LE(r.mean_staleness, static_cast<double>(GetParam()) + 1e-9);
}

TEST_P(EveryAge, BayesRunAheadIsBounded) {
  const auto net = nscc::bayes::make_hailfinder_like();
  const auto queries = nscc::bayes::default_queries(net, 2, 7);
  nscc::bayes::ParallelInferenceConfig cfg;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = GetParam();
  cfg.iterations = 1200;
  cfg.seed = 7;
  cfg.node_speed_spread = 0.35;
  const auto r =
      nscc::bayes::run_parallel_logic_sampling(net, {}, queries, cfg, {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.validated_samples, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Ages, EveryAge, ::testing::Values(0L, 1L, 5L, 20L));

// ---- mode invariants -----------------------------------------------------------

class EveryMode : public ::testing::TestWithParam<Mode> {};

TEST_P(EveryMode, IslandGaCompletesWithoutDeadlock) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 7;
  cfg.mode = GetParam();
  cfg.age = 10;
  cfg.ndemes = 6;
  cfg.generations = 25;
  cfg.seed = 61;
  cfg.propagation.coalesce = GetParam() == Mode::kPartialAsync;
  const auto r = nscc::ga::run_island_ga(cfg, {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_TRUE(std::isfinite(r.best_fitness));
}

TEST_P(EveryMode, BayesEstimatesIdenticalAcrossModes) {
  // The validated sample stream is mode-independent (counter randomness):
  // compare every mode against a synchronous reference run.
  const auto net = nscc::bayes::make_network_c();
  const auto queries = nscc::bayes::default_queries(net, 2, 9);
  nscc::bayes::ParallelInferenceConfig cfg;
  cfg.age = 8;
  cfg.iterations = 1500;
  cfg.seed = 9;

  cfg.mode = Mode::kSynchronous;
  const auto ref =
      nscc::bayes::run_parallel_logic_sampling(net, {}, queries, cfg, {});
  ASSERT_FALSE(ref.deadlocked);
  ASSERT_FALSE(ref.estimates.empty());

  cfg.mode = GetParam();
  const auto r =
      nscc::bayes::run_parallel_logic_sampling(net, {}, queries, cfg, {});
  ASSERT_FALSE(r.deadlocked);
  ASSERT_EQ(r.estimates.size(), ref.estimates.size());
  for (std::size_t q = 0; q < r.estimates.size(); ++q) {
    EXPECT_NEAR(r.estimates[q].probability, ref.estimates[q].probability,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EveryMode,
                         ::testing::Values(Mode::kSynchronous,
                                           Mode::kAsynchronous,
                                           Mode::kPartialAsync));

// ---- determinism across seeds ----------------------------------------------------

class EverySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EverySeed, IslandGaIsAPureFunctionOfSeed) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 8;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 5;
  cfg.ndemes = 3;
  cfg.generations = 15;
  cfg.seed = GetParam();
  const auto a = nscc::ga::run_island_ga(cfg, {});
  const auto b = nscc::ga::run_island_ga(cfg, {});
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST_P(EverySeed, DifferentSeedsGiveDifferentRuns) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 8;
  cfg.mode = Mode::kAsynchronous;
  cfg.ndemes = 3;
  cfg.generations = 15;
  cfg.seed = GetParam();
  const auto a = nscc::ga::run_island_ga(cfg, {});
  cfg.seed = GetParam() + 1;
  const auto b = nscc::ga::run_island_ga(cfg, {});
  EXPECT_NE(a.completion_time, b.completion_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EverySeed,
                         ::testing::Values(1ULL, 42ULL, 1234567ULL));

// ---- bus properties ---------------------------------------------------------------

class EveryBandwidth : public ::testing::TestWithParam<double> {};

TEST_P(EveryBandwidth, TransmissionTimeMatchesRate) {
  nscc::sim::Engine eng;
  nscc::net::BusConfig cfg;
  cfg.bandwidth_bps = GetParam();
  cfg.frame_overhead_bytes = 0;
  nscc::net::SharedBus bus(eng, cfg);
  const auto t = bus.transmission_time(1000);
  const double expected_s = 8000.0 / GetParam();
  EXPECT_NEAR(nscc::sim::to_seconds(t), expected_s, expected_s * 0.001 + 1e-9);
  // Monotone in size.
  EXPECT_GT(bus.transmission_time(2000), t);
}

INSTANTIATE_TEST_SUITE_P(Rates, EveryBandwidth,
                         ::testing::Values(1e6, 10e6, 100e6));

// ---- partitioner properties -------------------------------------------------------

class EveryPartCount : public ::testing::TestWithParam<int> {};

TEST_P(EveryPartCount, PartitionIsCompleteAndBalanced) {
  const auto net = nscc::bayes::make_network_aa();
  nscc::bayes::PartitionConfig cfg;
  cfg.parts = GetParam();
  const auto part = nscc::bayes::partition_network(net, cfg);
  ASSERT_EQ(part.assignment.size(), static_cast<std::size_t>(net.size()));
  const auto sizes = part.part_sizes();
  ASSERT_EQ(static_cast<int>(sizes.size()), GetParam());
  int total = 0;
  const int ideal = net.size() / GetParam();
  for (int s : sizes) {
    total += s;
    EXPECT_GE(s, ideal / 2);  // No starved part.
  }
  EXPECT_EQ(total, net.size());
  EXPECT_GE(nscc::bayes::edge_cut(net, part), 1);
}

INSTANTIATE_TEST_SUITE_P(Parts, EveryPartCount, ::testing::Values(2, 3, 4, 6));

}  // namespace
