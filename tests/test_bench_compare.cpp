// Tests for the bench regression gate: the minimal JSON reader it is built
// on, and compare_bench_json() itself — pass/fail/schema-mismatch exit
// codes, per-metric tolerances, and direction-aware comparison (a 20%
// throughput drop must fail; a 20% throughput gain must not).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/bench_compare.hpp"
#include "util/json.hpp"

namespace {

using nscc::harness::CompareOptions;
using nscc::harness::compare_bench_json;
using nscc::harness::kCompareError;
using nscc::harness::kComparePass;
using nscc::harness::kCompareRegression;

// ---------------------------------------------------------------------------
// util::json reader.

TEST(JsonReader, ParsesNestedDocument) {
  std::string err;
  auto v = nscc::util::json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "x\"y"}, "t": true, "n": null})",
      &err);
  ASSERT_TRUE(v.has_value()) << err;
  const auto* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  const auto* b = v->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("s", ""), "x\"y");
  EXPECT_TRUE(v->find("t")->boolean);
  EXPECT_TRUE(v->find("n")->is_null());
}

TEST(JsonReader, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(nscc::util::json::parse("{\"a\": }", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(nscc::util::json::parse("[1, 2", &err).has_value());
  EXPECT_FALSE(nscc::util::json::parse("{} trailing", &err).has_value());
  EXPECT_FALSE(nscc::util::json::parse("", &err).has_value());
}

TEST(JsonReader, RoundTripsSerializedDoubles) {
  // sweep.cpp serialises with %.17g; the reader must recover the exact
  // value so exact (tolerance-0) comparison of deterministic metrics works.
  std::string err;
  auto v = nscc::util::json::parse(R"({"x": 0.10000000000000001})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_EQ(v->number_or("x", 0), 0.1);
}

// ---------------------------------------------------------------------------
// compare_bench_json.

/// One-cell nscc-bench document with the given throughput and completion.
std::string doc(double events_per_sec, double completion_s,
                const char* schema = "nscc-bench-v3",
                const char* extra_stat = nullptr, double extra_value = 0) {
  std::ostringstream os;
  os << R"({"schema": ")" << schema << R"(", "bench": "demo", "results": [)"
     << R"({"workload": "ga", "variant": "nscc", "age": 3, "seed": 1,)"
     << R"( "repeat": 0, "params": {"procs": 4},)"
     << R"( "stats": {"events_per_sec": )" << events_per_sec
     << R"(, "completion_s": )" << completion_s;
  if (extra_stat != nullptr) {
    os << R"(, ")" << extra_stat << R"(": )" << extra_value;
  }
  os << "}}]}";
  return os.str();
}

TEST(BenchCompare, IdenticalDocumentsPassExactly) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), doc(1000, 2.5), {}, out),
            kComparePass);
  EXPECT_NE(out.str().find("0 regression(s)"), std::string::npos);
}

TEST(BenchCompare, TwentyPercentThroughputRegressionFails) {
  // The gate's reason to exist: a synthetic 20% events/sec drop must fail
  // even under the CI tolerance for wall-clock noise (10%).
  CompareOptions opt;
  opt.metric_tolerance["events_per_sec"] = 0.10;
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), doc(800, 2.5), opt, out),
            kCompareRegression);
  EXPECT_NE(out.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(out.str().find("events_per_sec"), std::string::npos);
}

TEST(BenchCompare, NoiseWithinTolerancePasses) {
  CompareOptions opt;
  opt.metric_tolerance["events_per_sec"] = 0.10;
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), doc(950, 2.5), opt, out),
            kComparePass);
  EXPECT_NE(out.str().find("within tolerance"), std::string::npos);
}

TEST(BenchCompare, ImprovementsPassAtZeroTolerance) {
  // Direction-aware: more throughput and less completion time are both
  // improvements, so the strictest gate still passes them.
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), doc(1300, 2.0), {}, out),
            kComparePass);
}

TEST(BenchCompare, CompletionTimeIncreaseFailsExactGate) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), doc(1000, 2.6), {}, out),
            kCompareRegression);
}

TEST(BenchCompare, UnknownMetricsAreTwoSided) {
  // A metric with no known direction regresses on *any* out-of-tolerance
  // drift — in a deterministic sim, unexplained change is the signal.
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5, "nscc-bench-v3", "mystery", 5),
                               doc(1000, 2.5, "nscc-bench-v3", "mystery", 6),
                               {}, out),
            kCompareRegression);
  std::ostringstream out2;
  CompareOptions loose;
  loose.default_tolerance = 0.5;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5, "nscc-bench-v3", "mystery", 5),
                               doc(1000, 2.5, "nscc-bench-v3", "mystery", 6),
                               loose, out2),
            kComparePass);
}

TEST(BenchCompare, SchemaMismatchIsAnError) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5, "nscc-bench-v2"),
                               doc(1000, 2.5, "nscc-bench-v3"), {}, out),
            kCompareError);
  EXPECT_NE(out.str().find("schema mismatch"), std::string::npos);
}

TEST(BenchCompare, ForeignSchemaIsAnError) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5, "other-tool-v1"),
                               doc(1000, 2.5, "other-tool-v1"), {}, out),
            kCompareError);
}

TEST(BenchCompare, MalformedJsonIsAnError) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json("{not json", doc(1000, 2.5), {}, out),
            kCompareError);
}

TEST(BenchCompare, MissingCellIsARegression) {
  // Candidate ran a different variant: the baseline cell silently vanishing
  // must fail, not pass vacuously.
  std::string cand = doc(1000, 2.5);
  const auto pos = cand.find("\"nscc\"");
  ASSERT_NE(pos, std::string::npos);
  cand.replace(pos, 6, "\"sc\"");
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), cand, {}, out),
            kCompareRegression);
  EXPECT_NE(out.str().find("cell missing"), std::string::npos);
}

TEST(BenchCompare, MissingMetricIsARegression) {
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5, "nscc-bench-v3", "extra", 1),
                               doc(1000, 2.5), {}, out),
            kCompareRegression);
  EXPECT_NE(out.str().find("missing from candidate"), std::string::npos);
}

TEST(BenchCompare, ParamsDistinguishCells) {
  // Same workload/variant but different sweep params are different cells.
  std::string cand = doc(1000, 2.5);
  const auto pos = cand.find("\"procs\": 4");
  ASSERT_NE(pos, std::string::npos);
  cand.replace(pos, 10, "\"procs\": 8");
  std::ostringstream out;
  EXPECT_EQ(compare_bench_json(doc(1000, 2.5), cand, {}, out),
            kCompareRegression);
}

}  // namespace
