// Partition-tolerance tests: the acceptance matrix from the issue.
//
// A scheduled group partition splits the cluster mid-run.  With the quorum
// gate and anti-entropy heal on, neither side may declare the other dead;
// minority reads past the age bound are served degraded (divergence
// tracked per location), and at window end writers republish over the
// reliable channel until every diverged location reconciles — the run
// completes clean under --sanitize=strict.  With the gate and heal off,
// both sides declare each other dead (mutual dead declarations = the
// split-brain signal) and the driver exits 5.  Exercised on GA + Jacobi
// over both interconnects, plus determinism and flag-validation checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "harness/driver.hpp"
#include "harness/run_config.hpp"
#include "harness/workloads.hpp"
#include "recovery/recovery.hpp"
#include "rt/vm.hpp"
#include "sanitize/sanitize.hpp"
#include "sim/time.hpp"

namespace {

using nscc::fault::FaultPlan;
using nscc::fault::PartitionWindow;
using nscc::fault::Window;
using nscc::harness::RunConfig;
using nscc::harness::RunStats;
using nscc::recovery::Policy;
using nscc::rt::MachineConfig;
using nscc::rt::Network;
using nscc::sim::kSecond;
using nscc::sim::Time;

Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// The issue's canonical split: nodes {0,1} vs {2,3} for [0.05 s, 0.6 s) —
/// long enough that the detector's silence limit elapses inside it.
FaultPlan half_split_plan() {
  FaultPlan plan;
  PartitionWindow split;
  split.window = Window{seconds(0.05), seconds(0.6)};
  split.groups = {{0, 1}, {2, 3}};
  plan.partitions.push_back(split);
  return plan;
}

/// quorum > 0 gates dead declarations; heal republishes at window end.
RunConfig partition_run(double quorum, bool heal, std::uint64_t seed = 7) {
  RunConfig run;
  run.mode = nscc::dsm::Mode::kPartialAsync;
  run.age = 4;
  run.seed = seed;
  run.propagation.coalesce = true;
  run.propagation.partition_heal = heal;
  run.recovery.policy = Policy::kDegraded;
  run.recovery.checkpoint_interval = seconds(0.1);
  run.recovery.quorum_fraction = quorum;
  return run;
}

MachineConfig machine_for(const FaultPlan& plan, Network network,
                          bool strict = false,
                          nscc::harness::Workload* w = nullptr,
                          const RunConfig* run = nullptr) {
  MachineConfig machine;
  machine.network = network;
  machine.fault = plan;
  machine.transport.enabled = true;
  if (strict) {
    machine.sanitize.level = nscc::sanitize::Level::kStrict;
    machine.sanitize.spec = w->tolerance_spec(*run);
  }
  return machine;
}

nscc::harness::GaIslandWorkload small_ga() {
  nscc::harness::GaIslandWorkload ga;
  ga.function_id = 1;
  ga.demes = 4;
  ga.generations = 40;
  return ga;
}

nscc::harness::JacobiWorkload small_jacobi() {
  nscc::harness::JacobiWorkload jacobi;
  jacobi.grid = 24;
  jacobi.processors = 4;
  jacobi.tolerance = 1e-7;
  return jacobi;
}

/// The quorum+heal acceptance cell: completes, serves divergence-bounded
/// reads without declaring anyone dead, reconciles every diverged
/// location, and stays clean under the strict sanitizer.
void expect_quorum_heal_converges(nscc::harness::Workload& w,
                                  Network network) {
  RunConfig run = partition_run(0.6, true);
  if (run.mode == nscc::dsm::Mode::kPartialAsync) {
    run.propagation.integrity = true;  // Mirror drive()'s strict wiring.
  }
  const RunStats stats =
      w.run(run, machine_for(half_split_plan(), network, true, &w, &run));
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.partition_drops, 0u) << "the split must cut frames";
  EXPECT_EQ(stats.split_brain_declarations, 0u)
      << "no side holds a 0.6 quorum during a 2|2 split, so nobody may "
         "declare anybody dead";
  EXPECT_EQ(stats.diverged_locations, stats.reconciled_locations)
      << "anti-entropy heal must reconcile every diverged location";
  EXPECT_EQ(stats.sanitize_violations, 0u)
      << "degraded partition reads stay inside the tolerance contract";
}

/// The no-quorum cell: both sides escalate suspicion to dead declarations
/// and the mutual-declaration counter records the split-brain.
void expect_no_quorum_split_brains(nscc::harness::Workload& w,
                                   Network network) {
  const RunConfig run = partition_run(0.0, false);
  const RunStats stats =
      w.run(run, machine_for(half_split_plan(), network));
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.partition_drops, 0u);
  EXPECT_GT(stats.split_brain_declarations, 0u)
      << "without the quorum gate both sides must declare each other dead";
}

// ---------------------------------------------------------------------------
// Acceptance matrix: GA + Jacobi x ethernet + sp2
// ---------------------------------------------------------------------------

TEST(Partition, GaQuorumHealConvergesEthernet) {
  auto ga = small_ga();
  expect_quorum_heal_converges(ga, Network::kEthernet);
}

TEST(Partition, GaQuorumHealConvergesSp2) {
  auto ga = small_ga();
  expect_quorum_heal_converges(ga, Network::kSp2Switch);
}

TEST(Partition, JacobiQuorumHealConvergesEthernet) {
  auto jacobi = small_jacobi();
  expect_quorum_heal_converges(jacobi, Network::kEthernet);
}

TEST(Partition, JacobiQuorumHealConvergesSp2) {
  auto jacobi = small_jacobi();
  expect_quorum_heal_converges(jacobi, Network::kSp2Switch);
}

TEST(Partition, GaNoQuorumSplitBrainsEthernet) {
  auto ga = small_ga();
  expect_no_quorum_split_brains(ga, Network::kEthernet);
}

TEST(Partition, GaNoQuorumSplitBrainsSp2) {
  auto ga = small_ga();
  expect_no_quorum_split_brains(ga, Network::kSp2Switch);
}

TEST(Partition, JacobiNoQuorumSplitBrainsEthernet) {
  auto jacobi = small_jacobi();
  expect_no_quorum_split_brains(jacobi, Network::kEthernet);
}

TEST(Partition, JacobiNoQuorumSplitBrainsSp2) {
  auto jacobi = small_jacobi();
  expect_no_quorum_split_brains(jacobi, Network::kSp2Switch);
}

// ---------------------------------------------------------------------------
// Determinism: same (seed, plan) => byte-identical partitioned runs
// ---------------------------------------------------------------------------

void expect_identical_partition_runs(Network network) {
  auto ga = small_ga();
  const RunConfig run = partition_run(0.6, true);
  const RunStats a = ga.run(run, machine_for(half_split_plan(), network));
  const RunStats b = ga.run(run, machine_for(half_split_plan(), network));
  const auto fa = a.to_fields();
  const auto fb = b.to_fields();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].first, fb[i].first);
    EXPECT_EQ(fa[i].second, fb[i].second) << fa[i].first;
  }
}

TEST(Partition, SameSeedSamePlanByteIdenticalEthernet) {
  expect_identical_partition_runs(Network::kEthernet);
}

TEST(Partition, SameSeedSamePlanByteIdenticalSp2) {
  expect_identical_partition_runs(Network::kSp2Switch);
}

// ---------------------------------------------------------------------------
// Driver exit codes and flag validation
// ---------------------------------------------------------------------------

int drive_ga(const std::vector<std::string>& extra) {
  nscc::harness::DriveOptions options;
  options.workload = "ga.island";
  options.default_variants = "partial";
  std::vector<std::string> args = {"test", "--demes=4", "--generations=40",
                                   "--function=1", "--age=4", "--seed=7",
                                   "--recovery=degraded"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return nscc::harness::drive(static_cast<int>(argv.size()), argv.data(),
                              options);
}

TEST(PartitionDriver, QuorumHealExitsZeroUnderStrict) {
  EXPECT_EQ(drive_ga({"--partition-at=0.05:0.6:0,1|2,3", "--quorum=0.6",
                      "--sanitize=strict"}),
            0);
}

TEST(PartitionDriver, NoQuorumSplitBrainIsExitFive) {
  EXPECT_EQ(drive_ga({"--partition-at=0.05:0.6:0,1|2,3", "--quorum=0",
                      "--heal=false"}),
            5);
}

TEST(PartitionDriver, FlagValidationIsExitOne) {
  EXPECT_EQ(drive_ga({"--quorum=1.5"}), 1);
  EXPECT_EQ(drive_ga({"--quorum=-0.1"}), 1);
  EXPECT_EQ(drive_ga({"--heartbeat-interval-ms=0"}), 1);
  EXPECT_EQ(drive_ga({"--heartbeat-interval-ms=50",
                      "--suspect-timeout-ms=30"}),
            1);
  EXPECT_EQ(drive_ga({"--suspect-timeout-ms=-5"}), 1);
  EXPECT_EQ(drive_ga({"--partition-at=junk"}), 1);
  EXPECT_EQ(drive_ga({"--blackhole-at=0.1:0.5:1:1"}), 1);
}

TEST(PartitionDriver, HeartbeatFlagsDriveACleanRun) {
  // Satellite: --heartbeat-interval-ms / --suspect-timeout-ms are honoured
  // end to end (a tighter detector still converges under quorum + heal).
  EXPECT_EQ(drive_ga({"--partition-at=0.05:0.6:0,1|2,3", "--quorum=0.6",
                      "--heartbeat-interval-ms=20",
                      "--suspect-timeout-ms=100"}),
            0);
}

}  // namespace
