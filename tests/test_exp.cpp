// Tests for the experiment drivers: the paper's protocol mechanics
// (variant lists, quality-matched generation budgets, paper-style averages,
// best-vs-best-competitor computation) on reduced workloads.
#include <gtest/gtest.h>

#include "exp/bayes_experiments.hpp"
#include "exp/ga_experiments.hpp"

namespace {

nscc::exp::GaCellConfig tiny_cell() {
  nscc::exp::GaCellConfig cfg;
  cfg.function_id = 1;
  cfg.processors = 2;
  cfg.generations = 40;
  cfg.reps = 1;
  cfg.ages = {0, 10};
  cfg.seed = 5;
  return cfg;
}

TEST(GaExperiments, CellProducesAllVariants) {
  const auto cell = nscc::exp::run_ga_cell(tiny_cell());
  ASSERT_EQ(cell.variants.size(), 5u);  // serial, sync, async, age0, age10.
  EXPECT_EQ(cell.variants[0].name, "serial");
  EXPECT_DOUBLE_EQ(cell.variant("serial").speedup, 1.0);
  for (const auto& v : cell.variants) {
    EXPECT_GT(v.mean_time_s, 0.0) << v.name;
    EXPECT_GT(v.mean_generations, 0.0) << v.name;
  }
  EXPECT_THROW(cell.variant("nope"), std::out_of_range);
}

TEST(GaExperiments, BestPartialOverBestCompetitor) {
  const auto cell = nscc::exp::run_ga_cell(tiny_cell());
  double best_partial = 0.0;
  double best_other = 0.0;
  for (const auto& v : cell.variants) {
    if (v.name.rfind("age", 0) == 0) {
      best_partial = std::max(best_partial, v.speedup);
    } else {
      best_other = std::max(best_other, v.speedup);
    }
  }
  EXPECT_NEAR(cell.best_partial_over_best_competitor(),
              best_partial / best_other, 1e-12);
}

TEST(GaExperiments, AverageUsesSummedTimes) {
  auto cfg = tiny_cell();
  std::vector<nscc::exp::GaCellResult> cells;
  cells.push_back(nscc::exp::run_ga_cell(cfg));
  cfg.function_id = 3;
  cells.push_back(nscc::exp::run_ga_cell(cfg));
  const auto avg = nscc::exp::average_cells(cells);
  ASSERT_EQ(avg.size(), cells.front().variants.size());
  // Paper metric: sum of serial times over sum of variant times.
  const double serial_sum = cells[0].variant("serial").sum_time_s +
                            cells[1].variant("serial").sum_time_s;
  const double sync_sum = cells[0].variant("sync").sum_time_s +
                          cells[1].variant("sync").sum_time_s;
  for (const auto& v : avg) {
    if (v.name == "sync") {
      EXPECT_NEAR(v.speedup, serial_sum / sync_sum, 1e-12);
    }
  }
}

TEST(GaExperiments, DeterministicCells) {
  const auto a = nscc::exp::run_ga_cell(tiny_cell());
  const auto b = nscc::exp::run_ga_cell(tiny_cell());
  for (std::size_t i = 0; i < a.variants.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.variants[i].speedup, b.variants[i].speedup);
  }
}

TEST(BayesExperiments, Table2RowsMatchStructure) {
  const auto rows = nscc::exp::measure_table2(2, 21);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "A");
  EXPECT_EQ(rows[3].name, "Hailfinder");
  for (const auto& row : rows) {
    EXPECT_GE(row.nodes, 54);
    EXPECT_GT(row.edge_cut_2way, 0);
    EXPECT_GT(row.uniprocessor_time_s, 0.0);
  }
  // Table 2's qualitative facts: Hailfinder has by far the smallest cut
  // and the smallest uniprocessor inference time.
  EXPECT_LT(rows[3].edge_cut_2way, rows[0].edge_cut_2way / 2);
  EXPECT_LT(rows[3].uniprocessor_time_s, rows[0].uniprocessor_time_s / 2);
}

TEST(BayesExperiments, CellVariantsAndAverage) {
  nscc::exp::BayesCellConfig cfg;
  cfg.reps = 1;
  cfg.ages = {10};
  cfg.seed = 21;
  const auto nets = nscc::exp::table2_networks();
  std::vector<nscc::exp::BayesCellResult> cells;
  cells.push_back(nscc::exp::run_bayes_cell(nets[3], cfg));  // Hailfinder.
  const auto& cell = cells[0];
  ASSERT_EQ(cell.variants.size(), 4u);  // serial, sync, async, age10.
  EXPECT_DOUBLE_EQ(cell.variant("serial").speedup, 1.0);
  // The paper's ordering on the speculation-friendly network:
  // sync < async < Global_Read.
  EXPECT_LT(cell.variant("sync").speedup, cell.variant("async").speedup);
  EXPECT_LT(cell.variant("async").speedup, cell.variant("age10").speedup);
  const auto avg = nscc::exp::average_bayes_cells(cells);
  ASSERT_EQ(avg.size(), 4u);
  EXPECT_NEAR(avg[0].speedup, 1.0, 1e-12);
}

}  // namespace
