// Tests for the neural-network application: MLP mechanics (forward,
// analytic gradient vs finite differences), the two-spirals dataset, the
// sequential trainer, and the parallel bounded-staleness trainer in all
// three modes.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "nn/train.hpp"

namespace {

using nscc::dsm::Mode;
using nscc::nn::Dataset;
using nscc::nn::make_two_spirals;
using nscc::nn::Mlp;
using nscc::nn::TrainConfig;

TEST(MlpTest, ShapesAndParameterCount) {
  Mlp net({2, 4, 1}, 3);
  // (2*4 + 4) + (4*1 + 1) = 17.
  EXPECT_EQ(net.parameter_count(), 17u);
  const auto out = net.forward({0.5, -0.5});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0], 0.0);
  EXPECT_LT(out[0], 1.0);  // Sigmoid output.
}

TEST(MlpTest, SetParametersRoundTripsAndValidates) {
  Mlp net({2, 3, 1}, 5);
  auto p = net.parameters();
  p[0] = 42.0;
  net.set_parameters(p);
  EXPECT_DOUBLE_EQ(net.parameters()[0], 42.0);
  EXPECT_THROW(net.set_parameters({1.0, 2.0}), std::invalid_argument);
}

TEST(MlpTest, GradientMatchesFiniteDifferences) {
  Mlp net({2, 5, 1}, 7);
  Dataset data = make_two_spirals(10, 0.0, 11);
  std::vector<double> grad;
  net.gradient(data.inputs, data.targets, 0, data.size(), grad);
  ASSERT_EQ(grad.size(), net.parameter_count());

  const double eps = 1e-6;
  auto params = net.parameters();
  for (std::size_t i = 0; i < params.size(); i += 7) {  // Spot-check.
    auto plus = params;
    plus[i] += eps;
    Mlp net_plus = net;
    net_plus.set_parameters(plus);
    auto minus = params;
    minus[i] -= eps;
    Mlp net_minus = net;
    net_minus.set_parameters(minus);
    const double numeric = (net_plus.loss(data.inputs, data.targets) -
                            net_minus.loss(data.inputs, data.targets)) /
                           (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-5) << "param " << i;
  }
}

TEST(MlpTest, ApplyGradientDescendsLoss) {
  Mlp net({2, 6, 1}, 9);
  Dataset data = make_two_spirals(20, 0.0, 13);
  const double before = net.loss(data.inputs, data.targets);
  std::vector<double> grad;
  for (int i = 0; i < 50; ++i) {
    net.gradient(data.inputs, data.targets, 0, data.size(), grad);
    net.apply_gradient(grad, 0.3);
  }
  EXPECT_LT(net.loss(data.inputs, data.targets), before);
}

TEST(TwoSpirals, BalancedLabelsAndBoundedInputs) {
  const auto data = make_two_spirals(50, 0.05, 17);
  EXPECT_EQ(data.size(), 100u);
  int positives = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::fabs(data.inputs[i][0]), 2.0);
    EXPECT_LE(std::fabs(data.inputs[i][1]), 2.0);
    positives += data.targets[i][0] >= 0.5 ? 1 : 0;
  }
  EXPECT_EQ(positives, 50);
}

TEST(SequentialTrain, LearnsTheSpirals) {
  const auto data = make_two_spirals(50, 0.02, 7);
  TrainConfig cfg;
  cfg.steps = 600;
  cfg.workers = 4;
  cfg.seed = 7;
  const auto r = nscc::nn::train_sequential(data, cfg);
  EXPECT_LT(r.final_loss, 0.22);
  EXPECT_GT(r.final_accuracy, 0.65);
  EXPECT_GT(r.completion_time, 0);
  EXPECT_FALSE(r.loss_trajectory.empty());
  // Loss trajectory timestamps are monotone.
  for (std::size_t i = 1; i < r.loss_trajectory.size(); ++i) {
    EXPECT_GT(r.loss_trajectory[i].first, r.loss_trajectory[i - 1].first);
  }
}

TEST(ParallelTrain, SynchronousMatchesSerialQuality) {
  const auto data = make_two_spirals(50, 0.02, 23);
  TrainConfig cfg;
  cfg.steps = 300;
  cfg.workers = 4;
  cfg.seed = 23;
  const auto serial = nscc::nn::train_sequential(data, cfg);
  cfg.mode = Mode::kSynchronous;
  nscc::rt::MachineConfig machine;
  machine.network = nscc::rt::Network::kSp2Switch;
  const auto sync = nscc::nn::train_parallel(data, cfg, machine);
  EXPECT_FALSE(sync.deadlocked);
  EXPECT_NEAR(sync.final_loss, serial.final_loss, 0.08);
  EXPECT_EQ(sync.mean_staleness, 0.0);
}

TEST(ParallelTrain, BoundedStalenessIsRespectedAndCheaperThanSync) {
  const auto data = make_two_spirals(50, 0.02, 29);
  TrainConfig cfg;
  cfg.steps = 300;
  cfg.workers = 4;
  cfg.seed = 29;
  nscc::rt::MachineConfig machine;
  machine.network = nscc::rt::Network::kSp2Switch;
  cfg.mode = Mode::kSynchronous;
  const auto sync = nscc::nn::train_parallel(data, cfg, machine);
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 2;
  const auto partial = nscc::nn::train_parallel(data, cfg, machine);
  EXPECT_FALSE(partial.deadlocked);
  EXPECT_LE(partial.mean_staleness, 2.0 + 1e-9);
  EXPECT_LT(partial.completion_time, sync.completion_time);
}

TEST(ParallelTrain, UncontrolledAsynchronyDegradesQuality) {
  const auto data = make_two_spirals(50, 0.02, 31);
  TrainConfig cfg;
  cfg.steps = 400;
  cfg.workers = 4;
  cfg.seed = 31;
  cfg.node_speed_spread = 0.3;  // A slow worker lets others run far ahead.
  nscc::rt::MachineConfig machine;
  machine.network = nscc::rt::Network::kSp2Switch;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 2;
  const auto partial = nscc::nn::train_parallel(data, cfg, machine);
  cfg.mode = Mode::kAsynchronous;
  const auto async_r = nscc::nn::train_parallel(data, cfg, machine);
  EXPECT_GT(async_r.mean_staleness, 10.0);   // Unbounded run-ahead...
  EXPECT_GT(async_r.final_loss, partial.final_loss);  // ...hurts the model.
}

TEST(ParallelTrain, DeterministicForSeed) {
  const auto data = make_two_spirals(30, 0.02, 37);
  TrainConfig cfg;
  cfg.steps = 100;
  cfg.workers = 3;
  cfg.seed = 37;
  cfg.mode = Mode::kPartialAsync;
  cfg.age = 3;
  const auto a = nscc::nn::train_parallel(data, cfg, {});
  const auto b = nscc::nn::train_parallel(data, cfg, {});
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

}  // namespace
