// Tests for the non-strict coherence core: declaration rules, write
// propagation, plain (slow-memory) reads, the Global_Read staleness
// guarantee and its blocking/flow-control behaviour, coalescing policy,
// and the DSM statistics the experiments report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "rt/packet.hpp"
#include "rt/vm.hpp"
#include "sim/time.hpp"

namespace {

using nscc::dsm::Iteration;
using nscc::dsm::LocationId;
using nscc::dsm::Mode;
using nscc::dsm::PropagationPolicy;
using nscc::dsm::SharedSpace;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::Time;
using nscc::sim::kMillisecond;

MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

Packet value_of(double x) {
  Packet p;
  p.pack_double(x);
  return p;
}

double as_double(const SharedSpace::Value& v) {
  Packet copy = v.data;
  return copy.unpack_double();
}

TEST(ModeName, AllModesNamed) {
  EXPECT_STREQ(nscc::dsm::mode_name(Mode::kSynchronous), "sync");
  EXPECT_STREQ(nscc::dsm::mode_name(Mode::kAsynchronous), "async");
  EXPECT_STREQ(nscc::dsm::mode_name(Mode::kPartialAsync), "partial");
}

TEST(SharedSpace, WritePropagatesToReader) {
  VirtualMachine vm(fast_config(2));
  double got = 0.0;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(7, {1});
    dsm.write(7, 0, value_of(3.5));
    t.compute(kMillisecond);  // Let the update drain before we exit.
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(7, 0);
    const auto& v = dsm.global_read(7, 0, 0);
    got = as_double(v);
    EXPECT_EQ(v.iteration, 0);
    EXPECT_TRUE(v.valid);
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_DOUBLE_EQ(got, 3.5);
}

TEST(SharedSpace, PlainReadReturnsStaleWithoutBlocking) {
  VirtualMachine vm(fast_config(2));
  std::vector<Iteration> seen;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i < 5; ++i) {
      t.compute(10 * kMillisecond);
      dsm.write(1, i, value_of(static_cast<double>(i)));
    }
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    // Before anything arrives, the read does not block and is invalid.
    const auto& v0 = dsm.read(1);
    EXPECT_FALSE(v0.valid);
    seen.push_back(v0.iteration);
    t.compute(25 * kMillisecond);
    const auto& v1 = dsm.read(1);
    EXPECT_TRUE(v1.valid);
    seen.push_back(v1.iteration);
  });
  vm.run();
  EXPECT_EQ(seen[0], -1);
  // After 25ms, writes for iterations 0 and 1 (at 10/20ms) have arrived.
  EXPECT_EQ(seen[1], 1);
}

TEST(SharedSpace, GlobalReadSatisfiedLocallyDoesNotBlock) {
  VirtualMachine vm(fast_config(2));
  Time read_duration = -1;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    dsm.write(1, 10, value_of(1.0));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    t.compute(5 * kMillisecond);  // The update is already queued locally.
    const Time before = t.now();
    const auto& v = dsm.global_read(1, 12, 2);  // Needs iteration >= 10.
    read_duration = t.now() - before;
    EXPECT_EQ(v.iteration, 10);
  });
  vm.run();
  EXPECT_EQ(read_duration, 0);
}

TEST(SharedSpace, GlobalReadBlocksUntilFreshEnough) {
  VirtualMachine vm(fast_config(2));
  Time unblocked_at = -1;
  Iteration got_iter = -1;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i <= 3; ++i) {
      t.compute(10 * kMillisecond);
      dsm.write(1, i, value_of(static_cast<double>(i)));
    }
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    // Needs iteration >= 3, which is written only at t=40ms.
    const auto& v = dsm.global_read(1, 5, 2);
    unblocked_at = t.now();
    got_iter = v.iteration;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(got_iter, 3);
  EXPECT_GE(unblocked_at, 40 * kMillisecond);
}

TEST(SharedSpace, GlobalReadAgeZeroDemandsCurrentIteration) {
  VirtualMachine vm(fast_config(2));
  std::vector<Iteration> iters;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i < 3; ++i) {
      t.compute(10 * kMillisecond);
      dsm.write(1, i, value_of(0.0));
    }
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    for (Iteration i = 0; i < 3; ++i) {
      iters.push_back(dsm.global_read(1, i, 0).iteration);
    }
  });
  vm.run();
  ASSERT_EQ(iters.size(), 3u);
  for (Iteration i = 0; i < 3; ++i) EXPECT_GE(iters[static_cast<std::size_t>(i)], i);
}

TEST(SharedSpace, GlobalReadImplementsReceiverFlowControl) {
  // A fast reader iterating with Global_Read(age) can never run more than
  // `age` iterations ahead of the writer - the paper's partial asynchrony.
  VirtualMachine vm(fast_config(2));
  Iteration max_lead = 0;
  constexpr Iteration kAge = 3;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i < 20; ++i) {
      t.compute(10 * kMillisecond);  // Slow producer.
      dsm.write(1, i, value_of(0.0));
    }
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    for (Iteration i = 0; i < 20; ++i) {
      const auto& v = dsm.global_read(1, i, kAge);
      max_lead = std::max(max_lead, i - v.iteration);
      t.compute(kMillisecond);  // Fast consumer.
    }
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_LE(max_lead, kAge);
}

TEST(SharedSpace, StaleUpdatesAreDropped) {
  // Out-of-order application: a newer value must never be overwritten by an
  // older in-flight one (here forced via a local write racing the network).
  VirtualMachine vm(fast_config(2));
  std::uint64_t stale_drops = 0;
  Iteration final_iter = -1;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    dsm.write(1, 0, value_of(0.0));
    dsm.write(1, 5, value_of(5.0));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    const auto& v = dsm.global_read(1, 5, 0);
    final_iter = v.iteration;
    // Now drain anything left and check the old iteration-0 update (which
    // arrived first, in order) did not regress the copy.
    dsm.poll();
    EXPECT_EQ(dsm.local_iteration(1), 5);
    stale_drops = dsm.stats().updates_stale_dropped;
  });
  vm.run();
  EXPECT_EQ(final_iter, 5);
  // FIFO bus: iteration 0 arrives first and is applied, then 5. No drops.
  EXPECT_EQ(stale_drops, 0u);
}

TEST(SharedSpace, UndeclaredAccessThrows) {
  VirtualMachine vm(fast_config(1));
  vm.add_task("solo", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {0});
    EXPECT_THROW(dsm.write(2, 0, Packet{}), std::logic_error);
    EXPECT_THROW((void)dsm.read(3), std::logic_error);
    EXPECT_THROW((void)dsm.global_read(3, 0, 0), std::logic_error);
    EXPECT_THROW(dsm.declare_written(1, {0}), std::logic_error);
    EXPECT_THROW(dsm.declare_read(1, 0), std::logic_error);
  });
  vm.run();
}

TEST(SharedSpace, WriterReadsOwnCopyWithoutMessages) {
  VirtualMachine vm(fast_config(1));
  vm.add_task("solo", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {0});
    dsm.write(1, 4, value_of(2.25));
    const auto& v = dsm.read(1);
    EXPECT_EQ(v.iteration, 4);
    EXPECT_DOUBLE_EQ(as_double(v), 2.25);
  });
  vm.run();
  EXPECT_EQ(vm.bus().stats().frames_sent, 0u);
}

TEST(SharedSpace, RepeatedReadsRewindPayload) {
  VirtualMachine vm(fast_config(1));
  vm.add_task("solo", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {0});
    dsm.write(1, 0, value_of(7.0));
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(as_double(dsm.read(1)), 7.0);
    }
  });
  vm.run();
}

TEST(SharedSpace, CoalescingMergesBurstsOfWrites) {
  auto cfg = fast_config(2);
  // Slow bus so several writes land while the first update is in flight:
  // 8-byte payload + headers take ~multiple ms per update.
  cfg.bus.bandwidth_bps = 100e3;
  PropagationPolicy coalesce{.coalesce = true};
  VirtualMachine vm(cfg);
  std::uint64_t sent = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t writes = 0;
  Iteration reader_final = -1;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace dsm(t, coalesce);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i < 50; ++i) {
      dsm.write(1, i, value_of(static_cast<double>(i)));
      t.compute(100 * nscc::sim::kMicrosecond);
    }
    t.compute(200 * kMillisecond);  // Let deliveries drain.
    sent = dsm.stats().updates_sent;
    coalesced = dsm.stats().updates_coalesced;
    writes = dsm.stats().writes;
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    // Wait for the last iteration to arrive.
    const auto& v = dsm.global_read(1, 49, 0);
    reader_final = v.iteration;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(writes, 50u);
  EXPECT_LT(sent, 50u);          // Bursts merged.
  EXPECT_GT(coalesced, 0u);      // Some intermediate values skipped.
  EXPECT_EQ(reader_final, 49);   // Latest value still arrives.
}

TEST(SharedSpace, WithoutCoalescingEveryWriteIsSent) {
  auto cfg = fast_config(2);
  cfg.bus.bandwidth_bps = 100e3;
  VirtualMachine vm(cfg);
  std::uint64_t sent = 0;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    for (Iteration i = 0; i < 20; ++i) {
      dsm.write(1, i, value_of(0.0));
    }
    sent = dsm.stats().updates_sent;
  });
  vm.add_task("reader", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    (void)dsm.global_read(1, 19, 0);
  });
  vm.run();
  EXPECT_EQ(sent, 20u);
}

TEST(SharedSpace, MultipleReadersAllReceive) {
  VirtualMachine vm(fast_config(4));
  std::vector<double> got(4, 0.0);
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1, 2, 3});
    dsm.write(1, 0, value_of(6.5));
    t.compute(10 * kMillisecond);
  });
  for (int i = 1; i < 4; ++i) {
    vm.add_task("reader" + std::to_string(i), [&got, i](Task& t) {
      SharedSpace dsm(t);
      dsm.declare_read(1, 0);
      got[static_cast<std::size_t>(i)] = as_double(dsm.global_read(1, 0, 0));
    });
  }
  vm.run();
  for (int i = 1; i < 4; ++i) EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)], 6.5);
}

TEST(SharedSpace, MultipleLocationsAreIndependent) {
  VirtualMachine vm(fast_config(3));
  double a = 0.0;
  double b = 0.0;
  vm.add_task("hub", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(10, 1);
    dsm.declare_read(20, 2);
    a = as_double(dsm.global_read(10, 0, 0));
    b = as_double(dsm.global_read(20, 0, 0));
  });
  vm.add_task("w1", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(10, {0});
    t.compute(5 * kMillisecond);
    dsm.write(10, 0, value_of(1.0));
    t.compute(5 * kMillisecond);
  });
  vm.add_task("w2", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(20, {0});
    t.compute(2 * kMillisecond);
    dsm.write(20, 0, value_of(2.0));
    t.compute(5 * kMillisecond);
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
}

TEST(SharedSpace, StatsTrackBlocksAndStaleness) {
  VirtualMachine vm(fast_config(2));
  nscc::dsm::DsmStats snap;
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    t.compute(10 * kMillisecond);
    dsm.write(1, 0, value_of(0.0));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    (void)dsm.global_read(1, 0, 0);  // Blocks ~10ms.
    (void)dsm.global_read(1, 2, 5);  // Satisfied, staleness 2.
    snap = dsm.stats();
  });
  vm.run();
  EXPECT_EQ(snap.global_reads, 2u);
  EXPECT_EQ(snap.global_read_blocks, 1u);
  EXPECT_GE(snap.global_read_block_time, 10 * kMillisecond);
  ASSERT_NE(snap.staleness_on_read, nullptr);
  EXPECT_EQ(snap.staleness_on_read->count(), 2u);
  EXPECT_DOUBLE_EQ(snap.staleness_on_read->max(), 2.0);
  // DsmStats reads from the obs registry, so the machine-wide histogram is
  // the same accounting and can never disagree with the per-task view.
  const nscc::obs::Histogram& machine =
      vm.obs().registry().histogram("dsm.staleness");
  EXPECT_EQ(machine.count(), snap.staleness_on_read->count());
  EXPECT_DOUBLE_EQ(machine.max(), snap.staleness_on_read->max());
  EXPECT_DOUBLE_EQ(machine.mean(), snap.staleness_on_read->mean());
}

TEST(SharedSpace, RequestImplCountsDemandTraffic) {
  // kRequest path counters: a reader that blocks issues a demand
  // (requests_sent); the writer sees it as a starvation hint
  // (hints_received) and, if it already holds a fresh-enough copy when it
  // drains the request, resends it (request_replies).
  //
  // The writer stores iteration 0 immediately, so when the reader's demand
  // (need = 0) is drained during the writer's later poll(), the copy
  // qualifies and a demand-driven resend goes out.  Default (non-zeroed)
  // network costs keep the update in flight at t=0, so the reader's
  // Global_Read genuinely blocks and sends the request.
  MachineConfig cfg;
  cfg.ntasks = 2;
  VirtualMachine vm(cfg);
  nscc::dsm::DsmStats writer_stats;
  nscc::dsm::DsmStats reader_stats;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(7, {1});
    dsm.write(7, 0, value_of(1.0));
    t.compute(100 * kMillisecond);  // Request arrives while we sleep...
    dsm.poll();                     // ...and is served here.
    writer_stats = dsm.stats();
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t, PropagationPolicy{
                           .coalesce = false,
                           .read_impl = nscc::dsm::GlobalReadImpl::kRequest});
    dsm.declare_read(7, 0);
    (void)dsm.global_read(7, 0, 0);
    t.compute(200 * kMillisecond);  // Outlive the writer's reply.
    dsm.poll();                     // Absorb the (stale) demand resend.
    reader_stats = dsm.stats();
  });
  vm.run();
  ASSERT_FALSE(vm.deadlocked());
  EXPECT_EQ(reader_stats.requests_sent, 1u);
  EXPECT_EQ(reader_stats.global_read_blocks, 1u);
  EXPECT_EQ(writer_stats.hints_received, 1u);
  EXPECT_EQ(writer_stats.request_replies, 1u);
  // The resend carries iteration 0 again; the reader already has it.
  EXPECT_EQ(reader_stats.updates_stale_dropped, 1u);
}

TEST(SharedSpace, WaitImplSendsNoRequests) {
  MachineConfig cfg;
  cfg.ntasks = 2;
  VirtualMachine vm(cfg);
  nscc::dsm::DsmStats writer_stats;
  nscc::dsm::DsmStats reader_stats;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(7, {1});
    dsm.write(7, 0, value_of(1.0));
    t.compute(100 * kMillisecond);
    dsm.poll();
    writer_stats = dsm.stats();
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace dsm(t);  // Default policy: GlobalReadImpl::kWait.
    dsm.declare_read(7, 0);
    (void)dsm.global_read(7, 0, 0);
    reader_stats = dsm.stats();
  });
  vm.run();
  ASSERT_FALSE(vm.deadlocked());
  EXPECT_EQ(reader_stats.global_read_blocks, 1u);
  EXPECT_EQ(reader_stats.requests_sent, 0u);
  EXPECT_EQ(writer_stats.hints_received, 0u);
  EXPECT_EQ(writer_stats.request_replies, 0u);
}

TEST(SharedSpace, GlobalReadUnsatisfiableDeadlocksDetectably) {
  VirtualMachine vm(fast_config(2));
  vm.add_task("writer", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_written(1, {1});
    dsm.write(1, 0, value_of(0.0));  // Writer stops at iteration 0.
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [](Task& t) {
    SharedSpace dsm(t);
    dsm.declare_read(1, 0);
    (void)dsm.global_read(1, 100, 0);  // Can never be satisfied.
  });
  vm.run();
  EXPECT_TRUE(vm.deadlocked());
}

}  // namespace
