// Tests for the robustness stack: the deterministic fault injector, the
// reliable transport (sequence/ACK/retransmit/dedup), the Global_Read
// starvation watchdog, Packet hardening against truncated frames, the
// engine watchdog-timer API, and the --loss-rate/--fault-seed/
// --read-timeout-ms driver flags.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "rt/packet.hpp"
#include "rt/transport.hpp"
#include "rt/vm.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/flags.hpp"

namespace {

using nscc::dsm::PropagationPolicy;
using nscc::dsm::SharedSpace;
using nscc::fault::FaultInjector;
using nscc::fault::FaultPlan;
using nscc::fault::PartitionWindow;
using nscc::fault::Window;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::SeqTracker;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::kMillisecond;
using nscc::sim::kSecond;
using nscc::sim::Time;

/// Zero software/bus overheads so virtual timings in tests are easy to
/// reason about (same idiom as test_dsm).
MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSamePlanSameVerdicts) {
  FaultPlan plan;
  plan.seed = 42;
  plan.link.loss_prob = 0.1;
  plan.link.dup_prob = 0.05;
  plan.link.delay_prob = 0.2;
  plan.link.delay_max = 3 * kMillisecond;

  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 2000; ++i) {
    const Time now = i * 100;
    const auto va = a.judge(i % 4, (i + 1) % 4, now, now + 50);
    const auto vb = b.judge(i % 4, (i + 1) % 4, now, now + 50);
    ASSERT_EQ(va.drop, vb.drop) << "frame " << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << "frame " << i;
    ASSERT_EQ(va.extra_delay, vb.extra_delay) << "frame " << i;
    ASSERT_EQ(va.duplicate_delay, vb.duplicate_delay) << "frame " << i;
  }
  EXPECT_EQ(a.stats().frames_lost, b.stats().frames_lost);
  EXPECT_EQ(a.stats().frames_duplicated, b.stats().frames_duplicated);
  EXPECT_EQ(a.stats().frames_delayed, b.stats().frames_delayed);
}

TEST(FaultInjector, LossRateRoughlyHonoured) {
  FaultPlan plan;
  plan.link.loss_prob = 0.1;
  FaultInjector inj(plan);
  constexpr int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) (void)inj.judge(0, 1, i, i + 1);
  EXPECT_EQ(inj.stats().frames_judged, kFrames);
  // 10% +- a generous sampling tolerance.
  EXPECT_GT(inj.stats().frames_lost, kFrames / 10 / 2);
  EXPECT_LT(inj.stats().frames_lost, kFrames / 10 * 2);
  EXPECT_EQ(inj.stats().frames_duplicated, 0u);
  EXPECT_EQ(inj.stats().frames_delayed, 0u);
}

TEST(FaultInjector, OutageDropsEveryFrameInWindow) {
  FaultPlan plan;
  plan.outages.push_back(Window{100, 200});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 1, 150, 160).drop);
  EXPECT_TRUE(inj.judge(0, 1, 100, 110).drop);   // Start is inclusive.
  EXPECT_FALSE(inj.judge(0, 1, 200, 210).drop);  // End is exclusive.
  EXPECT_FALSE(inj.judge(0, 1, 50, 60).drop);
  EXPECT_EQ(inj.stats().outage_drops, 2u);
  EXPECT_EQ(inj.stats().frames_lost, 2u);
}

TEST(FaultInjector, CrashedNodeLosesBothDirections) {
  FaultPlan plan;
  plan.nodes[2].crashes.push_back(Window{0, 1000});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 2, 10, 20).drop);   // To the crashed node.
  EXPECT_TRUE(inj.judge(2, 0, 10, 20).drop);   // From it.
  EXPECT_FALSE(inj.judge(0, 1, 10, 20).drop);  // Bystanders unaffected.
  EXPECT_FALSE(inj.judge(0, 2, 1000, 1010).drop);  // After restart.
  EXPECT_EQ(inj.stats().crash_drops, 2u);
}

TEST(FaultInjector, PauseHoldsDeliveryUntilWindowEnds) {
  FaultPlan plan;
  plan.nodes[1].pauses.push_back(Window{0, 500});
  FaultInjector inj(plan);
  const auto v = inj.judge(0, 1, 10, 20);
  EXPECT_FALSE(v.drop);
  EXPECT_EQ(v.extra_delay, 480);  // Arrival 20 held until 500.
  const auto after = inj.judge(0, 1, 600, 610);
  EXPECT_EQ(after.extra_delay, 0);
}

// ---------------------------------------------------------------------------
// SeqTracker
// ---------------------------------------------------------------------------

TEST(SeqTracker, DropsReplaysAcceptsOutOfOrder) {
  SeqTracker t;
  EXPECT_TRUE(t.fresh(1));
  EXPECT_FALSE(t.fresh(1));  // Straight replay.
  EXPECT_TRUE(t.fresh(3));   // Leapfrogged a delayed frame.
  EXPECT_FALSE(t.fresh(3));
  EXPECT_TRUE(t.fresh(2));   // The delayed frame finally lands.
  EXPECT_FALSE(t.fresh(2));
  EXPECT_FALSE(t.fresh(1));  // Old replays stay dead after the merge.
  EXPECT_TRUE(t.fresh(4));
}

// ---------------------------------------------------------------------------
// Reliable transport over a lossy wire
// ---------------------------------------------------------------------------

TEST(Transport, HeavyLossDeliversEveryMessageExactlyOnce) {
  MachineConfig cfg = fast_config(2);
  cfg.fault.seed = 7;
  cfg.fault.link.loss_prob = 0.3;
  cfg.transport.enabled = true;
  cfg.transport.ack_timeout = 5 * kMillisecond;
  VirtualMachine vm(cfg);

  constexpr int kMessages = 50;
  std::multiset<int> got;
  vm.add_task("sender", [](Task& t) {
    for (int i = 0; i < kMessages; ++i) {
      Packet p;
      p.pack_i32(i);
      t.send(1, 7, std::move(p));
      t.compute(kMillisecond);
    }
  });
  vm.add_task("receiver", [&](Task& t) {
    for (int i = 0; i < kMessages; ++i) {
      got.insert(t.recv(7).payload.unpack_i32());
    }
  });
  vm.run();

  ASSERT_FALSE(vm.deadlocked());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got.count(i), 1u) << "message " << i;
  }
  EXPECT_GT(vm.transport_stats().retransmissions, 0u);
  EXPECT_EQ(vm.transport_stats().retx_abandoned, 0u);
  EXPECT_GT(vm.transport_stats().acks_sent, 0u);
}

TEST(Transport, DuplicatedFramesAreDeduplicated) {
  MachineConfig cfg = fast_config(2);
  cfg.fault.seed = 3;
  cfg.fault.link.dup_prob = 1.0;  // Every frame delivered twice.
  cfg.fault.link.delay_max = kMillisecond;
  cfg.transport.enabled = true;
  VirtualMachine vm(cfg);

  constexpr int kMessages = 10;
  int received = 0;
  vm.add_task("sender", [](Task& t) {
    for (int i = 0; i < kMessages; ++i) {
      Packet p;
      p.pack_i32(i);
      t.send(1, 7, std::move(p));
      t.compute(5 * kMillisecond);
    }
  });
  vm.add_task("receiver", [&](Task& t) {
    for (int i = 0; i < kMessages; ++i) {
      (void)t.recv(7);
      ++received;
    }
  });
  vm.run();

  ASSERT_FALSE(vm.deadlocked());
  EXPECT_EQ(received, kMessages);
  EXPECT_GE(vm.transport_stats().dup_frames_dropped,
            static_cast<std::uint64_t>(kMessages) / 2);
}

TEST(Transport, BarriersSurviveLoss) {
  MachineConfig cfg = fast_config(4);
  cfg.fault.seed = 11;
  cfg.fault.link.loss_prob = 0.2;
  cfg.transport.enabled = true;
  cfg.transport.ack_timeout = 5 * kMillisecond;
  VirtualMachine vm(cfg);

  constexpr int kRounds = 20;
  for (int id = 0; id < 4; ++id) {
    vm.add_task("t" + std::to_string(id), [](Task& t) {
      for (int r = 0; r < kRounds; ++r) {
        t.compute(kMillisecond);
        t.barrier();
      }
    });
  }
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
}

// ---------------------------------------------------------------------------
// Global_Read starvation watchdog
// ---------------------------------------------------------------------------

// The regression the watchdog exists for: the writer's single update frame
// is destroyed on the wire (a scheduled outage covers its transmission), the
// writer never writes that location again, and the reader sits in the
// paper's kWait Global_Read.  Without a read_timeout this deadlocks (see
// test_dsm's GlobalReadUnsatisfiableDeadlocksDetectably); with one, the
// reader escalates to an explicit demand and the writer's request handler
// serves the copy back over the reliable channel.
TEST(Dsm, WatchdogRecoversSingleDroppedUpdate) {
  MachineConfig cfg = fast_config(2);
  cfg.fault.seed = 1;
  cfg.fault.outages.push_back(Window{0, 2 * kMillisecond});
  cfg.transport.enabled = true;
  VirtualMachine vm(cfg);

  std::uint64_t escalations = 0;
  std::uint64_t requests = 0;
  double got = 0.0;
  std::int64_t got_iter = -1;

  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    Packet p;
    p.pack_double(6.25);
    space.write(1, 5, std::move(p));  // Transmitted inside the outage: lost.
    // Stay alive so the escalated demand finds the request handler; the
    // handler runs in engine context even while this task is computing.
    t.compute(kSecond);
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy policy;
    policy.read_timeout = 20 * kMillisecond;
    SharedSpace space(t, policy);
    space.declare_read(1, 0);
    const auto& v = space.global_read(1, 5, 0);
    got = [&] {
      Packet copy = v.data;
      return copy.unpack_double();
    }();
    got_iter = v.iteration;
    escalations = space.stats().read_escalations;
    requests = space.stats().requests_sent;
  });
  vm.run();

  ASSERT_FALSE(vm.deadlocked());
  EXPECT_EQ(got, 6.25);
  EXPECT_EQ(got_iter, 5);
  EXPECT_GE(escalations, 1u);
  EXPECT_GE(requests, 1u);
  EXPECT_GE(vm.fault_injector()->stats().outage_drops, 1u);
}

// Escalation backs off but keeps demanding: even when the demand replies
// themselves ride a very lossy wire, the reliable request channel plus
// repeated escalation terminate the read.
TEST(Dsm, WatchdogSurvivesLossyDemandPath) {
  MachineConfig cfg = fast_config(2);
  cfg.fault.seed = 13;
  cfg.fault.link.loss_prob = 0.4;
  cfg.transport.enabled = true;
  cfg.transport.ack_timeout = 5 * kMillisecond;
  VirtualMachine vm(cfg);

  bool satisfied = false;
  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    for (int i = 0; i <= 30; ++i) {
      Packet p;
      p.pack_double(i);
      space.write(1, i, std::move(p));
      t.compute(10 * kMillisecond);
    }
  });
  vm.add_task("reader", [&](Task& t) {
    PropagationPolicy policy;
    policy.read_timeout = 15 * kMillisecond;
    SharedSpace space(t, policy);
    space.declare_read(1, 0);
    for (int i = 0; i <= 30; i += 5) {
      const auto& v = space.global_read(1, i, 2);
      ASSERT_TRUE(v.valid);
      ASSERT_GE(v.iteration, i - 2);
    }
    satisfied = true;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_TRUE(satisfied);
}

// ---------------------------------------------------------------------------
// Packet hardening (truncated / corrupt frames)
// ---------------------------------------------------------------------------

TEST(Packet, TruncatedFramesThrowInsteadOfOverrunning) {
  Packet p;
  p.pack_i32(3);
  p.pack_u64(77);
  p.pack_double_vec({1.0, 2.0, 3.0});
  const std::size_t full = p.byte_size();

  // The intact frame round-trips.
  {
    Packet copy = p.truncated(full);
    EXPECT_EQ(copy.unpack_i32(), 3);
    EXPECT_EQ(copy.unpack_u64(), 77u);
    EXPECT_EQ(copy.unpack_double_vec().size(), 3u);
  }
  // Every proper prefix fails loudly somewhere in the unpack sequence.
  for (std::size_t n = 0; n < full; ++n) {
    Packet cut = p.truncated(n);
    EXPECT_THROW(
        {
          (void)cut.unpack_i32();
          (void)cut.unpack_u64();
          (void)cut.unpack_double_vec();
        },
        std::out_of_range)
        << "prefix length " << n;
  }
}

TEST(Packet, CorruptVectorLengthThrows) {
  // A frame whose vector-length header promises far more elements than the
  // buffer holds (and would overflow a naive count * sizeof multiply).
  Packet p;
  p.pack_u64(~0ULL);
  EXPECT_THROW((void)p.unpack_double_vec(), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Engine watchdog-timer API
// ---------------------------------------------------------------------------

TEST(EngineWatchdog, FiresAtItsDeadline) {
  nscc::sim::Engine engine;
  Time fired_at = -1;
  engine.set_watchdog(100, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EngineWatchdog, CancelSuppressesTheCallback) {
  nscc::sim::Engine engine;
  bool fired = false;
  const auto id = engine.set_watchdog(100, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel_watchdog(id));
  EXPECT_FALSE(engine.cancel_watchdog(id));  // Already gone.
  const Time end = engine.run();
  EXPECT_FALSE(fired);
  // The canceled event still drained through the queue at its deadline.
  EXPECT_EQ(end, 100);
}

TEST(Engine, BlockedReportNamesStuckTasks) {
  MachineConfig cfg = fast_config(2);
  VirtualMachine vm(cfg);
  vm.add_task("finisher", [](Task& t) { t.compute(kMillisecond); });
  vm.add_task("stuck-reader", [](Task& t) { (void)t.recv(99); });
  vm.run();
  ASSERT_TRUE(vm.deadlocked());
  const std::string report = vm.blocked_report();
  EXPECT_NE(report.find("stuck-reader"), std::string::npos) << report;
  EXPECT_EQ(report.find("finisher"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Determinism: same (seed, plan) => byte-identical metrics output
// ---------------------------------------------------------------------------

std::string run_lossy_workload(nscc::rt::Network network,
                               const std::string& metrics_path) {
  MachineConfig cfg = fast_config(2);
  cfg.network = network;
  cfg.fault.seed = 0xFA17;
  cfg.fault.link.loss_prob = 0.05;
  cfg.fault.link.dup_prob = 0.02;
  cfg.fault.link.delay_prob = 0.1;
  cfg.fault.link.delay_max = kMillisecond;
  cfg.transport.enabled = true;
  cfg.transport.ack_timeout = 5 * kMillisecond;
  cfg.obs.enable = true;
  cfg.obs.metrics_path = metrics_path;
  cfg.obs.sample_interval = 10 * kMillisecond;
  VirtualMachine vm(cfg);

  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    for (int i = 0; i < 40; ++i) {
      Packet p;
      p.pack_double(i);
      space.write(1, i, std::move(p));
      t.compute(5 * kMillisecond);
    }
  });
  vm.add_task("reader", [](Task& t) {
    PropagationPolicy policy;
    policy.read_timeout = 15 * kMillisecond;
    SharedSpace space(t, policy);
    space.declare_read(1, 0);
    for (int i = 0; i < 40; i += 4) {
      (void)space.global_read(1, i, 3);
      t.compute(2 * kMillisecond);
    }
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());

  std::ifstream in(metrics_path, std::ios::binary);
  EXPECT_TRUE(in.good()) << metrics_path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(Determinism, LossyRunMetricsAreByteIdenticalEthernet) {
  const std::string dir = ::testing::TempDir();
  const std::string a =
      run_lossy_workload(nscc::rt::Network::kEthernet, dir + "fault_eth_a.json");
  const std::string b =
      run_lossy_workload(nscc::rt::Network::kEthernet, dir + "fault_eth_b.json");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, LossyRunMetricsAreByteIdenticalSp2) {
  const std::string dir = ::testing::TempDir();
  const std::string a =
      run_lossy_workload(nscc::rt::Network::kSp2Switch, dir + "fault_sp2_a.json");
  const std::string b =
      run_lossy_workload(nscc::rt::Network::kSp2Switch, dir + "fault_sp2_b.json");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Driver flags
// ---------------------------------------------------------------------------

TEST(FaultFlags, RoundTripThroughPlan) {
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog", "--loss-rate=0.25", "--fault-seed=99",
                        "--read-timeout-ms=7.5"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));

  const FaultPlan plan = nscc::fault::plan_from_flags(flags);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_DOUBLE_EQ(plan.link.loss_prob, 0.25);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(nscc::fault::read_timeout_from_flags(flags),
            static_cast<Time>(7.5 * static_cast<double>(kMillisecond)));
}

TEST(FaultFlags, DefaultsAreAPerfectNetwork) {
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_TRUE(nscc::fault::plan_from_flags(flags).empty());
  EXPECT_EQ(nscc::fault::read_timeout_from_flags(flags), 0);
}

// ---------------------------------------------------------------------------
// Fault-window composition
// ---------------------------------------------------------------------------

TEST(FaultInjector, CrashInsideOutageCountsOnceInOutageBucket) {
  // A crash window fully inside an outage: a frame involving the crashed
  // node during the overlap is dropped exactly once, attributed to the
  // outage (the first schedule checked), never double-counted.
  FaultPlan plan;
  plan.outages.push_back(Window{100, 300});
  plan.nodes[1].crashes.push_back(Window{150, 250});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 1, 200, 210).drop);  // Both windows open.
  EXPECT_EQ(inj.stats().frames_lost, 1u);
  EXPECT_EQ(inj.stats().outage_drops, 1u);
  EXPECT_EQ(inj.stats().crash_drops, 0u);
  // Outside the outage the crash window is gone too (it ended at 250),
  // so nothing drops.
  EXPECT_FALSE(inj.judge(0, 1, 350, 360).drop);
  EXPECT_EQ(inj.stats().frames_lost, 1u);
}

TEST(FaultInjector, AdjacentWindowsShareTheBoundaryTickExactlyOnce) {
  // Two half-open windows [100, 200) and [200, 300): the boundary tick 200
  // belongs to the second window only, so a frame there drops once.
  FaultPlan plan;
  PartitionWindow first;
  first.window = Window{100, 200};
  first.groups = {{0, 1}, {2, 3}};
  PartitionWindow second = first;
  second.window = Window{200, 300};
  plan.partitions.push_back(first);
  plan.partitions.push_back(second);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 2, 199, 205).drop);
  EXPECT_TRUE(inj.judge(0, 2, 200, 205).drop);   // Second window's start.
  EXPECT_FALSE(inj.judge(0, 2, 300, 305).drop);  // End is exclusive.
  EXPECT_FALSE(inj.judge(0, 2, 99, 105).drop);
  EXPECT_EQ(inj.stats().partition_drops, 2u);
  EXPECT_EQ(inj.stats().frames_lost, 2u);
}

TEST(FaultInjector, PerLinkOverrideBeatsDefaultLinkFaults) {
  // per_link fully replaces FaultPlan::link for that (src, dst) pair: a
  // clean override rescues one link from an otherwise always-lossy plan,
  // including the -1 anonymous background-load source.
  FaultPlan plan;
  plan.link.loss_prob = 1.0;
  plan.per_link[{0, 1}] = nscc::fault::LinkFaults{};   // Clean override.
  plan.per_link[{-1, 2}] = nscc::fault::LinkFaults{};  // Background source.
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.judge(0, 1, 10, 20).drop);   // Overridden: clean.
  EXPECT_TRUE(inj.judge(1, 0, 10, 20).drop);    // Reverse not overridden.
  EXPECT_FALSE(inj.judge(-1, 2, 10, 20).drop);  // Background override.
  EXPECT_TRUE(inj.judge(-1, 3, 10, 20).drop);   // Background default.
  EXPECT_TRUE(inj.judge(2, 3, 10, 20).drop);    // Plain default.
}

// ---------------------------------------------------------------------------
// Partition / blackhole judgement
// ---------------------------------------------------------------------------

TEST(FaultInjector, PartitionCutsCrossGroupFramesOnly) {
  FaultPlan plan;
  PartitionWindow split;
  split.window = Window{100, 200};
  split.groups = {{0, 1}, {2, 3}};
  plan.partitions.push_back(split);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 2, 150, 160).drop);   // Cross-group.
  EXPECT_TRUE(inj.judge(3, 1, 150, 160).drop);   // Cross, either direction.
  EXPECT_FALSE(inj.judge(0, 1, 150, 160).drop);  // Intra-group.
  EXPECT_FALSE(inj.judge(2, 3, 150, 160).drop);  // Intra-group.
  EXPECT_FALSE(inj.judge(0, 4, 150, 160).drop);  // Unlisted node untouched.
  EXPECT_FALSE(inj.judge(-1, 2, 150, 160).drop); // Background untouched.
  EXPECT_FALSE(inj.judge(0, 2, 50, 60).drop);    // Before the window.
  EXPECT_FALSE(inj.judge(0, 2, 200, 210).drop);  // End is exclusive.
  EXPECT_EQ(inj.stats().partition_drops, 2u);
  EXPECT_EQ(inj.stats().frames_lost, 2u);
}

TEST(FaultInjector, BlackholeIsOneWay) {
  FaultPlan plan;
  plan.blackholes.push_back(nscc::fault::BlackholeWindow{0, 1, {100, 200}});
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.judge(0, 1, 150, 160).drop);   // Blackholed direction.
  EXPECT_FALSE(inj.judge(1, 0, 150, 160).drop);  // Reverse still delivers.
  EXPECT_FALSE(inj.judge(0, 1, 250, 260).drop);  // After the window.
  EXPECT_EQ(inj.stats().blackhole_drops, 1u);
}

TEST(FaultPlanReachability, FollowsScheduledCuts) {
  FaultPlan plan;
  PartitionWindow split;
  split.window = Window{100, 200};
  split.groups = {{0, 1}, {2, 3}};
  plan.partitions.push_back(split);
  plan.blackholes.push_back(nscc::fault::BlackholeWindow{0, 1, {300, 400}});
  EXPECT_TRUE(plan.partitionable());
  EXPECT_FALSE(plan.reachable(0, 2, 150));
  EXPECT_TRUE(plan.reachable(0, 1, 150));
  EXPECT_TRUE(plan.reachable(0, 2, 250));
  // A one-way blackhole makes the pair unreachable in both orders:
  // reachability demands both directions deliver.
  EXPECT_FALSE(plan.reachable(0, 1, 350));
  EXPECT_FALSE(plan.reachable(1, 0, 350));
  EXPECT_EQ(plan.partition_release_after(150), 200);
  EXPECT_EQ(plan.partition_release_after(350), 400);
  EXPECT_EQ(plan.partition_release_after(250), 0);
}

// ---------------------------------------------------------------------------
// Partition / blackhole spec parsing
// ---------------------------------------------------------------------------

TEST(PartitionSpec, ParsesWindowAndGroups) {
  const auto p = nscc::fault::parse_partition_spec("0.2:0.6:0,1|2,3");
  EXPECT_EQ(p.window.start,
            static_cast<Time>(0.2 * static_cast<double>(kSecond)));
  EXPECT_EQ(p.window.end,
            static_cast<Time>(0.6 * static_cast<double>(kSecond)));
  ASSERT_EQ(p.groups.size(), 2u);
  EXPECT_EQ(p.groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(p.groups[1], (std::vector<int>{2, 3}));
}

TEST(PartitionSpec, RejectsMalformedSpecs) {
  using nscc::fault::parse_partition_spec;
  EXPECT_THROW(parse_partition_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_partition_spec("0.2:0.6"), std::invalid_argument);
  EXPECT_THROW(parse_partition_spec("0.6:0.2:0,1|2,3"),
               std::invalid_argument);  // start >= end
  EXPECT_THROW(parse_partition_spec("0.2:0.6:0,1,2,3"),
               std::invalid_argument);  // Single group: nothing to cut.
  EXPECT_THROW(parse_partition_spec("0.2:0.6:0,1|1,2"),
               std::invalid_argument);  // Node in two groups.
  EXPECT_THROW(parse_partition_spec("0.2:0.6:0,x|2,3"),
               std::invalid_argument);
  EXPECT_THROW(parse_partition_spec("a:0.6:0,1|2,3"), std::invalid_argument);
}

TEST(BlackholeSpec, ParsesAndRejects) {
  const auto h = nscc::fault::parse_blackhole_spec("0.1:0.5:2:0");
  EXPECT_EQ(h.src, 2);
  EXPECT_EQ(h.dst, 0);
  EXPECT_EQ(h.window.start,
            static_cast<Time>(0.1 * static_cast<double>(kSecond)));
  using nscc::fault::parse_blackhole_spec;
  EXPECT_THROW(parse_blackhole_spec("0.1:0.5:2"), std::invalid_argument);
  EXPECT_THROW(parse_blackhole_spec("0.1:0.5:1:1"),
               std::invalid_argument);  // src == dst
  EXPECT_THROW(parse_blackhole_spec("0.5:0.1:2:0"),
               std::invalid_argument);  // start >= end
}

TEST(FaultFlags, PartitionAndBlackholeRoundTripThroughPlan) {
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog", "--partition-at=0.2:0.6:0,1|2,3",
                        "--blackhole-at=0.1:0.5:2:0"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv)));
  const FaultPlan plan = nscc::fault::plan_from_flags(flags);
  EXPECT_TRUE(plan.partitionable());
  ASSERT_EQ(plan.partitions.size(), 1u);
  ASSERT_EQ(plan.blackholes.size(), 1u);
  EXPECT_EQ(plan.blackholes[0].src, 2);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultFlags, MalformedPartitionSpecThrowsFromPlan) {
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog", "--partition-at=0.2:0.6:junk"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_THROW(nscc::fault::plan_from_flags(flags), std::invalid_argument);
}

TEST(FaultFlags, EnvironmentOverrides) {
  ::setenv("NSCC_LOSS_RATE", "0.5", 1);
  ::setenv("NSCC_READ_TIMEOUT_MS", "4", 1);
  nscc::util::Flags flags;
  nscc::fault::add_flags(flags);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  ::unsetenv("NSCC_LOSS_RATE");
  ::unsetenv("NSCC_READ_TIMEOUT_MS");

  const FaultPlan plan = nscc::fault::plan_from_flags(flags);
  EXPECT_DOUBLE_EQ(plan.link.loss_prob, 0.5);
  EXPECT_EQ(nscc::fault::read_timeout_from_flags(flags), 4 * kMillisecond);
}

}  // namespace
