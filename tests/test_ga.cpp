// Tests for the GA library: test-function values at known optima, decoding,
// migrant serialisation, fitness cache exactness, deme evolution invariants,
// the sequential baseline, and island-GA behaviour in all three modes.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ga/chromosome.hpp"
#include "ga/deme.hpp"
#include "ga/fitness_cache.hpp"
#include "ga/functions.hpp"
#include "ga/island.hpp"
#include "ga/sequential.hpp"

namespace {

using nscc::dsm::Mode;
using nscc::ga::Deme;
using nscc::ga::dejong_testbed;
using nscc::ga::FitnessCache;
using nscc::ga::GaParams;
using nscc::ga::Individual;
using nscc::ga::IslandConfig;
using nscc::ga::run_island_ga;
using nscc::ga::run_sequential_ga;
using nscc::ga::SequentialGaConfig;
using nscc::ga::test_function;
using nscc::ga::TestFunction;
using nscc::util::BitVec;
using nscc::util::Xoshiro256;

Xoshiro256 g_rng(123);

double eval_at(const TestFunction& fn, const std::vector<double>& x) {
  return fn.eval(x, g_rng);
}

TEST(Functions, TestbedHasEightFunctionsMatchingTable1) {
  const auto& bed = dejong_testbed();
  ASSERT_EQ(bed.size(), 8u);
  EXPECT_EQ(bed[0].nvars, 3);
  EXPECT_DOUBLE_EQ(bed[0].lo, -5.12);
  EXPECT_EQ(bed[1].nvars, 2);
  EXPECT_DOUBLE_EQ(bed[1].hi, 2.048);
  EXPECT_EQ(bed[2].nvars, 5);
  EXPECT_EQ(bed[3].nvars, 30);
  EXPECT_TRUE(bed[3].noisy);
  EXPECT_EQ(bed[4].nvars, 2);
  EXPECT_DOUBLE_EQ(bed[4].hi, 65.536);
  EXPECT_EQ(bed[5].nvars, 20);
  EXPECT_EQ(bed[6].nvars, 10);
  EXPECT_DOUBLE_EQ(bed[6].hi, 500.0);
  EXPECT_EQ(bed[7].nvars, 10);
  EXPECT_DOUBLE_EQ(bed[7].hi, 600.0);
}

TEST(Functions, SphereMinimumAtOrigin) {
  EXPECT_DOUBLE_EQ(eval_at(test_function(1), {0, 0, 0}), 0.0);
  EXPECT_GT(eval_at(test_function(1), {1, 1, 1}), 0.0);
}

TEST(Functions, RosenbrockVariantMinimum) {
  // The paper's printed form has minima at x1=1, x2=+/-1.
  EXPECT_DOUBLE_EQ(eval_at(test_function(2), {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(eval_at(test_function(2), {1, -1}), 0.0);
  EXPECT_GT(eval_at(test_function(2), {0, 0}), 0.0);
}

TEST(Functions, StepFunctionNormalisedMinimumZero) {
  EXPECT_DOUBLE_EQ(eval_at(test_function(3), {-5.12, -5.12, -5.12, -5.12, -5.12}),
                   0.0);
  EXPECT_DOUBLE_EQ(eval_at(test_function(3), {0, 0, 0, 0, 0}), 30.0);
}

TEST(Functions, QuarticNoiseIsStochasticAroundDeterministicPart) {
  const auto& fn = test_function(4);
  std::vector<double> x(30, 0.0);
  nscc::util::RunningStats s;
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) s.add(fn.eval(x, rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.1);   // Gauss(0,1) noise around 0.
  EXPECT_NEAR(s.stddev(), 1.0, 0.1);
}

TEST(Functions, FoxholesMinimumNearPublishedValue) {
  EXPECT_NEAR(eval_at(test_function(5), {-32, -32}), 0.998004, 1e-4);
  EXPECT_GT(eval_at(test_function(5), {0, 0}), 1.0);
}

TEST(Functions, RastriginMinimumZeroAtOrigin) {
  std::vector<double> x(20, 0.0);
  EXPECT_NEAR(eval_at(test_function(6), x), 0.0, 1e-12);
}

TEST(Functions, SchwefelMinimumNearPublishedValue) {
  std::vector<double> x(10, 420.9687);
  EXPECT_NEAR(eval_at(test_function(7), x), -4189.83, 0.1);
}

TEST(Functions, GriewankMinimumZeroAtOrigin) {
  std::vector<double> x(10, 0.0);
  EXPECT_NEAR(eval_at(test_function(8), x), 0.0, 1e-12);
}

TEST(Functions, LookupRejectsBadIds) {
  EXPECT_THROW(test_function(0), std::out_of_range);
  EXPECT_THROW(test_function(9), std::out_of_range);
}

TEST(Chromosome, DecodeEndpointsAndMidpoint) {
  const auto& fn = test_function(1);  // 3 vars x 10 bits on [-5.12, 5.12].
  BitVec zeros(static_cast<std::size_t>(fn.genome_bits()));
  auto x = nscc::ga::decode(zeros, fn);
  for (double v : x) EXPECT_DOUBLE_EQ(v, -5.12);

  BitVec ones(static_cast<std::size_t>(fn.genome_bits()));
  for (std::size_t i = 0; i < ones.size(); ++i) ones.set(i, true);
  x = nscc::ga::decode(ones, fn);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 5.12);
}

TEST(Chromosome, MigrantPackUnpackRoundTrip) {
  const auto& fn = test_function(6);
  Xoshiro256 rng(17);
  Individual ind;
  ind.genome = BitVec(static_cast<std::size_t>(fn.genome_bits()));
  ind.genome.randomize(rng);
  ind.fitness = 123.5;
  ind.evaluated = true;

  nscc::rt::Packet p;
  nscc::ga::pack_individual(p, ind, fn);
  EXPECT_EQ(p.byte_size(), nscc::ga::migrant_bytes(fn));
  Individual back = nscc::ga::unpack_individual(p, fn);
  EXPECT_EQ(back.genome, ind.genome);
  EXPECT_FLOAT_EQ(static_cast<float>(back.fitness),
                  static_cast<float>(ind.fitness));
}

TEST(FitnessCacheTest, ExactLookupNoFalseHits) {
  FitnessCache cache;
  Xoshiro256 rng(3);
  BitVec a(64);
  a.randomize(rng);
  cache.insert(a, 1.5);
  double f = 0.0;
  EXPECT_TRUE(cache.lookup(a, f));
  EXPECT_DOUBLE_EQ(f, 1.5);
  BitVec b = a;
  b.flip(5);
  EXPECT_FALSE(cache.lookup(b, f));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitnessCacheTest, BoundedCapacity) {
  FitnessCache cache(4);
  Xoshiro256 rng(9);
  for (int i = 0; i < 10; ++i) {
    BitVec v(32);
    v.randomize(rng);
    cache.insert(v, static_cast<double>(i));
  }
  EXPECT_LE(cache.size(), 4u);
}

TEST(DemeTest, InitializeEvaluatesWholePopulation) {
  GaParams params;
  Deme deme(test_function(1), params, Xoshiro256(11));
  const auto count = deme.initialize();
  EXPECT_EQ(count.evaluations, params.pop_size);
  EXPECT_EQ(deme.population().size(), static_cast<std::size_t>(params.pop_size));
  for (const auto& ind : deme.population()) EXPECT_TRUE(ind.evaluated);
}

TEST(DemeTest, StepKeepsPopulationSizeAndImprovesBest) {
  GaParams params;
  Deme deme(test_function(1), params, Xoshiro256(13));
  deme.initialize();
  const double initial_best = deme.best().fitness;
  for (int g = 0; g < 60; ++g) deme.step();
  EXPECT_EQ(deme.population().size(), static_cast<std::size_t>(params.pop_size));
  EXPECT_EQ(deme.generation(), 60);
  EXPECT_LT(deme.best().fitness, initial_best);
}

TEST(DemeTest, ElitismNeverLosesTheBest) {
  GaParams params;
  params.elitist = true;
  Deme deme(test_function(6), params, Xoshiro256(15));
  deme.initialize();
  double best = deme.best().fitness;
  for (int g = 0; g < 40; ++g) {
    deme.step();
    EXPECT_LE(deme.best().fitness, best + 1e-12);
    best = std::min(best, deme.best().fitness);
  }
}

TEST(DemeTest, BestKIsSortedAscending) {
  Deme deme(test_function(1), GaParams{}, Xoshiro256(17));
  deme.initialize();
  const auto top = deme.best_k(10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].fitness, top[i].fitness);
  }
  EXPECT_DOUBLE_EQ(top[0].fitness, deme.best().fitness);
}

TEST(DemeTest, IncorporateReplacesWorstWithBestMigrants) {
  Deme deme(test_function(1), GaParams{}, Xoshiro256(19));
  deme.initialize();
  // Craft unbeatable migrants (fitness below any real value).
  std::vector<Individual> migrants(5);
  for (auto& m : migrants) {
    m.genome = BitVec(static_cast<std::size_t>(test_function(1).genome_bits()));
    m.fitness = -1.0;
    m.evaluated = true;
  }
  const double pre_worst = deme.worst_fitness();
  deme.incorporate(migrants, 5);
  int improved = 0;
  for (const auto& ind : deme.population()) {
    if (ind.fitness == -1.0) ++improved;
  }
  EXPECT_EQ(improved, 5);
  EXPECT_LE(deme.worst_fitness(), pre_worst);
  EXPECT_DOUBLE_EQ(deme.best().fitness, -1.0);
}

TEST(DemeTest, IncorporateCapsReplacementCount) {
  Deme deme(test_function(1), GaParams{}, Xoshiro256(21));
  deme.initialize();
  std::vector<Individual> migrants(200);
  for (auto& m : migrants) {
    m.genome = BitVec(static_cast<std::size_t>(test_function(1).genome_bits()));
    m.fitness = -2.0;
    m.evaluated = true;
  }
  deme.incorporate(migrants, 25);
  int replaced = 0;
  for (const auto& ind : deme.population()) {
    if (ind.fitness == -2.0) ++replaced;
  }
  EXPECT_EQ(replaced, 25);  // Never wiped out by a flood of migrants.
}

TEST(DemeTest, CacheReducesEvaluations) {
  FitnessCache cache;
  GaParams params;
  Deme deme(test_function(1), params, Xoshiro256(23), &cache);
  deme.initialize();
  nscc::ga::EvalCount total;
  for (int g = 0; g < 30; ++g) total += deme.step();
  EXPECT_GT(total.cache_hits, 0);
  EXPECT_LT(total.evaluations, 30 * params.pop_size);
}

TEST(SequentialGa, ConvergesOnSphereAndTracksTime) {
  SequentialGaConfig cfg;
  cfg.function_id = 1;
  cfg.generations = 120;
  cfg.seed = 31;
  const auto result = run_sequential_ga(cfg);
  EXPECT_GT(result.completion_time, 0);
  EXPECT_LT(result.best_fitness, 0.05);
  EXPECT_EQ(result.trajectory.points.size(), 121u);
  EXPECT_GT(result.cache_hits, 0u);
  // Best-so-far is monotone non-increasing.
  for (std::size_t i = 1; i < result.trajectory.points.size(); ++i) {
    EXPECT_LE(result.trajectory.points[i].second,
              result.trajectory.points[i - 1].second);
  }
  // Virtual time is monotone.
  for (std::size_t i = 1; i < result.trajectory.points.size(); ++i) {
    EXPECT_GE(result.trajectory.points[i].first,
              result.trajectory.points[i - 1].first);
  }
}

TEST(SequentialGa, DeterministicForSeed) {
  SequentialGaConfig cfg;
  cfg.function_id = 7;
  cfg.generations = 40;
  cfg.seed = 37;
  const auto a = run_sequential_ga(cfg);
  const auto b = run_sequential_ga(cfg);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(SequentialGa, TimeToReachSemantics) {
  nscc::ga::GaTrajectory traj;
  traj.points = {{0, 10.0}, {5, 4.0}, {9, 1.0}};
  EXPECT_EQ(traj.time_to_reach(10.0), 0);
  EXPECT_EQ(traj.time_to_reach(4.0), 5);
  EXPECT_EQ(traj.time_to_reach(2.0), 9);
  EXPECT_EQ(traj.time_to_reach(0.5), -1);
}

IslandConfig small_island(Mode mode) {
  IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = mode;
  cfg.ndemes = 4;
  cfg.generations = 40;
  cfg.seed = 41;
  return cfg;
}

TEST(IslandGa, SynchronousRunCompletes) {
  const auto r = run_island_ga(small_island(Mode::kSynchronous), {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.completion_time, 0);
  EXPECT_LT(r.best_fitness, 0.5);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_FALSE(r.global_best.points.empty());
  EXPECT_FALSE(r.global_average.points.empty());
}

TEST(IslandGa, AllModesCompleteAndConverge) {
  for (Mode mode :
       {Mode::kSynchronous, Mode::kAsynchronous, Mode::kPartialAsync}) {
    auto cfg = small_island(mode);
    cfg.age = 5;
    const auto r = run_island_ga(cfg, {});
    EXPECT_FALSE(r.deadlocked) << nscc::dsm::mode_name(mode);
    EXPECT_LT(r.best_fitness, 1.0) << nscc::dsm::mode_name(mode);
  }
}

TEST(IslandGa, DeterministicForSeed) {
  auto cfg = small_island(Mode::kPartialAsync);
  cfg.age = 10;
  const auto a = run_island_ga(cfg, {});
  const auto b = run_island_ga(cfg, {});
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

TEST(IslandGa, SynchronousSlowerPerGenerationThanPartial) {
  // Same generation budget: sync pays barriers + age-0 waits; partial
  // overlaps communication.  Partial must finish no later.
  auto sync_cfg = small_island(Mode::kSynchronous);
  auto part_cfg = small_island(Mode::kPartialAsync);
  part_cfg.age = 10;
  const auto sync = run_island_ga(sync_cfg, {});
  const auto part = run_island_ga(part_cfg, {});
  EXPECT_LT(part.completion_time, sync.completion_time);
}

TEST(IslandGa, GlobalReadBlocksOccurUnderSkewForAgeZero) {
  auto cfg = small_island(Mode::kPartialAsync);
  cfg.age = 0;
  cfg.compute.node_speed_spread = 0.3;
  const auto r = run_island_ga(cfg, {});
  EXPECT_GT(r.global_read_blocks, 0u);
  EXPECT_GT(r.global_read_block_time, 0);
}

TEST(IslandGa, LargerAgeBlocksLess) {
  auto cfg = small_island(Mode::kPartialAsync);
  cfg.compute.node_speed_spread = 0.3;
  cfg.age = 0;
  const auto tight = run_island_ga(cfg, {});
  cfg.age = 20;
  const auto loose = run_island_ga(cfg, {});
  EXPECT_LT(loose.global_read_block_time, tight.global_read_block_time);
  EXPECT_LE(loose.completion_time, tight.completion_time);
}

TEST(IslandGa, AsyncNeverBlocksOnGlobalRead) {
  const auto r = run_island_ga(small_island(Mode::kAsynchronous), {});
  EXPECT_EQ(r.global_read_blocks, 0u);
}

TEST(IslandGa, PartialAsyncBoundsStaleness) {
  auto cfg = small_island(Mode::kPartialAsync);
  cfg.age = 5;
  cfg.compute.node_speed_spread = 0.4;
  cfg.generations = 60;
  const auto r = run_island_ga(cfg, {});
  // Mean staleness on satisfied reads can never exceed the age bound
  // by construction (values can only be fresher).
  EXPECT_LE(r.mean_staleness, 5.0 + 1e-9);
}

TEST(IslandGa, BackgroundLoadSlowsTheRun) {
  auto cfg = small_island(Mode::kSynchronous);
  const auto unloaded = run_island_ga(cfg, {});
  const auto loaded = run_island_ga(cfg, {}, 5e6);  // 5 Mbps of 10 Mbps.
  EXPECT_FALSE(loaded.deadlocked);
  EXPECT_GT(loaded.completion_time, unloaded.completion_time);
  EXPECT_GT(loaded.bus_utilization, unloaded.bus_utilization);
}

TEST(IslandGa, ScalesTotalPopulationWithDemes) {
  auto cfg = small_island(Mode::kSynchronous);
  cfg.ndemes = 2;
  const auto two = run_island_ga(cfg, {});
  cfg.ndemes = 8;
  cfg.generations = 40;
  const auto eight = run_island_ga(cfg, {});
  // 4x demes, same per-deme size: ~4x total evaluations (cache effects aside).
  EXPECT_GT(eight.evaluations + eight.cache_hits,
            3 * (two.evaluations + two.cache_hits));
}

}  // namespace
