// Tests for the SP2 switch-fabric interconnect: per-port serialisation,
// absence of global-medium contention, latency accounting, and end-to-end
// behaviour through the runtime.
#include <gtest/gtest.h>

#include <vector>

#include "ga/island.hpp"
#include "net/switch_fabric.hpp"
#include "rt/vm.hpp"
#include "sim/engine.hpp"

namespace {

using nscc::net::SwitchConfig;
using nscc::net::SwitchFabric;
using nscc::sim::Engine;
using nscc::sim::Time;
using nscc::sim::kMicrosecond;

SwitchConfig simple_switch() {
  SwitchConfig c;
  c.link_bandwidth_bps = 100e6;  // 12.5 MB/s: 1000 bytes = 80 us.
  c.fabric_latency = 10 * kMicrosecond;
  c.packet_overhead_bytes = 0;
  return c;
}

TEST(SwitchFabric, LinkTimeMatchesBandwidth) {
  Engine eng;
  SwitchFabric fabric(eng, 4, simple_switch());
  EXPECT_EQ(fabric.link_time(1000), 80 * kMicrosecond);
}

TEST(SwitchFabric, DeliveryIsTxPlusLatencyPlusRx) {
  Engine eng;
  SwitchFabric fabric(eng, 2, simple_switch());
  Time delivered = -1;
  fabric.transmit(0, 1, 1000, [&](Time t) { delivered = t; });
  eng.run();
  EXPECT_EQ(delivered, 80 * kMicrosecond + 10 * kMicrosecond + 80 * kMicrosecond);
}

TEST(SwitchFabric, DisjointPairsDoNotContend) {
  // 0->1 and 2->3 simultaneously: both deliver as if alone (full bisection),
  // unlike the shared bus where the second would queue.
  Engine eng;
  SwitchFabric fabric(eng, 4, simple_switch());
  std::vector<Time> deliveries;
  fabric.transmit(0, 1, 1000, [&](Time t) { deliveries.push_back(t); });
  fabric.transmit(2, 3, 1000, [&](Time t) { deliveries.push_back(t); });
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], deliveries[1]);
}

TEST(SwitchFabric, SameSourceSerialisesOnTxPort) {
  Engine eng;
  SwitchFabric fabric(eng, 4, simple_switch());
  std::vector<Time> deliveries;
  fabric.transmit(0, 1, 1000, [&](Time t) { deliveries.push_back(t); });
  fabric.transmit(0, 2, 1000, [&](Time t) { deliveries.push_back(t); });
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // The second message starts its TX only after the first finishes.
  EXPECT_EQ(deliveries[1] - deliveries[0], 80 * kMicrosecond);
}

TEST(SwitchFabric, SameDestinationSerialisesOnRxPort) {
  Engine eng;
  SwitchFabric fabric(eng, 4, simple_switch());
  std::vector<Time> deliveries;
  fabric.transmit(0, 2, 1000, [&](Time t) { deliveries.push_back(t); });
  fabric.transmit(1, 2, 1000, [&](Time t) { deliveries.push_back(t); });
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_GT(deliveries[1], deliveries[0]);
}

TEST(SwitchFabric, RuntimeIntegrationPingPong) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.network = nscc::rt::Network::kSp2Switch;
  nscc::rt::VirtualMachine vm(cfg);
  int got = 0;
  vm.add_task("a", [&](nscc::rt::Task& t) {
    nscc::rt::Packet p;
    p.pack_i32(41);
    t.send(1, 1, std::move(p));
    got = t.recv(2).payload.unpack_i32();
  });
  vm.add_task("b", [](nscc::rt::Task& t) {
    auto m = t.recv(1);
    nscc::rt::Packet p;
    p.pack_i32(m.payload.unpack_i32() + 1);
    t.send(0, 2, std::move(p));
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(got, 42);
  // The Ethernet bus carried nothing.
  EXPECT_EQ(vm.bus().stats().frames_sent, 0u);
  EXPECT_EQ(vm.sp2_switch().stats().messages, 2u);
}

TEST(SwitchFabric, GaScalesFurtherThanEthernetAt16) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = nscc::dsm::Mode::kSynchronous;
  cfg.ndemes = 16;
  cfg.generations = 30;
  cfg.seed = 3;
  const auto ethernet = nscc::ga::run_island_ga(cfg, {});
  nscc::rt::MachineConfig machine;
  machine.network = nscc::rt::Network::kSp2Switch;
  const auto sp2 = nscc::ga::run_island_ga(cfg, machine);
  EXPECT_FALSE(sp2.deadlocked);
  // The switch removes the shared-medium bottleneck: faster sync runs and
  // negligible per-port utilisation where the Ethernet was queueing.
  EXPECT_LT(sp2.completion_time, ethernet.completion_time);
  EXPECT_LT(sp2.bus_utilization, 0.5);
}

}  // namespace
