// Tests for causal flow tracing: the Tracer's flow-event primitives and
// Chrome-JSON export ('s'/'t'/'f' with matching flow ids), track-range
// claiming and name-collision accounting, ring-drop reporting through the
// registry, and the end-to-end DSM instrumentation — a lossy two-task run
// whose exported trace must contain at least one complete
// write -> transit -> read flow whose read-side age agrees with the age the
// DSM reported to the reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "json_checker.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "rt/vm.hpp"
#include "sim/time.hpp"

namespace {

using nscc::obs::Tracer;
using nscc::sim::kMillisecond;
using nscc::test::JsonChecker;

// ---------------------------------------------------------------------------
// Tracer flow primitives.

TEST(TracerFlow, GatedOnBothEnableAndSetFlows) {
  Tracer t(64);
  t.flow_begin(0, "dsm.flow", 10, 1);  // Fully disabled.
  EXPECT_EQ(t.size(), 0u);
  t.enable(true);
  t.flow_begin(0, "dsm.flow", 10, 1);  // Tracing on, flows still off.
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.flows_enabled());
  t.set_flows(true);
  EXPECT_TRUE(t.flows_enabled());
  t.flow_begin(0, "dsm.flow", 10, 1);
  EXPECT_EQ(t.size(), 1u);
  t.enable(false);  // Flows imply tracing: disabling the tracer gates them.
  EXPECT_FALSE(t.flows_enabled());
  t.flow_step(1, "dsm.flow", 20, 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TracerFlow, NewFlowIdsAreUniqueAndNonZero) {
  Tracer t(16);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = t.new_flow();
    EXPECT_NE(id, 0u);  // 0 is the "no flow" sentinel.
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(TracerFlow, ChromeJsonCarriesFlowPhases) {
  Tracer t(64);
  t.enable(true);
  t.set_flows(true);
  const std::uint64_t id = t.new_flow();
  t.flow_begin(0, "dsm.flow", 1000, id, "loc", 7, "iter", 3);
  t.flow_step(1, "dsm.flow", 2000, id, "src", 0);
  t.flow_end(1, "dsm.flow", 3000, id, "age", 2);
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Flow events need a category and a shared id for Perfetto to draw the
  // arrow, and the end must bind to the enclosing slice.
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"age\":2"), std::string::npos);
}

TEST(TracerFlow, NonFlowPhasesCarryNoFlowFields) {
  Tracer t(16);
  t.enable(true);
  t.instant(0, "point", 10);
  t.complete(0, "span", 10, 5);
  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_EQ(json.find("\"bp\":\"e\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Track registration (satellite: dedup + collision detection).

TEST(TracerTracks, SetTrackNameDedupsIdenticalRegistrations) {
  Tracer t(16);
  t.set_track_name(5, "switch.port0");
  t.set_track_name(5, "switch.port0");  // Same name again: harmless no-op.
  EXPECT_EQ(t.track_collisions(), 0u);
}

#ifdef NDEBUG
TEST(TracerTracks, ConflictingNameCountsCollisionAndFirstWins) {
  Tracer t(16);
  t.enable(true);
  t.set_track_name(5, "processor5");
  t.set_track_name(5, "switch.port5");  // Would assert in debug builds.
  EXPECT_EQ(t.track_collisions(), 1u);
  const std::string json = t.to_chrome_json();
  EXPECT_NE(json.find("processor5"), std::string::npos);
  EXPECT_EQ(json.find("switch.port5"), std::string::npos);
}
#endif

TEST(TracerTracks, ClaimTracksReturnsDisjointRanges) {
  Tracer t(16);
  const int a = t.claim_tracks(4, 1000);
  EXPECT_EQ(a, 1000);  // Preferred base honoured when free.
  const int b = t.claim_tracks(4, 1000);  // Second fabric, same preference.
  EXPECT_GE(b, a + 4);                    // Bumped past the claimed range.
  const int c = t.claim_tracks(2, 1000);
  EXPECT_GE(c, b + 4);
  // Ranges must be pairwise disjoint.
  EXPECT_TRUE(a + 4 <= b && b + 4 <= c);
}

TEST(TracerTracks, ClaimTracksAvoidsNamedTracks) {
  Tracer t(16);
  t.set_track_name(1001, "already-here");
  const int base = t.claim_tracks(4, 1000);
  // [base, base+4) may not cover the already-named track 1001.
  EXPECT_TRUE(base > 1001 || base + 4 <= 1001);
}

// ---------------------------------------------------------------------------
// Ring-drop accounting surfaces in the registry (satellite).

TEST(TracerDrops, DroppedEventsPublishedAsCounter) {
  nscc::rt::MachineConfig machine;
  machine.ntasks = 2;
  machine.obs.enable = true;
  machine.obs.trace_capacity = 16;  // Tiny ring: the run must overflow it.
  nscc::rt::VirtualMachine vm(machine);
  vm.add_task("producer", [](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_written(1, {1});
    for (nscc::dsm::Iteration i = 0; i < 24; ++i) {
      t.compute(kMillisecond);
      nscc::rt::Packet p;
      p.pack_double(static_cast<double>(i));
      space.write(1, i, std::move(p));
    }
  });
  vm.add_task("consumer", [](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_read(1, 0);
    for (nscc::dsm::Iteration i = 0; i < 24; ++i) {
      (void)space.global_read(1, i, 3);
      t.compute(kMillisecond);
    }
  });
  vm.run();
  EXPECT_GT(vm.obs().tracer().dropped(), 0u);
  EXPECT_EQ(vm.obs().registry().counter_value("trace.dropped_events"),
            vm.obs().tracer().dropped());
}

// ---------------------------------------------------------------------------
// End-to-end: flows across a lossy wire, cross-checked against the ages the
// DSM actually served.

struct FlowRun {
  std::unique_ptr<nscc::rt::VirtualMachine> vm;
  std::vector<std::int64_t> served_ages;  ///< Per read: curr - v.iteration.
  nscc::sim::Time completion = 0;
};

/// Producer writes `iters` iterations of one location over a lossy link
/// (reliable transport retransmits); consumer Global_Reads each iteration
/// under `age` and records the age of every value it was served.
FlowRun run_lossy_scenario(bool flows, double loss_prob) {
  constexpr nscc::dsm::LocationId kLoc = 1;
  constexpr nscc::dsm::Iteration kIters = 16;
  constexpr nscc::dsm::Iteration kAge = 3;

  FlowRun run;
  nscc::rt::MachineConfig machine;
  machine.ntasks = 2;
  machine.obs.enable = true;
  machine.obs.flow_trace = flows;
  machine.fault.seed = 7;
  machine.fault.link.loss_prob = loss_prob;
  machine.transport.enabled = loss_prob > 0.0;
  machine.transport.ack_timeout = 5 * kMillisecond;
  run.vm = std::make_unique<nscc::rt::VirtualMachine>(machine);

  run.vm->add_task("producer", [](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_written(kLoc, {1});
    for (nscc::dsm::Iteration i = 0; i < kIters; ++i) {
      t.compute(20 * kMillisecond);
      nscc::rt::Packet p;
      p.pack_double(static_cast<double>(i));
      space.write(kLoc, i, std::move(p));
    }
  });
  run.vm->add_task("consumer", [&run](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_read(kLoc, 0);
    for (nscc::dsm::Iteration i = 0; i < kIters; ++i) {
      const nscc::dsm::SharedSpace::Value& v = space.global_read(kLoc, i, kAge);
      run.served_ages.push_back(static_cast<std::int64_t>(i - v.iteration));
      t.compute(2 * kMillisecond);
    }
  });
  run.completion = run.vm->run();
  return run;
}

TEST(FlowEndToEnd, LossyRunHasCompleteFlowsWithDsmConsistentAges) {
  FlowRun run = run_lossy_scenario(/*flows=*/true, /*loss_prob=*/0.2);
  ASSERT_FALSE(run.vm->deadlocked());
  ASSERT_EQ(run.served_ages.size(), 16u);

  // Group flow events by id.
  struct Flow {
    bool start = false, step = false;
    std::vector<const Tracer::Event*> ends;
    int start_tid = -1;
  };
  std::map<std::uint64_t, Flow> flows;
  for (const Tracer::Event& e : run.vm->obs().tracer().events()) {
    if (e.phase != 's' && e.phase != 't' && e.phase != 'f') continue;
    EXPECT_NE(e.flow, 0u);
    Flow& f = flows[e.flow];
    if (e.phase == 's') {
      f.start = true;
      f.start_tid = e.tid;
    } else if (e.phase == 't') {
      f.step = true;
    } else {
      f.ends.push_back(&e);
      EXPECT_EQ(e.tid, 1) << "flow must terminate on the consumer's track";
    }
  }
  ASSERT_FALSE(flows.empty());

  // The acceptance bar: at least one *complete* write -> transit -> read
  // flow, and every flow-end age must be an age the DSM actually served.
  const std::multiset<std::int64_t> served(run.served_ages.begin(),
                                           run.served_ages.end());
  int complete = 0;
  for (const auto& [id, f] : flows) {
    ASSERT_LE(f.ends.size(), 1u) << "each flow ends at exactly one read";
    if (f.start) {
      EXPECT_EQ(f.start_tid, 0) << "writes happen on task 0";
    }
    if (f.start && f.step && !f.ends.empty()) ++complete;
    for (const Tracer::Event* e : f.ends) {
      ASSERT_STREQ(e->a0_name, "age");
      EXPECT_TRUE(served.count(e->a0) > 0)
          << "flow " << id << " reported age " << e->a0
          << " which the DSM never served";
      EXPECT_GE(e->a0, 0);
      EXPECT_LE(e->a0, 3);  // Bounded staleness caps every served age.
    }
  }
  EXPECT_GE(complete, 1);

  // The exported JSON must stay loadable with flows present.
  const std::string json = run.vm->obs().tracer().to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(FlowEndToEnd, FlowsOffEmitsNoFlowEvents) {
  FlowRun run = run_lossy_scenario(/*flows=*/false, /*loss_prob=*/0.2);
  ASSERT_FALSE(run.vm->deadlocked());
  for (const Tracer::Event& e : run.vm->obs().tracer().events()) {
    EXPECT_NE(e.phase, 's');
    EXPECT_NE(e.phase, 't');
    EXPECT_NE(e.phase, 'f');
    EXPECT_EQ(e.flow, 0u);
  }
  const std::string json = run.vm->obs().tracer().to_chrome_json();
  EXPECT_EQ(json.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(FlowEndToEnd, FlowTracingDoesNotPerturbTheSimulation) {
  FlowRun off = run_lossy_scenario(/*flows=*/false, /*loss_prob=*/0.2);
  FlowRun on = run_lossy_scenario(/*flows=*/true, /*loss_prob=*/0.2);
  // Virtual results must be identical to the nanosecond and to the value:
  // flow stamping rides existing messages and never schedules anything.
  EXPECT_EQ(off.completion, on.completion);
  EXPECT_EQ(off.served_ages, on.served_ages);
  const auto& roff = off.vm->obs().registry();
  const auto& ron = on.vm->obs().registry();
  for (const char* key : {"dsm.writes", "dsm.updates_sent"}) {
    EXPECT_EQ(roff.counter_value(key, 0), ron.counter_value(key, 0)) << key;
  }
  for (const char* key : {"dsm.updates_applied", "dsm.global_reads"}) {
    EXPECT_EQ(roff.counter_value(key, 1), ron.counter_value(key, 1)) << key;
  }
  EXPECT_EQ(roff.counter_value("sim.events_executed"),
            ron.counter_value("sim.events_executed"));
}

// ---------------------------------------------------------------------------
// Per-read outcome breakdown counters (tentpole: latency/age breakdown).

TEST(FlowEndToEnd, ReadOutcomeCountersAccountEveryRead) {
  FlowRun run = run_lossy_scenario(/*flows=*/true, /*loss_prob=*/0.0);
  const auto& reg = run.vm->obs().registry();
  const std::uint64_t reads = reg.counter_value("dsm.global_reads", 1);
  ASSERT_EQ(reads, 16u);
  const std::uint64_t blocked = reg.counter_value("dsm.read.blocked");
  const std::uint64_t queued = reg.counter_value("dsm.read.queued");
  // The fast consumer outruns the slow producer, so some reads block; a
  // blocked read is never also counted as served-from-queue.
  EXPECT_GT(blocked, 0u);
  EXPECT_LE(blocked + queued, reads);
  EXPECT_EQ(reg.counter_value("dsm.read.degraded"), 0u);
  EXPECT_EQ(reg.counter_value("dsm.read.escalated"), 0u);
  const auto* block_ns = reg.find_histogram("dsm.read.block_ns");
  ASSERT_NE(block_ns, nullptr);
  EXPECT_EQ(block_ns->count(), blocked);
  EXPECT_GT(block_ns->max(), 0.0);
}

}  // namespace
