// Tests for the extensions grounded in the paper's own text: the requesting
// Global_Read implementation (Section 2), the dynamic age controller
// (Section 6 future work), and their integration into the island GA.
#include <gtest/gtest.h>

#include "dsm/adaptive_age.hpp"
#include "dsm/shared_space.hpp"
#include "ga/island.hpp"
#include "rt/vm.hpp"

namespace {

using nscc::dsm::AdaptiveAgeController;
using nscc::dsm::GlobalReadImpl;
using nscc::dsm::SharedSpace;
using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;
using nscc::sim::kMillisecond;

MachineConfig fast_config(int ntasks) {
  MachineConfig c;
  c.ntasks = ntasks;
  c.bus.propagation_delay = 0;
  c.bus.frame_overhead_bytes = 0;
  c.send_sw_overhead = 0;
  c.recv_sw_overhead = 0;
  return c;
}

TEST(RequestingGlobalRead, SendsOneRequestPerBlockedRead) {
  VirtualMachine vm(fast_config(2));
  std::uint64_t requests = 0;
  std::uint64_t hints = 0;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    for (int i = 0; i < 5; ++i) {
      t.compute(10 * kMillisecond);
      Packet p;
      p.pack_double(i);
      space.write(1, i, std::move(p));
    }
    hints = space.stats().hints_received;
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace space(t, {.coalesce = false,
                          .read_impl = GlobalReadImpl::kRequest});
    space.declare_read(1, 0);
    for (int i = 0; i < 5; ++i) {
      (void)space.global_read(1, i, 0);  // Always starved: blocks each time.
    }
    requests = space.stats().requests_sent;
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_EQ(requests, 5u);
  // The writer saw the starvation hints (its DSM entry points drain them).
  EXPECT_GT(hints, 0u);
}

TEST(RequestingGlobalRead, DemandRepliesServeSatisfiableRequests) {
  // The writer is AHEAD of what the reader needs, but its update to the
  // reader was lost conceptually: here we force the situation by having
  // the writer produce before the reader declares interest in an old
  // iteration — the demand is immediately satisfiable from the local copy.
  VirtualMachine vm(fast_config(2));
  std::uint64_t replies = 0;
  nscc::sim::Time reader_done = 0;
  vm.add_task("writer", [&](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    Packet p;
    p.pack_double(7.0);
    space.write(1, 10, std::move(p));  // Far ahead already.
    // Idle loop that touches the DSM so demands get served.
    for (int i = 0; i < 20; ++i) {
      t.compute(5 * kMillisecond);
      space.poll();
    }
    replies = space.stats().request_replies;
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace space(t, {.coalesce = false,
                          .read_impl = GlobalReadImpl::kRequest});
    space.declare_read(1, 0);
    t.compute(30 * kMillisecond);
    // The initial write's update arrived long ago; drop it to simulate a
    // reader that joined late: read it, then demand something newer than
    // its (already current) copy cannot be -- i.e. this read is satisfied.
    (void)space.global_read(1, 10, 0);
    reader_done = t.now();
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_GT(reader_done, 0);
  (void)replies;  // Zero here: the original update already satisfied it.
}

TEST(RequestingGlobalRead, WaitImplSendsNoRequests) {
  VirtualMachine vm(fast_config(2));
  std::uint64_t requests = 1;
  vm.add_task("writer", [](Task& t) {
    SharedSpace space(t);
    space.declare_written(1, {1});
    t.compute(5 * kMillisecond);
    Packet p;
    p.pack_double(0.0);
    space.write(1, 0, std::move(p));
    t.compute(kMillisecond);
  });
  vm.add_task("reader", [&](Task& t) {
    SharedSpace space(t);  // Default: kWait.
    space.declare_read(1, 0);
    (void)space.global_read(1, 0, 0);
    requests = space.stats().requests_sent;
  });
  vm.run();
  EXPECT_EQ(requests, 0u);
}

TEST(AdaptiveAge, RaisesUnderSustainedBlocking) {
  AdaptiveAgeController::Config cfg;
  cfg.initial_age = 5;
  cfg.increase_step = 3;
  cfg.max_age = 20;
  AdaptiveAgeController ctl(cfg);
  for (int i = 0; i < 10; ++i) {
    ctl.observe(100 * kMillisecond, 20 * kMillisecond, 1.0);  // 20% blocked.
  }
  EXPECT_EQ(ctl.age(), 20);  // Clamped at max.
  EXPECT_GT(ctl.increases(), 0u);
}

TEST(AdaptiveAge, LowersWhenComfortable) {
  AdaptiveAgeController::Config cfg;
  cfg.initial_age = 20;
  cfg.decrease_step = 2;
  cfg.min_age = 2;
  AdaptiveAgeController ctl(cfg);
  for (int i = 0; i < 20; ++i) {
    ctl.observe(100 * kMillisecond, 0, 1.0);  // Never blocked, fresh data.
  }
  EXPECT_EQ(ctl.age(), 2);  // Clamped at min.
  EXPECT_GT(ctl.decreases(), 0u);
}

TEST(AdaptiveAge, HoldsInTheDeadBand) {
  AdaptiveAgeController::Config cfg;
  cfg.initial_age = 10;
  AdaptiveAgeController ctl(cfg);
  // Slightly blocked (under threshold) and staleness near the budget:
  // neither rule fires.
  for (int i = 0; i < 10; ++i) {
    ctl.observe(100 * kMillisecond, 2 * kMillisecond, 8.0);
  }
  EXPECT_EQ(ctl.age(), 10);
  EXPECT_EQ(ctl.increases() + ctl.decreases(), 0u);
}

TEST(AdaptiveAge, IgnoresDegenerateIntervals) {
  AdaptiveAgeController ctl;
  const auto before = ctl.age();
  ctl.observe(0, 0, 0.0);
  EXPECT_EQ(ctl.age(), before);
}

TEST(AdaptiveAge, IslandGaIntegrationConvergesAndAdapts) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = nscc::dsm::Mode::kPartialAsync;
  cfg.adaptive_age = true;
  cfg.adaptive.initial_age = 25;
  cfg.ndemes = 4;
  cfg.generations = 60;
  cfg.seed = 77;
  cfg.compute.node_speed_spread = 0.3;
  const auto r = nscc::ga::run_island_ga(cfg, {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_LT(r.best_fitness, 0.5);
  EXPECT_GT(r.age_adjustments, 0u);          // It actually adapted...
  EXPECT_LT(r.mean_final_age, 25.0);         // ...down from a lazy start
  EXPECT_GE(r.mean_final_age, 0.0);          // on an unloaded network.
}

TEST(AdaptiveAge, DisabledByDefault) {
  nscc::ga::IslandConfig cfg;
  cfg.function_id = 1;
  cfg.mode = nscc::dsm::Mode::kPartialAsync;
  cfg.age = 7;
  cfg.ndemes = 3;
  cfg.generations = 20;
  cfg.seed = 79;
  const auto r = nscc::ga::run_island_ga(cfg, {});
  EXPECT_EQ(r.age_adjustments, 0u);
  EXPECT_DOUBLE_EQ(r.mean_final_age, 7.0);
}

}  // namespace
