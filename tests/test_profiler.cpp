// Tests for the engine self-profiler: per-event-kind dispatch histograms,
// events/sec and allocation deltas over start_run()/finish_run(), queue-depth
// high-water mark, registry flush, Histogram::merge, and the engine
// integration — every executed event lands in exactly one kind's histogram,
// and a profiled run's *virtual* results are identical to an unprofiled one.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsm/shared_space.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "rt/vm.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace {

using nscc::obs::EventKind;
using nscc::obs::Histogram;
using nscc::obs::Profiler;
using nscc::obs::Registry;
using nscc::sim::kMicrosecond;
using nscc::sim::kMillisecond;

TEST(Profiler, EventKindNamesAreDistinct) {
  const char* names[nscc::obs::kEventKinds] = {
      nscc::obs::event_kind_name(EventKind::kGeneric),
      nscc::obs::event_kind_name(EventKind::kProcess),
      nscc::obs::event_kind_name(EventKind::kWatchdog),
      nscc::obs::event_kind_name(EventKind::kNetwork),
      nscc::obs::event_kind_name(EventKind::kTransport)};
  for (int i = 0; i < nscc::obs::kEventKinds; ++i) {
    ASSERT_NE(names[i], nullptr);
    for (int j = i + 1; j < nscc::obs::kEventKinds; ++j) {
      EXPECT_STRNE(names[i], names[j]);
    }
  }
}

TEST(Profiler, RecordAccountsPerKindExactly) {
  Profiler p;
  p.record(EventKind::kProcess, 100);
  p.record(EventKind::kProcess, 300);
  p.record(EventKind::kNetwork, 50);
  EXPECT_EQ(p.dispatch(EventKind::kProcess).count(), 2u);
  EXPECT_DOUBLE_EQ(p.dispatch(EventKind::kProcess).sum(), 400.0);
  EXPECT_DOUBLE_EQ(p.dispatch(EventKind::kProcess).mean(), 200.0);
  EXPECT_EQ(p.dispatch(EventKind::kNetwork).count(), 1u);
  EXPECT_EQ(p.dispatch(EventKind::kGeneric).count(), 0u);
  EXPECT_EQ(p.dispatch(EventKind::kWatchdog).count(), 0u);
}

TEST(Profiler, RunDeltasCoverEventsWallClockAndAllocations) {
  Profiler p;
  p.start_run(100);
  // Burn a little host time and heap so the deltas are visibly nonzero.
  std::vector<std::unique_ptr<std::string>> keep;
  for (int i = 0; i < 64; ++i) {
    keep.push_back(std::make_unique<std::string>(256, 'x'));
  }
  p.finish_run(250);
  EXPECT_EQ(p.events(), 150u);  // Cumulative counts in, delta out.
  EXPECT_GT(p.wall_seconds(), 0.0);
  EXPECT_GT(p.events_per_sec(), 0.0);
  EXPECT_GE(p.allocations(), 64u);
  EXPECT_GE(p.alloc_bytes(), 64u * 256u);
}

TEST(Profiler, QueueDepthTracksHighWaterMark) {
  Profiler p;
  p.note_queue_depth(3);
  p.note_queue_depth(17);
  p.note_queue_depth(5);
  EXPECT_EQ(p.peak_queue_depth(), 17u);
}

TEST(Profiler, FlushPublishesIntoRegistry) {
  Profiler p;
  p.start_run(0);
  p.finish_run(10);
  p.record(EventKind::kProcess, 200);
  p.note_queue_depth(4);
  Registry reg;
  p.flush(reg);
  EXPECT_EQ(reg.counter_value("profiler.events"), 10u);
  EXPECT_EQ(reg.counter_value("profiler.peak_queue_depth"), 4u);
  EXPECT_GT(reg.gauge_value("profiler.events_per_sec"), 0.0);
  EXPECT_GT(reg.gauge_value("profiler.wall_s"), 0.0);
  const Histogram* h = reg.find_histogram("profiler.dispatch_ns.process");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->max(), 200.0);
}

TEST(Metrics, HistogramMergeCombinesEverything) {
  Histogram a;
  a.observe(1.0);
  a.observe(100.0);
  Histogram b;
  b.observe(0.5);
  b.observe(7.0);
  b.observe(7.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 115.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  // Merging an empty histogram changes nothing.
  a.merge(Histogram{});
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(ProfilerEngine, EveryExecutedEventLandsInExactlyOneKind) {
  Profiler prof;
  nscc::sim::Engine engine;
  engine.set_profiler(&prof);

  constexpr int kDelays = 20;
  engine.spawn("fiber", [](nscc::sim::Process& self) {
    for (int i = 0; i < kDelays; ++i) {
      self.delay(1 * kMicrosecond);
    }
  });
  constexpr int kGenerics = 7;
  for (int i = 0; i < kGenerics; ++i) {
    engine.schedule(i * kMicrosecond, [] {});
  }
  // One watchdog that fires, one that is cancelled (a cancelled timer still
  // occupies — and executes — a queue slot).
  engine.set_watchdog(5 * kMicrosecond, [] {});
  engine.cancel_watchdog(engine.set_watchdog(6 * kMicrosecond, [] {}));

  prof.start_run(engine.events_executed());
  engine.run();
  prof.finish_run(engine.events_executed());

  EXPECT_EQ(prof.dispatch(EventKind::kGeneric).count(),
            static_cast<std::uint64_t>(kGenerics));
  EXPECT_EQ(prof.dispatch(EventKind::kWatchdog).count(), 2u);
  EXPECT_GE(prof.dispatch(EventKind::kProcess).count(),
            static_cast<std::uint64_t>(kDelays));
  std::uint64_t total = 0;
  for (EventKind k : {EventKind::kGeneric, EventKind::kProcess,
                      EventKind::kWatchdog, EventKind::kNetwork,
                      EventKind::kTransport}) {
    total += prof.dispatch(k).count();
  }
  EXPECT_EQ(total, prof.events());  // No event escapes classification.
  EXPECT_GE(prof.peak_queue_depth(), 1u);
}

/// Run the standard two-task producer/consumer DSM scenario, optionally
/// profiled, and report the virtual outcomes.
struct VmOutcome {
  nscc::sim::Time completion = 0;
  std::uint64_t events = 0;
  std::uint64_t applied = 0;
};

VmOutcome run_scenario(bool profile) {
  nscc::rt::MachineConfig machine;
  machine.ntasks = 2;
  machine.obs.enable = true;
  machine.obs.profile = profile;
  nscc::rt::VirtualMachine vm(machine);
  vm.add_task("producer", [](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_written(1, {1});
    for (nscc::dsm::Iteration i = 0; i < 12; ++i) {
      t.compute(20 * kMillisecond);
      nscc::rt::Packet p;
      p.pack_double(static_cast<double>(i));
      space.write(1, i, std::move(p));
    }
  });
  vm.add_task("consumer", [](nscc::rt::Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_read(1, 0);
    for (nscc::dsm::Iteration i = 0; i < 12; ++i) {
      (void)space.global_read(1, i, 3);
      t.compute(2 * kMillisecond);
    }
  });
  VmOutcome out;
  out.completion = vm.run();
  out.events = vm.obs().registry().counter_value("sim.events_executed");
  out.applied = vm.obs().registry().counter_value("dsm.updates_applied", 1);
  if (profile) {
    // The profiler's registry flush must have landed alongside.
    EXPECT_GT(vm.obs().registry().counter_value("profiler.events"), 0u);
    EXPECT_GT(vm.obs().registry().gauge_value("profiler.events_per_sec"), 0.0);
  } else {
    EXPECT_EQ(vm.obs().registry().counter_value("profiler.events"), 0u);
  }
  return out;
}

TEST(ProfilerEngine, ProfiledRunIsVirtuallyIdenticalToUnprofiled) {
  const VmOutcome off = run_scenario(false);
  const VmOutcome on = run_scenario(true);
  EXPECT_EQ(off.completion, on.completion);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.applied, on.applied);
}

}  // namespace
