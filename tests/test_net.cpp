// Tests for the shared-bus Ethernet model and the background load generator:
// transmission timing, FIFO queueing/contention, fragmentation overhead,
// tail drop, utilization accounting, and offered-load accuracy.
#include <gtest/gtest.h>

#include <vector>

#include "net/load_generator.hpp"
#include "net/shared_bus.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace {

using nscc::net::BusConfig;
using nscc::net::LoadGenerator;
using nscc::net::LoadGeneratorConfig;
using nscc::net::SharedBus;
using nscc::sim::Engine;
using nscc::sim::Time;
using nscc::sim::kMicrosecond;
using nscc::sim::kSecond;

BusConfig simple_config() {
  BusConfig c;
  c.bandwidth_bps = 10e6;  // 10 Mbps
  c.propagation_delay = 0;
  c.frame_overhead_bytes = 0;
  c.mtu_payload_bytes = 1460;
  return c;
}

TEST(SharedBus, TransmissionTimeMatchesBandwidth) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  // 1250 bytes = 10000 bits at 10 Mbps -> 1 ms.
  EXPECT_EQ(bus.transmission_time(1250), 1 * nscc::sim::kMillisecond);
}

TEST(SharedBus, OverheadAddsPerFrame) {
  auto cfg = simple_config();
  cfg.frame_overhead_bytes = 100;
  cfg.mtu_payload_bytes = 1000;
  Engine eng;
  SharedBus bus(eng, cfg);
  // 2500 payload bytes -> 3 frames -> 300 overhead bytes.
  EXPECT_EQ(bus.wire_bytes_for(2500), 2800u);
  // Zero-byte message still pays one frame of overhead.
  EXPECT_EQ(bus.wire_bytes_for(0), 100u);
}

TEST(SharedBus, DeliveryIncludesPropagation) {
  auto cfg = simple_config();
  cfg.propagation_delay = 70 * kMicrosecond;
  Engine eng;
  SharedBus bus(eng, cfg);
  Time delivered = -1;
  bus.transmit(1250, [&](Time t) { delivered = t; });
  eng.run();
  EXPECT_EQ(delivered, 1 * nscc::sim::kMillisecond + 70 * kMicrosecond);
}

TEST(SharedBus, FifoContentionSerializesFrames) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  std::vector<Time> deliveries;
  // Three 1250-byte messages handed over simultaneously: 1ms each.
  for (int i = 0; i < 3; ++i) {
    bus.transmit(1250, [&](Time t) { deliveries.push_back(t); });
  }
  eng.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], 1 * nscc::sim::kMillisecond);
  EXPECT_EQ(deliveries[1], 2 * nscc::sim::kMillisecond);
  EXPECT_EQ(deliveries[2], 3 * nscc::sim::kMillisecond);
}

TEST(SharedBus, BacklogReflectsQueuedWork) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  EXPECT_EQ(bus.current_backlog(), 0);
  bus.transmit(1250, [](Time) {});
  bus.transmit(1250, [](Time) {});
  EXPECT_EQ(bus.current_backlog(), 2 * nscc::sim::kMillisecond);
  eng.run();
  EXPECT_EQ(bus.current_backlog(), 0);
}

TEST(SharedBus, TailDropWhenQueueBounded) {
  auto cfg = simple_config();
  cfg.max_pending_frames = 2;
  Engine eng;
  SharedBus bus(eng, cfg);
  int delivered = 0;
  int accepted = 0;
  // First starts immediately (not pending); next two queue; rest drop.
  for (int i = 0; i < 6; ++i) {
    if (bus.transmit(1250, [&](Time) { ++delivered; })) ++accepted;
  }
  eng.run();
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(bus.stats().frames_dropped, 3u);
}

TEST(SharedBus, UtilizationTracksBusyFraction) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  bus.transmit(1250, [](Time) {});  // 1 ms busy
  eng.run();
  eng.schedule(4 * nscc::sim::kMillisecond, [] {});
  eng.run();
  EXPECT_NEAR(bus.utilization(), 0.25, 1e-9);
}

TEST(SharedBus, StatsAccumulate) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  bus.transmit(100, [](Time) {});
  bus.transmit(200, [](Time) {});
  eng.run();
  EXPECT_EQ(bus.stats().frames_sent, 2u);
  EXPECT_EQ(bus.stats().payload_bytes, 300u);
}

TEST(LoadGenerator, AchievesOfferedLoad) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  LoadGeneratorConfig cfg;
  cfg.offered_bps = 2e6;  // 2 Mbps on a 10 Mbps bus
  cfg.frame_payload_bytes = 1024;
  cfg.seed = 99;
  LoadGenerator gen(eng, bus, cfg);
  const Time horizon = 5 * kSecond;
  eng.schedule(horizon, [&] { gen.stop(); });
  eng.run(horizon);
  const double achieved_bps =
      static_cast<double>(bus.stats().payload_bytes) * 8.0 /
      nscc::sim::to_seconds(horizon);
  EXPECT_NEAR(achieved_bps, 2e6, 0.05 * 2e6);
  EXPECT_NEAR(bus.utilization(), 0.2, 0.02);
}

TEST(LoadGenerator, ZeroLoadInjectsNothing) {
  Engine eng;
  SharedBus bus(eng, simple_config());
  LoadGeneratorConfig cfg;
  cfg.offered_bps = 0.0;
  LoadGenerator gen(eng, bus, cfg);
  eng.run();
  EXPECT_EQ(gen.frames_injected(), 0u);
  EXPECT_EQ(bus.stats().frames_sent, 0u);
}

TEST(LoadGenerator, PeriodicModeIsDeterministic) {
  auto run_once = [] {
    Engine eng;
    SharedBus bus(eng, simple_config());
    LoadGeneratorConfig cfg;
    cfg.offered_bps = 1e6;
    cfg.poisson = false;
    LoadGenerator gen(eng, bus, cfg);
    eng.schedule(kSecond, [&] { gen.stop(); });
    eng.run(kSecond);
    return bus.stats().frames_sent;
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());
  EXPECT_GT(a, 100u);
}

}  // namespace
