// Tests for the Bayesian-network substrate: network/CPT mechanics, the
// Table 2 generators' structural statistics, the METIS-substitute
// partitioner, sequential logic sampling against exact hand-computed
// posteriors, and the parallel rollback sampler in all three modes —
// including the key invariant that every mode converges to the same
// validated sample stream.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/generators.hpp"
#include "bayes/logic_sampling.hpp"
#include "bayes/network.hpp"
#include "bayes/parallel_sampling.hpp"
#include "bayes/partitioner.hpp"

namespace {

using nscc::bayes::BeliefNetwork;
using nscc::bayes::Evidence;
using nscc::bayes::InferenceConfig;
using nscc::bayes::ParallelInferenceConfig;
using nscc::bayes::Partition;
using nscc::bayes::PartitionConfig;
using nscc::bayes::Query;
using nscc::dsm::Mode;

/// The paper's Figure 1 network (medical diagnosis example, 5 binary
/// nodes): A -> B, A -> C, (B,C) -> D, C -> E.
BeliefNetwork figure1_network() {
  BeliefNetwork net;
  const auto a = net.add_node("A", 2);
  const auto b = net.add_node("B", 2);
  const auto c = net.add_node("C", 2);
  const auto d = net.add_node("D", 2);
  const auto e = net.add_node("E", 2);
  net.set_parents(b, {a});
  net.set_parents(c, {a});
  net.set_parents(d, {b, c});
  net.set_parents(e, {c});
  // Value 0 = false, value 1 = true; p(A=true) = 0.20.
  net.set_cpt(a, {0.80, 0.20});
  net.set_cpt(b, {0.80, 0.20,    // A=false
                  0.20, 0.80});  // A=true
  net.set_cpt(c, {0.95, 0.05,    // A=false
                  0.20, 0.80});  // A=true
  net.set_cpt(d, {0.95, 0.05,    // B=f, C=f
                  0.40, 0.60,    // B=f, C=t
                  0.30, 0.70,    // B=t, C=f
                  0.20, 0.80});  // B=t, C=t
  net.set_cpt(e, {0.90, 0.10,    // C=false
                  0.30, 0.70});  // C=true
  net.validate();
  return net;
}

/// Exact P(B = true) for figure1_network by enumeration over A.
constexpr double kExactBTrue = 0.80 * 0.20 + 0.20 * 0.80;  // 0.32

TEST(Network, BuildValidateAndStats) {
  const auto net = figure1_network();
  EXPECT_EQ(net.size(), 5);
  EXPECT_EQ(net.edge_count(), 5);
  EXPECT_NEAR(net.edges_per_node(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(net.average_cardinality(), 2.0);
}

TEST(Network, CptRowIndexing) {
  const auto net = figure1_network();
  // D's parents are (B, C); row = B*2 + C.
  EXPECT_EQ(net.cpt_row(3, {0, 0}), 0u);
  EXPECT_EQ(net.cpt_row(3, {0, 1}), 1u);
  EXPECT_EQ(net.cpt_row(3, {1, 0}), 2u);
  EXPECT_EQ(net.cpt_row(3, {1, 1}), 3u);
  EXPECT_DOUBLE_EQ(net.conditional(3, 1, {1, 1}), 0.80);
}

TEST(Network, TopologicalOrderRespectsEdges) {
  const auto net = figure1_network();
  const auto order = net.topological_order();
  std::vector<int> pos(static_cast<std::size_t>(net.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int v = 0; v < net.size(); ++v) {
    for (int p : net.node(v).parents) {
      EXPECT_LT(pos[static_cast<std::size_t>(p)], pos[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Network, CycleDetected) {
  BeliefNetwork net;
  const auto x = net.add_node("x", 2);
  const auto y = net.add_node("y", 2);
  net.set_parents(x, {y});
  net.set_parents(y, {x});
  EXPECT_THROW(net.topological_order(), std::logic_error);
}

TEST(Network, BadCptRejected) {
  BeliefNetwork net;
  const auto x = net.add_node("x", 2);
  EXPECT_THROW(net.set_cpt(x, {0.5}), std::invalid_argument);
  net.set_cpt(x, {0.7, 0.2});  // Does not sum to 1.
  EXPECT_THROW(net.validate(), std::logic_error);
}

TEST(Network, SampleNodeFollowsCpt) {
  const auto net = figure1_network();
  nscc::util::Xoshiro256 rng(3);
  std::vector<int> assignment(5, 0);
  int trues = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) trues += net.sample_node(0, assignment, rng);
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.20, 0.01);
}

TEST(Network, DefaultValuesFollowArgmaxSweep) {
  const auto net = figure1_network();
  const auto defaults = net.default_values();
  // A defaults to false; then B, C, D, E all default to false given false
  // parents (all their false-row argmax is false).
  EXPECT_EQ(defaults, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(Generators, RandomNetworkMatchesRequestedShape) {
  nscc::bayes::RandomNetworkConfig cfg;
  cfg.nodes = 54;
  cfg.edges = 119;
  cfg.seed = 7;
  const auto net = nscc::bayes::make_random_network(cfg);
  EXPECT_EQ(net.size(), 54);
  EXPECT_EQ(net.edge_count(), 119);
  for (int v = 0; v < net.size(); ++v) {
    EXPECT_LE(static_cast<int>(net.node(v).parents.size()), cfg.max_parents);
  }
  net.validate();
}

TEST(Generators, Table2NetworksMatchPublishedStats) {
  const auto a = nscc::bayes::make_network_a();
  EXPECT_EQ(a.size(), 54);
  EXPECT_NEAR(a.edges_per_node(), 2.2, 0.05);
  const auto aa = nscc::bayes::make_network_aa();
  EXPECT_NEAR(aa.edges_per_node(), 2.4, 0.05);
  const auto c = nscc::bayes::make_network_c();
  EXPECT_NEAR(c.edges_per_node(), 2.0, 0.05);
  const auto h = nscc::bayes::make_hailfinder_like();
  EXPECT_EQ(h.size(), 56);
  EXPECT_NEAR(h.edges_per_node(), 1.2, 0.05);
  EXPECT_DOUBLE_EQ(h.average_cardinality(), 4.0);
}

TEST(Generators, HailfinderLikeIsSkewedTowardDefaults) {
  const auto h = nscc::bayes::make_hailfinder_like();
  // Sample marginals; default values should dominate strongly.
  nscc::util::Xoshiro256 rng(5);
  const auto order = h.topological_order();
  const auto defaults = h.default_values();
  std::vector<int> assignment(static_cast<std::size_t>(h.size()), 0);
  int matches = 0;
  int total = 0;
  for (int s = 0; s < 2000; ++s) {
    for (auto id : order) {
      assignment[static_cast<std::size_t>(id)] = h.sample_node(id, assignment, rng);
    }
    for (int v = 0; v < h.size(); ++v) {
      matches += assignment[static_cast<std::size_t>(v)] ==
                 defaults[static_cast<std::size_t>(v)];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(matches) / total, 0.85);
}

TEST(Partitioner, BalancedTwoWaySplit) {
  const auto net = nscc::bayes::make_network_a();
  const auto part = nscc::bayes::partition_network(net, {});
  const auto sizes = part.part_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 54);
  EXPECT_GE(sizes[0], 24);
  EXPECT_GE(sizes[1], 24);
}

TEST(Partitioner, RefinementBeatsNaiveSplit) {
  const auto net = nscc::bayes::make_network_a();
  const auto part = nscc::bayes::partition_network(net, {});
  // Naive split: first half vs second half of node ids.
  Partition naive;
  naive.parts = 2;
  naive.assignment.assign(54, 0);
  for (int v = 27; v < 54; ++v) naive.assignment[static_cast<std::size_t>(v)] = 1;
  EXPECT_LE(nscc::bayes::edge_cut(net, part), nscc::bayes::edge_cut(net, naive));
}

TEST(Partitioner, HailfinderLikeHasTinyCut) {
  const auto net = nscc::bayes::make_hailfinder_like();
  const auto part = nscc::bayes::partition_network(net, {});
  // Table 2 reports 4 for the real Hailfinder; the synthetic module
  // structure must land in the same regime.
  EXPECT_LE(nscc::bayes::edge_cut(net, part), 8);
}

TEST(Partitioner, FourWaySplitCoversAllNodes) {
  const auto net = nscc::bayes::make_network_aa();
  PartitionConfig cfg;
  cfg.parts = 4;
  const auto part = nscc::bayes::partition_network(net, cfg);
  const auto sizes = part.part_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  for (int s : sizes) EXPECT_GE(s, 9);
}

TEST(LogicSampling, MatchesExactPosteriorOnFigure1) {
  const auto net = figure1_network();
  InferenceConfig cfg;
  cfg.seed = 17;
  cfg.precision = 0.01;
  const auto result = nscc::bayes::run_logic_sampling(
      net, {}, {{1, 1}}, cfg);  // P(B = true), no evidence.
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.estimates[0].probability, kExactBTrue, 0.015);
  EXPECT_EQ(result.samples_drawn, result.samples_used);  // No rejection.
}

TEST(LogicSampling, EvidenceConditioningWorks) {
  const auto net = figure1_network();
  InferenceConfig cfg;
  cfg.seed = 19;
  // P(B=true | A=true) = 0.80 exactly.
  const auto result =
      nscc::bayes::run_logic_sampling(net, {{0, 1}}, {{1, 1}}, cfg);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.estimates[0].probability, 0.80, 0.02);
  EXPECT_LT(result.samples_used, result.samples_drawn);  // ~80% rejected.
}

TEST(LogicSampling, StopsWhenPrecisionReached) {
  const auto net = figure1_network();
  InferenceConfig cfg;
  cfg.seed = 23;
  cfg.precision = 0.05;  // Loose: needs ~270 samples at p=0.32.
  const auto loose = nscc::bayes::run_logic_sampling(net, {}, {{1, 1}}, cfg);
  cfg.precision = 0.01;
  const auto tight = nscc::bayes::run_logic_sampling(net, {}, {{1, 1}}, cfg);
  EXPECT_LT(loose.samples_drawn, tight.samples_drawn);
  EXPECT_LT(loose.completion_time, tight.completion_time);
  for (const auto& est : tight.estimates) {
    EXPECT_LE(est.ci.half_width(), 0.01);
  }
}

TEST(LogicSampling, VirtualTimeScalesWithWork) {
  const auto net = figure1_network();
  InferenceConfig cfg;
  cfg.seed = 29;
  cfg.precision = 0.02;
  const auto r = nscc::bayes::run_logic_sampling(net, {}, {{1, 1}}, cfg);
  const auto min_expected = static_cast<nscc::sim::Time>(r.samples_drawn) *
                            net.size() * cfg.cost_per_node_sample;
  EXPECT_GE(r.completion_time, min_expected);
}

TEST(LogicSampling, DefaultQueryAndEvidenceHelpers) {
  const auto net = nscc::bayes::make_network_a();
  const auto queries = nscc::bayes::default_queries(net, 4, 7);
  EXPECT_EQ(queries.size(), 4u);
  const auto evidence = nscc::bayes::default_evidence(net, 3, 7);
  EXPECT_EQ(evidence.size(), 3u);
  for (const auto& q : queries) {
    EXPECT_GE(q.node, 0);
    EXPECT_LT(q.node, net.size());
    EXPECT_LT(q.value, net.node(q.node).cardinality);
  }
}

ParallelInferenceConfig small_parallel(Mode mode, nscc::dsm::Iteration age) {
  ParallelInferenceConfig cfg;
  cfg.mode = mode;
  cfg.age = age;
  cfg.iterations = 2500;
  cfg.seed = 31;
  return cfg;
}

TEST(ParallelSampling, SyncRunsWithoutRollbacks) {
  const auto net = figure1_network();
  const auto r = nscc::bayes::run_parallel_logic_sampling(
      net, {}, {{1, 1}}, small_parallel(Mode::kSynchronous, 0), {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_NEAR(r.estimates[0].probability, kExactBTrue, 0.03);
}

TEST(ParallelSampling, AllModesAgreeOnValidatedEstimates) {
  // Counter-based randomness means the validated sample stream is the same
  // joint distribution regardless of mode/timing; estimates must agree to
  // within the CI.
  const auto net = nscc::bayes::make_network_a();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  std::vector<double> probs;
  for (auto [mode, age] :
       {std::pair{Mode::kSynchronous, nscc::dsm::Iteration{0}},
        {Mode::kAsynchronous, nscc::dsm::Iteration{0}},
        {Mode::kPartialAsync, nscc::dsm::Iteration{10}}}) {
    const auto r = nscc::bayes::run_parallel_logic_sampling(
        net, {}, queries, small_parallel(mode, age), {});
    EXPECT_FALSE(r.deadlocked);
    ASSERT_EQ(r.estimates.size(), queries.size());
    probs.push_back(r.estimates[0].probability);
  }
  EXPECT_NEAR(probs[0], probs[1], 1e-9);
  EXPECT_NEAR(probs[0], probs[2], 1e-9);
}

TEST(ParallelSampling, AsynchronousRollsBackAndStillConverges) {
  const auto net = nscc::bayes::make_network_a();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  const auto r = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, small_parallel(Mode::kAsynchronous, 0), {});
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.rollbacks, 0u);
  EXPECT_GT(r.validated_samples, 2000u);
}

TEST(ParallelSampling, GlobalReadAgeBoundsReduceRollbackWork) {
  // On a skewed (speculation-friendly) network, bounding the run-ahead with
  // Global_Read reduces the amount of invalidated, recomputed work.
  const auto net = nscc::bayes::make_hailfinder_like();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  auto tight_cfg = small_parallel(Mode::kPartialAsync, 2);
  tight_cfg.batch = 1;  // Same message pattern; isolate the age effect.
  auto async_cfg = small_parallel(Mode::kAsynchronous, 0);
  // Widen the speed gap so the async run genuinely strays ahead.
  tight_cfg.node_speed_spread = 0.4;
  async_cfg.node_speed_spread = 0.4;
  const auto tight = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, tight_cfg, {});
  const auto async_r = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, async_cfg, {});
  EXPECT_LT(tight.nodes_resampled, async_r.nodes_resampled);
  EXPECT_GT(tight.global_read_blocks, 0u);
  EXPECT_EQ(async_r.global_read_blocks, 0u);
}

TEST(ParallelSampling, PartialAsyncBeatsSyncOnTime) {
  const auto net = nscc::bayes::make_hailfinder_like();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  const auto sync = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, small_parallel(Mode::kSynchronous, 0), {});
  const auto part = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, small_parallel(Mode::kPartialAsync, 20), {});
  EXPECT_LT(part.full_run_time, sync.full_run_time);
}

TEST(ParallelSampling, DeterministicForSeed) {
  const auto net = figure1_network();
  const auto cfg = small_parallel(Mode::kPartialAsync, 5);
  const auto a =
      nscc::bayes::run_parallel_logic_sampling(net, {}, {{1, 1}}, cfg, {});
  const auto b =
      nscc::bayes::run_parallel_logic_sampling(net, {}, {{1, 1}}, cfg, {});
  EXPECT_EQ(a.full_run_time, b.full_run_time);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_DOUBLE_EQ(a.estimates[0].probability, b.estimates[0].probability);
}

TEST(ParallelSampling, EvidenceSupportedAcrossPartitions) {
  const auto net = figure1_network();
  auto cfg = small_parallel(Mode::kPartialAsync, 5);
  cfg.iterations = 20000;  // Rejection sampling needs more runs.
  const auto r = nscc::bayes::run_parallel_logic_sampling(
      net, {{0, 1}}, {{1, 1}}, cfg, {});  // P(B=true | A=true) = 0.80.
  EXPECT_FALSE(r.deadlocked);
  EXPECT_NEAR(r.estimates[0].probability, 0.80, 0.03);
}

TEST(ParallelSampling, ReportsEdgeCutAndTraffic) {
  const auto net = nscc::bayes::make_network_a();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  const auto r = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, small_parallel(Mode::kSynchronous, 0), {});
  EXPECT_GT(r.edge_cut, 0);
  EXPECT_GT(r.messages_sent, 2 * r.iterations);  // Blocks + barrier traffic.
  EXPECT_GT(r.bytes_sent, 0u);
}

TEST(ParallelSampling, BackgroundLoadSlowsCompletion) {
  const auto net = nscc::bayes::make_hailfinder_like();
  const auto queries = nscc::bayes::default_queries(net, 3, 11);
  const auto cfg = small_parallel(Mode::kSynchronous, 0);
  const auto unloaded =
      nscc::bayes::run_parallel_logic_sampling(net, {}, queries, cfg, {});
  const auto loaded = nscc::bayes::run_parallel_logic_sampling(
      net, {}, queries, cfg, {}, 5e6);
  EXPECT_GT(loaded.full_run_time, unloaded.full_run_time);
}

}  // namespace
