// Tests for the warp metric (paper Section 4.3): definition on crafted
// timestamp sequences, behaviour on stable vs increasingly loaded virtual
// networks, per-pair bookkeeping, and reset.
#include <gtest/gtest.h>

#include "net/load_generator.hpp"
#include "rt/vm.hpp"
#include "warp/warp_meter.hpp"

namespace {

using nscc::sim::kMillisecond;
using nscc::warp::WarpMeter;

TEST(WarpMeter, DefinitionOnCraftedTimestamps) {
  WarpMeter m;
  // Sends 10ms apart; arrivals 10ms apart: warp = 1.
  m.record(0, 1, 0, 5);
  m.record(0, 1, 10, 15);
  ASSERT_EQ(m.samples(), 1u);
  EXPECT_DOUBLE_EQ(m.overall().mean(), 1.0);
  // Next arrival is 30ms after the previous for a 10ms send gap: warp = 3.
  m.record(0, 1, 20, 45);
  EXPECT_EQ(m.samples(), 2u);
  EXPECT_DOUBLE_EQ(m.overall().max(), 3.0);
}

TEST(WarpMeter, FirstMessagePerPairYieldsNoSample) {
  WarpMeter m;
  m.record(0, 1, 0, 1);
  m.record(0, 2, 0, 1);
  m.record(1, 0, 0, 1);
  EXPECT_EQ(m.samples(), 0u);
}

TEST(WarpMeter, ZeroSendGapIgnored) {
  WarpMeter m;
  m.record(0, 1, 5, 10);
  m.record(0, 1, 5, 12);  // Same send instant: ratio undefined, skipped.
  EXPECT_EQ(m.samples(), 0u);
}

TEST(WarpMeter, PairsAreIndependent) {
  WarpMeter m;
  m.record(0, 1, 0, 0);
  m.record(0, 2, 0, 0);
  m.record(0, 1, 10, 10);   // Warp 1 for (0,1).
  m.record(0, 2, 10, 40);   // Warp 4 for (0,2).
  EXPECT_DOUBLE_EQ(m.pair(0, 1).mean(), 1.0);
  EXPECT_DOUBLE_EQ(m.pair(0, 2).mean(), 4.0);
  EXPECT_EQ(m.pair(2, 0).count(), 0u);  // Direction matters.
}

TEST(WarpMeter, PairIsDirectedNotSymmetric) {
  WarpMeter m;
  // Traffic 1 -> 0 with warp 2; traffic 0 -> 1 with warp 1.  The directed
  // pair (receiver, sender) must keep the two streams apart even though
  // they connect the same two nodes.
  m.record(0, 1, 0, 0);
  m.record(0, 1, 10, 20);  // Arrival gap 20 over send gap 10: warp 2.
  m.record(1, 0, 0, 0);
  m.record(1, 0, 10, 10);  // Warp 1.
  EXPECT_EQ(m.pair(0, 1).count(), 1u);
  EXPECT_DOUBLE_EQ(m.pair(0, 1).mean(), 2.0);
  EXPECT_EQ(m.pair(1, 0).count(), 1u);
  EXPECT_DOUBLE_EQ(m.pair(1, 0).mean(), 1.0);
}

TEST(WarpMeter, NeverObservedPairReturnsEmptyStats) {
  WarpMeter m;
  m.record(0, 1, 0, 0);
  m.record(0, 1, 5, 5);
  const auto stats = m.pair(3, 4);  // No such traffic ever recorded.
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
  // Asking must not create state: the meter still has exactly one sample.
  EXPECT_EQ(m.samples(), 1u);
}

TEST(WarpMeter, ResetClearsEverything) {
  WarpMeter m;
  m.record(0, 1, 0, 0);
  m.record(0, 1, 1, 1);
  ASSERT_GT(m.samples(), 0u);
  m.reset();
  EXPECT_EQ(m.samples(), 0u);
  m.record(0, 1, 2, 2);
  EXPECT_EQ(m.samples(), 0u);  // History was dropped too.
}

TEST(WarpMeter, StableNetworkMeasuresUnity) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  nscc::rt::VirtualMachine vm(cfg);
  vm.add_task("recv", [](nscc::rt::Task& t) {
    for (int i = 0; i < 50; ++i) (void)t.recv(1);
  });
  vm.add_task("send", [](nscc::rt::Task& t) {
    for (int i = 0; i < 50; ++i) {
      t.compute(20 * kMillisecond);
      t.send(0, 1, nscc::rt::Packet{});
    }
  });
  vm.run();
  EXPECT_NEAR(vm.warp_meter().overall().mean(), 1.0, 0.01);
}

TEST(WarpMeter, RisingLoadPushesWarpAboveOne) {
  nscc::rt::MachineConfig cfg;
  cfg.ntasks = 2;
  nscc::rt::VirtualMachine vm(cfg);
  vm.add_task("recv", [](nscc::rt::Task& t) {
    for (int i = 0; i < 200; ++i) (void)t.recv(1);
  });
  vm.add_task("send", [](nscc::rt::Task& t) {
    for (int i = 0; i < 200; ++i) {
      t.compute(10 * kMillisecond);
      nscc::rt::Packet p;
      p.pack_double_vec(std::vector<double>(64, 0.0));
      t.send(0, 1, std::move(p));
    }
  });
  // Overloading generator switches on mid-run: the queue starts growing,
  // inter-arrival gaps stretch, warp rises above 1.
  std::unique_ptr<nscc::net::LoadGenerator> gen;
  vm.engine().schedule(nscc::sim::kSecond, [&] {
    gen = std::make_unique<nscc::net::LoadGenerator>(
        vm.engine(), vm.bus(),
        nscc::net::LoadGeneratorConfig{.offered_bps = 11e6,
                                       .frame_payload_bytes = 1024,
                                       .poisson = true,
                                       .seed = 3});
  });
  vm.run();
  if (gen) gen->stop();
  EXPECT_GT(vm.warp_meter().overall().mean(), 1.02);
  EXPECT_GT(vm.warp_meter().overall().max(), 1.2);
}

}  // namespace
