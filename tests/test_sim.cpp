// Tests for the fiber layer and the discrete-event engine: scheduling order,
// virtual-time semantics of delay/suspend/resume, determinism, deadlock
// detection, and teardown of unfinished fibers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace {

using nscc::sim::Engine;
using nscc::sim::Fiber;
using nscc::sim::Process;
using nscc::sim::Time;

TEST(Fiber, RunsBodyToCompletion) {
  int steps = 0;
  Fiber f([&] { steps = 3; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(steps, 3);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber* self = nullptr;
  Fiber f([&] {
    trace.push_back(1);
    self->yield();
    trace.push_back(2);
    self->yield();
    trace.push_back(3);
  });
  self = &f;
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, KillUnwindsStack) {
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  Fiber* self = nullptr;
  {
    Fiber f([&] {
      Sentinel s{&destroyed};
      self->yield();  // Never resumed normally.
      FAIL() << "should not get here";
    });
    self = &f;
    f.resume();
    EXPECT_FALSE(destroyed);
  }  // Destructor kills the fiber.
  EXPECT_TRUE(destroyed);
}

TEST(Fiber, KillNeverStartedIsSafe) {
  Fiber f([] { FAIL() << "body must not run"; });
  // Destructor only: the body never runs.
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(30, [&] { order.push_back(3); });
  eng.schedule(10, [&] { order.push_back(1); });
  eng.schedule(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule(42, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, DelayAdvancesVirtualTime) {
  Engine eng;
  std::vector<Time> stamps;
  eng.spawn("p", [&](Process& p) {
    stamps.push_back(p.now());
    p.delay(100);
    stamps.push_back(p.now());
    p.delay(0);
    stamps.push_back(p.now());
    p.delay(50);
    stamps.push_back(p.now());
  });
  eng.run();
  EXPECT_EQ(stamps, (std::vector<Time>{0, 100, 100, 150}));
  EXPECT_EQ(eng.live_processes(), 0u);
}

TEST(Engine, SpawnStartTimeHonoured) {
  Engine eng;
  Time started = -1;
  eng.spawn("late", [&](Process& p) { started = p.now(); }, 777);
  eng.run();
  EXPECT_EQ(started, 777);
}

TEST(Engine, SuspendResumeAcrossProcesses) {
  Engine eng;
  std::vector<std::string> trace;
  Process& consumer = eng.spawn("consumer", [&](Process& p) {
    trace.push_back("c:wait");
    p.suspend();
    trace.push_back("c:resumed@" + std::to_string(p.now()));
  });
  eng.spawn("producer", [&](Process& p) {
    p.delay(500);
    trace.push_back("p:resume");
    consumer.resume_at(p.now() + 10);
  });
  eng.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"c:wait", "p:resume",
                                             "c:resumed@510"}));
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  eng.spawn("stuck", [](Process& p) { p.suspend(); });
  eng.run();
  EXPECT_TRUE(eng.deadlocked());
  EXPECT_EQ(eng.live_processes(), 1u);
}

TEST(Engine, NoDeadlockWhenAllFinish) {
  Engine eng;
  eng.spawn("ok", [](Process& p) { p.delay(5); });
  eng.run();
  EXPECT_FALSE(eng.deadlocked());
}

TEST(Engine, RunUntilStopsClock) {
  Engine eng;
  int fired = 0;
  eng.schedule(100, [&] { ++fired; });
  eng.schedule(900, [&] { ++fired; });
  eng.run(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 500);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ManyProcessesInterleaveDeterministically) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      eng.spawn("p" + std::to_string(i), [&order, i](Process& p) {
        for (int k = 0; k < 3; ++k) {
          p.delay(10 * (i + 1));
          order.push_back(i);
        }
      });
    }
    eng.run();
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 24u);
}

TEST(Engine, TeardownWithLiveProcessesUnwinds) {
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Engine eng;
    eng.spawn("held", [&](Process& p) {
      Sentinel s{&destroyed};
      p.suspend();
    });
    eng.run();
    EXPECT_TRUE(eng.deadlocked());
  }
  EXPECT_TRUE(destroyed);
}

}  // namespace
