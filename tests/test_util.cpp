// Tests for the util substrate: RNG statistical sanity and determinism,
// streaming statistics, confidence intervals, bit vectors, tables, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using nscc::util::BitVec;
using nscc::util::Flags;
using nscc::util::RunningStats;
using nscc::util::Table;
using nscc::util::Xoshiro256;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRangeAndRoughlyUniform) {
  Xoshiro256 rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Xoshiro256 rng(11);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(17);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(19);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split(1);
  Xoshiro256 child2 = parent.split(2);
  EXPECT_NE(child(), child2());
  // Splitting must not perturb the parent.
  Xoshiro256 parent2(23);
  (void)parent2.split(1);
  (void)parent2.split(2);
  EXPECT_EQ(parent(), parent2());
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, SumIsExactNotReconstructedFromMean) {
  // Regression: sum() used to return mean() * n, which drifts once the mean
  // itself carries rounding error.  Accumulate values whose running mean is
  // not representable and check the sum stays exact (integers summed in
  // doubles are exact well past this range).
  RunningStats s;
  double exact = 0.0;
  for (int i = 1; i <= 10007; ++i) {
    const double x = static_cast<double>(i % 97) + 1.0 / 3.0;
    s.add(x);
    exact += x;
  }
  EXPECT_DOUBLE_EQ(s.sum(), exact);
  // mean * n is only close; sum() must be the accumulated value itself.
  EXPECT_NEAR(s.sum(), s.mean() * static_cast<double>(s.count()), 1e-6);
}

TEST(Stats, MergePreservesSum) {
  RunningStats a;
  RunningStats b;
  for (double x : {1.5, 2.5, 3.0}) a.add(x);
  for (double x : {10.0, 20.0}) b.add(x);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum(), 37.0);
  RunningStats empty;
  empty.merge(a);  // Merge into a default-constructed accumulator.
  EXPECT_DOUBLE_EQ(empty.sum(), 37.0);
}

TEST(Stats, MergeMatchesCombinedStream) {
  nscc::util::Xoshiro256 rng(31);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    if (i % 3 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, NormalQuantileKnownValues) {
  EXPECT_NEAR(nscc::util::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(nscc::util::normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(nscc::util::normal_quantile(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(nscc::util::normal_quantile(0.05), -1.644854, 1e-5);
}

TEST(Stats, ZForConfidence) {
  EXPECT_NEAR(nscc::util::z_for_confidence(0.90), 1.6449, 1e-3);
  EXPECT_NEAR(nscc::util::z_for_confidence(0.95), 1.9600, 1e-3);
}

TEST(Stats, ProportionCiShrinksWithSamples) {
  const auto wide = nscc::util::proportion_ci(50, 100, 0.90);
  const auto narrow = nscc::util::proportion_ci(5000, 10000, 0.90);
  EXPECT_LT(narrow.half_width(), wide.half_width());
  EXPECT_TRUE(wide.contains(0.5));
}

TEST(Stats, SamplesForProportionMatchesPaperScale) {
  // The paper's +/-0.01 at 90% confidence: worst case ~6764 samples.
  const auto n = nscc::util::samples_for_proportion(0.01, 0.90);
  EXPECT_GE(n, 6500u);
  EXPECT_LE(n, 7000u);
}

TEST(BitVec, SetGetFlipPopcount) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, ExtractLittleEndianBits) {
  BitVec v(16);
  // Write value 0b1011 at offset 4.
  v.set(4, true);
  v.set(5, true);
  v.set(7, true);
  EXPECT_EQ(v.extract(4, 4), 0b1011u);
  EXPECT_EQ(v.extract(0, 4), 0u);
}

TEST(BitVec, CrossoverSplitsAtPoint) {
  BitVec a(10);
  BitVec b(10);
  for (std::size_t i = 0; i < 10; ++i) b.set(i, true);
  BitVec ca;
  BitVec cb;
  BitVec::crossover(a, b, 4, ca, cb);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ca.get(i), i >= 4);
    EXPECT_EQ(cb.get(i), i < 4);
  }
}

TEST(BitVec, HashDiscriminatesAndEqualityHolds) {
  nscc::util::Xoshiro256 rng(41);
  BitVec a(100);
  a.randomize(rng);
  BitVec b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.flip(57);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, RandomizeMasksTailBits) {
  nscc::util::Xoshiro256 rng(43);
  BitVec v(70);
  v.randomize(rng);
  // Tail bits beyond 70 must be zero so hashing/equality are well defined.
  EXPECT_EQ(v.words().back() >> 6, 0u);
}

TEST(BitVec, RoundTripFromWords) {
  nscc::util::Xoshiro256 rng(47);
  BitVec v(90);
  v.randomize(rng);
  BitVec w = BitVec::from_words(90, v.words());
  EXPECT_EQ(v, w);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t("demo");
  t.columns({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(std::int64_t{42});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("b,42"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t;
  t.columns({"c"});
  t.row().cell("has,comma");
  EXPECT_NE(t.to_csv().find("\"has,comma\""), std::string::npos);
}

TEST(Flags, ParsesAllKindsAndDefaults) {
  Flags f;
  f.add_int("gens", 100, "generations")
      .add_double("rate", 0.5, "rate")
      .add_bool("verbose", false, "chatty")
      .add_string("mode", "sync", "mode");
  const char* argv[] = {"prog", "--gens=250", "--rate", "0.75", "--verbose"};
  ASSERT_TRUE(f.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("gens"), 250);
  EXPECT_DOUBLE_EQ(f.get_double("rate"), 0.75);
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("mode"), "sync");
}

TEST(Flags, RejectsUnknownFlag) {
  Flags f;
  f.add_int("x", 1, "x");
  const char* argv[] = {"prog", "--nope=3"};
  EXPECT_FALSE(f.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, EnvOverrideApplies) {
  ::setenv("NSCC_SCALE_FACTOR", "9", 1);
  Flags f;
  f.add_int("scale-factor", 1, "scale");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("scale-factor"), 9);
  ::unsetenv("NSCC_SCALE_FACTOR");
}

TEST(Flags, CommandLineBeatsEnv) {
  ::setenv("NSCC_REPS", "3", 1);
  Flags f;
  f.add_int("reps", 1, "reps");
  const char* argv[] = {"prog", "--reps=5"};
  ASSERT_TRUE(f.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("reps"), 5);
  ::unsetenv("NSCC_REPS");
}

TEST(Flags, RejectsIllFormedNumbers) {
  Flags f;
  f.add_int("n", 1, "n").add_double("r", 0.5, "r");
  const char* bad_int[] = {"prog", "--n=12abc"};
  EXPECT_FALSE(f.parse(2, const_cast<char**>(bad_int)));
  Flags g;
  g.add_double("r", 0.5, "r");
  const char* bad_double[] = {"prog", "--r=fast"};
  EXPECT_FALSE(g.parse(2, const_cast<char**>(bad_double)));
}

TEST(Flags, EnumAcceptsAllowedValueOnly) {
  Flags f;
  f.add_enum("network", "ethernet", {"ethernet", "sp2"}, "net");
  const char* ok[] = {"prog", "--network=sp2"};
  ASSERT_TRUE(f.parse(2, const_cast<char**>(ok)));
  EXPECT_EQ(f.get_string("network"), "sp2");

  Flags g;
  g.add_enum("network", "ethernet", {"ethernet", "sp2"}, "net");
  const char* bad[] = {"prog", "--network=token-ring"};
  EXPECT_FALSE(g.parse(2, const_cast<char**>(bad)));
}

TEST(Flags, EnumListAcceptsSubsetRejectsJunk) {
  const std::vector<std::string> allowed = {"sync", "async", "partial"};
  Flags f;
  f.add_enum_list("variants", "sync,async,partial", allowed, "variants");
  const char* ok[] = {"prog", "--variants=partial,sync"};
  ASSERT_TRUE(f.parse(2, const_cast<char**>(ok)));
  EXPECT_EQ(f.get_list("variants"),
            (std::vector<std::string>{"partial", "sync"}));

  for (const char* value :
       {"--variants=", "--variants=sync,nope", "--variants=sync,sync"}) {
    Flags g;
    g.add_enum_list("variants", "sync", allowed, "variants");
    const char* bad[] = {"prog", value};
    EXPECT_FALSE(g.parse(2, const_cast<char**>(bad))) << value;
  }
}

TEST(Flags, SetDefaultValidatesAndStaysOverridable) {
  Flags f;
  f.add_int("demes", 8, "demes").add_enum("network", "ethernet",
                                          {"ethernet", "sp2"}, "net");
  EXPECT_TRUE(f.set_default("demes", "4"));
  EXPECT_TRUE(f.set_default("network", "sp2"));
  EXPECT_FALSE(f.set_default("nope", "1"));        // unknown flag
  EXPECT_FALSE(f.set_default("network", "ring"));  // outside the enum
  const char* argv[] = {"prog", "--demes=2"};
  ASSERT_TRUE(f.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("demes"), 2);  // command line beats the new default
  EXPECT_EQ(f.get_string("network"), "sp2");
}

TEST(Flags, InvalidEnvOverrideIsIgnoredNotFatal) {
  ::setenv("NSCC_NETWORK", "token-ring", 1);
  Flags f;
  f.add_enum("network", "ethernet", {"ethernet", "sp2"}, "net");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_string("network"), "ethernet");
  ::unsetenv("NSCC_NETWORK");
}

TEST(SplitCsv, SplitsAndPreservesEmptyTokens) {
  using nscc::util::split_csv;
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{""}));
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "", "b"}));
}

}  // namespace
