// Cross-stack integration tests: full end-to-end runs exercising several
// subsystems together, plus runtime edge cases not covered by the per-module
// suites.
#include <gtest/gtest.h>

#include "bayes/generators.hpp"
#include "bayes/parallel_sampling.hpp"
#include "dsm/shared_space.hpp"
#include "exp/ga_experiments.hpp"
#include "ga/island.hpp"
#include "nn/train.hpp"
#include "rt/vm.hpp"
#include "solver/jacobi.hpp"

namespace {

using nscc::rt::MachineConfig;
using nscc::rt::Packet;
using nscc::rt::Task;
using nscc::rt::VirtualMachine;

TEST(Runtime, SingleTaskBarrierIsTrivial) {
  MachineConfig cfg;
  cfg.ntasks = 1;
  VirtualMachine vm(cfg);
  bool done = false;
  vm.add_task("solo", [&](Task& t) {
    t.barrier();
    done = true;
  });
  vm.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(vm.deadlocked());
}

TEST(Runtime, SenderWindowThrottlesAFlood) {
  MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.sender_window_bytes = 4096;
  cfg.bus.bandwidth_bps = 1e6;  // Slow wire: the window must fill.
  VirtualMachine vm(cfg);
  vm.add_task("sink", [](Task& t) {
    for (int i = 0; i < 50; ++i) (void)t.recv(1);
  });
  vm.add_task("flooder", [](Task& t) {
    for (int i = 0; i < 50; ++i) {
      Packet p;
      p.pack_double_vec(std::vector<double>(128, 0.0));  // ~1KB each.
      t.send(0, 1, std::move(p));
    }
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  EXPECT_GT(vm.task(1).stats().send_backpressure_events, 0u);
  EXPECT_GT(vm.task(1).stats().send_backpressure_time, 0);
}

TEST(Runtime, UnlimitedWindowNeverBlocks) {
  MachineConfig cfg;
  cfg.ntasks = 2;
  cfg.sender_window_bytes = 0;
  cfg.bus.bandwidth_bps = 1e6;
  VirtualMachine vm(cfg);
  vm.add_task("sink", [](Task& t) {
    for (int i = 0; i < 20; ++i) (void)t.recv(1);
  });
  vm.add_task("flooder", [](Task& t) {
    for (int i = 0; i < 20; ++i) {
      Packet p;
      p.pack_double_vec(std::vector<double>(128, 0.0));
      t.send(0, 1, std::move(p));
    }
  });
  vm.run();
  EXPECT_EQ(vm.task(1).stats().send_backpressure_events, 0u);
}

TEST(Integration, GaCellOnTheSwitchRunsEndToEnd) {
  nscc::exp::GaCellConfig cfg;
  cfg.function_id = 2;
  cfg.processors = 4;
  cfg.generations = 30;
  cfg.reps = 1;
  cfg.ages = {5};
  cfg.seed = 3;
  cfg.machine.network = nscc::rt::Network::kSp2Switch;
  const auto cell = nscc::exp::run_ga_cell(cfg);
  for (const auto& v : cell.variants) {
    EXPECT_GT(v.speedup, 0.0) << v.name;
  }
}

TEST(Integration, AllFourApplicationsShareOneSubstrate) {
  // Smoke-run every application class on small inputs; all must complete
  // deterministically on the same simulated machine configuration.
  nscc::ga::IslandConfig ga;
  ga.function_id = 3;
  ga.mode = nscc::dsm::Mode::kPartialAsync;
  ga.age = 5;
  ga.ndemes = 3;
  ga.generations = 15;
  ga.seed = 5;
  EXPECT_FALSE(nscc::ga::run_island_ga(ga, {}).deadlocked);

  const auto net = nscc::bayes::make_hailfinder_like();
  nscc::bayes::ParallelInferenceConfig bi;
  bi.mode = nscc::dsm::Mode::kPartialAsync;
  bi.age = 5;
  bi.iterations = 400;
  bi.seed = 5;
  EXPECT_FALSE(nscc::bayes::run_parallel_logic_sampling(
                   net, {}, nscc::bayes::default_queries(net, 2, 5), bi, {})
                   .deadlocked);

  const auto sys = nscc::solver::make_poisson_2d(8, 5);
  nscc::solver::ParallelJacobiConfig ja;
  ja.mode = nscc::dsm::Mode::kPartialAsync;
  ja.age = 5;
  ja.processors = 3;
  ja.tolerance = 1e-6;
  EXPECT_TRUE(nscc::solver::run_parallel_jacobi(sys, ja, {}).converged);

  const auto data = nscc::nn::make_two_spirals(20, 0.02, 5);
  nscc::nn::TrainConfig tr;
  tr.mode = nscc::dsm::Mode::kPartialAsync;
  tr.age = 2;
  tr.steps = 40;
  tr.workers = 3;
  tr.seed = 5;
  EXPECT_FALSE(nscc::nn::train_parallel(data, tr, {}).deadlocked);
}

TEST(Integration, MixedDsmTrafficAndAppMessagesCoexist) {
  // DSM updates, barrier traffic, and app-tag messages interleave on one
  // bus without cross-talk.
  MachineConfig cfg;
  cfg.ntasks = 3;
  VirtualMachine vm(cfg);
  std::vector<int> app_payloads;
  vm.add_task("writer", [](Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_written(1, {1, 2});
    for (int i = 0; i < 10; ++i) {
      t.compute(nscc::sim::kMillisecond);
      Packet p;
      p.pack_i32(i);
      space.write(1, i, std::move(p));
      // Interleave a direct application message.
      Packet q;
      q.pack_i32(100 + i);
      t.send(1, 77, std::move(q));
    }
    t.barrier();
  });
  vm.add_task("reader1", [&](Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_read(1, 0);
    for (int i = 0; i < 10; ++i) {
      const auto& v = space.global_read(1, i, 0);
      EXPECT_GE(v.iteration, i);
      app_payloads.push_back(t.recv(77).payload.unpack_i32());
    }
    t.barrier();
  });
  vm.add_task("reader2", [](Task& t) {
    nscc::dsm::SharedSpace space(t);
    space.declare_read(1, 0);
    (void)space.global_read(1, 9, 0);
    t.barrier();
  });
  vm.run();
  EXPECT_FALSE(vm.deadlocked());
  ASSERT_EQ(app_payloads.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(app_payloads[static_cast<std::size_t>(i)], 100 + i);
}

}  // namespace
